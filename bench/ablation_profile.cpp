/**
 * @file
 * Ablation: profile-guided seeding (Section 5.2: "this gap may be
 * bridged somewhat if off-line profiling offers initial prediction
 * information"). A characterization run's per-epoch hot sets seed
 * the SP-table of a fresh run.
 */

#include "analysis/profile.hh"
#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main()
{
    QuietScope quiet;
    banner("Ablation: profile-guided SP-table seeding");
    Table t({"benchmark", "cold accuracy %", "seeded accuracy %",
             "gain"});

    double sum_cold = 0, sum_seeded = 0;
    unsigned n = 0;
    for (const std::string &name : allWorkloads()) {
        ExperimentConfig trace_cfg = directoryConfig();
        trace_cfg.collectTrace = true;
        ExperimentResult traced = runExperiment(name, trace_cfg);
        auto profile = buildProfile(*traced.trace, 0.10, 8);

        ExperimentResult cold =
            runExperiment(name, predictedConfig(PredictorKind::sp));
        ExperimentConfig seeded_cfg =
            predictedConfig(PredictorKind::sp);
        seeded_cfg.prepare = [&profile](CmpSystem &sys) {
            applyProfile(*sys.spPredictor(), profile);
        };
        ExperimentResult seeded = runExperiment(name, seeded_cfg);

        const double c = 100.0 * cold.predictionAccuracy();
        const double s = 100.0 * seeded.predictionAccuracy();
        t.cell(name).cell(c, 1).cell(s, 1).cell(s - c, 1).endRow();
        sum_cold += c;
        sum_seeded += s;
        ++n;
    }
    t.print();
    std::printf("\naverage: cold %.1f%%, seeded %.1f%%\n",
                sum_cold / n, sum_seeded / n);
    return 0;
}
