/**
 * @file
 * Ablation: profile-guided seeding (Section 5.2: "this gap may be
 * bridged somewhat if off-line profiling offers initial prediction
 * information"). A characterization run's per-epoch hot sets seed
 * the SP-table of a fresh run.
 */

#include "analysis/profile.hh"
#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Ablation: profile-guided SP-table seeding (Section 5.2)");
    QuietScope quiet;
    banner("Ablation: profile-guided SP-table seeding");
    Table t({"benchmark", "cold accuracy %", "seeded accuracy %",
             "gain"});

    const std::vector<std::string> names = allWorkloads();

    // Phase 1: per workload, a traced characterization run (the
    // profile source) and a cold SP run (the baseline).
    ExperimentConfig trace_cfg = directoryConfig();
    trace_cfg.collectTrace = true;
    const auto phase1 =
        sweepMatrix(names, {trace_cfg,
                            predictedConfig(PredictorKind::sp)});

    // Distill each trace into a profile. The vector is fully built
    // before phase 2 starts, so the prepare callbacks below can
    // capture stable references into it.
    std::vector<std::vector<ProfileEntry>> profiles(names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        profiles[i] = buildProfile(*phase1[i * 2].trace, 0.10, 8);

    // Phase 2: seeded SP runs.
    std::vector<SweepJob> seeded_jobs;
    seeded_jobs.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        ExperimentConfig seeded_cfg =
            predictedConfig(PredictorKind::sp);
        seeded_cfg.prepare = [&profile = profiles[i]](CmpSystem &sys) {
            applyProfile(*sys.spPredictor(), profile);
        };
        seeded_jobs.push_back({names[i], seeded_cfg, ""});
    }
    const auto seeded_results = sweep(std::move(seeded_jobs));

    double sum_cold = 0, sum_seeded = 0;
    unsigned n = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const double c = 100.0 * phase1[i * 2 + 1].predictionAccuracy();
        const double s = 100.0 * seeded_results[i].predictionAccuracy();
        t.cell(names[i]).cell(c, 1).cell(s, 1).cell(s - c, 1).endRow();
        sum_cold += c;
        sum_seeded += s;
        ++n;
    }
    t.print();
    std::printf("\naverage: cold %.1f%%, seeded %.1f%%\n",
                sum_cold / n, sum_seeded / n);
    return 0;
}
