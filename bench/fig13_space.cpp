/**
 * @file
 * Figure 13: effect of predictor space limits — every predictor with
 * unlimited tables vs small capacity-limited tables (32 entries/core,
 * the regime where the paper's ~4 KB point binds on our synthetic
 * footprints), averaged over all benchmarks.
 *
 * Paper reference: limited space costs ADDR and INST accuracy;
 * SP- and UNI-prediction are unaffected (their state is inherently
 * small). Also prints the modelled storage per predictor.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

namespace {

struct Avg
{
    double bandwidth = 0;
    double indirection = 0;
    double storage_bits = 0;
    unsigned n = 0;
};

} // namespace

int
main()
{
    QuietScope quiet;
    banner("Figure 13: space limits (unlimited vs 32-entry/core "
           "tables), averages over all benchmarks");
    Table t({"predictor", "entries", "+bandwidth/miss %",
             "misses indirect %", "avg storage (KB)"});

    for (auto [label, kind] :
         {std::pair{"SP-predictor", PredictorKind::sp},
          std::pair{"ADDR-predictor", PredictorKind::addr},
          std::pair{"INST-predictor", PredictorKind::inst},
          std::pair{"UNI-predictor", PredictorKind::uni}}) {
        // 32 entries/core x 16 cores x 37 bits ~= 2.4 KB total,
        // the regime where the paper's ~4 KB point binds for our
        // (smaller-footprint) synthetic workloads.
        for (unsigned entries : {0u, 32u}) {
            Avg a;
            for (const std::string &name : allWorkloads()) {
                ExperimentResult dir =
                    runExperiment(name, directoryConfig());
                ExperimentConfig cfg = predictedConfig(kind);
                cfg.predictorEntries = entries;
                ExperimentResult r = runExperiment(name, cfg);

                const double dir_bpm = dir.bytesPerMiss();
                a.bandwidth +=
                    100.0 * (r.bytesPerMiss() - dir_bpm) / dir_bpm;
                const double misses = static_cast<double>(
                    r.run.mem.misses.value());
                const double comm = static_cast<double>(
                    r.run.mem.communicatingMisses.value());
                const double ok = static_cast<double>(
                    r.run.mem.predictionsSufficient.value());
                a.indirection +=
                    misses > 0 ? 100.0 * (comm - ok) / misses : 0.0;
                a.storage_bits +=
                    static_cast<double>(r.run.predictorStorageBits);
                ++a.n;
            }
            t.cell(label)
                .cell(entries == 0 ? std::string("unlimited")
                                   : std::to_string(entries))
                .cell(a.bandwidth / a.n, 1)
                .cell(a.indirection / a.n, 1)
                .cell(a.storage_bits / a.n / 8.0 / 1024.0, 1)
                .endRow();
        }
    }
    t.print();
    std::printf("\n(SP and UNI are insensitive to the capacity limit;"
                " ADDR/INST lose accuracy)\n");
    return 0;
}
