/**
 * @file
 * Figure 13: effect of predictor space limits — every predictor with
 * unlimited tables vs small capacity-limited tables (32 entries/core,
 * the regime where the paper's ~4 KB point binds on our synthetic
 * footprints), averaged over all benchmarks.
 *
 * Paper reference: limited space costs ADDR and INST accuracy;
 * SP- and UNI-prediction are unaffected (their state is inherently
 * small). Also prints the modelled storage per predictor.
 */

#include "bench_common.hh"
#include "common/sharer_tracker.hh"

using namespace spp;
using namespace spp::bench;

namespace {

struct Avg
{
    double bandwidth = 0;
    double indirection = 0;
    double storage_bits = 0;
    unsigned n = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Figure 13: unlimited vs capacity-limited predictor tables");
    QuietScope quiet;
    banner("Figure 13: space limits (unlimited vs 32-entry/core "
           "tables), averages over all benchmarks");
    Table t({"predictor", "entries", "+bandwidth/miss %",
             "misses indirect %", "avg storage (KB)"});

    // 32 entries/core x 16 cores x 37 bits ~= 2.4 KB total, the
    // regime where the paper's ~4 KB point binds for our
    // (smaller-footprint) synthetic workloads.
    const std::vector<std::pair<const char *, PredictorKind>> kinds =
        {{"SP-predictor", PredictorKind::sp},
         {"ADDR-predictor", PredictorKind::addr},
         {"INST-predictor", PredictorKind::inst},
         {"UNI-predictor", PredictorKind::uni}};
    const std::vector<unsigned> entry_limits = {0u, 32u};

    // One sweep for the whole figure: the directory baseline plus
    // every (kind, limit) pair, per workload.
    std::vector<ExperimentConfig> configs = {directoryConfig()};
    for (const auto &[label, kind] : kinds) {
        for (unsigned entries : entry_limits) {
            ExperimentConfig cfg = predictedConfig(kind);
            cfg.config.predictorEntries = entries;
            configs.push_back(cfg);
        }
    }
    const std::vector<std::string> names = allWorkloads();
    const auto results = sweepMatrix(names, configs);

    for (std::size_t k = 0; k < kinds.size(); ++k) {
        const char *label = kinds[k].first;
        for (std::size_t e = 0; e < entry_limits.size(); ++e) {
            const unsigned entries = entry_limits[e];
            const std::size_t col = 1 + k * entry_limits.size() + e;
            Avg a;
            for (std::size_t i = 0; i < names.size(); ++i) {
                const ExperimentResult &dir =
                    results[i * configs.size()];
                const ExperimentResult &r =
                    results[i * configs.size() + col];

                const double dir_bpm = dir.bytesPerMiss();
                a.bandwidth +=
                    100.0 * (r.bytesPerMiss() - dir_bpm) / dir_bpm;
                const double misses = static_cast<double>(
                    r.run.mem.misses.value());
                const double comm = static_cast<double>(
                    r.run.mem.communicatingMisses.value());
                const double ok = static_cast<double>(
                    r.run.mem.predictionsSufficient.value());
                a.indirection +=
                    misses > 0 ? 100.0 * (comm - ok) / misses : 0.0;
                a.storage_bits +=
                    static_cast<double>(r.run.predictorStorageBits);
                ++a.n;
            }
            t.cell(label)
                .cell(entries == 0 ? std::string("unlimited")
                                   : std::to_string(entries))
                .cell(a.bandwidth / a.n, 1)
                .cell(a.indirection / a.n, 1)
                .cell(a.storage_bits / a.n / 8.0 / 1024.0, 1)
                .endRow();
        }
    }
    t.print();
    std::printf("\n(SP and UNI are insensitive to the capacity limit;"
                " ADDR/INST lose accuracy)\n");

    // Section 5.4's fixed cost, recomputed at every machine size and
    // sharer format instead of quoted only for the 16-core full map
    // (where it is the paper's 17 bytes/core).
    banner("Sharer-set and SP fixed storage by machine size");
    Table s({"cores", "format", "dir sharer bits/entry",
             "SP signature bits", "SP fixed B/core"});
    const Config defaults;
    for (const unsigned n : {16u, 64u, 256u, 1024u}) {
        for (const SharerFormat f :
             {SharerFormat::full, SharerFormat::coarse,
              SharerFormat::limited}) {
            SharerLayout l;
            l.format = f;
            l.nCores = n;
            l.coarseCoresPerBit = defaults.coarseCoresPerBit;
            l.sharerPointers = defaults.sharerPointers;
            const std::size_t bits = SharerTracker::entryBits(l);
            s.cell(n)
                .cell(toString(f))
                .cell(static_cast<std::uint64_t>(bits))
                .cell(static_cast<std::uint64_t>(bits))
                .cell((n * 8 + 8) / 8.0, 1)
                .endRow();
        }
    }
    s.print();
    std::printf("\n(per-core comm counters dominate the fixed cost; "
                "stored signatures follow the sharer format)\n");
    return 0;
}
