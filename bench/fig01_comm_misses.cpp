/**
 * @file
 * Figure 1: ratio of communicating vs non-communicating misses per
 * benchmark under the baseline directory protocol.
 *
 * Paper reference: communicating misses average 62% with large
 * variation across applications.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Figure 1: communicating vs non-communicating miss ratio");
    QuietScope quiet;
    banner("Figure 1: Ratio of communicating misses");
    Table t({"benchmark", "misses", "communicating", "non-comm",
             "comm ratio"});

    const std::vector<std::string> names = allWorkloads();
    const auto results = sweepMatrix(names, {directoryConfig()});

    double sum_ratio = 0;
    unsigned n = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const ExperimentResult &r = results[i];
        const auto misses = r.run.mem.misses.value();
        const auto comm = r.run.mem.communicatingMisses.value();
        const double ratio = r.commMissFraction();
        t.cell(name).cell(misses).cell(comm).cell(misses - comm)
            .cell(ratio).endRow();
        sum_ratio += ratio;
        ++n;
    }
    t.print();
    std::printf("\naverage communicating ratio: %.3f "
                "(paper: 0.62 average)\n",
                sum_ratio / n);
    return 0;
}
