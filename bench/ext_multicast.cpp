/**
 * @file
 * Extension experiment: predicted multicast snooping (the paper's
 * introduction claim that "in snooping protocols, prediction relaxes
 * the high bandwidth requirements by replacing broadcast with
 * multicast"). Compares directory, full broadcast, SP-over-directory
 * and SP-driven multicast snooping on latency and bandwidth.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Extension: predicted multicast snooping vs directory/broadcast");
    QuietScope quiet;
    banner("Extension: SP-driven multicast snooping "
           "(normalized to directory)");
    Table t({"benchmark", "bcast lat", "mcast lat", "sp-dir lat",
             "bcast +bw%", "mcast +bw%", "sp-dir +bw%"});

    ExperimentConfig mc_cfg = predictedConfig(PredictorKind::sp);
    mc_cfg.config.protocol = Protocol::multicast;
    const std::vector<std::string> names = allWorkloads();
    const auto results = sweepMatrix(
        names, {directoryConfig(), broadcastConfig(), mc_cfg,
                predictedConfig(PredictorKind::sp)});

    double mlat = 0, mbw = 0, blat = 0, bbw = 0;
    unsigned n = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const ExperimentResult &dir = results[i * 4 + 0];
        const ExperimentResult &bc = results[i * 4 + 1];
        const ExperimentResult &mc = results[i * 4 + 2];
        const ExperimentResult &sp = results[i * 4 + 3];

        const double base_lat = dir.avgMissLatency();
        const double base_bpm = dir.bytesPerMiss();
        auto bw = [&](const ExperimentResult &r) {
            return 100.0 * (r.bytesPerMiss() - base_bpm) / base_bpm;
        };
        t.cell(name)
            .cell(bc.avgMissLatency() / base_lat, 3)
            .cell(mc.avgMissLatency() / base_lat, 3)
            .cell(sp.avgMissLatency() / base_lat, 3)
            .cell(bw(bc), 1).cell(bw(mc), 1).cell(bw(sp), 1)
            .endRow();
        blat += bc.avgMissLatency() / base_lat;
        bbw += bw(bc);
        mlat += mc.avgMissLatency() / base_lat;
        mbw += bw(mc);
        ++n;
    }
    t.print();
    std::printf("\naverages: broadcast lat %.3f / +%.0f%% bw; "
                "multicast lat %.3f / +%.0f%% bw\n"
                "(multicast keeps snooping's latency at a fraction "
                "of its bandwidth)\n",
                blat / n, bbw / n, mlat / n, mbw / n);
    return 0;
}
