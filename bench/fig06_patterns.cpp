/**
 * @file
 * Figure 6: hot-communication-set patterns across dynamic instances
 * of sync-epochs: stable / phase-change / stride / random / mixed.
 * Prints the per-benchmark pattern histogram plus one example
 * signature sequence per pattern class (as bit strings, like the
 * paper's bit-vector plots).
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Figure 6: hot-communication-set patterns across instances");
    QuietScope quiet;
    banner("Figure 6: hot-set patterns across dynamic epoch instances");
    Table t({"benchmark", "stable", "phase-chg", "stride", "random",
             "mixed"});

    const std::vector<std::string> names = allWorkloads();
    ExperimentConfig cfg = directoryConfig();
    cfg.collectTrace = true;
    const auto results = sweepMatrix(names, {cfg});

    std::map<HotSetPattern, EpochPatternInfo> examples;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        auto infos =
            classifyEpochPatterns(*results[i].trace, 0.10, 8);
        auto hist = patternHistogram(infos);
        t.cell(name)
            .cell(hist[HotSetPattern::stable])
            .cell(hist[HotSetPattern::phaseChange])
            .cell(hist[HotSetPattern::stride])
            .cell(hist[HotSetPattern::random])
            .cell(hist[HotSetPattern::mixed])
            .endRow();
        for (const auto &info : infos)
            if (!examples.contains(info.pattern))
                examples[info.pattern] = info;
    }
    t.print();

    banner("Example signature sequences (one row per instance, "
           "core 0 leftmost)");
    for (const auto &[pattern, info] : examples) {
        std::printf("\n%s (core %u, sid=%lx):\n", toString(pattern),
                    info.core,
                    static_cast<unsigned long>(info.staticId));
        unsigned shown = 0;
        for (const CoreSet &s : info.sets) {
            if (shown++ >= 6)
                break;
            std::printf("  %s\n", s.toBitString(16).c_str());
        }
    }
    return 0;
}
