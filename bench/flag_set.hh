/**
 * @file
 * Declarative command-line flags for the bench drivers.
 *
 * Every harness used to hand-roll the same strcmp ladder; FlagSet
 * replaces that with a table of (name, metavars, parser, help)
 * entries. Arity comes from the metavar count ("" = switch, "N" =
 * one value, "X Y" = two), `--flag value` and `--flag=value` both
 * work for single-value flags, `--help` is generated from the table,
 * and unknown arguments print the same usage text and exit 2.
 *
 * The error path is split out (tryParse) so tests can probe parse
 * failures without forking a process.
 */

#ifndef SPP_BENCH_FLAG_SET_HH
#define SPP_BENCH_FLAG_SET_HH

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace spp {
namespace bench {

/**
 * Strictly parse @p text as a base-10 unsigned integer in
 * [@p lo, @p hi]; fatal (naming @p flag) on empty input, any
 * non-digit — including a sign, so "-1" is rejected instead of
 * wrapping to a huge unsigned — overflow, or an out-of-range value.
 */
inline std::uint64_t
parseUnsigned(const char *flag, const char *text, std::uint64_t lo,
              std::uint64_t hi)
{
    bool digits = text != nullptr && *text != '\0';
    for (const char *p = text; digits && *p != '\0'; ++p)
        digits = *p >= '0' && *p <= '9';
    if (!digits)
        SPP_FATAL("{} expects an unsigned integer, got '{}'", flag,
                  text ? text : "");
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (errno != 0 || *end != '\0' || value < lo || value > hi)
        SPP_FATAL("{} must be in [{}, {}], got '{}'", flag, lo, hi,
                  text);
    return value;
}

class FlagSet
{
  public:
    /** Receives exactly the flag's arity of raw value strings. */
    using Handler =
        std::function<void(const std::vector<std::string> &)>;

    /**
     * @p description is the one-line purpose shown under "usage";
     * @p env_note lists the environment variables the program also
     * reads (shown at the bottom of --help).
     */
    explicit FlagSet(std::string description,
                     std::string env_note = "")
        : description_(std::move(description)),
          env_note_(std::move(env_note))
    {}

    /**
     * Register @p name (with leading dashes). @p metavars names the
     * value slots ("", "N", "X Y", ...) and fixes the arity;
     * @p handler runs with that many raw strings when the flag is
     * seen. Returns *this for chaining.
     */
    FlagSet &
    add(std::string name, std::string metavars, std::string help,
        Handler handler)
    {
        unsigned arity = 0;
        std::istringstream words(metavars);
        for (std::string w; words >> w;)
            ++arity;
        specs_.push_back({std::move(name), std::move(metavars),
                          arity, std::move(help),
                          std::move(handler)});
        return *this;
    }

    /** A no-value flag. */
    FlagSet &
    onSwitch(std::string name, std::string help,
             std::function<void()> fn)
    {
        return add(std::move(name), "", std::move(help),
                   [fn = std::move(fn)](
                       const std::vector<std::string> &) { fn(); });
    }

    /** A one-value flag passed through as a raw string. */
    FlagSet &
    onValue(std::string name, std::string metavar, std::string help,
            std::function<void(const std::string &)> fn)
    {
        return add(std::move(name), std::move(metavar),
                   std::move(help),
                   [fn = std::move(fn)](
                       const std::vector<std::string> &v) {
                       fn(v[0]);
                   });
    }

    /** A one-value flag validated by parseUnsigned (fatal on bad
     * input, exactly like the hand-rolled loops it replaces). */
    FlagSet &
    onUnsigned(std::string name, std::string metavar,
               std::uint64_t lo, std::uint64_t hi, std::string help,
               std::function<void(std::uint64_t)> fn)
    {
        const std::string flag = name;
        return add(std::move(name), std::move(metavar),
                   std::move(help),
                   [flag, lo, hi, fn = std::move(fn)](
                       const std::vector<std::string> &v) {
                       fn(parseUnsigned(flag.c_str(), v[0].c_str(),
                                        lo, hi));
                   });
    }

    /**
     * Parse @p args (argv[0] already stripped). Returns "" when every
     * argument matched a flag and carried its values, else the
     * complaint to die with. Handlers run as their flags are seen,
     * so a failing parse may have applied a prefix of the line.
     */
    std::string
    tryParse(const std::vector<std::string> &args) const
    {
        for (std::size_t i = 0; i < args.size(); ++i) {
            const std::string &arg = args[i];
            const Spec *match = nullptr;
            std::vector<std::string> values;
            for (const Spec &s : specs_) {
                if (arg == s.name) {
                    match = &s;
                    break;
                }
                if (s.arity == 1 &&
                    arg.size() > s.name.size() &&
                    arg[s.name.size()] == '=' &&
                    arg.compare(0, s.name.size(), s.name) == 0) {
                    match = &s;
                    values.push_back(
                        arg.substr(s.name.size() + 1));
                    break;
                }
            }
            if (match == nullptr)
                return "unknown argument '" + arg + "'";
            while (values.size() < match->arity) {
                if (i + 1 >= args.size())
                    return match->name + " expects " +
                        match->metavars;
                values.push_back(args[++i]);
            }
            match->handler(values);
        }
        return "";
    }

    /** Render the generated --help text. */
    void
    printHelp(std::FILE *out, const char *prog) const
    {
        std::fprintf(out, "usage: %s [flags]\n", prog);
        if (!description_.empty())
            std::fprintf(out, "\n%s\n", description_.c_str());
        std::size_t width = 6; // "--help"
        for (const Spec &s : specs_) {
            const std::size_t w = s.name.size() +
                (s.metavars.empty() ? 0 : 1 + s.metavars.size());
            if (w > width)
                width = w;
        }
        std::fprintf(out, "\nflags:\n");
        for (const Spec &s : specs_) {
            std::string head = s.name;
            if (!s.metavars.empty())
                head += " " + s.metavars;
            std::fprintf(out, "  %-*s  %s\n",
                         static_cast<int>(width), head.c_str(),
                         s.help.c_str());
        }
        std::fprintf(out, "  %-*s  %s\n", static_cast<int>(width),
                     "--help", "show this message and exit");
        if (!env_note_.empty())
            std::fprintf(out, "\nenvironment: %s\n",
                         env_note_.c_str());
    }

    /**
     * Parse a main()-style argument vector. --help anywhere prints
     * the generated help to stdout and exits 0; any parse error
     * prints it to stderr and exits 2.
     */
    void
    parse(int argc, char **argv) const
    {
        const std::vector<std::string> args(argv + 1, argv + argc);
        for (const std::string &a : args) {
            if (a == "--help" || a == "-h") {
                printHelp(stdout, argv[0]);
                std::exit(0);
            }
        }
        const std::string err = tryParse(args);
        if (!err.empty()) {
            std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
            printHelp(stderr, argv[0]);
            std::exit(2);
        }
    }

  private:
    struct Spec
    {
        std::string name;
        std::string metavars;
        unsigned arity;
        std::string help;
        Handler handler;
    };

    std::string description_;
    std::string env_note_;
    std::vector<Spec> specs_;
};

} // namespace bench
} // namespace spp

#endif // SPP_BENCH_FLAG_SET_HH
