/**
 * @file
 * Protocol stress-fuzz driver.
 *
 * Sweep mode (default): run N seeded random workloads against each
 * protocol/predictor combination with the invariant checker attached
 * and report any violation, timeout or deadlock. The first failure is
 * shrunk to a minimal reproducer and printed as a replayable command
 * line; with --report DIR an access-level trace (replayable via
 * examples/trace_replay --load) and the failing message log are saved
 * there.
 *
 * Single-case mode: pass --seed (plus the workload-shape flags a
 * reproducer line carries) to re-run exactly one case.
 *
 * Self-test mode: --inject K plants a known protocol bug (see
 * Config::injectBug) and --expect-catch inverts the exit code — the
 * run *must* find a violation, proving the checker catches real bugs.
 *
 * Telemetry: --telemetry DIR (or SPP_TELEMETRY=DIR) writes per-case
 * series/trace/manifest sidecars into DIR, same as the bench_common
 * drivers.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/sweep.hh"
#include "check/fuzzer.hh"
#include "common/format.hh"
#include "common/logging.hh"

using namespace spp;

namespace {

struct Options
{
    unsigned seeds = 150;          ///< Seeds per protocol config.
    std::uint64_t seedBase = 1;
    unsigned jobs = 0;             ///< 0 = SweepRunner::defaultJobs().
    unsigned inject = 0;
    bool expectCatch = false;
    bool shrink = true;
    std::string report;            ///< Failure artifact directory.
    std::string protocols = "all"; ///< all | directory,broadcast,...
    std::string format = "all";    ///< Sharer format(s) to sweep.
    TelemetryOptions telemetry;    ///< Per-case sidecars (opt-in).

    // Single-case mode (active when --seed is given).
    bool single = false;
    FuzzCase single_case;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--seeds N] [--seed-base S] [--jobs N]\n"
        "          [--protocols all|directory,predicted,broadcast,"
        "multicast]\n"
        "          [--cores N] [--format full|coarse|limited|all]\n"
        "          [--inject K] [--expect-catch] [--no-shrink]\n"
        "          [--report DIR] [--telemetry DIR]\n"
        "   or: %s --protocol P --predictor K --seed S [--cores N]\n"
        "          [--format F] [--segments N] [--ops N] [--lines N]\n"
        "          [--locks N] [--barriers N] [--inject K]   "
        "(single case)\n",
        argv0, argv0);
    std::exit(2);
}

Protocol
parseProtocol(const std::string &s)
{
    if (s == "directory") return Protocol::directory;
    if (s == "broadcast") return Protocol::broadcast;
    if (s == "predicted") return Protocol::predicted;
    if (s == "multicast") return Protocol::multicast;
    std::fprintf(stderr, "unknown protocol '%s'\n", s.c_str());
    std::exit(2);
}

PredictorKind
parsePredictor(const std::string &s)
{
    if (s == "none") return PredictorKind::none;
    if (s == "sp") return PredictorKind::sp;
    if (s == "addr") return PredictorKind::addr;
    if (s == "inst") return PredictorKind::inst;
    if (s == "uni") return PredictorKind::uni;
    std::fprintf(stderr, "unknown predictor '%s'\n", s.c_str());
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    o.telemetry = TelemetryOptions::fromEnv();
    auto num = [&](int &i) -> std::uint64_t {
        if (i + 1 >= argc)
            usage(argv[0]);
        return std::strtoull(argv[++i], nullptr, 10);
    };
    auto str = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--seeds")) {
            o.seeds = static_cast<unsigned>(num(i));
        } else if (!std::strcmp(a, "--seed-base")) {
            o.seedBase = num(i);
        } else if (!std::strcmp(a, "--jobs")) {
            o.jobs = static_cast<unsigned>(num(i));
        } else if (!std::strcmp(a, "--protocols")) {
            o.protocols = str(i);
        } else if (!std::strcmp(a, "--inject")) {
            o.inject = static_cast<unsigned>(num(i));
        } else if (!std::strcmp(a, "--expect-catch")) {
            o.expectCatch = true;
        } else if (!std::strcmp(a, "--no-shrink")) {
            o.shrink = false;
        } else if (!std::strcmp(a, "--report")) {
            o.report = str(i);
        } else if (!std::strcmp(a, "--telemetry")) {
            o.telemetry.dir = str(i);
        } else if (!std::strcmp(a, "--protocol")) {
            o.single = true;
            o.single_case.protocol = parseProtocol(str(i));
        } else if (!std::strcmp(a, "--predictor")) {
            o.single_case.predictor = parsePredictor(str(i));
        } else if (!std::strcmp(a, "--seed")) {
            o.single = true;
            o.single_case.workload.seed = num(i);
        } else if (!std::strcmp(a, "--cores")) {
            o.single_case.numCores = static_cast<unsigned>(num(i));
        } else if (!std::strcmp(a, "--format")) {
            o.format = str(i);
            if (o.format != "all")
                o.single_case.sharerFormat =
                    sharerFormatFromString(o.format);
        } else if (!std::strcmp(a, "--segments")) {
            o.single_case.workload.segments =
                static_cast<unsigned>(num(i));
        } else if (!std::strcmp(a, "--ops")) {
            o.single_case.workload.opsPerSegment =
                static_cast<unsigned>(num(i));
        } else if (!std::strcmp(a, "--lines")) {
            o.single_case.workload.lines =
                static_cast<unsigned>(num(i));
        } else if (!std::strcmp(a, "--locks")) {
            o.single_case.workload.locks =
                static_cast<unsigned>(num(i));
        } else if (!std::strcmp(a, "--barriers")) {
            o.single_case.workload.barriers =
                static_cast<unsigned>(num(i));
        } else {
            usage(argv[0]);
        }
    }
    return o;
}

/** The protocol/predictor grid a sweep covers. */
std::vector<std::pair<Protocol, PredictorKind>>
configGrid(const Options &o)
{
    std::vector<std::pair<Protocol, PredictorKind>> grid;
    auto want = [&](const char *name) {
        return o.protocols == "all" ||
            o.protocols.find(name) != std::string::npos;
    };
    // The injected bugs live in the directory engine, so self-test
    // sweeps only cover the protocols that exercise that code.
    if (want("directory"))
        grid.emplace_back(Protocol::directory, PredictorKind::none);
    if (want("predicted"))
        grid.emplace_back(Protocol::predicted, PredictorKind::sp);
    if (!o.inject) {
        if (want("broadcast"))
            grid.emplace_back(Protocol::broadcast,
                              PredictorKind::none);
        if (want("multicast"))
            grid.emplace_back(Protocol::multicast,
                              PredictorKind::sp);
    }
    if (grid.empty()) {
        std::fprintf(stderr, "no protocols selected by '%s'\n",
                     o.protocols.c_str());
        std::exit(2);
    }
    return grid;
}

/** Save failure artifacts; returns the saved trace path (or ""). */
std::string
saveReport(const Options &o, const FuzzCase &c, const FuzzResult &r)
{
    if (o.report.empty())
        return {};
    const std::string stem = o.report + "/fuzz_" +
        toString(c.protocol) + "_seed" +
        std::to_string(c.workload.seed);

    // Deterministic re-run with trace capture attached.
    FuzzCase traced = c;
    traced.tracePath = stem + ".trace";
    runFuzzCase(traced);

    std::FILE *log = std::fopen((stem + ".log").c_str(), "w");
    if (log) {
        std::fprintf(log, "reproducer: %s\nstatus: %s\n",
                     describeFuzzCase(c).c_str(),
                     toString(r.status));
        for (const Violation &v : r.violations)
            std::fprintf(log, "[tick %llu] %s: %s\n",
                         static_cast<unsigned long long>(v.tick),
                         v.rule.c_str(), v.detail.c_str());
        if (!r.outstanding.empty())
            std::fprintf(log, "outstanding:\n%s\n",
                         r.outstanding.c_str());
        std::fprintf(log, "recent messages:\n%s",
                     r.trace.c_str());
        std::fclose(log);
    }
    return traced.tracePath;
}

void
printFailure(const Options &o, const FuzzCase &c, const FuzzResult &r)
{
    std::printf("FAIL %s: status=%s violations=%zu\n",
                describeFuzzCase(c).c_str(), toString(r.status),
                r.violations.size());
    for (const Violation &v : r.violations)
        std::printf("  [tick %llu] %s: %s\n",
                    static_cast<unsigned long long>(v.tick),
                    v.rule.c_str(), v.detail.c_str());
    if (r.status != RunStatus::ok && !r.outstanding.empty())
        std::printf("  outstanding:\n%s\n", r.outstanding.c_str());

    FuzzCase minimal = c;
    if (o.shrink) {
        minimal = shrinkFuzzCase(c);
        std::printf("minimal reproducer: %s\n",
                    describeFuzzCase(minimal).c_str());
    }
    const std::string trace = saveReport(o, minimal, r);
    if (!trace.empty())
        std::printf("saved artifacts: %s (+ .log); replay with "
                    "examples/trace_replay --load %s\n",
                    trace.c_str(), trace.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);
    setQuiet(true);

    if (o.single) {
        FuzzCase c = o.single_case;
        c.injectBug = o.inject;
        c.telemetry = o.telemetry;
        c.telemetryLabel = strfmt("fuzz_{}_s{}",
                                  toString(c.protocol),
                                  c.workload.seed);
        const FuzzResult r = runFuzzCase(c);
        std::printf("%s: status=%s violations=%zu messages=%llu "
                    "ticks=%llu\n",
                    describeFuzzCase(c).c_str(), toString(r.status),
                    r.violations.size(),
                    static_cast<unsigned long long>(
                        r.messagesChecked),
                    static_cast<unsigned long long>(r.ticks));
        for (const Violation &v : r.violations)
            std::printf("  [tick %llu] %s: %s\n",
                        static_cast<unsigned long long>(v.tick),
                        v.rule.c_str(), v.detail.c_str());
        if (r.failed() && !r.trace.empty())
            std::printf("recent messages:\n%s", r.trace.c_str());
        return r.failed() == o.expectCatch ? 0 : 1;
    }

    const auto grid = configGrid(o);
    std::vector<FuzzCase> cases;
    for (const auto &[protocol, predictor] : grid) {
        for (unsigned s = 0; s < o.seeds; ++s) {
            FuzzCase c;
            c.protocol = protocol;
            c.predictor = predictor;
            c.workload.seed = o.seedBase + s;
            c.numCores = o.single_case.numCores;
            // "--format all" rotates the directory sharer format
            // across the seeds so one sweep covers every encoding.
            c.sharerFormat = o.format == "all"
                ? static_cast<SharerFormat>(s % 3)
                : o.single_case.sharerFormat;
            c.injectBug = o.inject;
            c.telemetry = o.telemetry;
            // Unique deterministic file stem per case; the case
            // list is fixed before the sweep, so labels are
            // identical at any --jobs count.
            c.telemetryLabel = strfmt("fuzz_{}_s{}_i{}",
                                      toString(protocol),
                                      c.workload.seed, cases.size());
            cases.push_back(c);
        }
    }

    const std::vector<FuzzResult> results = SweepRunner(o.jobs).map(
        cases, [](const FuzzCase &c) { return runFuzzCase(c); });

    std::uint64_t messages = 0;
    std::size_t failures = 0;
    std::size_t first_fail = cases.size();
    for (std::size_t i = 0; i < results.size(); ++i) {
        messages += results[i].messagesChecked;
        if (results[i].failed()) {
            ++failures;
            if (first_fail == cases.size())
                first_fail = i;
        }
    }

    std::printf("fuzz: %zu cases (%zu configs x %u seeds), %llu "
                "messages checked, %zu failure%s\n",
                cases.size(), grid.size(), o.seeds,
                static_cast<unsigned long long>(messages), failures,
                failures == 1 ? "" : "s");

    if (failures && !o.expectCatch)
        printFailure(o, cases[first_fail], results[first_fail]);

    if (o.expectCatch) {
        if (!failures) {
            std::printf("expected the injected bug (%u) to be "
                        "caught, but every case passed\n", o.inject);
            return 1;
        }
        std::printf("injected bug %u caught as expected (first: "
                    "%s)\n",
                    o.inject,
                    describeFuzzCase(cases[first_fail]).c_str());
        return 0;
    }
    return failures ? 1 : 0;
}
