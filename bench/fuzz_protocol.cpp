/**
 * @file
 * Protocol stress-fuzz driver.
 *
 * Sweep mode (default): run N seeded random workloads against each
 * protocol/predictor combination with the invariant checker attached
 * and report any violation, timeout or deadlock. The first failure is
 * shrunk to a minimal reproducer and printed as a replayable command
 * line; with --report DIR an access-level trace (replayable via
 * examples/trace_replay --load) and the failing message log are saved
 * there.
 *
 * Single-case mode: pass --seed (plus the workload-shape flags a
 * reproducer line carries) to re-run exactly one case.
 *
 * Self-test mode: --inject K plants a known protocol bug (see
 * Config::injectBug) and --expect-catch inverts the exit code — the
 * run *must* find a violation, proving the checker catches real bugs.
 *
 * Telemetry: --telemetry DIR (or SPP_TELEMETRY=DIR) writes per-case
 * series/trace/manifest sidecars into DIR, same as the bench_common
 * drivers.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/sweep.hh"
#include "check/fuzzer.hh"
#include "common/format.hh"
#include "flag_set.hh"
#include "common/logging.hh"

using namespace spp;

namespace {

struct Options
{
    unsigned seeds = 150;          ///< Seeds per protocol config.
    std::uint64_t seedBase = 1;
    unsigned jobs = 0;             ///< 0 = SweepRunner::defaultJobs().
    unsigned inject = 0;
    bool expectCatch = false;
    bool shrink = true;
    std::string report;            ///< Failure artifact directory.
    std::string protocols = "all"; ///< all | directory,broadcast,...
    std::string format = "all";    ///< Sharer format(s) to sweep.
    TelemetryOptions telemetry;    ///< Per-case sidecars (opt-in).

    // Single-case mode (active when --seed is given).
    bool single = false;
    FuzzCase single_case;
};

Protocol
parseProtocol(const std::string &s)
{
    if (const auto p = parseProtocolName(s))
        return *p;
    SPP_FATAL("unknown protocol '{}'", s);
}

PredictorKind
parsePredictor(const std::string &s)
{
    if (const auto p = parsePredictorName(s))
        return *p;
    SPP_FATAL("unknown predictor '{}'", s);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    o.telemetry = TelemetryOptions::fromEnv();
    constexpr std::uint64_t u32max = 0xffffffffull;
    constexpr std::uint64_t u64max = ~0ull;
    bench::FlagSet fs(
        "Protocol stress-fuzz: seeded random workloads against the "
        "invariant checker;\n--seed (with the workload-shape flags "
        "a reproducer line carries) re-runs one case",
        "SPP_JOBS, SPP_TELEMETRY");
    fs.onUnsigned("--seeds", "N", 1, u32max,
                  "seeds per protocol config (sweep mode)",
                  [&o](std::uint64_t v) {
                      o.seeds = static_cast<unsigned>(v);
                  });
    fs.onUnsigned("--seed-base", "S", 0, u64max, "first seed",
                  [&o](std::uint64_t v) { o.seedBase = v; });
    fs.onUnsigned("--jobs", "N", 1, 65536, "worker threads",
                  [&o](std::uint64_t v) {
                      o.jobs = static_cast<unsigned>(v);
                  });
    fs.onValue("--protocols", "LIST",
               "all, or a comma list of directory|predicted|"
               "broadcast|multicast",
               [&o](const std::string &v) { o.protocols = v; });
    fs.onUnsigned("--inject", "K", 0, u32max,
                  "plant bug K (self-test; see Config::injectBug)",
                  [&o](std::uint64_t v) {
                      o.inject = static_cast<unsigned>(v);
                  });
    fs.onSwitch("--expect-catch",
                "invert the exit code: the run must find a "
                "violation",
                [&o] { o.expectCatch = true; });
    fs.onSwitch("--no-shrink", "skip reproducer minimization",
                [&o] { o.shrink = false; });
    fs.onValue("--report", "DIR", "save failure artifacts into DIR",
               [&o](const std::string &v) { o.report = v; });
    fs.onValue("--telemetry", "DIR", "per-case telemetry sidecars",
               [&o](const std::string &v) { o.telemetry.dir = v; });
    fs.onValue("--protocol", "P", "single-case protocol",
               [&o](const std::string &v) {
                   o.single = true;
                   o.single_case.protocol = parseProtocol(v);
               });
    fs.onValue("--predictor", "K", "single-case predictor",
               [&o](const std::string &v) {
                   o.single_case.predictor = parsePredictor(v);
               });
    fs.onUnsigned("--seed", "S", 0, u64max,
                  "single-case seed (enables single-case mode)",
                  [&o](std::uint64_t v) {
                      o.single = true;
                      o.single_case.workload.seed = v;
                  });
    fs.onUnsigned("--cores", "N", 1, maxCores, "core count",
                  [&o](std::uint64_t v) {
                      o.single_case.numCores =
                          static_cast<unsigned>(v);
                  });
    fs.onValue("--format", "F",
               "sharer format(s): full|coarse|limited|all",
               [&o](const std::string &v) {
                   o.format = v;
                   if (o.format != "all")
                       o.single_case.sharerFormat =
                           sharerFormatFromString(o.format);
               });
    fs.onUnsigned("--segments", "N", 1, u32max,
                  "workload shape: segments",
                  [&o](std::uint64_t v) {
                      o.single_case.workload.segments =
                          static_cast<unsigned>(v);
                  });
    fs.onUnsigned("--ops", "N", 1, u32max,
                  "workload shape: ops per segment",
                  [&o](std::uint64_t v) {
                      o.single_case.workload.opsPerSegment =
                          static_cast<unsigned>(v);
                  });
    fs.onUnsigned("--lines", "N", 1, u32max,
                  "workload shape: distinct lines",
                  [&o](std::uint64_t v) {
                      o.single_case.workload.lines =
                          static_cast<unsigned>(v);
                  });
    fs.onUnsigned("--locks", "N", 0, u32max,
                  "workload shape: locks",
                  [&o](std::uint64_t v) {
                      o.single_case.workload.locks =
                          static_cast<unsigned>(v);
                  });
    fs.onUnsigned("--barriers", "N", 0, u32max,
                  "workload shape: barriers",
                  [&o](std::uint64_t v) {
                      o.single_case.workload.barriers =
                          static_cast<unsigned>(v);
                  });
    fs.parse(argc, argv);
    return o;
}

/** The protocol/predictor grid a sweep covers. */
std::vector<std::pair<Protocol, PredictorKind>>
configGrid(const Options &o)
{
    std::vector<std::pair<Protocol, PredictorKind>> grid;
    auto want = [&](const char *name) {
        return o.protocols == "all" ||
            o.protocols.find(name) != std::string::npos;
    };
    // The injected bugs live in the directory engine, so self-test
    // sweeps only cover the protocols that exercise that code.
    if (want("directory"))
        grid.emplace_back(Protocol::directory, PredictorKind::none);
    if (want("predicted"))
        grid.emplace_back(Protocol::predicted, PredictorKind::sp);
    if (!o.inject) {
        if (want("broadcast"))
            grid.emplace_back(Protocol::broadcast,
                              PredictorKind::none);
        if (want("multicast"))
            grid.emplace_back(Protocol::multicast,
                              PredictorKind::sp);
    }
    if (grid.empty()) {
        std::fprintf(stderr, "no protocols selected by '%s'\n",
                     o.protocols.c_str());
        std::exit(2);
    }
    return grid;
}

/** Save failure artifacts; returns the saved trace path (or ""). */
std::string
saveReport(const Options &o, const FuzzCase &c, const FuzzResult &r)
{
    if (o.report.empty())
        return {};
    const std::string stem = o.report + "/fuzz_" +
        toString(c.protocol) + "_seed" +
        std::to_string(c.workload.seed);

    // Deterministic re-run with trace capture attached.
    FuzzCase traced = c;
    traced.tracePath = stem + ".trace";
    runFuzzCase(traced);

    std::FILE *log = std::fopen((stem + ".log").c_str(), "w");
    if (log) {
        std::fprintf(log, "reproducer: %s\nstatus: %s\n",
                     describeFuzzCase(c).c_str(),
                     toString(r.status));
        for (const Violation &v : r.violations)
            std::fprintf(log, "[tick %llu] %s: %s\n",
                         static_cast<unsigned long long>(v.tick),
                         v.rule.c_str(), v.detail.c_str());
        if (!r.outstanding.empty())
            std::fprintf(log, "outstanding:\n%s\n",
                         r.outstanding.c_str());
        std::fprintf(log, "recent messages:\n%s",
                     r.trace.c_str());
        std::fclose(log);
    }
    return traced.tracePath;
}

void
printFailure(const Options &o, const FuzzCase &c, const FuzzResult &r)
{
    std::printf("FAIL %s: status=%s violations=%zu\n",
                describeFuzzCase(c).c_str(), toString(r.status),
                r.violations.size());
    for (const Violation &v : r.violations)
        std::printf("  [tick %llu] %s: %s\n",
                    static_cast<unsigned long long>(v.tick),
                    v.rule.c_str(), v.detail.c_str());
    if (r.status != RunStatus::ok && !r.outstanding.empty())
        std::printf("  outstanding:\n%s\n", r.outstanding.c_str());

    FuzzCase minimal = c;
    if (o.shrink) {
        minimal = shrinkFuzzCase(c);
        std::printf("minimal reproducer: %s\n",
                    describeFuzzCase(minimal).c_str());
    }
    const std::string trace = saveReport(o, minimal, r);
    if (!trace.empty())
        std::printf("saved artifacts: %s (+ .log); replay with "
                    "examples/trace_replay --load %s\n",
                    trace.c_str(), trace.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);
    setQuiet(true);

    if (o.single) {
        FuzzCase c = o.single_case;
        c.injectBug = o.inject;
        c.telemetry = o.telemetry;
        c.telemetryLabel = strfmt("fuzz_{}_s{}",
                                  toString(c.protocol),
                                  c.workload.seed);
        const FuzzResult r = runFuzzCase(c);
        std::printf("%s: status=%s violations=%zu messages=%llu "
                    "ticks=%llu\n",
                    describeFuzzCase(c).c_str(), toString(r.status),
                    r.violations.size(),
                    static_cast<unsigned long long>(
                        r.messagesChecked),
                    static_cast<unsigned long long>(r.ticks));
        for (const Violation &v : r.violations)
            std::printf("  [tick %llu] %s: %s\n",
                        static_cast<unsigned long long>(v.tick),
                        v.rule.c_str(), v.detail.c_str());
        if (r.failed() && !r.trace.empty())
            std::printf("recent messages:\n%s", r.trace.c_str());
        return r.failed() == o.expectCatch ? 0 : 1;
    }

    const auto grid = configGrid(o);
    std::vector<FuzzCase> cases;
    for (const auto &[protocol, predictor] : grid) {
        for (unsigned s = 0; s < o.seeds; ++s) {
            FuzzCase c;
            c.protocol = protocol;
            c.predictor = predictor;
            c.workload.seed = o.seedBase + s;
            c.numCores = o.single_case.numCores;
            // "--format all" rotates the directory sharer format
            // across the seeds so one sweep covers every encoding.
            c.sharerFormat = o.format == "all"
                ? static_cast<SharerFormat>(s % 3)
                : o.single_case.sharerFormat;
            c.injectBug = o.inject;
            c.telemetry = o.telemetry;
            // Unique deterministic file stem per case; the case
            // list is fixed before the sweep, so labels are
            // identical at any --jobs count.
            c.telemetryLabel = strfmt("fuzz_{}_s{}_i{}",
                                      toString(protocol),
                                      c.workload.seed, cases.size());
            cases.push_back(c);
        }
    }

    const std::vector<FuzzResult> results = SweepRunner(o.jobs).map(
        cases, [](const FuzzCase &c) { return runFuzzCase(c); });

    std::uint64_t messages = 0;
    std::size_t failures = 0;
    std::size_t first_fail = cases.size();
    for (std::size_t i = 0; i < results.size(); ++i) {
        messages += results[i].messagesChecked;
        if (results[i].failed()) {
            ++failures;
            if (first_fail == cases.size())
                first_fail = i;
        }
    }

    std::printf("fuzz: %zu cases (%zu configs x %u seeds), %llu "
                "messages checked, %zu failure%s\n",
                cases.size(), grid.size(), o.seeds,
                static_cast<unsigned long long>(messages), failures,
                failures == 1 ? "" : "s");

    if (failures && !o.expectCatch)
        printFailure(o, cases[first_fail], results[first_fail]);

    if (o.expectCatch) {
        if (!failures) {
            std::printf("expected the injected bug (%u) to be "
                        "caught, but every case passed\n", o.inject);
            return 1;
        }
        std::printf("injected bug %u caught as expected (first: "
                    "%s)\n",
                    o.inject,
                    describeFuzzCase(cases[first_fail]).c_str());
        return 0;
    }
    return failures ? 1 : 0;
}
