/**
 * @file
 * Figure 11: dynamic energy consumed on the NoC and on cache snoop
 * lookups, normalized to the directory protocol.
 *
 * Paper reference: SP-prediction +25% vs directory; broadcast ~2.4x.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Figure 11: NoC + snoop dynamic energy, normalized to directory");
    QuietScope quiet;
    banner("Figure 11: NoC + snoop-lookup energy "
           "(normalized to directory)");
    Table t({"benchmark", "directory", "broadcast", "sp-predictor"});

    double sum_sp = 0;
    double sum_bc = 0;
    unsigned n = 0;
    const std::vector<std::string> names = allWorkloads();
    const auto results = sweepMatrix(
        names, {directoryConfig(), broadcastConfig(),
                predictedConfig(PredictorKind::sp)});
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const ExperimentResult &dir = results[i * 3 + 0];
        const ExperimentResult &bc = results[i * 3 + 1];
        const ExperimentResult &sp = results[i * 3 + 2];

        t.cell(name).cell(1.0, 3)
            .cell(bc.energy / dir.energy, 3)
            .cell(sp.energy / dir.energy, 3).endRow();
        sum_sp += sp.energy / dir.energy;
        sum_bc += bc.energy / dir.energy;
        ++n;
    }
    t.print();
    std::printf("\naverage: broadcast %.2fx, sp-predictor %.2fx "
                "(paper: broadcast 2.4x, sp 1.25x)\n",
                sum_bc / n, sum_sp / n);
    return 0;
}
