/**
 * @file
 * Batch experiment server frontend (sweep-as-a-service).
 *
 * Runs a SweepServer (src/service/server.hh) over stdin/stdout by
 * default, or over a unix-domain socket with --socket PATH: clients
 * connect, write newline-delimited JSON requests and read streamed
 * per-cell result events; connections are served one at a time, in
 * order, and a shutdown op from any client stops the listener.
 *
 *   echo '{"op":"sweep","id":"q1","scale":0.1,
 *          "cells":[{"workload":"ocean"}]}' | sweep_server
 *
 * All the shared bench flags apply: --result-store DIR gives every
 * request the content-addressed result cache (warm cells answer
 * without simulating), --jobs N sizes the worker pool, --cores /
 * --mesh / --format / --set shape the base config that request
 * "set" objects specialize. --triage order|skip turns on the
 * analytical triage hook (service/triage.hh), fed from --trace-dir.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <streambuf>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "bench_common.hh"
#include "service/server.hh"

using namespace spp;
using namespace spp::bench;

namespace {

/** Minimal read/write streambuf over a connected socket fd. */
class FdStreamBuf : public std::streambuf
{
  public:
    explicit FdStreamBuf(int fd) : fd_(fd)
    {
        setg(buf_, buf_, buf_);
    }

  protected:
    int_type
    underflow() override
    {
        const ssize_t n = ::read(fd_, buf_, sizeof(buf_));
        if (n <= 0)
            return traits_type::eof();
        setg(buf_, buf_, buf_ + n);
        return traits_type::to_int_type(buf_[0]);
    }

    int_type
    overflow(int_type ch) override
    {
        if (ch == traits_type::eof())
            return ch;
        const char c = traits_type::to_char_type(ch);
        return ::write(fd_, &c, 1) == 1 ? ch : traits_type::eof();
    }

    std::streamsize
    xsputn(const char *s, std::streamsize n) override
    {
        std::streamsize done = 0;
        while (done < n) {
            const ssize_t w = ::write(
                fd_, s + done, static_cast<std::size_t>(n - done));
            if (w <= 0)
                break;
            done += w;
        }
        return done;
    }

  private:
    int fd_;
    char buf_[4096];
};

double
parsePositiveDouble(const char *flag, const std::string &v)
{
    std::size_t used = 0;
    double parsed = 0.0;
    try {
        parsed = std::stod(v, &used);
    } catch (...) {
        used = 0;
    }
    if (used == 0 || used != v.size() || !(parsed > 0.0))
        SPP_FATAL("{} expects a positive number, got '{}'", flag, v);
    return parsed;
}

int
serveSocket(SweepServer &server, const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        SPP_FATAL("--socket path is too long ({} bytes max)",
                  sizeof(addr.sun_path) - 1);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (lfd < 0)
        SPP_FATAL("socket(AF_UNIX) failed");
    ::unlink(path.c_str());
    if (::bind(lfd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(lfd, 8) != 0) {
        ::close(lfd);
        SPP_FATAL("cannot listen on '{}'", path);
    }
    std::fprintf(stderr, "sweep_server: listening on %s\n",
                 path.c_str());
    while (!server.shutdownRequested()) {
        const int cfd = ::accept(lfd, nullptr, nullptr);
        if (cfd < 0)
            break;
        FdStreamBuf in_buf(cfd);
        FdStreamBuf out_buf(cfd);
        std::istream in(&in_buf);
        std::ostream out(&out_buf);
        server.serve(in, out);
        ::close(cfd);
    }
    ::close(lfd);
    ::unlink(path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    g_telemetry = TelemetryOptions::fromEnv();
    g_attribution = AttributionOptions::fromEnv();
    g_trace = TraceOptions::fromEnv();
    g_result_store = ResultStoreOptions::fromEnv();
    g_settings.clear();

    std::string socket_path;
    std::string triage = "off";
    double threshold = 0.25;
    double scale = 0.0;

    FlagSet fs("Batch experiment server: newline-delimited JSON "
               "requests in, streamed per-cell results out "
               "(protocol: src/service/server.hh)",
               benchEnvNote());
    addBenchFlags(fs);
    fs.onValue("--socket", "PATH",
               "listen on a unix socket instead of stdin/stdout",
               [&](const std::string &v) { socket_path = v; });
    fs.onValue("--triage", "MODE",
               "off|order|skip: analytical cell triage from the "
               "trace store",
               [&](const std::string &v) { triage = v; });
    fs.onValue("--triage-threshold", "X",
               "skip mode drops trace-backed cells scoring below X "
               "(default 0.25)",
               [&](const std::string &v) {
                   threshold =
                       parsePositiveDouble("--triage-threshold", v);
               });
    fs.onValue("--scale", "S",
               "default workload scale for requests without one "
               "(default SPP_BENCH_SCALE)",
               [&](const std::string &v) {
                   scale = parsePositiveDouble("--scale", v);
               });
    fs.parse(argc, argv);
    finishBenchInit();

    ServerOptions so;
    so.resultStore = g_result_store;
    so.traceDir = g_trace.dir;
    so.jobs = g_jobs;
    applyGeometry(so.baseConfig);
    so.defaultScale = scale > 0.0 ? scale : defaultBenchScale();
    if (triage == "off")
        so.triage = TriageMode::off;
    else if (triage == "order")
        so.triage = TriageMode::order;
    else if (triage == "skip")
        so.triage = TriageMode::skip;
    else
        SPP_FATAL("--triage expects off|order|skip, got '{}'",
                  triage);
    so.triageThreshold = threshold;

    SweepServer server(so);
    QuietScope quiet;
    if (socket_path.empty()) {
        server.serve(std::cin, std::cout);
        return 0;
    }
    return serveSocket(server, socket_path);
}
