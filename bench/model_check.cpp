/**
 * @file
 * Exhaustive protocol model-check driver.
 *
 * Sweep mode (default): exhaustively explore every same-tick message
 * delivery ordering of a tiny scripted workload for each protocol and
 * sharer format, with the invariant checker attached. The search is
 * bounded (state-hash pruning + conflict reduction keep it small);
 * any violation, deadlock or timeout fails the run and prints a
 * minimized, replayable schedule.
 *
 * Single mode: pass --protocol to explore one configuration, with
 * full exploration statistics.
 *
 * Replay mode: --replay FILE re-executes exactly one schedule saved
 * by --report (or pasted from a failure log) and reports the outcome.
 *
 * Self-test mode: --inject K plants a known protocol bug (see
 * Config::injectBug) and --expect-catch inverts the exit code — the
 * exhaustive search *must* find a schedule that exposes it.
 *
 * Telemetry: --telemetry DIR (or SPP_TELEMETRY=DIR) writes one
 * manifest per explored configuration with the full exploration
 * statistics (executions, choice points, pruning effectiveness), so
 * search-space regressions are observable across commits.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "check/model_checker.hh"
#include "flag_set.hh"
#include "common/logging.hh"
#include "telemetry/json.hh"
#include "telemetry/manifest.hh"
#include "telemetry/options.hh"

using namespace spp;

namespace {

struct Options
{
    ModelCheckOptions mc;
    bool single = false;       ///< --protocol given: one config.
    bool expectCatch = false;
    std::string report;        ///< Failure artifact directory.
    std::string replay;        ///< Schedule file to re-execute.
    std::string telemetry;     ///< Exploration-manifest directory.
};

Protocol
parseProtocol(const std::string &s)
{
    if (const auto p = parseProtocolName(s))
        return *p;
    SPP_FATAL("unknown protocol '{}'", s);
}

PredictorKind
parsePredictor(const std::string &s)
{
    if (const auto p = parsePredictorName(s))
        return *p;
    SPP_FATAL("unknown predictor '{}'", s);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    o.telemetry = TelemetryOptions::fromEnv().dir;
    constexpr std::uint64_t u32max = 0xffffffffull;
    constexpr std::uint64_t u64max = ~0ull;
    bench::FlagSet fs(
        std::string("Exhaustive protocol model checker: explore "
                    "every same-tick delivery ordering with the "
                    "invariant checker attached.\nWorkloads: ") +
            modelCheckWorkloads(),
        "SPP_TELEMETRY");
    fs.onValue("--protocol", "P",
               "explore one configuration (single mode)",
               [&o](const std::string &v) {
                   o.single = true;
                   o.mc.protocol = parseProtocol(v);
               });
    fs.onValue("--predictor", "K", "single-mode predictor",
               [&o](const std::string &v) {
                   o.mc.predictor = parsePredictor(v);
               });
    fs.onValue("--format", "F",
               "sharer format: full|coarse|limited",
               [&o](const std::string &v) {
                   o.mc.format = sharerFormatFromString(v);
               });
    fs.onUnsigned("--cores", "N", 1, maxCores, "core count",
                  [&o](std::uint64_t v) {
                      o.mc.cores = static_cast<unsigned>(v);
                  });
    fs.onValue("--workload", "W", "scripted workload to explore",
               [&o](const std::string &v) {
                   o.mc.workload = v;
                   if (!isModelCheckWorkload(o.mc.workload))
                       SPP_FATAL("unknown workload '{}' (expected "
                                 "{})",
                                 o.mc.workload,
                                 modelCheckWorkloads());
               });
    fs.onUnsigned("--depth", "N", 1, u32max,
                  "max choice-point depth",
                  [&o](std::uint64_t v) {
                      o.mc.maxDepth = static_cast<unsigned>(v);
                  });
    fs.onUnsigned("--max-execs", "N", 1, u64max,
                  "bound on explored executions",
                  [&o](std::uint64_t v) { o.mc.maxExecutions = v; });
    fs.onUnsigned("--inject", "K", 0, u32max,
                  "plant bug K (self-test; see Config::injectBug)",
                  [&o](std::uint64_t v) {
                      o.mc.injectBug = static_cast<unsigned>(v);
                  });
    fs.onUnsigned("--mem-latency", "T", 0, u64max,
                  "memory latency in ticks",
                  [&o](std::uint64_t v) { o.mc.memLatency = v; });
    fs.onUnsigned("--race-delay", "N", 0, u32max,
                  "extra delivery-slack ticks",
                  [&o](std::uint64_t v) {
                      o.mc.raceDelay = static_cast<unsigned>(v);
                  });
    fs.onSwitch("--expect-catch",
                "invert the exit code: the search must find a "
                "violation",
                [&o] { o.expectCatch = true; });
    fs.onSwitch("--no-prune", "disable state-hash pruning",
                [&o] { o.mc.prune = false; });
    fs.onSwitch("--no-reduce", "disable conflict reduction",
                [&o] { o.mc.reduce = false; });
    fs.onValue("--report", "DIR", "save failure artifacts into DIR",
               [&o](const std::string &v) { o.report = v; });
    fs.onValue("--telemetry", "DIR",
               "write one exploration manifest per configuration",
               [&o](const std::string &v) { o.telemetry = v; });
    fs.onValue("--replay", "FILE",
               "re-execute one saved schedule (replay mode)",
               [&o](const std::string &v) { o.replay = v; });
    fs.parse(argc, argv);
    return o;
}

std::string
scheduleLine(const std::vector<unsigned> &schedule)
{
    if (schedule.empty())
        return "(default order)";
    std::string s;
    for (unsigned c : schedule) {
        if (!s.empty())
            s += ' ';
        s += std::to_string(c);
    }
    return s;
}

/** Save failure artifacts; returns the .sched path (or ""). */
std::string
saveReport(const Options &o, const ModelCheckOptions &mc,
           const ModelCheckResult &r)
{
    if (o.report.empty())
        return {};
    const std::string stem = o.report + "/mc_" +
        toString(mc.protocol) + "_" + toString(mc.format) + "_" +
        mc.workload;

    const std::string sched = stem + ".sched";
    if (std::FILE *f = std::fopen(sched.c_str(), "w")) {
        const std::string text = scheduleToText(mc, r.schedule);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
    }
    if (std::FILE *log = std::fopen((stem + ".log").c_str(), "w")) {
        std::fprintf(log, "reproducer: %s\nschedule: %s\n"
                     "status: %s\n",
                     describeModelCheck(mc).c_str(),
                     scheduleLine(r.schedule).c_str(),
                     toString(r.failStatus));
        for (const Violation &v : r.violations)
            std::fprintf(log, "[tick %llu] %s: %s\n",
                         static_cast<unsigned long long>(v.tick),
                         v.rule.c_str(), v.detail.c_str());
        if (!r.outstanding.empty())
            std::fprintf(log, "outstanding:\n%s\n",
                         r.outstanding.c_str());
        std::fprintf(log, "recent messages:\n%s", r.trace.c_str());
        std::fclose(log);
    }
    return sched;
}

void
printFailure(const Options &o, const ModelCheckOptions &mc,
             const ModelCheckResult &r)
{
    std::printf("FAIL %s: status=%s violations=%zu\n",
                describeModelCheck(mc).c_str(), toString(r.failStatus),
                r.violations.size());
    std::printf("  schedule: %s\n", scheduleLine(r.schedule).c_str());
    for (const Violation &v : r.violations)
        std::printf("  [tick %llu] %s: %s\n",
                    static_cast<unsigned long long>(v.tick),
                    v.rule.c_str(), v.detail.c_str());
    if (r.failStatus != RunStatus::ok && !r.outstanding.empty())
        std::printf("  outstanding:\n%s\n", r.outstanding.c_str());
    const std::string sched = saveReport(o, mc, r);
    if (!sched.empty())
        std::printf("saved artifacts: %s (+ .log); replay with "
                    "bench/model_check --replay %s\n",
                    sched.c_str(), sched.c_str());
}

int
runReplay(const Options &o)
{
    std::string text;
    if (std::FILE *f = std::fopen(o.replay.c_str(), "r")) {
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "cannot open '%s'\n", o.replay.c_str());
        return 2;
    }

    ModelCheckOptions mc = o.mc;
    std::vector<unsigned> schedule;
    std::string err;
    if (!scheduleFromText(text, mc, schedule, &err)) {
        std::fprintf(stderr, "%s: %s\n", o.replay.c_str(),
                     err.c_str());
        return 2;
    }

    const ModelCheckResult r = replaySchedule(mc, schedule);
    std::printf("replay %s: schedule [%s] -> status=%s "
                "violations=%zu choice-points=%llu\n",
                describeModelCheck(mc).c_str(),
                scheduleLine(schedule).c_str(),
                toString(r.failStatus), r.violations.size(),
                static_cast<unsigned long long>(r.choicePoints));
    for (const Violation &v : r.violations)
        std::printf("  [tick %llu] %s: %s\n",
                    static_cast<unsigned long long>(v.tick),
                    v.rule.c_str(), v.detail.c_str());
    if (r.violationFound && !r.trace.empty())
        std::printf("recent messages:\n%s", r.trace.c_str());
    return r.violationFound == o.expectCatch ? 0 : 1;
}

/** The protocol/format grid a sweep covers. */
std::vector<ModelCheckOptions>
sweepGrid(const Options &o)
{
    std::vector<ModelCheckOptions> grid;
    auto add = [&](Protocol p, SharerFormat f) {
        // The injected bugs live in the directory engine; self-test
        // sweeps only cover protocols exercising that code.
        if (o.mc.injectBug != 0 && p != Protocol::directory &&
            p != Protocol::predicted)
            return;
        ModelCheckOptions mc = o.mc;
        mc.protocol = p;
        mc.format = f;
        grid.push_back(mc);
    };
    for (SharerFormat f : {SharerFormat::full, SharerFormat::coarse,
                           SharerFormat::limited}) {
        add(Protocol::directory, f);
        add(Protocol::predicted, f);
        add(Protocol::multicast, f);
    }
    // Broadcast keeps no sharer sets; one format slot covers it.
    add(Protocol::broadcast, SharerFormat::full);
    return grid;
}

/** One exploration-statistics manifest per explored config. */
void
writeExplorationManifest(const std::string &dir,
                         const ModelCheckOptions &mc,
                         const ModelCheckResult &r)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr,
                     "cannot create telemetry directory '%s': %s\n",
                     dir.c_str(), ec.message().c_str());
        return;
    }

    RunManifest manifest;
    manifest.set("kind", Json("model_check"));
    manifest.set("case", Json(describeModelCheck(mc)));
    Json stats = Json::object();
    stats["executions"] = Json(r.executions);
    stats["choice_points"] = Json(r.choicePoints);
    stats["max_batch"] = Json(r.maxBatch);
    stats["states_hashed"] = Json(r.statesHashed);
    stats["states_pruned"] = Json(r.statesPruned);
    stats["branches_reduced"] = Json(r.branchesReduced);
    stats["late_data_drops"] = Json(r.lateDataDrops);
    stats["deepest_choice"] = Json(r.deepestChoice);
    stats["complete"] = Json(r.complete());
    stats["violation_found"] = Json(r.violationFound);
    manifest.set("exploration", std::move(stats));

    manifest.write(dir + "/mc_" + toString(mc.protocol) + "_" +
                   toString(mc.format) + "_" + mc.workload +
                   ".manifest.json");
}

int
runOne(const Options &o, const ModelCheckOptions &mc, bool verbose,
       std::size_t &failures)
{
    const ModelCheckResult r = modelCheck(mc);
    if (!o.telemetry.empty())
        writeExplorationManifest(o.telemetry, mc, r);
    std::printf("%-10s %-8s %-10s: %llu execs, %llu choice points "
                "(max batch %llu), %llu pruned, %llu reduced, "
                "%llu late-data drops%s%s\n",
                toString(mc.protocol), toString(mc.format),
                mc.workload.c_str(),
                static_cast<unsigned long long>(r.executions),
                static_cast<unsigned long long>(r.choicePoints),
                static_cast<unsigned long long>(r.maxBatch),
                static_cast<unsigned long long>(r.statesPruned),
                static_cast<unsigned long long>(r.branchesReduced),
                static_cast<unsigned long long>(r.lateDataDrops),
                r.complete() ? "" : " [bounded]",
                r.violationFound ? " FAIL" : "");
    if (verbose)
        std::printf("  hashed %llu states, deepest choice vector "
                    "%zu\n",
                    static_cast<unsigned long long>(r.statesHashed),
                    r.deepestChoice);
    if (r.violationFound) {
        ++failures;
        if (!o.expectCatch)
            printFailure(o, mc, r);
        else if (verbose)
            std::printf("  schedule: %s\n",
                        scheduleLine(r.schedule).c_str());
    }
    return r.violationFound ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);
    setQuiet(true);

    if (!o.replay.empty())
        return runReplay(o);

    std::size_t failures = 0;
    if (o.single) {
        runOne(o, o.mc, true, failures);
    } else {
        for (const ModelCheckOptions &mc : sweepGrid(o))
            runOne(o, mc, false, failures);
    }

    if (o.expectCatch) {
        if (!failures) {
            std::printf("expected the injected bug (%u) to be "
                        "caught, but every schedule passed\n",
                        o.mc.injectBug);
            return 1;
        }
        std::printf("injected bug %u caught as expected\n",
                    o.mc.injectBug);
        return 0;
    }
    return failures ? 1 : 0;
}
