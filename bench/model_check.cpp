/**
 * @file
 * Exhaustive protocol model-check driver.
 *
 * Sweep mode (default): exhaustively explore every same-tick message
 * delivery ordering of a tiny scripted workload for each protocol and
 * sharer format, with the invariant checker attached. The search is
 * bounded (state-hash pruning + conflict reduction keep it small);
 * any violation, deadlock or timeout fails the run and prints a
 * minimized, replayable schedule.
 *
 * Single mode: pass --protocol to explore one configuration, with
 * full exploration statistics.
 *
 * Replay mode: --replay FILE re-executes exactly one schedule saved
 * by --report (or pasted from a failure log) and reports the outcome.
 *
 * Self-test mode: --inject K plants a known protocol bug (see
 * Config::injectBug) and --expect-catch inverts the exit code — the
 * exhaustive search *must* find a schedule that exposes it.
 *
 * Telemetry: --telemetry DIR (or SPP_TELEMETRY=DIR) writes one
 * manifest per explored configuration with the full exploration
 * statistics (executions, choice points, pruning effectiveness), so
 * search-space regressions are observable across commits.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "check/model_checker.hh"
#include "common/logging.hh"
#include "telemetry/json.hh"
#include "telemetry/manifest.hh"
#include "telemetry/options.hh"

using namespace spp;

namespace {

struct Options
{
    ModelCheckOptions mc;
    bool single = false;       ///< --protocol given: one config.
    bool expectCatch = false;
    std::string report;        ///< Failure artifact directory.
    std::string replay;        ///< Schedule file to re-execute.
    std::string telemetry;     ///< Exploration-manifest directory.
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--cores N] [--workload %s]\n"
        "          [--depth N] [--max-execs N] [--inject K]\n"
        "          [--mem-latency T] [--race-delay N]\n"
        "          [--expect-catch] [--no-prune] [--no-reduce]\n"
        "          [--report DIR] [--telemetry DIR]    (sweep mode)\n"
        "   or: %s --protocol P [--predictor K] [--format F] ...\n"
        "                                             (single mode)\n"
        "   or: %s --replay FILE                      (replay mode)\n",
        argv0, modelCheckWorkloads(), argv0, argv0);
    std::exit(2);
}

Protocol
parseProtocol(const std::string &s)
{
    if (s == "directory") return Protocol::directory;
    if (s == "broadcast") return Protocol::broadcast;
    if (s == "predicted") return Protocol::predicted;
    if (s == "multicast") return Protocol::multicast;
    std::fprintf(stderr, "unknown protocol '%s'\n", s.c_str());
    std::exit(2);
}

PredictorKind
parsePredictor(const std::string &s)
{
    if (s == "none") return PredictorKind::none;
    if (s == "sp") return PredictorKind::sp;
    if (s == "addr") return PredictorKind::addr;
    if (s == "inst") return PredictorKind::inst;
    if (s == "uni") return PredictorKind::uni;
    std::fprintf(stderr, "unknown predictor '%s'\n", s.c_str());
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    o.telemetry = TelemetryOptions::fromEnv().dir;
    auto num = [&](int &i) -> std::uint64_t {
        if (i + 1 >= argc)
            usage(argv[0]);
        return std::strtoull(argv[++i], nullptr, 10);
    };
    auto str = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--protocol")) {
            o.single = true;
            o.mc.protocol = parseProtocol(str(i));
        } else if (!std::strcmp(a, "--predictor")) {
            o.mc.predictor = parsePredictor(str(i));
        } else if (!std::strcmp(a, "--format")) {
            o.mc.format = sharerFormatFromString(str(i));
        } else if (!std::strcmp(a, "--cores")) {
            o.mc.cores = static_cast<unsigned>(num(i));
        } else if (!std::strcmp(a, "--workload")) {
            o.mc.workload = str(i);
            if (!isModelCheckWorkload(o.mc.workload)) {
                std::fprintf(stderr,
                             "unknown workload '%s' (expected %s)\n",
                             o.mc.workload.c_str(),
                             modelCheckWorkloads());
                std::exit(2);
            }
        } else if (!std::strcmp(a, "--depth")) {
            o.mc.maxDepth = static_cast<unsigned>(num(i));
        } else if (!std::strcmp(a, "--max-execs")) {
            o.mc.maxExecutions = num(i);
        } else if (!std::strcmp(a, "--inject")) {
            o.mc.injectBug = static_cast<unsigned>(num(i));
        } else if (!std::strcmp(a, "--mem-latency")) {
            o.mc.memLatency = num(i);
        } else if (!std::strcmp(a, "--race-delay")) {
            o.mc.raceDelay = static_cast<unsigned>(num(i));
        } else if (!std::strcmp(a, "--expect-catch")) {
            o.expectCatch = true;
        } else if (!std::strcmp(a, "--no-prune")) {
            o.mc.prune = false;
        } else if (!std::strcmp(a, "--no-reduce")) {
            o.mc.reduce = false;
        } else if (!std::strcmp(a, "--report")) {
            o.report = str(i);
        } else if (!std::strcmp(a, "--telemetry")) {
            o.telemetry = str(i);
        } else if (!std::strcmp(a, "--replay")) {
            o.replay = str(i);
        } else {
            usage(argv[0]);
        }
    }
    return o;
}

std::string
scheduleLine(const std::vector<unsigned> &schedule)
{
    if (schedule.empty())
        return "(default order)";
    std::string s;
    for (unsigned c : schedule) {
        if (!s.empty())
            s += ' ';
        s += std::to_string(c);
    }
    return s;
}

/** Save failure artifacts; returns the .sched path (or ""). */
std::string
saveReport(const Options &o, const ModelCheckOptions &mc,
           const ModelCheckResult &r)
{
    if (o.report.empty())
        return {};
    const std::string stem = o.report + "/mc_" +
        toString(mc.protocol) + "_" + toString(mc.format) + "_" +
        mc.workload;

    const std::string sched = stem + ".sched";
    if (std::FILE *f = std::fopen(sched.c_str(), "w")) {
        const std::string text = scheduleToText(mc, r.schedule);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
    }
    if (std::FILE *log = std::fopen((stem + ".log").c_str(), "w")) {
        std::fprintf(log, "reproducer: %s\nschedule: %s\n"
                     "status: %s\n",
                     describeModelCheck(mc).c_str(),
                     scheduleLine(r.schedule).c_str(),
                     toString(r.failStatus));
        for (const Violation &v : r.violations)
            std::fprintf(log, "[tick %llu] %s: %s\n",
                         static_cast<unsigned long long>(v.tick),
                         v.rule.c_str(), v.detail.c_str());
        if (!r.outstanding.empty())
            std::fprintf(log, "outstanding:\n%s\n",
                         r.outstanding.c_str());
        std::fprintf(log, "recent messages:\n%s", r.trace.c_str());
        std::fclose(log);
    }
    return sched;
}

void
printFailure(const Options &o, const ModelCheckOptions &mc,
             const ModelCheckResult &r)
{
    std::printf("FAIL %s: status=%s violations=%zu\n",
                describeModelCheck(mc).c_str(), toString(r.failStatus),
                r.violations.size());
    std::printf("  schedule: %s\n", scheduleLine(r.schedule).c_str());
    for (const Violation &v : r.violations)
        std::printf("  [tick %llu] %s: %s\n",
                    static_cast<unsigned long long>(v.tick),
                    v.rule.c_str(), v.detail.c_str());
    if (r.failStatus != RunStatus::ok && !r.outstanding.empty())
        std::printf("  outstanding:\n%s\n", r.outstanding.c_str());
    const std::string sched = saveReport(o, mc, r);
    if (!sched.empty())
        std::printf("saved artifacts: %s (+ .log); replay with "
                    "bench/model_check --replay %s\n",
                    sched.c_str(), sched.c_str());
}

int
runReplay(const Options &o)
{
    std::string text;
    if (std::FILE *f = std::fopen(o.replay.c_str(), "r")) {
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "cannot open '%s'\n", o.replay.c_str());
        return 2;
    }

    ModelCheckOptions mc = o.mc;
    std::vector<unsigned> schedule;
    std::string err;
    if (!scheduleFromText(text, mc, schedule, &err)) {
        std::fprintf(stderr, "%s: %s\n", o.replay.c_str(),
                     err.c_str());
        return 2;
    }

    const ModelCheckResult r = replaySchedule(mc, schedule);
    std::printf("replay %s: schedule [%s] -> status=%s "
                "violations=%zu choice-points=%llu\n",
                describeModelCheck(mc).c_str(),
                scheduleLine(schedule).c_str(),
                toString(r.failStatus), r.violations.size(),
                static_cast<unsigned long long>(r.choicePoints));
    for (const Violation &v : r.violations)
        std::printf("  [tick %llu] %s: %s\n",
                    static_cast<unsigned long long>(v.tick),
                    v.rule.c_str(), v.detail.c_str());
    if (r.violationFound && !r.trace.empty())
        std::printf("recent messages:\n%s", r.trace.c_str());
    return r.violationFound == o.expectCatch ? 0 : 1;
}

/** The protocol/format grid a sweep covers. */
std::vector<ModelCheckOptions>
sweepGrid(const Options &o)
{
    std::vector<ModelCheckOptions> grid;
    auto add = [&](Protocol p, SharerFormat f) {
        // The injected bugs live in the directory engine; self-test
        // sweeps only cover protocols exercising that code.
        if (o.mc.injectBug != 0 && p != Protocol::directory &&
            p != Protocol::predicted)
            return;
        ModelCheckOptions mc = o.mc;
        mc.protocol = p;
        mc.format = f;
        grid.push_back(mc);
    };
    for (SharerFormat f : {SharerFormat::full, SharerFormat::coarse,
                           SharerFormat::limited}) {
        add(Protocol::directory, f);
        add(Protocol::predicted, f);
        add(Protocol::multicast, f);
    }
    // Broadcast keeps no sharer sets; one format slot covers it.
    add(Protocol::broadcast, SharerFormat::full);
    return grid;
}

/** One exploration-statistics manifest per explored config. */
void
writeExplorationManifest(const std::string &dir,
                         const ModelCheckOptions &mc,
                         const ModelCheckResult &r)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr,
                     "cannot create telemetry directory '%s': %s\n",
                     dir.c_str(), ec.message().c_str());
        return;
    }

    RunManifest manifest;
    manifest.set("kind", Json("model_check"));
    manifest.set("case", Json(describeModelCheck(mc)));
    Json stats = Json::object();
    stats["executions"] = Json(r.executions);
    stats["choice_points"] = Json(r.choicePoints);
    stats["max_batch"] = Json(r.maxBatch);
    stats["states_hashed"] = Json(r.statesHashed);
    stats["states_pruned"] = Json(r.statesPruned);
    stats["branches_reduced"] = Json(r.branchesReduced);
    stats["late_data_drops"] = Json(r.lateDataDrops);
    stats["deepest_choice"] = Json(r.deepestChoice);
    stats["complete"] = Json(r.complete());
    stats["violation_found"] = Json(r.violationFound);
    manifest.set("exploration", std::move(stats));

    manifest.write(dir + "/mc_" + toString(mc.protocol) + "_" +
                   toString(mc.format) + "_" + mc.workload +
                   ".manifest.json");
}

int
runOne(const Options &o, const ModelCheckOptions &mc, bool verbose,
       std::size_t &failures)
{
    const ModelCheckResult r = modelCheck(mc);
    if (!o.telemetry.empty())
        writeExplorationManifest(o.telemetry, mc, r);
    std::printf("%-10s %-8s %-10s: %llu execs, %llu choice points "
                "(max batch %llu), %llu pruned, %llu reduced, "
                "%llu late-data drops%s%s\n",
                toString(mc.protocol), toString(mc.format),
                mc.workload.c_str(),
                static_cast<unsigned long long>(r.executions),
                static_cast<unsigned long long>(r.choicePoints),
                static_cast<unsigned long long>(r.maxBatch),
                static_cast<unsigned long long>(r.statesPruned),
                static_cast<unsigned long long>(r.branchesReduced),
                static_cast<unsigned long long>(r.lateDataDrops),
                r.complete() ? "" : " [bounded]",
                r.violationFound ? " FAIL" : "");
    if (verbose)
        std::printf("  hashed %llu states, deepest choice vector "
                    "%zu\n",
                    static_cast<unsigned long long>(r.statesHashed),
                    r.deepestChoice);
    if (r.violationFound) {
        ++failures;
        if (!o.expectCatch)
            printFailure(o, mc, r);
        else if (verbose)
            std::printf("  schedule: %s\n",
                        scheduleLine(r.schedule).c_str());
    }
    return r.violationFound ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);
    setQuiet(true);

    if (!o.replay.empty())
        return runReplay(o);

    std::size_t failures = 0;
    if (o.single) {
        runOne(o, o.mc, true, failures);
    } else {
        for (const ModelCheckOptions &mc : sweepGrid(o))
            runOne(o, mc, false, failures);
    }

    if (o.expectCatch) {
        if (!failures) {
            std::printf("expected the injected bug (%u) to be "
                        "caught, but every schedule passed\n",
                        o.mc.injectBug);
            return 1;
        }
        std::printf("injected bug %u caught as expected\n",
                    o.mc.injectBug);
        return 0;
    }
    return failures ? 1 : 0;
}
