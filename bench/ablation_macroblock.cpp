/**
 * @file
 * Ablation: ADDR-predictor indexing granularity (Section 2 notes
 * macroblock indexing improves both space and accuracy over per-line
 * indexing [36]). Sweeps 64 B (per-line) to 1 KB.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Ablation: ADDR-predictor indexing granularity, 64 B to 1 KB");
    QuietScope quiet;
    banner("Ablation: ADDR macroblock size "
           "(averages over all benchmarks)");
    Table t({"macroblock", "accuracy %", "+bandwidth/miss %",
             "storage (KB)"});

    const std::vector<unsigned> sizes = {64u, 256u, 1024u};
    std::vector<ExperimentConfig> configs = {directoryConfig()};
    for (unsigned bytes : sizes) {
        ExperimentConfig cfg = predictedConfig(PredictorKind::addr);
        cfg.tweak = [bytes](Config &c) { c.macroBlockBytes = bytes; };
        configs.push_back(cfg);
    }
    const std::vector<std::string> names = allWorkloads();
    const auto results = sweepMatrix(names, configs);

    for (std::size_t b = 0; b < sizes.size(); ++b) {
        const unsigned bytes = sizes[b];
        double acc = 0, bw = 0, storage = 0;
        unsigned n = 0;
        for (std::size_t i = 0; i < names.size(); ++i) {
            const ExperimentResult &dir =
                results[i * configs.size()];
            const ExperimentResult &r =
                results[i * configs.size() + 1 + b];
            acc += 100.0 * r.predictionAccuracy();
            bw += 100.0 * (r.bytesPerMiss() - dir.bytesPerMiss()) /
                dir.bytesPerMiss();
            storage += static_cast<double>(r.run.predictorStorageBits)
                / 8.0 / 1024.0;
            ++n;
        }
        t.cell(std::to_string(bytes) + " B").cell(acc / n, 1)
            .cell(bw / n, 1).cell(storage / n, 1).endRow();
    }
    t.print();
    std::printf("\n(coarser indexing shrinks the table; very coarse "
                "blocks mix unrelated sharing)\n");
    return 0;
}
