/**
 * @file
 * Ablation: ADDR-predictor indexing granularity (Section 2 notes
 * macroblock indexing improves both space and accuracy over per-line
 * indexing [36]). Sweeps 64 B (per-line) to 1 KB.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main()
{
    QuietScope quiet;
    banner("Ablation: ADDR macroblock size "
           "(averages over all benchmarks)");
    Table t({"macroblock", "accuracy %", "+bandwidth/miss %",
             "storage (KB)"});

    for (unsigned bytes : {64u, 256u, 1024u}) {
        double acc = 0, bw = 0, storage = 0;
        unsigned n = 0;
        for (const std::string &name : allWorkloads()) {
            ExperimentResult dir = runExperiment(name,
                                                 directoryConfig());
            ExperimentConfig cfg =
                predictedConfig(PredictorKind::addr);
            cfg.tweak = [bytes](Config &c) {
                c.macroBlockBytes = bytes;
            };
            ExperimentResult r = runExperiment(name, cfg);
            acc += 100.0 * r.predictionAccuracy();
            bw += 100.0 * (r.bytesPerMiss() - dir.bytesPerMiss()) /
                dir.bytesPerMiss();
            storage += static_cast<double>(r.run.predictorStorageBits)
                / 8.0 / 1024.0;
            ++n;
        }
        t.cell(std::to_string(bytes) + " B").cell(acc / n, 1)
            .cell(bw / n, 1).cell(storage / n, 1).endRow();
    }
    t.print();
    std::printf("\n(coarser indexing shrinks the table; very coarse "
                "blocks mix unrelated sharing)\n");
    return 0;
}
