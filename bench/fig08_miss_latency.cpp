/**
 * @file
 * Figure 8: average miss latency of base directory, broadcast and
 * SP-predictor, normalized to the directory protocol.
 *
 * Paper reference: SP-prediction reduces miss latency by 13% on
 * average and attains up to 75% of broadcast's reduction.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Figure 8: average miss latency, normalized to directory");
    QuietScope quiet;
    banner("Figure 8: average miss latency (normalized to directory)");
    Table t({"benchmark", "directory", "broadcast", "sp-predictor",
             "dir (cycles)"});

    double sum_sp = 0;
    double sum_bc = 0;
    unsigned n = 0;
    const std::vector<std::string> names = allWorkloads();
    const auto results = sweepMatrix(
        names, {directoryConfig(), broadcastConfig(),
                predictedConfig(PredictorKind::sp)});
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const ExperimentResult &dir = results[i * 3 + 0];
        const ExperimentResult &bc = results[i * 3 + 1];
        const ExperimentResult &sp = results[i * 3 + 2];

        const double base = dir.avgMissLatency();
        const double bc_n = bc.avgMissLatency() / base;
        const double sp_n = sp.avgMissLatency() / base;
        t.cell(name).cell(1.0, 3).cell(bc_n, 3).cell(sp_n, 3)
            .cell(base, 1).endRow();
        sum_sp += sp_n;
        sum_bc += bc_n;
        ++n;
    }
    t.print();
    std::printf("\naverage: broadcast %.3f, sp-predictor %.3f "
                "(paper: sp ~0.87; sp attains ~75%% of broadcast's "
                "reduction)\n",
                sum_bc / n, sum_sp / n);
    return 0;
}
