/**
 * @file
 * Trace store utility: record, inspect, replay and import
 * `.spptrace` workload traces outside the figure harnesses.
 *
 *   trace_tool record WORKLOAD OUT [--scale S] [--cores N]
 *                                  [--seed N]
 *       Run WORKLOAD's generator once (directory protocol) and
 *       write its op stream to OUT.
 *
 *   trace_tool info FILE
 *       Decode FILE and print its provenance and op histogram.
 *
 *   trace_tool replay FILE [--protocol directory|broadcast|
 *                           predicted]
 *       Drive a machine of the trace's geometry from FILE and
 *       print the run summary.
 *
 *   trace_tool bench WORKLOAD [--scale S] [--cores N] [--seed N]
 *                             [--only live|replay]
 *       Run WORKLOAD live, then replay the same ops from an
 *       in-memory trace, and report events/sec for both — the
 *       generator-overhead measurement ROADMAP.md asks for.
 *       --only restricts to one side (for external profilers).
 *
 *   trace_tool import-mcsim OUT THREAD0 [THREAD1 ...]
 *                           [--sync-every N]
 *       Convert per-thread mcsim TraceGen files into one
 *       `.spptrace` (see trace/mcsim.hh for the record layout and
 *       the barrier-injection rule).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "trace/codec.hh"
#include "trace/mcsim.hh"
#include "trace/replay.hh"
#include "trace/store.hh"

using namespace spp;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: trace_tool record WORKLOAD OUT [--scale S] "
                 "[--cores N] [--seed N]\n"
                 "       trace_tool info FILE\n"
                 "       trace_tool replay FILE [--protocol "
                 "directory|broadcast|predicted]\n"
                 "       trace_tool bench WORKLOAD [--scale S] "
                 "[--cores N] [--seed N]\n"
                 "       trace_tool import-mcsim OUT THREAD0 "
                 "[THREAD1 ...] [--sync-every N]\n");
    return 2;
}

Protocol
protocolFrom(const std::string &s)
{
    if (s == "directory")
        return Protocol::directory;
    if (s == "broadcast")
        return Protocol::broadcast;
    if (s == "predicted")
        return Protocol::predicted;
    SPP_FATAL("unknown protocol '{}' (directory|broadcast|"
              "predicted)", s);
}

double
wallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

/** Shared record/bench option block. */
struct RunArgs
{
    double scale = 1.0;
    unsigned cores = 0; ///< 0 = Config default.
    std::uint64_t seed = 0;
    bool seedSet = false;
    bool runLive = true;
    bool runReplay = true;
};

bool
parseRunArgs(int argc, char **argv, int first, RunArgs &out)
{
    for (int i = first; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
            out.scale = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--cores") == 0 &&
                   i + 1 < argc) {
            out.cores = static_cast<unsigned>(bench::parseUnsigned(
                "--cores", argv[++i], 1, maxCores));
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            out.seed = bench::parseUnsigned("--seed", argv[++i], 0,
                                            ~std::uint64_t{0});
            out.seedSet = true;
        } else if (std::strcmp(argv[i], "--only") == 0 &&
                   i + 1 < argc) {
            const std::string side = argv[++i];
            out.runLive = side == "live";
            out.runReplay = side == "replay";
            if (!out.runLive && !out.runReplay)
                return false;
        } else {
            return false;
        }
    }
    return true;
}

Config
configFor(const RunArgs &args)
{
    Config cfg;
    if (args.cores != 0) {
        cfg.numCores = args.cores;
        bench::meshFor(args.cores, cfg.meshX, cfg.meshY);
    }
    if (args.seedSet)
        cfg.seed = args.seed;
    return cfg;
}

/** Run @p name's generator under @p cfg, capturing the op stream. */
RunResult
recordRun(const std::string &name, const Config &cfg, double scale,
          TraceRecorder &rec)
{
    const WorkloadSpec *spec = findWorkload(name);
    if (!spec)
        SPP_FATAL("unknown workload '{}'", name);
    CmpSystem sys(cfg);
    sys.setTraceSink(&rec);
    WorkloadParams params;
    params.scale = scale;
    return sys.run([spec, params](ThreadContext &ctx) {
        return spec->run(ctx, params);
    });
}

int
cmdRecord(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    RunArgs args;
    args.scale = defaultBenchScale();
    if (!parseRunArgs(argc, argv, 4, args))
        return usage();
    const std::string name = argv[2];
    const std::string out = argv[3];
    const Config cfg = configFor(args);

    TraceRecorder rec(cfg.numCores);
    recordRun(name, cfg, args.scale, rec);
    rec.data.meta = traceMetaFor(name, cfg, args.scale);

    std::string err;
    const auto bytes = encodeTrace(rec.data);
    if (!writeFileBytesAtomic(out, bytes, err))
        SPP_FATAL("cannot write {}: {}", out, err);
    std::printf("%s: %llu ops, %u threads, %zu bytes\n", out.c_str(),
                static_cast<unsigned long long>(rec.data.totalOps()),
                rec.data.meta.numThreads, bytes.size());
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc != 3)
        return usage();
    const TraceData trace = loadTraceOrFatal(argv[2]);
    const TraceMeta &m = trace.meta;
    std::printf("workload:   %s\n", m.workload.c_str());
    std::printf("threads:    %u\n", m.numThreads);
    std::printf("seed:       %llu\n",
                static_cast<unsigned long long>(m.seed));
    std::printf("lineBytes:  %u\n", m.lineBytes);
    std::printf("scale:      %g\n", m.scale);
    std::printf("keyHash:    %016llx\n",
                static_cast<unsigned long long>(m.keyHash));
    std::printf("totalOps:   %llu\n",
                static_cast<unsigned long long>(trace.totalOps()));

    std::uint64_t by_kind[traceOpKinds] = {};
    for (const auto &ops : trace.threads)
        for (const TraceOp &op : ops)
            ++by_kind[static_cast<unsigned>(op.kind)];
    for (unsigned k = 0; k < traceOpKinds; ++k)
        if (by_kind[k] != 0)
            std::printf("  %-13s %llu\n",
                        toString(static_cast<TraceOpKind>(k)),
                        static_cast<unsigned long long>(by_kind[k]));
    return 0;
}

void
printRun(const RunResult &run)
{
    std::printf("ticks:         %llu\n",
                static_cast<unsigned long long>(run.ticks));
    std::printf("events:        %llu\n",
                static_cast<unsigned long long>(run.eventsExecuted));
    std::printf("misses:        %llu\n",
                static_cast<unsigned long long>(
                    run.mem.misses.value()));
    std::printf("comm misses:   %llu\n",
                static_cast<unsigned long long>(
                    run.mem.communicatingMisses.value()));
    std::printf("flit bytes:    %llu\n",
                static_cast<unsigned long long>(
                    run.noc.flitBytes.value()));
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    Protocol proto = Protocol::directory;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--protocol") == 0 && i + 1 < argc)
            proto = protocolFrom(argv[++i]);
        else
            return usage();
    }
    auto trace = std::make_shared<TraceData>(
        loadTraceOrFatal(argv[2]));

    Config cfg;
    cfg.protocol = proto;
    cfg.numCores = trace->meta.numThreads;
    cfg.lineBytes = trace->meta.lineBytes;
    bench::meshFor(cfg.numCores, cfg.meshX, cfg.meshY);
    const std::string err = traceReplayError(*trace, cfg);
    if (!err.empty())
        SPP_FATAL("cannot replay {}: {}", argv[2], err);

    CmpSystem sys(cfg);
    printRun(sys.run(replayThreadFn(trace)));
    return 0;
}

int
cmdBench(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    RunArgs args;
    args.scale = defaultBenchScale();
    if (!parseRunArgs(argc, argv, 3, args))
        return usage();
    const std::string name = argv[2];
    const Config cfg = configFor(args);

    // Capture pass (untimed): freeze the generator's op stream.
    TraceRecorder rec(cfg.numCores);
    recordRun(name, cfg, args.scale, rec);
    rec.data.meta = traceMetaFor(name, cfg, args.scale);
    auto trace = std::make_shared<TraceData>(rec.data);

    const WorkloadSpec *spec = findWorkload(name);
    WorkloadParams params;
    params.scale = args.scale;

    // Alternate live/replay reps and keep the best of each, so
    // first-touch and allocator effects don't bias either side.
    constexpr int reps = 3;
    RunResult live, replay;
    double live_s = 0.0, replay_s = 0.0;
    for (int r = 0; r < reps; ++r) {
        if (args.runLive) {
            const double t0 = wallSeconds();
            CmpSystem live_sys(cfg);
            live = live_sys.run([spec, params](ThreadContext &ctx) {
                return spec->run(ctx, params);
            });
            const double ls = wallSeconds() - t0;
            live_s = r == 0 ? ls : std::min(live_s, ls);
        }
        if (args.runReplay) {
            const double t0 = wallSeconds();
            CmpSystem replay_sys(cfg);
            replay = replay_sys.run(replayThreadFn(trace));
            const double rs = wallSeconds() - t0;
            replay_s = r == 0 ? rs : std::min(replay_s, rs);
        }
    }

    if (args.runLive && args.runReplay &&
        (live.eventsExecuted != replay.eventsExecuted ||
         live.ticks != replay.ticks))
        SPP_FATAL("replay diverged: {} events / {} ticks live vs "
                  "{} events / {} ticks replayed",
                  live.eventsExecuted, live.ticks,
                  replay.eventsExecuted, replay.ticks);

    if (args.runLive)
        std::printf("live:   %8.3f ms  %12.0f events/s\n",
                    1e3 * live_s,
                    static_cast<double>(live.eventsExecuted) /
                        live_s);
    if (args.runReplay)
        std::printf("replay: %8.3f ms  %12.0f events/s%s\n",
                    1e3 * replay_s,
                    static_cast<double>(replay.eventsExecuted) /
                        replay_s,
                    "");
    if (args.runLive && args.runReplay) {
        const double live_eps =
            static_cast<double>(live.eventsExecuted) / live_s;
        const double replay_eps =
            static_cast<double>(replay.eventsExecuted) / replay_s;
        std::printf("replay speedup: %+.1f%% events/s (%llu events, "
                    "identical live/replay)\n",
                    100.0 * (replay_eps / live_eps - 1.0),
                    static_cast<unsigned long long>(
                        live.eventsExecuted));
    }
    return 0;
}

int
cmdImportMcsim(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    const std::string out = argv[2];
    unsigned sync_every = 0;
    std::vector<std::string> inputs;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sync-every") == 0 &&
            i + 1 < argc) {
            sync_every = static_cast<unsigned>(bench::parseUnsigned(
                "--sync-every", argv[++i], 1, 1u << 30));
        } else {
            inputs.push_back(argv[i]);
        }
    }
    TraceData trace;
    std::string err;
    if (!importMcsimTrace(inputs, sync_every, trace, err))
        SPP_FATAL("mcsim import failed: {}", err);
    const auto bytes = encodeTrace(trace);
    if (!writeFileBytesAtomic(out, bytes, err))
        SPP_FATAL("cannot write {}: {}", out, err);
    std::printf("%s: %llu ops from %zu threads, %zu bytes\n",
                out.c_str(),
                static_cast<unsigned long long>(trace.totalOps()),
                trace.threads.size(), bytes.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    setQuiet(true);
    const std::string cmd = argv[1];
    if (cmd == "record")
        return cmdRecord(argc, argv);
    if (cmd == "info")
        return cmdInfo(argc, argv);
    if (cmd == "replay")
        return cmdReplay(argc, argv);
    if (cmd == "bench")
        return cmdBench(argc, argv);
    if (cmd == "import-mcsim")
        return cmdImportMcsim(argc, argv);
    return usage();
}
