/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses. Each
 * bench binary reproduces one table or figure of the paper: it runs
 * the required (workload, protocol, predictor) matrix and prints the
 * same rows/series the paper reports.
 *
 * Scale: set SPP_BENCH_SCALE (default 1.0) to shrink or grow the
 * workload inputs.
 *
 * Parallelism: every driver submits its (workload, config) matrix
 * through the SweepRunner. Pass --jobs N (or set SPP_JOBS) to pick
 * the worker count; results are returned in job order, so the
 * printed tables are byte-identical at any thread count. Set
 * SPP_PROGRESS=1 to watch per-job completion lines on stderr.
 *
 * Telemetry: pass --telemetry DIR (or set SPP_TELEMETRY=DIR) to
 * write per-job time-series CSVs, Chrome-trace timelines and run
 * manifests into DIR; SPP_TELEMETRY_PERIOD overrides the sampling
 * cadence in ticks. Off by default at zero cost.
 *
 * Attribution: pass --attribution DIR (or set SPP_ATTRIBUTION=DIR)
 * to write per-job attribution.{json,txt} artifacts — per-sync-point
 * misprediction and traffic accounting — into DIR;
 * SPP_ATTRIBUTION_TOPK / SPP_ATTRIBUTION_REGION tune the store.
 * Off by default at zero cost.
 */

#ifndef SPP_BENCH_BENCH_COMMON_HH
#define SPP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/epoch_stats.hh"
#include "analysis/experiment.hh"
#include "analysis/locality.hh"
#include "analysis/patterns.hh"
#include "analysis/report.hh"
#include "analysis/sweep.hh"
#include "common/logging.hh"
#include "telemetry/options.hh"
#include "workload/workload.hh"

namespace spp {
namespace bench {

/** Sweep worker count: 0 = SweepRunner::defaultJobs(). */
inline unsigned g_jobs = 0;

/** Machine geometry overrides: 0 = keep the Config defaults
 * (16 cores on a 4x4 mesh). --cores picks the most-square mesh;
 * --mesh fixes it explicitly (rectangles allowed). */
inline unsigned g_cores = 0;
inline unsigned g_mesh_x = 0;
inline unsigned g_mesh_y = 0;

/** Directory sharer-set format for every config factory below. */
inline SharerFormat g_format = SharerFormat::full;

/** Telemetry knobs shared by every config factory below; disabled
 * unless --telemetry or SPP_TELEMETRY names a directory. */
inline TelemetryOptions g_telemetry;

/** Attribution knobs shared by every config factory below; disabled
 * unless --attribution or SPP_ATTRIBUTION names a directory. */
inline AttributionOptions g_attribution;

/** Most-square mesh factorization of @p n (x >= y). */
inline void
meshFor(unsigned n, unsigned &x, unsigned &y)
{
    y = 1;
    for (unsigned d = 1; d * d <= n; ++d)
        if (n % d == 0)
            y = d;
    x = n / y;
}

/** Parse the shared bench flags; call first thing in every driver's
 * main(). */
inline void
initBench(int argc, char **argv)
{
    g_telemetry = TelemetryOptions::fromEnv();
    g_attribution = AttributionOptions::fromEnv();
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
            g_jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            g_jobs = static_cast<unsigned>(std::atoi(arg + 7));
        } else if (std::strcmp(arg, "--cores") == 0 && i + 1 < argc) {
            g_cores = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strncmp(arg, "--cores=", 8) == 0) {
            g_cores = static_cast<unsigned>(std::atoi(arg + 8));
        } else if (std::strcmp(arg, "--mesh") == 0 && i + 2 < argc) {
            g_mesh_x = static_cast<unsigned>(std::atoi(argv[++i]));
            g_mesh_y = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(arg, "--format") == 0 && i + 1 < argc) {
            g_format = sharerFormatFromString(argv[++i]);
        } else if (std::strncmp(arg, "--format=", 9) == 0) {
            g_format = sharerFormatFromString(arg + 9);
        } else if (std::strcmp(arg, "--telemetry") == 0 &&
                   i + 1 < argc) {
            g_telemetry.dir = argv[++i];
        } else if (std::strncmp(arg, "--telemetry=", 12) == 0) {
            g_telemetry.dir = arg + 12;
        } else if (std::strcmp(arg, "--attribution") == 0 &&
                   i + 1 < argc) {
            g_attribution.dir = argv[++i];
        } else if (std::strncmp(arg, "--attribution=", 14) == 0) {
            g_attribution.dir = arg + 14;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--jobs N] [--cores N] "
                         "[--mesh X Y] [--format full|coarse|limited] "
                         "[--telemetry DIR] [--attribution DIR]   "
                         "(also: SPP_JOBS, SPP_BENCH_SCALE, "
                         "SPP_PROGRESS, SPP_TELEMETRY, "
                         "SPP_TELEMETRY_PERIOD, SPP_ATTRIBUTION)\n",
                         argv[0]);
            std::exit(2);
        }
    }
    if (g_cores != 0 && g_mesh_x != 0 &&
        g_mesh_x * g_mesh_y != g_cores) {
        std::fprintf(stderr, "--mesh %ux%u does not cover %u cores\n",
                     g_mesh_x, g_mesh_y, g_cores);
        std::exit(2);
    }
}

/** Apply the --cores / --mesh / --format overrides to @p cfg. */
inline void
applyGeometry(Config &cfg)
{
    if (g_mesh_x != 0) {
        cfg.meshX = g_mesh_x;
        cfg.meshY = g_mesh_y;
        cfg.numCores = g_mesh_x * g_mesh_y;
    } else if (g_cores != 0) {
        cfg.numCores = g_cores;
        meshFor(g_cores, cfg.meshX, cfg.meshY);
    }
    cfg.sharerFormat = g_format;
}

/** Run a job list on the configured worker count. */
inline std::vector<ExperimentResult>
sweep(std::vector<SweepJob> jobs)
{
    return runSweep(jobs, g_jobs);
}

/**
 * Run the full workload × config matrix in one sweep; the result of
 * (names[i], configs[j]) lands at index i * configs.size() + j.
 */
inline std::vector<ExperimentResult>
sweepMatrix(const std::vector<std::string> &names,
            const std::vector<ExperimentConfig> &configs)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(names.size() * configs.size());
    for (const std::string &name : names)
        for (const ExperimentConfig &cfg : configs)
            jobs.push_back({name, cfg, ""});
    return sweep(std::move(jobs));
}

/** All workload names, in the paper's order. */
inline std::vector<std::string>
allWorkloads()
{
    std::vector<std::string> names;
    for (const auto &spec : workloadRegistry())
        names.push_back(spec.name);
    return names;
}

/** Directory-baseline experiment config at bench scale. */
inline ExperimentConfig
directoryConfig()
{
    ExperimentConfig c;
    c.config.protocol = Protocol::directory;
    applyGeometry(c.config);
    c.scale = defaultBenchScale();
    c.telemetry = g_telemetry;
    c.attribution = g_attribution;
    return c;
}

/** Broadcast-snooping experiment config at bench scale. */
inline ExperimentConfig
broadcastConfig()
{
    ExperimentConfig c;
    c.config.protocol = Protocol::broadcast;
    applyGeometry(c.config);
    c.scale = defaultBenchScale();
    c.telemetry = g_telemetry;
    c.attribution = g_attribution;
    return c;
}

/** Directory + predictor experiment config at bench scale. */
inline ExperimentConfig
predictedConfig(PredictorKind kind)
{
    ExperimentConfig c;
    c.config.protocol = Protocol::predicted;
    c.config.predictor = kind;
    applyGeometry(c.config);
    c.scale = defaultBenchScale();
    c.telemetry = g_telemetry;
    c.attribution = g_attribution;
    return c;
}

/** Quiet logging for bench output cleanliness. */
struct QuietScope
{
    QuietScope() { setQuiet(true); }
    ~QuietScope() { setQuiet(false); }
};

} // namespace bench
} // namespace spp

#endif // SPP_BENCH_BENCH_COMMON_HH
