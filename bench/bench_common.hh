/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses. Each
 * bench binary reproduces one table or figure of the paper: it runs
 * the required (workload, protocol, predictor) matrix and prints the
 * same rows/series the paper reports.
 *
 * Scale: set SPP_BENCH_SCALE (default 1.0) to shrink or grow the
 * workload inputs.
 *
 * Parallelism: every driver submits its (workload, config) matrix
 * through the SweepRunner. Pass --jobs N (or set SPP_JOBS) to pick
 * the worker count; results are returned in job order, so the
 * printed tables are byte-identical at any thread count. Set
 * SPP_PROGRESS=1 to watch per-job completion lines on stderr.
 *
 * Telemetry: pass --telemetry DIR (or set SPP_TELEMETRY=DIR) to
 * write per-job time-series CSVs, Chrome-trace timelines and run
 * manifests into DIR; SPP_TELEMETRY_PERIOD overrides the sampling
 * cadence in ticks. Off by default at zero cost.
 *
 * Attribution: pass --attribution DIR (or set SPP_ATTRIBUTION=DIR)
 * to write per-job attribution.{json,txt} artifacts — per-sync-point
 * misprediction and traffic accounting — into DIR;
 * SPP_ATTRIBUTION_TOPK / SPP_ATTRIBUTION_REGION tune the store.
 * Off by default at zero cost.
 *
 * Traces: pass --trace-dir DIR (or SPP_TRACE_DIR=DIR) to back the
 * sweep with a content-addressed trace store: before the matrix
 * runs, every distinct workload key missing from DIR is recorded
 * once, then all cells replay from the store (generator coroutines
 * never run in the timed jobs). --record (SPP_TRACE_RECORD=1)
 * forces re-recording; --replay FILE (SPP_TRACE_REPLAY=FILE) drives
 * every job from one explicit .spptrace file, e.g. an imported
 * mcsim trace.
 *
 * Results: pass --result-store DIR (or SPP_RESULT_STORE=DIR) to back
 * the sweep with a content-addressed result cache: cells whose
 * (config, workload, scale, git) key already has an entry skip
 * simulation entirely and deserialize the stored result —
 * byte-identical output, seconds instead of minutes. Cold cells
 * simulate and populate the store atomically. --result-refresh
 * re-simulates and overwrites. A summary of store traffic prints to
 * stderr after each sweep, keeping stdout byte-identical to an
 * uncached run.
 *
 * Config overrides: --set FIELD=VALUE (repeatable) edits any Config
 * field by the name configDescribe() prints — the same vocabulary
 * the result-store keys, the run manifests and the sweep server's
 * "set" objects use.
 *
 * All flags are declared through FlagSet (flag_set.hh), which also
 * generates --help.
 */

#ifndef SPP_BENCH_BENCH_COMMON_HH
#define SPP_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/epoch_stats.hh"
#include "analysis/experiment.hh"
#include "analysis/locality.hh"
#include "analysis/patterns.hh"
#include "analysis/report.hh"
#include "analysis/sweep.hh"
#include "common/logging.hh"
#include "flag_set.hh"
#include "service/result_store.hh"
#include "telemetry/options.hh"
#include "trace/options.hh"
#include "trace/store.hh"
#include "workload/workload.hh"

namespace spp {
namespace bench {

/** Sweep worker count: 0 = SweepRunner::defaultJobs(). */
inline unsigned g_jobs = 0;

/** Machine geometry overrides: 0 = keep the Config defaults
 * (16 cores on a 4x4 mesh). --cores picks the most-square mesh;
 * --mesh fixes it explicitly (rectangles allowed). */
inline unsigned g_cores = 0;
inline unsigned g_mesh_x = 0;
inline unsigned g_mesh_y = 0;

/** Directory sharer-set format for every config factory below. */
inline SharerFormat g_format = SharerFormat::full;

/** Telemetry knobs shared by every config factory below; disabled
 * unless --telemetry or SPP_TELEMETRY names a directory. */
inline TelemetryOptions g_telemetry;

/** Attribution knobs shared by every config factory below; disabled
 * unless --attribution or SPP_ATTRIBUTION names a directory. */
inline AttributionOptions g_attribution;

/** Trace capture/replay knobs shared by every config factory below;
 * disabled unless --trace-dir/--replay (or their env twins) are
 * set. */
inline TraceOptions g_trace;

/** Result-cache knobs shared by every config factory below;
 * disabled unless --result-store or SPP_RESULT_STORE names a
 * directory. */
inline ResultStoreOptions g_result_store;

/** --set FIELD=VALUE overrides, applied by the config factories in
 * command-line order (later values win). */
inline std::vector<std::pair<std::string, std::string>> g_settings;

/** Most-square mesh factorization of @p n (x >= y). */
inline void
meshFor(unsigned n, unsigned &x, unsigned &y)
{
    y = 1;
    for (unsigned d = 1; d * d <= n; ++d)
        if (n % d == 0)
            y = d;
    x = n / y;
}

/**
 * Validate a --cores / --mesh combination (0 = flag not given).
 * Returns "" when consistent, else the complaint to die with —
 * separated from initBench so the tests can probe it without
 * forking.
 */
inline std::string
geometryError(unsigned cores, unsigned mesh_x, unsigned mesh_y)
{
    if (mesh_x != 0 && mesh_x * mesh_y > maxCores)
        return "--mesh " + std::to_string(mesh_x) + "x" +
            std::to_string(mesh_y) + " exceeds the " +
            std::to_string(maxCores) + "-core build limit";
    if (cores != 0 && mesh_x != 0 && mesh_x * mesh_y != cores)
        return "--mesh " + std::to_string(mesh_x) + "x" +
            std::to_string(mesh_y) + " does not cover --cores " +
            std::to_string(cores);
    return "";
}

/** The environment variables every driver reads (for --help). */
inline const char *
benchEnvNote()
{
    return "SPP_JOBS, SPP_BENCH_SCALE, SPP_PROGRESS, SPP_TELEMETRY, "
           "SPP_TELEMETRY_PERIOD, SPP_ATTRIBUTION, SPP_TRACE_DIR, "
           "SPP_TRACE_RECORD, SPP_TRACE_REPLAY, SPP_RESULT_STORE";
}

/** Register the flags every figure/table driver shares. */
inline void
addBenchFlags(FlagSet &fs)
{
    fs.onUnsigned("--jobs", "N", 1, 65536,
                  "sweep worker threads (default SPP_JOBS, else all "
                  "hardware threads)",
                  [](std::uint64_t v) {
                      g_jobs = static_cast<unsigned>(v);
                  });
    fs.onUnsigned("--cores", "N", 1, maxCores,
                  "core count; picks the most-square mesh",
                  [](std::uint64_t v) {
                      g_cores = static_cast<unsigned>(v);
                  });
    fs.add("--mesh", "X Y", "mesh geometry (rectangles allowed)",
           [](const std::vector<std::string> &v) {
               g_mesh_x = static_cast<unsigned>(parseUnsigned(
                   "--mesh", v[0].c_str(), 1, maxCores));
               g_mesh_y = static_cast<unsigned>(parseUnsigned(
                   "--mesh", v[1].c_str(), 1, maxCores));
           });
    fs.onValue("--format", "FMT",
               "directory sharer-set format: full|coarse|limited",
               [](const std::string &v) {
                   g_format = sharerFormatFromString(v);
               });
    fs.onValue("--telemetry", "DIR",
               "write per-job time series / Chrome traces / "
               "manifests into DIR",
               [](const std::string &v) { g_telemetry.dir = v; });
    fs.onValue("--attribution", "DIR",
               "write per-job sync-point attribution artifacts "
               "into DIR",
               [](const std::string &v) { g_attribution.dir = v; });
    fs.onValue("--trace-dir", "DIR",
               "content-addressed trace store: record missing "
               "workload keys once, replay everywhere",
               [](const std::string &v) { g_trace.dir = v; });
    fs.onSwitch("--record", "force trace re-recording",
                [] { g_trace.record = true; });
    fs.onValue("--replay", "FILE",
               "drive every job from one explicit .spptrace file",
               [](const std::string &v) { g_trace.replayFile = v; });
    fs.onValue("--result-store", "DIR",
               "content-addressed result cache: warm cells skip "
               "simulation, cold cells populate",
               [](const std::string &v) { g_result_store.dir = v; });
    fs.onSwitch("--result-refresh",
                "re-simulate cached cells and overwrite their "
                "entries",
                [] { g_result_store.refresh = true; });
    fs.onValue("--set", "FIELD=VALUE",
               "override a config field by its configDescribe() "
               "name (repeatable)",
               [](const std::string &v) {
                   const std::size_t eq = v.find('=');
                   if (eq == std::string::npos || eq == 0)
                       SPP_FATAL("--set expects FIELD=VALUE, got "
                                 "'{}'",
                                 v);
                   g_settings.emplace_back(v.substr(0, eq),
                                           v.substr(eq + 1));
               });
}

/** Apply the --cores / --mesh / --format / --set overrides to
 * @p cfg. A --set that changes numCores without fixing the mesh
 * gets the most-square factorization automatically. */
inline void
applyGeometry(Config &cfg)
{
    if (g_mesh_x != 0) {
        cfg.meshX = g_mesh_x;
        cfg.meshY = g_mesh_y;
        cfg.numCores = g_mesh_x * g_mesh_y;
    } else if (g_cores != 0) {
        cfg.numCores = g_cores;
        meshFor(g_cores, cfg.meshX, cfg.meshY);
    }
    cfg.sharerFormat = g_format;
    for (const auto &[field, value] : g_settings) {
        const std::string err = configSetField(cfg, field, value);
        if (!err.empty())
            SPP_FATAL("--set: {}", err);
    }
    if (cfg.meshX * cfg.meshY != cfg.numCores)
        meshFor(cfg.numCores, cfg.meshX, cfg.meshY);
}

/** Cross-flag validation; runs after parsing, fatal on conflict. */
inline void
finishBenchInit()
{
    const std::string geo_err =
        geometryError(g_cores, g_mesh_x, g_mesh_y);
    if (!geo_err.empty())
        SPP_FATAL("{}", geo_err);
    if (g_trace.record && g_trace.dir.empty())
        SPP_FATAL("--record needs --trace-dir (or SPP_TRACE_DIR)");
    // Probe the --set overrides now so a typo dies at startup, not
    // in a worker thread mid-sweep.
    Config probe;
    applyGeometry(probe);
    const std::string cfg_err = configValidate(probe);
    if (!cfg_err.empty())
        SPP_FATAL("--set: {}", cfg_err);
}

/** Parse the shared bench flags; call first thing in every driver's
 * main(). @p description is the one-line purpose --help shows. */
inline void
initBench(int argc, char **argv,
          const char *description = "paper figure/table harness")
{
    g_telemetry = TelemetryOptions::fromEnv();
    g_attribution = AttributionOptions::fromEnv();
    g_trace = TraceOptions::fromEnv();
    g_result_store = ResultStoreOptions::fromEnv();
    g_settings.clear();
    FlagSet fs(description, benchEnvNote());
    addBenchFlags(fs);
    fs.parse(argc, argv);
    finishBenchInit();
}

/**
 * Trace-store pre-pass: with --trace-dir, record every distinct
 * workload key the job list needs but the store lacks (once each,
 * on the worker pool, with sidecars off), then point all jobs at
 * replay. Without it, two cells sharing a key would both pay the
 * recording run — harmless (writes are atomic and byte-identical)
 * but slower than recording once.
 */
inline void
prepareTraceStore(std::vector<SweepJob> &jobs)
{
    if (g_trace.dir.empty() || !g_trace.replayFile.empty())
        return;
    std::vector<SweepJob> recorders;
    std::set<std::uint64_t> seen;
    for (SweepJob &job : jobs) {
        Config cfg = job.config.config;
        if (job.config.tweak)
            job.config.tweak(cfg);
        const std::uint64_t key =
            traceKeyHash(job.workload, cfg, job.config.scale);
        const std::string path =
            tracePath(g_trace.dir, job.workload, key);
        if ((g_trace.record || !traceFileExists(path)) &&
            seen.insert(key).second) {
            SweepJob rec = job;
            rec.config.trace = g_trace;
            rec.config.trace.record = true;
            rec.config.collectTrace = false;
            rec.config.telemetry = TelemetryOptions{};
            rec.config.attribution = AttributionOptions{};
            rec.config.resultStore = ResultStoreOptions{};
            rec.label = job.workload + "/trace-record";
            recorders.push_back(std::move(rec));
        }
        job.config.trace = g_trace;
        job.config.trace.record = false;
    }
    if (!recorders.empty())
        runSweep(recorders, g_jobs);
}

/** Run a job list on the configured worker count (after the trace
 * store pre-pass, when one is configured). With a result store the
 * cumulative store traffic prints to stderr afterwards — stdout
 * stays byte-identical to an uncached run. */
inline std::vector<ExperimentResult>
sweep(std::vector<SweepJob> jobs)
{
    prepareTraceStore(jobs);
    std::vector<ExperimentResult> results = runSweep(jobs, g_jobs);
    if (g_result_store.enabled()) {
        const ResultStoreStats &s = resultStoreStats();
        std::fprintf(stderr,
                     "result store %s: %llu hits, %llu misses, "
                     "%llu bypasses, %llu corrupt\n",
                     g_result_store.dir.c_str(),
                     static_cast<unsigned long long>(s.hits.load()),
                     static_cast<unsigned long long>(
                         s.misses.load()),
                     static_cast<unsigned long long>(
                         s.bypasses.load()),
                     static_cast<unsigned long long>(
                         s.corrupt.load()));
    }
    return results;
}

/**
 * Run the full workload × config matrix in one sweep; the result of
 * (names[i], configs[j]) lands at index i * configs.size() + j.
 */
inline std::vector<ExperimentResult>
sweepMatrix(const std::vector<std::string> &names,
            const std::vector<ExperimentConfig> &configs)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(names.size() * configs.size());
    for (const std::string &name : names)
        for (const ExperimentConfig &cfg : configs)
            jobs.push_back({name, cfg, ""});
    return sweep(std::move(jobs));
}

/** All workload names, in the paper's order. */
inline std::vector<std::string>
allWorkloads()
{
    std::vector<std::string> names;
    for (const auto &spec : workloadRegistry())
        names.push_back(spec.name);
    return names;
}

/** Directory-baseline experiment config at bench scale. */
inline ExperimentConfig
directoryConfig()
{
    ExperimentConfig c;
    c.config.protocol = Protocol::directory;
    applyGeometry(c.config);
    c.scale = defaultBenchScale();
    c.telemetry = g_telemetry;
    c.attribution = g_attribution;
    c.trace = g_trace;
    c.resultStore = g_result_store;
    return c;
}

/** Broadcast-snooping experiment config at bench scale. */
inline ExperimentConfig
broadcastConfig()
{
    ExperimentConfig c;
    c.config.protocol = Protocol::broadcast;
    applyGeometry(c.config);
    c.scale = defaultBenchScale();
    c.telemetry = g_telemetry;
    c.attribution = g_attribution;
    c.trace = g_trace;
    c.resultStore = g_result_store;
    return c;
}

/** Directory + predictor experiment config at bench scale. */
inline ExperimentConfig
predictedConfig(PredictorKind kind)
{
    ExperimentConfig c;
    c.config.protocol = Protocol::predicted;
    c.config.predictor = kind;
    applyGeometry(c.config);
    c.scale = defaultBenchScale();
    c.telemetry = g_telemetry;
    c.attribution = g_attribution;
    c.trace = g_trace;
    c.resultStore = g_result_store;
    return c;
}

/** Quiet logging for bench output cleanliness. */
struct QuietScope
{
    QuietScope() { setQuiet(true); }
    ~QuietScope() { setQuiet(false); }
};

} // namespace bench
} // namespace spp

#endif // SPP_BENCH_BENCH_COMMON_HH
