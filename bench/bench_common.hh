/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses. Each
 * bench binary reproduces one table or figure of the paper: it runs
 * the required (workload, protocol, predictor) matrix and prints the
 * same rows/series the paper reports.
 *
 * Scale: set SPP_BENCH_SCALE (default 1.0) to shrink or grow the
 * workload inputs.
 */

#ifndef SPP_BENCH_BENCH_COMMON_HH
#define SPP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/epoch_stats.hh"
#include "analysis/experiment.hh"
#include "analysis/locality.hh"
#include "analysis/patterns.hh"
#include "analysis/report.hh"
#include "common/logging.hh"
#include "workload/workload.hh"

namespace spp {
namespace bench {

/** All workload names, in the paper's order. */
inline std::vector<std::string>
allWorkloads()
{
    std::vector<std::string> names;
    for (const auto &spec : workloadRegistry())
        names.push_back(spec.name);
    return names;
}

/** Directory-baseline experiment config at bench scale. */
inline ExperimentConfig
directoryConfig()
{
    ExperimentConfig c;
    c.protocol = Protocol::directory;
    c.scale = defaultBenchScale();
    return c;
}

/** Broadcast-snooping experiment config at bench scale. */
inline ExperimentConfig
broadcastConfig()
{
    ExperimentConfig c;
    c.protocol = Protocol::broadcast;
    c.scale = defaultBenchScale();
    return c;
}

/** Directory + predictor experiment config at bench scale. */
inline ExperimentConfig
predictedConfig(PredictorKind kind)
{
    ExperimentConfig c;
    c.protocol = Protocol::predicted;
    c.predictor = kind;
    c.scale = defaultBenchScale();
    return c;
}

/** Quiet logging for bench output cleanliness. */
struct QuietScope
{
    QuietScope() { setQuiet(true); }
    ~QuietScope() { setQuiet(false); }
};

} // namespace bench
} // namespace spp

#endif // SPP_BENCH_BENCH_COMMON_HH
