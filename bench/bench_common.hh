/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses. Each
 * bench binary reproduces one table or figure of the paper: it runs
 * the required (workload, protocol, predictor) matrix and prints the
 * same rows/series the paper reports.
 *
 * Scale: set SPP_BENCH_SCALE (default 1.0) to shrink or grow the
 * workload inputs.
 *
 * Parallelism: every driver submits its (workload, config) matrix
 * through the SweepRunner. Pass --jobs N (or set SPP_JOBS) to pick
 * the worker count; results are returned in job order, so the
 * printed tables are byte-identical at any thread count. Set
 * SPP_PROGRESS=1 to watch per-job completion lines on stderr.
 *
 * Telemetry: pass --telemetry DIR (or set SPP_TELEMETRY=DIR) to
 * write per-job time-series CSVs, Chrome-trace timelines and run
 * manifests into DIR; SPP_TELEMETRY_PERIOD overrides the sampling
 * cadence in ticks. Off by default at zero cost.
 *
 * Attribution: pass --attribution DIR (or set SPP_ATTRIBUTION=DIR)
 * to write per-job attribution.{json,txt} artifacts — per-sync-point
 * misprediction and traffic accounting — into DIR;
 * SPP_ATTRIBUTION_TOPK / SPP_ATTRIBUTION_REGION tune the store.
 * Off by default at zero cost.
 *
 * Traces: pass --trace-dir DIR (or SPP_TRACE_DIR=DIR) to back the
 * sweep with a content-addressed trace store: before the matrix
 * runs, every distinct workload key missing from DIR is recorded
 * once, then all cells replay from the store (generator coroutines
 * never run in the timed jobs). --record (SPP_TRACE_RECORD=1)
 * forces re-recording; --replay FILE (SPP_TRACE_REPLAY=FILE) drives
 * every job from one explicit .spptrace file, e.g. an imported
 * mcsim trace.
 */

#ifndef SPP_BENCH_BENCH_COMMON_HH
#define SPP_BENCH_BENCH_COMMON_HH

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "analysis/epoch_stats.hh"
#include "analysis/experiment.hh"
#include "analysis/locality.hh"
#include "analysis/patterns.hh"
#include "analysis/report.hh"
#include "analysis/sweep.hh"
#include "common/logging.hh"
#include "telemetry/options.hh"
#include "trace/options.hh"
#include "trace/store.hh"
#include "workload/workload.hh"

namespace spp {
namespace bench {

/** Sweep worker count: 0 = SweepRunner::defaultJobs(). */
inline unsigned g_jobs = 0;

/** Machine geometry overrides: 0 = keep the Config defaults
 * (16 cores on a 4x4 mesh). --cores picks the most-square mesh;
 * --mesh fixes it explicitly (rectangles allowed). */
inline unsigned g_cores = 0;
inline unsigned g_mesh_x = 0;
inline unsigned g_mesh_y = 0;

/** Directory sharer-set format for every config factory below. */
inline SharerFormat g_format = SharerFormat::full;

/** Telemetry knobs shared by every config factory below; disabled
 * unless --telemetry or SPP_TELEMETRY names a directory. */
inline TelemetryOptions g_telemetry;

/** Attribution knobs shared by every config factory below; disabled
 * unless --attribution or SPP_ATTRIBUTION names a directory. */
inline AttributionOptions g_attribution;

/** Trace capture/replay knobs shared by every config factory below;
 * disabled unless --trace-dir/--replay (or their env twins) are
 * set. */
inline TraceOptions g_trace;

/** Most-square mesh factorization of @p n (x >= y). */
inline void
meshFor(unsigned n, unsigned &x, unsigned &y)
{
    y = 1;
    for (unsigned d = 1; d * d <= n; ++d)
        if (n % d == 0)
            y = d;
    x = n / y;
}

/**
 * Strictly parse @p text as a base-10 unsigned integer in
 * [@p lo, @p hi]; fatal (naming @p flag) on empty input, any
 * non-digit — including a sign, so "-1" is rejected instead of
 * wrapping to a huge unsigned — overflow, or an out-of-range value.
 */
inline std::uint64_t
parseUnsigned(const char *flag, const char *text, std::uint64_t lo,
              std::uint64_t hi)
{
    bool digits = text != nullptr && *text != '\0';
    for (const char *p = text; digits && *p != '\0'; ++p)
        digits = *p >= '0' && *p <= '9';
    if (!digits)
        SPP_FATAL("{} expects an unsigned integer, got '{}'", flag,
                  text ? text : "");
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (errno != 0 || *end != '\0' || value < lo || value > hi)
        SPP_FATAL("{} must be in [{}, {}], got '{}'", flag, lo, hi,
                  text);
    return value;
}

/**
 * Validate a --cores / --mesh combination (0 = flag not given).
 * Returns "" when consistent, else the complaint to die with —
 * separated from initBench so the tests can probe it without
 * forking.
 */
inline std::string
geometryError(unsigned cores, unsigned mesh_x, unsigned mesh_y)
{
    if (mesh_x != 0 && mesh_x * mesh_y > maxCores)
        return "--mesh " + std::to_string(mesh_x) + "x" +
            std::to_string(mesh_y) + " exceeds the " +
            std::to_string(maxCores) + "-core build limit";
    if (cores != 0 && mesh_x != 0 && mesh_x * mesh_y != cores)
        return "--mesh " + std::to_string(mesh_x) + "x" +
            std::to_string(mesh_y) + " does not cover --cores " +
            std::to_string(cores);
    return "";
}

/** Parse the shared bench flags; call first thing in every driver's
 * main(). */
inline void
initBench(int argc, char **argv)
{
    g_telemetry = TelemetryOptions::fromEnv();
    g_attribution = AttributionOptions::fromEnv();
    g_trace = TraceOptions::fromEnv();
    const auto parse = [](const char *flag,
                          const char *text, std::uint64_t lo,
                          std::uint64_t hi) {
        return static_cast<unsigned>(
            parseUnsigned(flag, text, lo, hi));
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
            g_jobs = parse("--jobs", argv[++i], 1, 65536);
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            g_jobs = parse("--jobs", arg + 7, 1, 65536);
        } else if (std::strcmp(arg, "--cores") == 0 && i + 1 < argc) {
            g_cores = parse("--cores", argv[++i], 1, maxCores);
        } else if (std::strncmp(arg, "--cores=", 8) == 0) {
            g_cores = parse("--cores", arg + 8, 1, maxCores);
        } else if (std::strcmp(arg, "--mesh") == 0 && i + 2 < argc) {
            g_mesh_x = parse("--mesh", argv[++i], 1, maxCores);
            g_mesh_y = parse("--mesh", argv[++i], 1, maxCores);
        } else if (std::strcmp(arg, "--format") == 0 && i + 1 < argc) {
            g_format = sharerFormatFromString(argv[++i]);
        } else if (std::strncmp(arg, "--format=", 9) == 0) {
            g_format = sharerFormatFromString(arg + 9);
        } else if (std::strcmp(arg, "--telemetry") == 0 &&
                   i + 1 < argc) {
            g_telemetry.dir = argv[++i];
        } else if (std::strncmp(arg, "--telemetry=", 12) == 0) {
            g_telemetry.dir = arg + 12;
        } else if (std::strcmp(arg, "--attribution") == 0 &&
                   i + 1 < argc) {
            g_attribution.dir = argv[++i];
        } else if (std::strncmp(arg, "--attribution=", 14) == 0) {
            g_attribution.dir = arg + 14;
        } else if (std::strcmp(arg, "--trace-dir") == 0 &&
                   i + 1 < argc) {
            g_trace.dir = argv[++i];
        } else if (std::strncmp(arg, "--trace-dir=", 12) == 0) {
            g_trace.dir = arg + 12;
        } else if (std::strcmp(arg, "--record") == 0) {
            g_trace.record = true;
        } else if (std::strcmp(arg, "--replay") == 0 &&
                   i + 1 < argc) {
            g_trace.replayFile = argv[++i];
        } else if (std::strncmp(arg, "--replay=", 9) == 0) {
            g_trace.replayFile = arg + 9;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--jobs N] [--cores N] "
                         "[--mesh X Y] [--format full|coarse|limited] "
                         "[--telemetry DIR] [--attribution DIR] "
                         "[--trace-dir DIR] [--record] "
                         "[--replay FILE]   "
                         "(also: SPP_JOBS, SPP_BENCH_SCALE, "
                         "SPP_PROGRESS, SPP_TELEMETRY, "
                         "SPP_TELEMETRY_PERIOD, SPP_ATTRIBUTION, "
                         "SPP_TRACE_DIR, SPP_TRACE_RECORD, "
                         "SPP_TRACE_REPLAY)\n",
                         argv[0]);
            std::exit(2);
        }
    }
    const std::string geo_err =
        geometryError(g_cores, g_mesh_x, g_mesh_y);
    if (!geo_err.empty())
        SPP_FATAL("{}", geo_err);
    if (g_trace.record && g_trace.dir.empty())
        SPP_FATAL("--record needs --trace-dir (or SPP_TRACE_DIR)");
}

/** Apply the --cores / --mesh / --format overrides to @p cfg. */
inline void
applyGeometry(Config &cfg)
{
    if (g_mesh_x != 0) {
        cfg.meshX = g_mesh_x;
        cfg.meshY = g_mesh_y;
        cfg.numCores = g_mesh_x * g_mesh_y;
    } else if (g_cores != 0) {
        cfg.numCores = g_cores;
        meshFor(g_cores, cfg.meshX, cfg.meshY);
    }
    cfg.sharerFormat = g_format;
}

/**
 * Trace-store pre-pass: with --trace-dir, record every distinct
 * workload key the job list needs but the store lacks (once each,
 * on the worker pool, with sidecars off), then point all jobs at
 * replay. Without it, two cells sharing a key would both pay the
 * recording run — harmless (writes are atomic and byte-identical)
 * but slower than recording once.
 */
inline void
prepareTraceStore(std::vector<SweepJob> &jobs)
{
    if (g_trace.dir.empty() || !g_trace.replayFile.empty())
        return;
    std::vector<SweepJob> recorders;
    std::set<std::uint64_t> seen;
    for (SweepJob &job : jobs) {
        Config cfg = job.config.config;
        if (job.config.tweak)
            job.config.tweak(cfg);
        const std::uint64_t key =
            traceKeyHash(job.workload, cfg, job.config.scale);
        const std::string path =
            tracePath(g_trace.dir, job.workload, key);
        if ((g_trace.record || !traceFileExists(path)) &&
            seen.insert(key).second) {
            SweepJob rec = job;
            rec.config.trace = g_trace;
            rec.config.trace.record = true;
            rec.config.collectTrace = false;
            rec.config.telemetry = TelemetryOptions{};
            rec.config.attribution = AttributionOptions{};
            rec.label = job.workload + "/trace-record";
            recorders.push_back(std::move(rec));
        }
        job.config.trace = g_trace;
        job.config.trace.record = false;
    }
    if (!recorders.empty())
        runSweep(recorders, g_jobs);
}

/** Run a job list on the configured worker count (after the trace
 * store pre-pass, when one is configured). */
inline std::vector<ExperimentResult>
sweep(std::vector<SweepJob> jobs)
{
    prepareTraceStore(jobs);
    return runSweep(jobs, g_jobs);
}

/**
 * Run the full workload × config matrix in one sweep; the result of
 * (names[i], configs[j]) lands at index i * configs.size() + j.
 */
inline std::vector<ExperimentResult>
sweepMatrix(const std::vector<std::string> &names,
            const std::vector<ExperimentConfig> &configs)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(names.size() * configs.size());
    for (const std::string &name : names)
        for (const ExperimentConfig &cfg : configs)
            jobs.push_back({name, cfg, ""});
    return sweep(std::move(jobs));
}

/** All workload names, in the paper's order. */
inline std::vector<std::string>
allWorkloads()
{
    std::vector<std::string> names;
    for (const auto &spec : workloadRegistry())
        names.push_back(spec.name);
    return names;
}

/** Directory-baseline experiment config at bench scale. */
inline ExperimentConfig
directoryConfig()
{
    ExperimentConfig c;
    c.config.protocol = Protocol::directory;
    applyGeometry(c.config);
    c.scale = defaultBenchScale();
    c.telemetry = g_telemetry;
    c.attribution = g_attribution;
    c.trace = g_trace;
    return c;
}

/** Broadcast-snooping experiment config at bench scale. */
inline ExperimentConfig
broadcastConfig()
{
    ExperimentConfig c;
    c.config.protocol = Protocol::broadcast;
    applyGeometry(c.config);
    c.scale = defaultBenchScale();
    c.telemetry = g_telemetry;
    c.attribution = g_attribution;
    c.trace = g_trace;
    return c;
}

/** Directory + predictor experiment config at bench scale. */
inline ExperimentConfig
predictedConfig(PredictorKind kind)
{
    ExperimentConfig c;
    c.config.protocol = Protocol::predicted;
    c.config.predictor = kind;
    applyGeometry(c.config);
    c.scale = defaultBenchScale();
    c.telemetry = g_telemetry;
    c.attribution = g_attribution;
    c.trace = g_trace;
    return c;
}

/** Quiet logging for bench output cleanliness. */
struct QuietScope
{
    QuietScope() { setQuiet(true); }
    ~QuietScope() { setQuiet(false); }
};

} // namespace bench
} // namespace spp

#endif // SPP_BENCH_BENCH_COMMON_HH
