/**
 * @file
 * Table 5: average actual (minimum sufficient) vs predicted target
 * set size per request.
 *
 * Paper reference: actual close to 1 (reads dominate), predicted
 * around 2-4, ratio mostly 1.1-3.7.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Table 5: actual vs predicted target set size per request");
    QuietScope quiet;
    banner("Table 5: average actual and predicted target set size");
    Table t({"benchmark", "actual/req", "predicted/req", "ratio"});

    const std::vector<std::string> names = allWorkloads();
    const auto results =
        sweepMatrix(names, {predictedConfig(PredictorKind::sp)});
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const ExperimentResult &sp = results[i];
        const double actual = sp.run.mem.actualTargets.mean();
        const double predicted = sp.run.mem.predictedTargets.mean();
        const double ratio = actual > 0 ? predicted / actual : 0.0;
        t.cell(name).cell(actual, 2).cell(predicted, 2)
            .cell(ratio, 2).endRow();
    }
    t.print();
    return 0;
}
