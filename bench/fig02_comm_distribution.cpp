/**
 * @file
 * Figure 2: communication distribution of core 0 in bodytrack,
 * (a) over the whole execution, (b) over four consecutive
 * sync-defined intervals, (c) across five dynamic instances of the
 * same sync-defined interval.
 */

#include <algorithm>

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

namespace {

void
printDistribution(const char *label,
                  const std::vector<std::uint64_t> &v, unsigned n)
{
    std::printf("%-28s", label);
    for (unsigned c = 0; c < n; ++c)
        std::printf(" %6lu", static_cast<unsigned long>(v[c]));
    std::printf("\n");
}

std::vector<std::uint64_t>
widen(const std::vector<std::uint32_t> &v)
{
    return {v.begin(), v.end()};
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Figure 2: communication distribution of core 0 in bodytrack");
    QuietScope quiet;
    ExperimentConfig cfg = directoryConfig();
    cfg.collectTrace = true;
    const auto results = sweep({{"bodytrack", cfg, ""}});
    const ExperimentResult &r = results[0];
    const CommTrace &trace = *r.trace;
    const unsigned n = trace.numCores();

    banner("Figure 2(a): core 0, whole execution");
    std::printf("%-28s", "target core ->");
    for (unsigned c = 0; c < n; ++c)
        std::printf(" %6u", c);
    std::printf("\n");
    printDistribution("volume", trace.wholeRunVolume(0), n);

    banner("Figure 2(b): core 0, four consecutive sync-epochs");
    const auto &epochs = trace.epochs(0);
    unsigned printed = 0;
    for (std::size_t i = 0; i < epochs.size() && printed < 4; ++i) {
        if (epochs[i].commMisses < 8)
            continue;
        char label[64];
        std::snprintf(label, sizeof(label), "epoch (sid=%lx, dyn=%lu)",
                      static_cast<unsigned long>(epochs[i].staticId),
                      static_cast<unsigned long>(epochs[i].dynamicId));
        printDistribution(label, widen(epochs[i].volume), n);
        ++printed;
    }

    banner("Figure 2(c): core 0, dynamic instances of one sync-epoch");
    // Pick the static epoch with the most non-noisy instances.
    std::map<std::uint64_t, unsigned> counts;
    for (const auto &e : epochs)
        if (e.commMisses >= 8 && e.beginType == SyncType::barrier)
            ++counts[e.staticId];
    std::uint64_t best = 0;
    unsigned best_count = 0;
    for (const auto &[sid, c] : counts) {
        if (c > best_count) {
            best = sid;
            best_count = c;
        }
    }
    printed = 0;
    for (const auto &e : epochs) {
        if (e.staticId != best || e.commMisses < 8 || printed >= 5)
            continue;
        char label[64];
        std::snprintf(label, sizeof(label), "instance %lu",
                      static_cast<unsigned long>(e.dynamicId));
        printDistribution(label, widen(e.volume), n);
        ++printed;
    }
    std::printf("\n(shape check: per-epoch distributions concentrate "
                "on few targets;\n instances of one epoch repeat the "
                "same hot set)\n");
    return 0;
}
