/**
 * @file
 * Ablation: SP-table history depth d in {1, 2, 4} (Section 4.4 keeps
 * d <= 2; deeper history enables longer-stride pattern detection at
 * more storage).
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Ablation: SP-table history depth d in {1, 2, 4}");
    QuietScope quiet;
    banner("Ablation: history depth d (averages over all benchmarks)");
    Table t({"depth d", "accuracy %", "+bandwidth/miss %",
             "storage (KB)", "pattern hits"});

    const std::vector<unsigned> depths = {1u, 2u, 4u};
    std::vector<ExperimentConfig> configs = {directoryConfig()};
    for (unsigned depth : depths) {
        ExperimentConfig cfg = predictedConfig(PredictorKind::sp);
        cfg.tweak = [depth](Config &c) { c.historyDepth = depth; };
        configs.push_back(cfg);
    }
    const std::vector<std::string> names = allWorkloads();
    const auto results = sweepMatrix(names, configs);

    for (std::size_t d = 0; d < depths.size(); ++d) {
        const unsigned depth = depths[d];
        double acc = 0, bw = 0, storage = 0;
        std::uint64_t patterns = 0;
        unsigned n = 0;
        for (std::size_t i = 0; i < names.size(); ++i) {
            const ExperimentResult &dir =
                results[i * configs.size()];
            const ExperimentResult &r =
                results[i * configs.size() + 1 + d];
            acc += 100.0 * r.predictionAccuracy();
            bw += 100.0 * (r.bytesPerMiss() - dir.bytesPerMiss()) /
                dir.bytesPerMiss();
            storage += static_cast<double>(r.run.predictorStorageBits)
                / 8.0 / 1024.0;
            patterns += r.run.sp.patternHits.value();
            ++n;
        }
        t.cell(depth).cell(acc / n, 1).cell(bw / n, 1)
            .cell(storage / n, 2).cell(patterns).endRow();
    }
    t.print();
    std::printf("\n(d = 2 captures stable and stride-2 patterns at "
                "minimal storage -- the paper's choice)\n");
    return 0;
}
