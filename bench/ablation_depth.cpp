/**
 * @file
 * Ablation: SP-table history depth d in {1, 2, 4} (Section 4.4 keeps
 * d <= 2; deeper history enables longer-stride pattern detection at
 * more storage).
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main()
{
    QuietScope quiet;
    banner("Ablation: history depth d (averages over all benchmarks)");
    Table t({"depth d", "accuracy %", "+bandwidth/miss %",
             "storage (KB)", "pattern hits"});

    for (unsigned depth : {1u, 2u, 4u}) {
        double acc = 0, bw = 0, storage = 0;
        std::uint64_t patterns = 0;
        unsigned n = 0;
        for (const std::string &name : allWorkloads()) {
            ExperimentResult dir = runExperiment(name,
                                                 directoryConfig());
            ExperimentConfig cfg = predictedConfig(PredictorKind::sp);
            cfg.tweak = [depth](Config &c) { c.historyDepth = depth; };
            ExperimentResult r = runExperiment(name, cfg);
            acc += 100.0 * r.predictionAccuracy();
            bw += 100.0 * (r.bytesPerMiss() - dir.bytesPerMiss()) /
                dir.bytesPerMiss();
            storage += static_cast<double>(r.run.predictorStorageBits)
                / 8.0 / 1024.0;
            patterns += r.run.sp.patternHits.value();
            ++n;
        }
        t.cell(depth).cell(acc / n, 1).cell(bw / n, 1)
            .cell(storage / n, 2).cell(patterns).endRow();
    }
    t.print();
    std::printf("\n(d = 2 captures stable and stride-2 patterns at "
                "minimal storage -- the paper's choice)\n");
    return 0;
}
