/**
 * @file
 * Figure 10: execution time of base directory, broadcast and
 * SP-predictor, normalized to the directory protocol.
 *
 * Paper reference: SP-prediction improves execution time by 7% on
 * average (x264 best at 14%).
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Figure 10: execution time, normalized to directory");
    QuietScope quiet;
    banner("Figure 10: execution time (normalized to directory)");
    Table t({"benchmark", "directory", "broadcast", "sp-predictor",
             "dir (cycles)"});

    double sum_sp = 0;
    double sum_bc = 0;
    unsigned n = 0;
    const std::vector<std::string> names = allWorkloads();
    const auto results = sweepMatrix(
        names, {directoryConfig(), broadcastConfig(),
                predictedConfig(PredictorKind::sp)});
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const ExperimentResult &dir = results[i * 3 + 0];
        const ExperimentResult &bc = results[i * 3 + 1];
        const ExperimentResult &sp = results[i * 3 + 2];

        const double base = static_cast<double>(dir.run.ticks);
        t.cell(name).cell(1.0, 3)
            .cell(static_cast<double>(bc.run.ticks) / base, 3)
            .cell(static_cast<double>(sp.run.ticks) / base, 3)
            .cell(std::uint64_t{dir.run.ticks}).endRow();
        sum_sp += static_cast<double>(sp.run.ticks) / base;
        sum_bc += static_cast<double>(bc.run.ticks) / base;
        ++n;
    }
    t.print();
    std::printf("\naverage: broadcast %.3f, sp-predictor %.3f "
                "(paper: sp ~0.93)\n",
                sum_bc / n, sum_sp / n);
    return 0;
}
