/**
 * @file
 * Ablation: MESIF vs plain MESI (no Forwarding state). The paper's
 * baseline is MESIF because clean cache-to-cache transfers are what
 * make target prediction profitable for read misses; this quantifies
 * how much the F state contributes.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Ablation: MESIF vs plain MESI (no Forwarding state)");
    QuietScope quiet;
    banner("Ablation: MESIF vs MESI (averages over all benchmarks)");
    Table t({"protocol variant", "miss latency", "comm ratio",
             "sp accuracy %"});

    // Four configs per workload: (MESIF, MESI) x (dir, sp).
    std::vector<ExperimentConfig> configs;
    for (bool f_state : {true, false}) {
        ExperimentConfig dir_cfg = directoryConfig();
        dir_cfg.tweak = [f_state](Config &c) {
            c.enableFState = f_state;
        };
        ExperimentConfig sp_cfg = predictedConfig(PredictorKind::sp);
        sp_cfg.tweak = dir_cfg.tweak;
        configs.push_back(dir_cfg);
        configs.push_back(sp_cfg);
    }
    const std::vector<std::string> names = allWorkloads();
    const auto results = sweepMatrix(names, configs);

    for (bool f_state : {true, false}) {
        const std::size_t col = f_state ? 0 : 2;
        double lat = 0, comm = 0, acc = 0;
        unsigned n = 0;
        for (std::size_t i = 0; i < names.size(); ++i) {
            const ExperimentResult &dir =
                results[i * configs.size() + col];
            const ExperimentResult &sp =
                results[i * configs.size() + col + 1];
            lat += dir.avgMissLatency();
            comm += dir.commMissFraction();
            acc += 100.0 * sp.predictionAccuracy();
            ++n;
        }
        t.cell(f_state ? "MESIF (paper)" : "MESI (no F)")
            .cell(lat / n, 1).cell(comm / n, 3).cell(acc / n, 1)
            .endRow();
    }
    t.print();
    std::printf("\n(without F, clean-shared reads fall to memory: "
                "fewer communicating misses,\n higher latency, and "
                "less for the predictor to accelerate)\n");
    return 0;
}
