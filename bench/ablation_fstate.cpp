/**
 * @file
 * Ablation: MESIF vs plain MESI (no Forwarding state). The paper's
 * baseline is MESIF because clean cache-to-cache transfers are what
 * make target prediction profitable for read misses; this quantifies
 * how much the F state contributes.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main()
{
    QuietScope quiet;
    banner("Ablation: MESIF vs MESI (averages over all benchmarks)");
    Table t({"protocol variant", "miss latency", "comm ratio",
             "sp accuracy %"});

    for (bool f_state : {true, false}) {
        double lat = 0, comm = 0, acc = 0;
        unsigned n = 0;
        for (const std::string &name : allWorkloads()) {
            ExperimentConfig dir_cfg = directoryConfig();
            dir_cfg.tweak = [f_state](Config &c) {
                c.enableFState = f_state;
            };
            ExperimentResult dir = runExperiment(name, dir_cfg);

            ExperimentConfig sp_cfg =
                predictedConfig(PredictorKind::sp);
            sp_cfg.tweak = dir_cfg.tweak;
            ExperimentResult sp = runExperiment(name, sp_cfg);

            lat += dir.avgMissLatency();
            comm += dir.commMissFraction();
            acc += 100.0 * sp.predictionAccuracy();
            ++n;
        }
        t.cell(f_state ? "MESIF (paper)" : "MESI (no F)")
            .cell(lat / n, 1).cell(comm / n, 3).cell(acc / n, 1)
            .endRow();
    }
    t.print();
    std::printf("\n(without F, clean-shared reads fall to memory: "
                "fewer communicating misses,\n higher latency, and "
                "less for the predictor to accelerate)\n");
    return 0;
}
