/**
 * @file
 * Figure 4: average cumulative communication-locality curves at
 * three granularities (sync-epoch, whole-interval, static
 * instruction) for bodytrack, fmm and water-ns.
 *
 * Paper reference: sync-epochs capture locality considerably better
 * than whole-run observation and at least as well as instruction
 * indexing.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Figure 4: cumulative communication-locality curves");
    QuietScope quiet;
    const std::vector<std::string> names = {"bodytrack", "fmm",
                                            "water-ns"};
    ExperimentConfig cfg = directoryConfig();
    cfg.collectTrace = true;
    const auto results = sweepMatrix(names, {cfg});
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const CommTrace &trace = *results[i].trace;

        const LocalityCurve epoch = epochLocality(trace);
        const LocalityCurve whole = wholeRunLocality(trace);
        const LocalityCurve inst = instructionLocality(trace);

        banner(std::string("Figure 4: communication locality, ") +
               name);
        Table t({"#cores", "sync-epoch", "single-interval",
                 "static instruction"});
        for (unsigned k = 0; k < trace.numCores(); ++k) {
            t.cell(k + 1)
                .cell(100.0 * epoch[k], 1)
                .cell(100.0 * whole[k], 1)
                .cell(100.0 * inst[k], 1)
                .endRow();
        }
        t.print();
    }
    std::printf("\n(cumulative %% of communication volume covered by"
                " the k hottest targets;\n higher at small k = better"
                " locality)\n");
    return 0;
}
