/**
 * @file
 * Ablation: fixed 150-cycle memory (the paper's Table 4 model) vs
 * the banked open-row DRAM model. Shows how memory-system detail
 * shifts absolute miss latencies while leaving the SP-prediction
 * comparison intact.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Ablation: fixed 150-cycle memory vs the banked open-row DRAM model");
    QuietScope quiet;
    banner("Ablation: fixed-latency memory vs banked DRAM "
           "(averages over all benchmarks)");
    Table t({"memory model", "dir miss lat", "sp miss lat",
             "sp/dir", "row hit %", "sp accuracy %"});

    // Four configs per workload: (fixed, dram) x (dir, sp).
    std::vector<ExperimentConfig> configs;
    for (bool dram : {false, true}) {
        ExperimentConfig dcfg = directoryConfig();
        dcfg.tweak = [dram](Config &c) { c.enableDram = dram; };
        ExperimentConfig scfg = predictedConfig(PredictorKind::sp);
        scfg.tweak = dcfg.tweak;
        configs.push_back(dcfg);
        configs.push_back(scfg);
    }
    const std::vector<std::string> names = allWorkloads();
    const auto results = sweepMatrix(names, configs);

    for (bool dram : {false, true}) {
        const std::size_t col = dram ? 2 : 0;
        double dir_lat = 0, sp_lat = 0, acc = 0;
        double hits = 0, accesses = 0;
        unsigned n = 0;
        for (std::size_t i = 0; i < names.size(); ++i) {
            const ExperimentResult &dir =
                results[i * configs.size() + col];
            const ExperimentResult &sp =
                results[i * configs.size() + col + 1];
            dir_lat += dir.avgMissLatency();
            sp_lat += sp.avgMissLatency();
            acc += 100.0 * sp.predictionAccuracy();
            ++n;
        }
        // Row-hit rate from one representative streaming run.
        {
            Config cfg;
            cfg.protocol = Protocol::directory;
            cfg.enableDram = dram;
            CmpSystem sys(cfg);
            const WorkloadSpec *spec = findWorkload("radix");
            WorkloadParams params;
            params.scale = defaultBenchScale();
            sys.run([&](ThreadContext &ctx) {
                return spec->run(ctx, params);
            });
            if (const DramModel *d = sys.memSys().dram()) {
                hits = static_cast<double>(
                    d->stats().rowHits.value());
                accesses = static_cast<double>(
                    d->stats().accesses.value());
            }
        }
        t.cell(dram ? "banked DRAM" : "fixed 150 (paper)")
            .cell(dir_lat / n, 1).cell(sp_lat / n, 1)
            .cell(sp_lat / dir_lat, 3)
            .cell(accesses > 0 ? 100.0 * hits / accesses : 0.0, 1)
            .cell(acc / n, 1).endRow();
    }
    t.print();
    std::printf("\n(the SP-vs-directory ratio is robust to the "
                "memory model)\n");
    return 0;
}
