/**
 * @file
 * Table 1: sync-epoch statistics per benchmark (static critical
 * sections, static sync-epochs, total dynamic sync-epochs per core),
 * with the paper's values as reference columns.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Table 1: sync-epoch statistics per benchmark");
    QuietScope quiet;
    banner("Table 1: Sync-epoch statistics (per-core average)");
    Table t({"benchmark", "input", "static CS", "(paper)",
             "static epochs", "(paper)", "dyn epochs", "(paper)"});

    ExperimentConfig cfg = directoryConfig();
    cfg.collectTrace = true;
    const auto results = sweepMatrix(allWorkloads(), {cfg});

    std::size_t i = 0;
    for (const auto &spec : workloadRegistry()) {
        const EpochStats s = computeEpochStats(*results[i++].trace);
        t.cell(spec.name).cell(spec.input)
            .cell(s.staticCriticalSections).cell(spec.paperStaticCS)
            .cell(s.staticSyncEpochs).cell(spec.paperStaticEpochs)
            .cell(s.dynEpochsPerCore, 0).cell(spec.paperDynEpochs)
            .endRow();
    }
    t.print();
    std::printf("\n(our synthetic inputs are smaller than the paper's;"
                " the regimes --\n few vs many static sites, few vs"
                " many dynamic instances -- are what matter)\n");
    return 0;
}
