/**
 * @file
 * Figure 9: additional bandwidth demands of SP-prediction relative
 * to the base directory protocol, split into waste from predicting
 * non-communicating misses vs communicating misses.
 *
 * Paper reference: +18% average, ~70% of the overhead from
 * non-communicating misses; far below broadcast.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Figure 9: additional bandwidth demands of SP-prediction");
    QuietScope quiet;
    banner("Figure 9: additional bandwidth of SP-prediction vs "
           "directory (%)");
    Table t({"benchmark", "total +%", "non-comm +%", "comm +%",
             "broadcast +%"});

    double sum_total = 0;
    unsigned n = 0;
    const std::vector<std::string> names = allWorkloads();
    const auto results = sweepMatrix(
        names, {directoryConfig(), broadcastConfig(),
                predictedConfig(PredictorKind::sp)});
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const ExperimentResult &dir = results[i * 3 + 0];
        const ExperimentResult &bc = results[i * 3 + 1];
        const ExperimentResult &sp = results[i * 3 + 2];

        const double base =
            static_cast<double>(dir.run.noc.flitBytes.value());
        const double extra =
            static_cast<double>(sp.run.noc.flitBytes.value()) - base;
        const double bc_extra =
            static_cast<double>(bc.run.noc.flitBytes.value()) - base;

        // Attribute the overhead using the tracked waste split.
        const double w_nc = static_cast<double>(
            sp.run.mem.predWasteBytesNonComm.value());
        const double w_c = static_cast<double>(
            sp.run.mem.predWasteBytesComm.value());
        const double w_total = w_nc + w_c;
        const double nc_share = w_total > 0 ? w_nc / w_total : 0.0;

        const double total_pct = 100.0 * extra / base;
        t.cell(name)
            .cell(total_pct, 1)
            .cell(total_pct * nc_share, 1)
            .cell(total_pct * (1.0 - nc_share), 1)
            .cell(100.0 * bc_extra / base, 1)
            .endRow();
        sum_total += total_pct;
        ++n;
    }
    t.print();
    std::printf("\naverage additional bandwidth: %.1f%% "
                "(paper: 18%%, below 10%% of what broadcast adds)\n",
                sum_total / n);
    return 0;
}
