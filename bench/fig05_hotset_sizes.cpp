/**
 * @file
 * Figure 5: distribution of sync-epochs by hot-communication-set
 * size (10% threshold), buckets 1 / 2 / 3 / 4 / >=5.
 *
 * Paper reference: more than 78% of intervals have a hot set of
 * size <= 4.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Figure 5: sync-epoch distribution by hot-set size");
    QuietScope quiet;
    banner("Figure 5: sync-epoch distribution by hot-set size "
           "(threshold 10%)");
    Table t({"benchmark", "1", "2", "3", "4", ">=5", "<=4 total"});

    const std::vector<std::string> names = allWorkloads();
    ExperimentConfig cfg = directoryConfig();
    cfg.collectTrace = true;
    const auto results = sweepMatrix(names, {cfg});

    double sum_small = 0;
    unsigned n = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const auto dist =
            hotSetSizeDistribution(*results[i].trace, 0.10);
        const double small =
            dist[0] + dist[1] + dist[2] + dist[3];
        t.cell(name);
        for (double d : dist)
            t.cell(d, 3);
        t.cell(small, 3).endRow();
        sum_small += small;
        ++n;
    }
    t.print();
    std::printf("\naverage fraction of epochs with hot set <= 4: %.3f"
                " (paper: >= 0.78)\n", sum_small / n);
    return 0;
}
