/**
 * @file
 * Figure 12: latency/bandwidth trade-off plane for SP-, ADDR-, INST-
 * and UNI-prediction and the plain directory, on fmm, ocean,
 * fluidanimate and dedup (unlimited predictor tables).
 *
 * x: additional request bandwidth per miss relative to the directory
 *    protocol (%); y: % of misses incurring directory indirection.
 * Lower-left is better; the directory sits at the upper-left.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

namespace {

struct Point
{
    double addedBandwidthPct;
    double indirectionPct;
};

Point
pointOf(const ExperimentResult &r, const ExperimentResult &dir)
{
    const double dir_bpm = dir.bytesPerMiss();
    Point p;
    p.addedBandwidthPct =
        100.0 * (r.bytesPerMiss() - dir_bpm) / dir_bpm;
    const double misses =
        static_cast<double>(r.run.mem.misses.value());
    const double comm_sufficient = static_cast<double>(
        r.run.mem.predictionsSufficient.value());
    const double comm =
        static_cast<double>(r.run.mem.communicatingMisses.value());
    // Non-communicating misses never "indirect" to another cache;
    // the metric follows the paper: communicating misses that still
    // needed the directory.
    p.indirectionPct =
        misses > 0 ? 100.0 * (comm - comm_sufficient) / misses : 0.0;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Figure 12: latency/bandwidth trade-off plane per predictor");
    QuietScope quiet;
    banner("Figure 12: performance/bandwidth trade-off "
           "(unlimited tables)");
    const std::vector<std::string> names = {"fmm", "ocean",
                                            "fluidanimate", "dedup"};
    const std::vector<std::pair<const char *, PredictorKind>> kinds =
        {{"SP-predictor", PredictorKind::sp},
         {"ADDR-predictor", PredictorKind::addr},
         {"INST-predictor", PredictorKind::inst},
         {"UNI-predictor", PredictorKind::uni}};
    std::vector<ExperimentConfig> configs = {directoryConfig()};
    for (const auto &[label, kind] : kinds)
        configs.push_back(predictedConfig(kind));
    const auto results = sweepMatrix(names, configs);

    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::size_t base = i * configs.size();
        const ExperimentResult &dir = results[base];

        Table t({"predictor", "+bandwidth/miss %", "misses indirect %"});
        const Point d = pointOf(dir, dir);
        t.cell("Directory").cell(d.addedBandwidthPct, 1)
            .cell(d.indirectionPct, 1).endRow();
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            const Point p = pointOf(results[base + 1 + k], dir);
            t.cell(kinds[k].first).cell(p.addedBandwidthPct, 1)
                .cell(p.indirectionPct, 1).endRow();
        }
        banner(std::string("Figure 12: ") + names[i]);
        t.print();
    }
    std::printf("\n(lower-left corner is the best point of the "
                "trade-off space)\n");
    return 0;
}
