/**
 * @file
 * Event-kernel perf microbench: the first entry in the repo's perf
 * trajectory (BENCH_kernel.json).
 *
 * Times the simulation kernel itself — events/sec and misses/sec —
 * on four representative cells, one per protocol engine plus a
 * wide-machine cell:
 *
 *   ocean/directory          barrier-phase wavefront sharing
 *   streamcluster/broadcast  high-epoch-count hot-set churn
 *   radiosity/predicted+sp   lock-heavy migratory sharing through
 *                            the prediction path
 *   ocean/directory @ 64     the same kernel on an 8x8 machine,
 *                            guarding the multi-word CoreSet paths
 *
 * plus two observability cells, both radiosity/predicted+sp again:
 * one with an AttributionProfiler compiled in but *disabled* (the
 * profiler exists, its hot-path hooks are untaken branches — the
 * configuration every normal run pays for), and one with the
 * profiler attached and collecting. Both are excluded from the
 * aggregate (totals stay comparable across schema versions) and are
 * compared against the plain radiosity cell intra-run — a ratio
 * robust to machine-to-machine variance, so it can gate far tighter
 * than the committed-baseline check: `--attr-overhead-tolerance PCT`
 * fails the run when the *disabled*-profiler cell exceeds the
 * budget. The attached-profiler overhead is reported and recorded
 * in the JSON for trend tracking, but not gated (an attached
 * profiler is an opt-in diagnostic; its cost is inherent virtual
 * dispatch per message, not a regression signal).
 *
 * A seventh cell replays the ocean/directory cell from an op trace
 * recorded once (untimed) instead of running the live generator
 * coroutine: it times the trace frontend's replay path and reports
 * the replay-vs-live delta against its live twin. Like the profiler
 * cells it is excluded from the aggregate and asserted to reproduce
 * the twin's exact event and tick counts.
 *
 * Each cell runs `--reps` times and reports the best wall clock (the
 * least-noise estimate of kernel cost; event/miss counts are
 * deterministic across reps and are asserted to be so). The summary
 * and JSON include aggregate events/sec across all cells, which is
 * the number CI guards.
 *
 * With `--baseline FILE` the run compares its aggregate events/sec
 * against the committed baseline and exits non-zero on a regression
 * beyond `--tolerance` percent (default 20) — wide enough for
 * machine-to-machine variance, tight enough to catch an accidental
 * return to per-event heap allocation.
 *
 * Deliberately built on the low-level API (Config + CmpSystem +
 * workload registry, no experiment harness) so the harness itself is
 * insensitive to analysis-layer refactors and measures only the
 * kernel.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/attribution.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "sim/cmp_system.hh"
#include "telemetry/json.hh"
#include "trace/format.hh"
#include "trace/replay.hh"
#include "workload/workload.hh"

using namespace spp;

namespace {

/** Profiler configuration of one cell. */
enum class AttrMode
{
    off,        ///< No profiler object at all (the three base cells).
    disabled,   ///< Profiler constructed, never attached: the hooks
                ///< compile in but stay untaken — what every normal
                ///< run pays. Gated by --attr-overhead-tolerance.
    attached,   ///< Profiler attached and collecting (report-only).
};

const char *
toString(AttrMode m)
{
    switch (m) {
    case AttrMode::off: return "off";
    case AttrMode::disabled: return "disabled";
    case AttrMode::attached: return "attached";
    }
    return "?";
}

struct Cell
{
    const char *workload;
    Protocol protocol;
    PredictorKind predictor;
    unsigned cores;
    AttrMode attr;
    /** Drive the cell from a pre-recorded in-memory op trace
     * instead of the live generator coroutine (the trace frontend's
     * replay path). Compared against its live twin intra-run. */
    bool replay = false;
};

constexpr Cell kCells[] = {
    {"ocean", Protocol::directory, PredictorKind::none, 16,
     AttrMode::off},
    {"streamcluster", Protocol::broadcast, PredictorKind::none, 16,
     AttrMode::off},
    {"radiosity", Protocol::predicted, PredictorKind::sp, 16,
     AttrMode::off},
    // Scale cell: the same directory workload at 64 cores guards the
    // multi-word CoreSet / wide-machine paths against regressions.
    {"ocean", Protocol::directory, PredictorKind::none, 64,
     AttrMode::off},
    // Observability cells: the prediction-path workload with the
    // attribution profiler compiled-in-but-disabled (gated against
    // the plain radiosity cell via --attr-overhead-tolerance) and
    // attached-and-collecting (report-only).
    {"radiosity", Protocol::predicted, PredictorKind::sp, 16,
     AttrMode::disabled},
    {"radiosity", Protocol::predicted, PredictorKind::sp, 16,
     AttrMode::attached},
    // Replay cell: the ocean/directory cell driven from a recorded
    // op trace instead of the live generator — times the trace
    // frontend's replay path and measures generator overhead.
    // Excluded from totals (like the profiler cells) and asserted
    // event-identical to its live twin.
    {"ocean", Protocol::directory, PredictorKind::none, 16,
     AttrMode::off, true},
};

// Cell indices the profiler-overhead comparisons use.
constexpr std::size_t kPlainRadiosityCell = 2;
constexpr std::size_t kProfOffCell = 4;
constexpr std::size_t kAttrCell = 5;
// Replay-speedup comparison: replay cell vs its live twin.
constexpr std::size_t kPlainOceanCell = 0;
constexpr std::size_t kReplayCell = 6;

struct CellResult
{
    const Cell *cell = nullptr;
    std::uint64_t events = 0;
    std::uint64_t misses = 0;
    Tick ticks = 0;
    double wallMs = 0.0;   ///< Best-of-reps.

    double
    eventsPerSec() const
    {
        return static_cast<double>(events) / (wallMs / 1e3);
    }
    double
    missesPerSec() const
    {
        return static_cast<double>(misses) / (wallMs / 1e3);
    }
};

struct Options
{
    std::string out = "BENCH_kernel.json";
    std::string baseline;
    double tolerancePct = 20.0;
    /** Max allowed disabled-profiler-vs-plain slowdown in percent;
     * 0 = report only. */
    double attrOverheadPct = 0.0;
    unsigned reps = 3;
    double scale = 1.0;
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--out FILE] [--baseline FILE]\n"
                 "          [--tolerance PCT] "
                 "[--attr-overhead-tolerance PCT]\n"
                 "          [--reps N] [--scale X]\n",
                 argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    if (const char *env = std::getenv("SPP_BENCH_SCALE"))
        o.scale = std::atof(env);
    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--out"))
            o.out = next(i);
        else if (!std::strcmp(a, "--baseline"))
            o.baseline = next(i);
        else if (!std::strcmp(a, "--tolerance"))
            o.tolerancePct = std::atof(next(i));
        else if (!std::strcmp(a, "--attr-overhead-tolerance"))
            o.attrOverheadPct = std::atof(next(i));
        else if (!std::strcmp(a, "--reps"))
            o.reps = static_cast<unsigned>(std::atoi(next(i)));
        else if (!std::strcmp(a, "--scale"))
            o.scale = std::atof(next(i));
        else
            usage(argv[0]);
    }
    if (o.reps == 0)
        o.reps = 1;
    return o;
}

Config
configFor(const Cell &cell)
{
    Config cfg;
    cfg.protocol = cell.protocol;
    cfg.predictor = cell.predictor;
    cfg.numCores = cell.cores;
    unsigned y = 1;
    for (unsigned d = 2; d * d <= cell.cores; ++d)
        if (cell.cores % d == 0)
            y = d;
    cfg.meshY = y;
    cfg.meshX = cell.cores / y;
    return cfg;
}

/**
 * The recorded op trace a replay cell runs from, captured once
 * (outside any timed region) on first use and reused across reps.
 */
std::shared_ptr<const TraceData>
replayTraceFor(const Cell &cell, const Options &o)
{
    static std::map<const Cell *,
                    std::shared_ptr<const TraceData>> cache;
    auto &slot = cache[&cell];
    if (slot)
        return slot;

    const WorkloadSpec *spec = findWorkload(cell.workload);
    if (!spec)
        SPP_FATAL("unknown workload '{}'", cell.workload);
    WorkloadParams params;
    params.scale = o.scale;

    CmpSystem sys(configFor(cell));
    TraceRecorder recorder(cell.cores);
    sys.setTraceSink(&recorder);
    sys.run([spec, params](ThreadContext &ctx) {
        return spec->run(ctx, params);
    });
    slot = std::make_shared<TraceData>(std::move(recorder.data));
    return slot;
}

/** One timed execution of @p cell, folded into @p r (best-of). */
void
runCellOnce(const Cell &cell, const Options &o, CellResult &r)
{
    const Config cfg = configFor(cell);

    // Build the thread function before the clock starts: for a
    // replay cell the first rep records the trace here, untimed.
    CmpSystem::ThreadFn fn;
    if (cell.replay) {
        fn = replayThreadFn(replayTraceFor(cell, o));
    } else {
        const WorkloadSpec *spec = findWorkload(cell.workload);
        if (!spec)
            SPP_FATAL("unknown workload '{}'", cell.workload);
        WorkloadParams params;
        params.scale = o.scale;
        fn = [spec, params](ThreadContext &ctx) {
            return spec->run(ctx, params);
        };
    }

    CmpSystem sys(cfg);
    // AttrMode::disabled constructs the profiler but never attaches
    // it: the sink hooks stay untaken branches, which is exactly
    // what a normal (unprofiled) run executes.
    AttributionProfiler attrib{AttributionOptions{}};
    if (cell.attr == AttrMode::attached)
        attrib.attach(sys);
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult run = sys.run(fn);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    if (r.cell == nullptr) {
        r.cell = &cell;
        r.events = run.eventsExecuted;
        r.misses = run.mem.misses.value();
        r.ticks = run.ticks;
        r.wallMs = ms;
    } else {
        // The kernel is deterministic; only the wall clock may
        // differ between reps.
        SPP_ASSERT(run.eventsExecuted == r.events &&
                       run.mem.misses.value() == r.misses &&
                       run.ticks == r.ticks,
                   "nondeterministic rep for {}", cell.workload);
        r.wallMs = std::min(r.wallMs, ms);
    }
}

/** Aggregate events/sec recorded in @p path; < 0 on parse failure. */
double
baselineEventsPerSec(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return -1.0;
    std::ostringstream ss;
    ss << in.rdbuf();
    const auto doc = Json::parse(ss.str());
    if (!doc)
        return -1.0;
    const Json *totals = doc->find("totals");
    if (!totals)
        return -1.0;
    const Json *eps = totals->find("events_per_sec");
    return eps && eps->isNumber() ? eps->asNumber() : -1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);
    setQuiet(true);

    // Reps are interleaved across cells (cell 0..N, then again) so
    // slow system phases hit every cell equally; a sequential
    // per-cell rep loop would bias the intra-run overhead ratios on
    // machines whose speed drifts over the run.
    constexpr std::size_t kNumCells =
        sizeof(kCells) / sizeof(kCells[0]);
    std::vector<CellResult> cells(kNumCells);
    for (unsigned rep = 0; rep < o.reps; ++rep)
        for (std::size_t i = 0; i < kNumCells; ++i)
            runCellOnce(kCells[i], o, cells[i]);

    std::uint64_t total_events = 0, total_misses = 0;
    double total_ms = 0.0;
    for (std::size_t i = 0; i < kNumCells; ++i) {
        const Cell &cell = kCells[i];
        const CellResult &r = cells[i];
        const char *tag = cell.replay                      ? "+rply "
            : cell.attr == AttrMode::attached              ? "+attr "
            : cell.attr == AttrMode::disabled              ? "+prof0"
                                                           : "      ";
        std::printf("%-13s %-9s %-4s c%-4u%s events %9llu  "
                    "misses %8llu  ticks %9llu  wall %8.2f ms  "
                    "%7.2f Mev/s\n",
                    cell.workload, toString(cell.protocol),
                    toString(cell.predictor), cell.cores, tag,
                    static_cast<unsigned long long>(r.events),
                    static_cast<unsigned long long>(r.misses),
                    static_cast<unsigned long long>(r.ticks),
                    r.wallMs, r.eventsPerSec() / 1e6);
        // The profiler and replay cells are overhead probes, not
        // part of the aggregate: totals stay comparable to pre-v3
        // baselines.
        if (cell.attr == AttrMode::off && !cell.replay) {
            total_events += r.events;
            total_misses += r.misses;
            total_ms += r.wallMs;
        }
    }

    // Attribution is purely observational: both profiler cells must
    // replay the exact same simulation as their plain twin.
    for (const std::size_t idx : {kProfOffCell, kAttrCell})
        SPP_ASSERT(cells[idx].events ==
                           cells[kPlainRadiosityCell].events &&
                       cells[idx].ticks ==
                           cells[kPlainRadiosityCell].ticks,
                   "attribution profiler perturbed the simulation");

    // Replay must reproduce its live twin's simulation exactly: same
    // op stream in, same event schedule out.
    SPP_ASSERT(cells[kReplayCell].events ==
                       cells[kPlainOceanCell].events &&
                   cells[kReplayCell].ticks ==
                       cells[kPlainOceanCell].ticks,
               "trace replay diverged from its live twin");

    const double total_eps =
        static_cast<double>(total_events) / (total_ms / 1e3);
    const double total_mps =
        static_cast<double>(total_misses) / (total_ms / 1e3);
    std::printf("total: %llu events, %llu misses in %.2f ms — "
                "%.2f Mev/s, %.2f Mmiss/s\n",
                static_cast<unsigned long long>(total_events),
                static_cast<unsigned long long>(total_misses),
                total_ms, total_eps / 1e6, total_mps / 1e6);

    const double prof_off_overhead =
        cells[kProfOffCell].wallMs /
            cells[kPlainRadiosityCell].wallMs -
        1.0;
    const double attr_overhead =
        cells[kAttrCell].wallMs / cells[kPlainRadiosityCell].wallMs -
        1.0;
    std::printf("profiler-off overhead: %+.1f%% "
                "(radiosity+prof0 %.2f ms vs %.2f ms)\n",
                prof_off_overhead * 100.0, cells[kProfOffCell].wallMs,
                cells[kPlainRadiosityCell].wallMs);
    std::printf("attached-profiler overhead: %+.1f%% "
                "(radiosity+attr %.2f ms vs %.2f ms, report-only)\n",
                attr_overhead * 100.0, cells[kAttrCell].wallMs,
                cells[kPlainRadiosityCell].wallMs);
    const double replay_speedup =
        cells[kPlainOceanCell].wallMs / cells[kReplayCell].wallMs -
        1.0;
    std::printf("trace-replay speedup: %+.1f%% "
                "(ocean replay %.2f ms vs live %.2f ms, "
                "report-only)\n",
                replay_speedup * 100.0, cells[kReplayCell].wallMs,
                cells[kPlainOceanCell].wallMs);

    Json doc = Json::object();
    doc["schema"] = "spp.perf_kernel.v4";
    doc["scale"] = o.scale;
    doc["reps"] = o.reps;
    Json arr = Json::array();
    for (const CellResult &r : cells) {
        Json c = Json::object();
        c["workload"] = r.cell->workload;
        c["protocol"] = toString(r.cell->protocol);
        c["predictor"] = toString(r.cell->predictor);
        c["cores"] = r.cell->cores;
        c["attr"] = toString(r.cell->attr);
        c["replay"] = r.cell->replay;
        c["events"] = r.events;
        c["misses"] = r.misses;
        c["ticks"] = static_cast<std::uint64_t>(r.ticks);
        c["wall_ms"] = r.wallMs;
        c["events_per_sec"] = r.eventsPerSec();
        c["misses_per_sec"] = r.missesPerSec();
        arr.push(std::move(c));
    }
    doc["cells"] = std::move(arr);
    Json totals = Json::object();
    totals["events"] = total_events;
    totals["misses"] = total_misses;
    totals["wall_ms"] = total_ms;
    totals["events_per_sec"] = total_eps;
    totals["misses_per_sec"] = total_mps;
    doc["totals"] = std::move(totals);
    doc["prof_off_overhead_pct"] = prof_off_overhead * 100.0;
    doc["attr_overhead_pct"] = attr_overhead * 100.0;
    doc["replay_speedup_pct"] = replay_speedup * 100.0;

    std::ofstream out(o.out);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", o.out.c_str());
        return 1;
    }
    doc.write(out, 0);
    out << "\n";
    out.close();
    std::printf("wrote %s\n", o.out.c_str());

    if (!o.baseline.empty()) {
        const double base = baselineEventsPerSec(o.baseline);
        if (base <= 0.0) {
            std::fprintf(stderr, "cannot read baseline %s\n",
                         o.baseline.c_str());
            return 1;
        }
        const double ratio = total_eps / base;
        std::printf("baseline %.2f Mev/s, now %.2f Mev/s "
                    "(%+.1f%%, tolerance -%.0f%%)\n",
                    base / 1e6, total_eps / 1e6,
                    (ratio - 1.0) * 100.0, o.tolerancePct);
        if (ratio < 1.0 - o.tolerancePct / 100.0) {
            std::printf("FAIL: events/sec regressed beyond "
                        "tolerance\n");
            return 1;
        }
    }

    if (o.attrOverheadPct > 0.0 &&
        prof_off_overhead > o.attrOverheadPct / 100.0) {
        std::printf("FAIL: profiler-off overhead %.1f%% exceeds "
                    "tolerance %.0f%%\n",
                    prof_off_overhead * 100.0, o.attrOverheadPct);
        return 1;
    }
    return 0;
}
