/**
 * @file
 * Event-kernel perf microbench: the first entry in the repo's perf
 * trajectory (BENCH_kernel.json).
 *
 * Times the simulation kernel itself — events/sec and misses/sec —
 * on four representative cells, one per protocol engine plus a
 * wide-machine cell:
 *
 *   ocean/directory          barrier-phase wavefront sharing
 *   streamcluster/broadcast  high-epoch-count hot-set churn
 *   radiosity/predicted+sp   lock-heavy migratory sharing through
 *                            the prediction path
 *   ocean/directory @ 64     the same kernel on an 8x8 machine,
 *                            guarding the multi-word CoreSet paths
 *
 * Each cell runs `--reps` times and reports the best wall clock (the
 * least-noise estimate of kernel cost; event/miss counts are
 * deterministic across reps and are asserted to be so). The summary
 * and JSON include aggregate events/sec across all cells, which is
 * the number CI guards.
 *
 * With `--baseline FILE` the run compares its aggregate events/sec
 * against the committed baseline and exits non-zero on a regression
 * beyond `--tolerance` percent (default 20) — wide enough for
 * machine-to-machine variance, tight enough to catch an accidental
 * return to per-event heap allocation.
 *
 * Deliberately built on the low-level API (Config + CmpSystem +
 * workload registry, no experiment harness) so the harness itself is
 * insensitive to analysis-layer refactors and measures only the
 * kernel.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "sim/cmp_system.hh"
#include "telemetry/json.hh"
#include "workload/workload.hh"

using namespace spp;

namespace {

struct Cell
{
    const char *workload;
    Protocol protocol;
    PredictorKind predictor;
    unsigned cores;
};

constexpr Cell kCells[] = {
    {"ocean", Protocol::directory, PredictorKind::none, 16},
    {"streamcluster", Protocol::broadcast, PredictorKind::none, 16},
    {"radiosity", Protocol::predicted, PredictorKind::sp, 16},
    // Scale cell: the same directory workload at 64 cores guards the
    // multi-word CoreSet / wide-machine paths against regressions.
    {"ocean", Protocol::directory, PredictorKind::none, 64},
};

struct CellResult
{
    const Cell *cell = nullptr;
    std::uint64_t events = 0;
    std::uint64_t misses = 0;
    Tick ticks = 0;
    double wallMs = 0.0;   ///< Best-of-reps.

    double
    eventsPerSec() const
    {
        return static_cast<double>(events) / (wallMs / 1e3);
    }
    double
    missesPerSec() const
    {
        return static_cast<double>(misses) / (wallMs / 1e3);
    }
};

struct Options
{
    std::string out = "BENCH_kernel.json";
    std::string baseline;
    double tolerancePct = 20.0;
    unsigned reps = 3;
    double scale = 1.0;
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--out FILE] [--baseline FILE]\n"
                 "          [--tolerance PCT] [--reps N] "
                 "[--scale X]\n",
                 argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    if (const char *env = std::getenv("SPP_BENCH_SCALE"))
        o.scale = std::atof(env);
    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--out"))
            o.out = next(i);
        else if (!std::strcmp(a, "--baseline"))
            o.baseline = next(i);
        else if (!std::strcmp(a, "--tolerance"))
            o.tolerancePct = std::atof(next(i));
        else if (!std::strcmp(a, "--reps"))
            o.reps = static_cast<unsigned>(std::atoi(next(i)));
        else if (!std::strcmp(a, "--scale"))
            o.scale = std::atof(next(i));
        else
            usage(argv[0]);
    }
    if (o.reps == 0)
        o.reps = 1;
    return o;
}

CellResult
runCell(const Cell &cell, const Options &o)
{
    const WorkloadSpec *spec = findWorkload(cell.workload);
    if (!spec)
        SPP_FATAL("unknown workload '{}'", cell.workload);

    Config cfg;
    cfg.protocol = cell.protocol;
    cfg.predictor = cell.predictor;
    cfg.numCores = cell.cores;
    unsigned y = 1;
    for (unsigned d = 2; d * d <= cell.cores; ++d)
        if (cell.cores % d == 0)
            y = d;
    cfg.meshY = y;
    cfg.meshX = cell.cores / y;

    WorkloadParams params;
    params.scale = o.scale;

    CellResult r;
    r.cell = &cell;
    for (unsigned rep = 0; rep < o.reps; ++rep) {
        CmpSystem sys(cfg);
        const auto t0 = std::chrono::steady_clock::now();
        const RunResult run =
            sys.run([spec, params](ThreadContext &ctx) {
                return spec->run(ctx, params);
            });
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count();

        if (rep == 0) {
            r.events = run.eventsExecuted;
            r.misses = run.mem.misses.value();
            r.ticks = run.ticks;
            r.wallMs = ms;
        } else {
            // The kernel is deterministic; only the wall clock may
            // differ between reps.
            SPP_ASSERT(run.eventsExecuted == r.events &&
                           run.mem.misses.value() == r.misses &&
                           run.ticks == r.ticks,
                       "nondeterministic rep for {}", cell.workload);
            r.wallMs = std::min(r.wallMs, ms);
        }
    }
    return r;
}

/** Aggregate events/sec recorded in @p path; < 0 on parse failure. */
double
baselineEventsPerSec(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return -1.0;
    std::ostringstream ss;
    ss << in.rdbuf();
    const auto doc = Json::parse(ss.str());
    if (!doc)
        return -1.0;
    const Json *totals = doc->find("totals");
    if (!totals)
        return -1.0;
    const Json *eps = totals->find("events_per_sec");
    return eps && eps->isNumber() ? eps->asNumber() : -1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parseArgs(argc, argv);
    setQuiet(true);

    std::vector<CellResult> cells;
    std::uint64_t total_events = 0, total_misses = 0;
    double total_ms = 0.0;
    for (const Cell &cell : kCells) {
        CellResult r = runCell(cell, o);
        std::printf("%-13s %-9s %-4s c%-4u events %10llu  "
                    "misses %8llu  ticks %9llu  wall %8.2f ms  "
                    "%7.2f Mev/s\n",
                    cell.workload, toString(cell.protocol),
                    toString(cell.predictor), cell.cores,
                    static_cast<unsigned long long>(r.events),
                    static_cast<unsigned long long>(r.misses),
                    static_cast<unsigned long long>(r.ticks),
                    r.wallMs, r.eventsPerSec() / 1e6);
        total_events += r.events;
        total_misses += r.misses;
        total_ms += r.wallMs;
        cells.push_back(r);
    }

    const double total_eps =
        static_cast<double>(total_events) / (total_ms / 1e3);
    const double total_mps =
        static_cast<double>(total_misses) / (total_ms / 1e3);
    std::printf("total: %llu events, %llu misses in %.2f ms — "
                "%.2f Mev/s, %.2f Mmiss/s\n",
                static_cast<unsigned long long>(total_events),
                static_cast<unsigned long long>(total_misses),
                total_ms, total_eps / 1e6, total_mps / 1e6);

    Json doc = Json::object();
    doc["schema"] = "spp.perf_kernel.v2";
    doc["scale"] = o.scale;
    doc["reps"] = o.reps;
    Json arr = Json::array();
    for (const CellResult &r : cells) {
        Json c = Json::object();
        c["workload"] = r.cell->workload;
        c["protocol"] = toString(r.cell->protocol);
        c["predictor"] = toString(r.cell->predictor);
        c["cores"] = r.cell->cores;
        c["events"] = r.events;
        c["misses"] = r.misses;
        c["ticks"] = static_cast<std::uint64_t>(r.ticks);
        c["wall_ms"] = r.wallMs;
        c["events_per_sec"] = r.eventsPerSec();
        c["misses_per_sec"] = r.missesPerSec();
        arr.push(std::move(c));
    }
    doc["cells"] = std::move(arr);
    Json totals = Json::object();
    totals["events"] = total_events;
    totals["misses"] = total_misses;
    totals["wall_ms"] = total_ms;
    totals["events_per_sec"] = total_eps;
    totals["misses_per_sec"] = total_mps;
    doc["totals"] = std::move(totals);

    std::ofstream out(o.out);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", o.out.c_str());
        return 1;
    }
    doc.write(out, 0);
    out << "\n";
    out.close();
    std::printf("wrote %s\n", o.out.c_str());

    if (!o.baseline.empty()) {
        const double base = baselineEventsPerSec(o.baseline);
        if (base <= 0.0) {
            std::fprintf(stderr, "cannot read baseline %s\n",
                         o.baseline.c_str());
            return 1;
        }
        const double ratio = total_eps / base;
        std::printf("baseline %.2f Mev/s, now %.2f Mev/s "
                    "(%+.1f%%, tolerance -%.0f%%)\n",
                    base / 1e6, total_eps / 1e6,
                    (ratio - 1.0) * 100.0, o.tolerancePct);
        if (ratio < 1.0 - o.tolerancePct / 100.0) {
            std::printf("FAIL: events/sec regressed beyond "
                        "tolerance\n");
            return 1;
        }
    }
    return 0;
}
