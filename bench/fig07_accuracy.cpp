/**
 * @file
 * Figure 7: SP-prediction accuracy — percentage of communicating
 * misses whose predicted set was sufficient (no directory
 * indirection), broken down by the knowledge that produced the
 * prediction (d=0 warm-up, d=2 history/pattern, lock, recovery),
 * plus the ideal accuracy if each epoch's hot set were known a
 * priori.
 *
 * Paper reference: 77% average accuracy (98% best, 59% worst);
 * history-based predictions contribute up to 40%, recovery ~9%.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

namespace {

/** Ideal accuracy: fraction of communicating misses covered by their
 * own epoch's (a-priori known) hot set. */
double
idealAccuracy(const CommTrace &trace, double threshold)
{
    std::uint64_t covered = 0;
    std::uint64_t total = 0;
    for (unsigned c = 0; c < trace.numCores(); ++c) {
        for (const EpochRecord &e : trace.epochs(c)) {
            const CoreSet hot = e.hotSet(threshold);
            for (const CoreSet &targets : e.missTargets) {
                ++total;
                if (hot.contains(targets))
                    ++covered;
            }
        }
    }
    return total ? static_cast<double>(covered) /
            static_cast<double>(total)
                 : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Figure 7: SP-prediction accuracy by knowledge source");
    QuietScope quiet;
    banner("Figure 7: SP-prediction accuracy "
           "(% of communicating misses)");
    Table t({"benchmark", "d=0 warmup", "d=2 history", "lock",
             "recovery", "total", "ideal"});

    const std::vector<std::string> names = allWorkloads();
    ExperimentConfig tcfg = directoryConfig();
    tcfg.collectTrace = true;
    tcfg.recordMissTargets = true;
    const auto results = sweepMatrix(
        names, {predictedConfig(PredictorKind::sp), tcfg});

    double sum_total = 0;
    unsigned n = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const ExperimentResult &sp = results[i * 2 + 0];
        const ExperimentResult &traced = results[i * 2 + 1];

        const double comm = static_cast<double>(
            sp.run.mem.communicatingMisses.value());
        auto pct = [&](PredSource s) {
            return comm == 0 ? 0.0
                : 100.0 * static_cast<double>(
                      sp.run.mem.sufficientBySource[
                          static_cast<std::size_t>(s)]) /
                      static_cast<double>(comm);
        };
        const double warmup = pct(PredSource::warmup);
        const double history =
            pct(PredSource::history) + pct(PredSource::pattern);
        const double lock = pct(PredSource::lock);
        const double recovery = pct(PredSource::recovery);
        const double total = 100.0 * sp.predictionAccuracy();
        const double ideal = 100.0 * idealAccuracy(*traced.trace, 0.10);

        t.cell(name).cell(warmup, 1).cell(history, 1).cell(lock, 1)
            .cell(recovery, 1).cell(total, 1).cell(ideal, 1).endRow();
        sum_total += total;
        ++n;
    }
    t.print();
    std::printf("\naverage accuracy: %.1f%% (paper: 77%%)\n",
                sum_total / n);
    return 0;
}
