/**
 * @file
 * google-benchmark microbenchmarks for the hot components of the
 * simulator and predictor: the SP-prediction hardware operations
 * (counter update, hot-set extraction, table probe), the baseline
 * group-predictor probe, the event kernel and the mesh model.
 */

#include <benchmark/benchmark.h>

#include "common/config.hh"
#include "common/rng.hh"
#include "core/comm_counters.hh"
#include "core/sp_predictor.hh"
#include "event/event_queue.hh"
#include "noc/mesh.hh"
#include "predict/group_predictor.hh"

using namespace spp;

static void
BM_CommCountersRecord(benchmark::State &state)
{
    CommCounters c;
    CoreSet who{3, 7};
    for (auto _ : state) {
        c.record(who);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CommCountersRecord);

static void
BM_HotSetExtraction(benchmark::State &state)
{
    CommCounters c;
    Rng rng(1);
    for (int i = 0; i < 200; ++i)
        c.record(CoreSet::single(
            static_cast<CoreId>(rng.below(16))));
    for (auto _ : state) {
        CoreSet hot = c.hotSet(0.10);
        benchmark::DoNotOptimize(hot);
    }
}
BENCHMARK(BM_HotSetExtraction);

static void
BM_SpPredict(benchmark::State &state)
{
    Config cfg;
    SpPredictor pred(cfg, 16);
    SyncPointInfo info;
    info.type = SyncType::barrier;
    info.staticId = 1;
    PredictionQuery q;
    q.core = 0;
    pred.onSyncPoint(0, info);
    for (int i = 0; i < 20; ++i) {
        pred.trainResponse(q, CoreSet{5});
        pred.feedback(0, Prediction{}, true, false);
    }
    pred.onSyncPoint(0, info);
    pred.onSyncPoint(0, info);
    for (auto _ : state) {
        Prediction p = pred.predict(q);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_SpPredict);

static void
BM_SpSyncPoint(benchmark::State &state)
{
    Config cfg;
    SpPredictor pred(cfg, 16);
    PredictionQuery q;
    q.core = 0;
    SyncPointInfo info;
    info.type = SyncType::barrier;
    std::uint64_t sid = 0;
    for (auto _ : state) {
        info.staticId = sid++ % 32;
        pred.onSyncPoint(0, info);
        for (int i = 0; i < 10; ++i) {
            pred.trainResponse(q, CoreSet{5});
            pred.feedback(0, Prediction{}, true, false);
        }
    }
}
BENCHMARK(BM_SpSyncPoint);

static void
BM_GroupPredictorProbe(benchmark::State &state)
{
    Config cfg;
    GroupPredictor pred(cfg, 16, GroupIndex::macroBlock);
    Rng rng(1);
    PredictionQuery q;
    q.core = 0;
    for (int i = 0; i < 1024; ++i) {
        q.macroBlock = i;
        pred.trainResponse(q, CoreSet{5});
        pred.trainResponse(q, CoreSet{5});
    }
    for (auto _ : state) {
        q.macroBlock = rng.below(1024);
        Prediction p = pred.predict(q);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_GroupPredictorProbe);

static void
BM_EventQueueThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        unsigned fired = 0;
        for (Tick t = 0; t < 1000; ++t)
            eq.schedule(t, [&fired] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueueThroughput);

static void
BM_MeshSend(benchmark::State &state)
{
    Config cfg;
    EventQueue eq;
    Mesh mesh(cfg, eq);
    Rng rng(1);
    for (auto _ : state) {
        Packet p;
        p.src = static_cast<CoreId>(rng.below(16));
        p.dst = static_cast<CoreId>(rng.below(16));
        p.bytes = 72;
        p.cls = TrafficClass::data;
        mesh.send(p, [] {});
        eq.run();
    }
}
BENCHMARK(BM_MeshSend);

BENCHMARK_MAIN();
