/**
 * @file
 * Ablation: hot-communication-set threshold (Section 3.3 uses 10%).
 * Lower thresholds grow the predicted set (more accuracy, more
 * bandwidth); higher ones shrink it.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Ablation: hot-communication-set threshold sweep");
    QuietScope quiet;
    banner("Ablation: hot-set threshold "
           "(averages over all benchmarks)");
    Table t({"threshold", "accuracy %", "predicted set size",
             "+bandwidth/miss %"});

    const std::vector<double> thresholds = {0.05, 0.10, 0.20, 0.30};
    std::vector<ExperimentConfig> configs = {directoryConfig()};
    for (double thr : thresholds) {
        ExperimentConfig cfg = predictedConfig(PredictorKind::sp);
        cfg.tweak = [thr](Config &c) { c.hotThreshold = thr; };
        configs.push_back(cfg);
    }
    const std::vector<std::string> names = allWorkloads();
    const auto results = sweepMatrix(names, configs);

    for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
        const double thr = thresholds[ti];
        double acc = 0, setsz = 0, bw = 0;
        unsigned n = 0;
        for (std::size_t i = 0; i < names.size(); ++i) {
            const ExperimentResult &dir =
                results[i * configs.size()];
            const ExperimentResult &r =
                results[i * configs.size() + 1 + ti];
            acc += 100.0 * r.predictionAccuracy();
            setsz += r.run.mem.predictedTargets.mean();
            bw += 100.0 * (r.bytesPerMiss() - dir.bytesPerMiss()) /
                dir.bytesPerMiss();
            ++n;
        }
        t.cell(thr, 2).cell(acc / n, 1).cell(setsz / n, 2)
            .cell(bw / n, 1).endRow();
    }
    t.print();
    std::printf("\n(the latency/bandwidth trade-off knob of "
                "Section 5.2)\n");
    return 0;
}
