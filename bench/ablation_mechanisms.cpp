/**
 * @file
 * Ablation: SP-prediction's individual mechanisms — confidence
 * recovery (Section 4.4), stride-pattern detection (Table 3), the
 * lock-union extension, and the bounded hot-set size — each toggled
 * from the default configuration.
 */

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

namespace {

struct Variant
{
    const char *name;
    std::function<void(Config &)> tweak;
};

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv,
              "Ablation: SP-prediction mechanisms toggled one at a time");
    QuietScope quiet;
    banner("Ablation: SP-prediction mechanisms "
           "(averages over all benchmarks)");

    const std::vector<Variant> variants = {
        {"default", [](Config &) {}},
        {"no recovery",
         [](Config &c) { c.enableRecovery = false; }},
        {"no patterns",
         [](Config &c) { c.enablePatterns = false; }},
        {"lock-union ext.",
         [](Config &c) { c.unionEpochIntoLock = true; }},
        {"hot set <= 2",
         [](Config &c) { c.maxHotSetSize = 2; }},
        {"sharing filter",
         [](Config &c) { c.enableSharingFilter = true; }},
    };

    Table t({"variant", "accuracy %", "+bandwidth/miss %",
             "recoveries", "pattern hits"});
    std::vector<ExperimentConfig> configs = {directoryConfig()};
    for (const Variant &v : variants) {
        ExperimentConfig cfg = predictedConfig(PredictorKind::sp);
        cfg.tweak = v.tweak;
        configs.push_back(cfg);
    }
    const std::vector<std::string> names = allWorkloads();
    const auto results = sweepMatrix(names, configs);

    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
        const Variant &v = variants[vi];
        double acc = 0, bw = 0;
        std::uint64_t recoveries = 0, patterns = 0;
        unsigned n = 0;
        for (std::size_t i = 0; i < names.size(); ++i) {
            const ExperimentResult &dir =
                results[i * configs.size()];
            const ExperimentResult &r =
                results[i * configs.size() + 1 + vi];
            acc += 100.0 * r.predictionAccuracy();
            bw += 100.0 * (r.bytesPerMiss() - dir.bytesPerMiss()) /
                dir.bytesPerMiss();
            recoveries += r.run.sp.recoveries.value();
            patterns += r.run.sp.patternHits.value();
            ++n;
        }
        t.cell(v.name).cell(acc / n, 1).cell(bw / n, 1)
            .cell(recoveries).cell(patterns).endRow();
    }
    t.print();
    return 0;
}
