/**
 * @file
 * InlineFn: a move-only `void()` callable with fixed inline storage.
 *
 * The event kernel schedules millions of small closures per run;
 * `std::function`'s small-buffer optimization (16 bytes in libstdc++)
 * is far too small for the protocol continuations (a DoneFn plus a
 * few scalars, or a pool-slot pointer plus context), so every
 * schedule() paid a heap allocation. InlineFn stores the callable
 * in-place — callables larger than the capacity are rejected at
 * compile time, so a grown capture list is a build error rather than
 * a silent return of per-event malloc traffic.
 *
 * Only the `void()` signature is provided; it is the only one the
 * kernel needs.
 */

#ifndef SPP_COMMON_INLINE_FN_HH
#define SPP_COMMON_INLINE_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace spp {

template <std::size_t Capacity>
class InlineFn
{
  public:
    InlineFn() = default;
    InlineFn(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineFn(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                      "callable exceeds InlineFn capacity; grow the "
                      "capacity or shrink the capture list");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned callable");
        ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
        ops_ = &opsFor<Fn>;
    }

    InlineFn(InlineFn &&other) noexcept { moveFrom(other); }

    InlineFn &
    operator=(InlineFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFn(const InlineFn &) = delete;
    InlineFn &operator=(const InlineFn &) = delete;

    ~InlineFn() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    operator()()
    {
        ops_->invoke(buf_);
    }

    void
    reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*relocate)(void *dst, void *src); ///< Move + destroy src.
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr Ops opsFor = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *dst, void *src) {
            Fn *s = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
    };

    void
    moveFrom(InlineFn &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[Capacity];
    const Ops *ops_ = nullptr;
};

} // namespace spp

#endif // SPP_COMMON_INLINE_FN_HH
