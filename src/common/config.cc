#include "common/config.hh"

#include <bit>

#include "common/logging.hh"

namespace spp {

const char *
toString(Protocol p)
{
    switch (p) {
      case Protocol::directory: return "directory";
      case Protocol::broadcast: return "broadcast";
      case Protocol::predicted: return "predicted";
      case Protocol::multicast: return "multicast";
    }
    return "?";
}

const char *
toString(PredictorKind k)
{
    switch (k) {
      case PredictorKind::none: return "none";
      case PredictorKind::sp:   return "sp";
      case PredictorKind::addr: return "addr";
      case PredictorKind::inst: return "inst";
      case PredictorKind::uni:  return "uni";
    }
    return "?";
}

void
Config::validate() const
{
    if (numCores == 0 || numCores > maxCores)
        SPP_FATAL("numCores must be in [1, {}], got {}", maxCores,
                  numCores);
    if (meshX * meshY != numCores)
        SPP_FATAL("mesh {}x{} does not cover {} cores", meshX, meshY,
                  numCores);
    if (!std::has_single_bit(lineBytes))
        SPP_FATAL("lineBytes must be a power of two, got {}", lineBytes);
    if (!std::has_single_bit(macroBlockBytes) ||
        macroBlockBytes < lineBytes) {
        SPP_FATAL("macroBlockBytes must be a power of two >= lineBytes");
    }
    if (l1Bytes % (lineBytes * l1Assoc) != 0)
        SPP_FATAL("L1 geometry does not divide into sets");
    if (l2Bytes % (lineBytes * l2Assoc) != 0)
        SPP_FATAL("L2 geometry does not divide into sets");
    if (hotThreshold <= 0.0 || hotThreshold >= 1.0)
        SPP_FATAL("hotThreshold must be in (0, 1), got {}", hotThreshold);
    if (historyDepth == 0 || historyDepth > 8)
        SPP_FATAL("historyDepth must be in [1, 8], got {}", historyDepth);
    if ((protocol == Protocol::predicted ||
         protocol == Protocol::multicast) &&
        predictor == PredictorKind::none) {
        SPP_FATAL("Protocol::{} requires a predictor kind",
                  toString(protocol));
    }
    if (linkBytesPerCycle == 0)
        SPP_FATAL("linkBytesPerCycle must be non-zero");
    if (enableDram && (dramBanks == 0 || dramRowLines == 0))
        SPP_FATAL("DRAM model needs non-zero banks and row size");
    if (!std::has_single_bit(filterRegionBytes) ||
        filterRegionBytes < lineBytes) {
        SPP_FATAL("filterRegionBytes must be a power of two >= "
                  "lineBytes");
    }
}

} // namespace spp
