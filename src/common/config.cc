#include "common/config.hh"

#include <bit>
#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <utility>

#include "common/hash.hh"
#include "common/logging.hh"

namespace spp {

namespace {

// --- SPP_CONFIG_FIELDS completeness guards -------------------------

/** Number of entries in SPP_CONFIG_FIELDS. */
constexpr std::size_t configFieldCount = 0
#define SPP_COUNT_FIELD(f) +1
    SPP_CONFIG_FIELDS(SPP_COUNT_FIELD)
#undef SPP_COUNT_FIELD
    ;

/** Converts to any field type exactly (no narrowing involved). */
struct Probe
{
    template <typename T> constexpr operator T() const;
};

/** True iff aggregate T is brace-initializable with N values. */
template <typename T, std::size_t N>
constexpr bool bracesWithN =
    []<std::size_t... Is>(std::index_sequence<Is...>) {
        return requires { T{((void)Is, Probe{})...}; };
    }(std::make_index_sequence<N>{});

// An aggregate accepts up to (and including) its field count of
// initializers, so together these pin Config's field count to the
// macro's entry count: a field added to the struct but not the list
// (or vice versa) fails here.
static_assert(bracesWithN<Config, configFieldCount>,
              "SPP_CONFIG_FIELDS lists more entries than Config has "
              "fields");
static_assert(!bracesWithN<Config, configFieldCount + 1>,
              "Config gained a field: add it to SPP_CONFIG_FIELDS "
              "(and thus to configDescribe/configHash)");

/** Field order/type mirror; catches list reorderings the count
 * guard cannot. */
struct ConfigMirror
{
#define SPP_MIRROR_FIELD(f) decltype(Config::f) f;
    SPP_CONFIG_FIELDS(SPP_MIRROR_FIELD)
#undef SPP_MIRROR_FIELD
};
static_assert(sizeof(ConfigMirror) == sizeof(Config),
              "SPP_CONFIG_FIELDS disagrees with Config's layout");

// Enum fields render through toString; all others print natively,
// exactly as the hand-written describe always did.
std::ostream &
printValue(std::ostream &os, Protocol v)
{
    return os << toString(v);
}

std::ostream &
printValue(std::ostream &os, PredictorKind v)
{
    return os << toString(v);
}

std::ostream &
printValue(std::ostream &os, SharerFormat v)
{
    return os << toString(v);
}

template <typename T>
std::ostream &
printValue(std::ostream &os, const T &v)
{
    return os << v;
}

} // namespace

const char *
toString(Protocol p)
{
    switch (p) {
      case Protocol::directory: return "directory";
      case Protocol::broadcast: return "broadcast";
      case Protocol::predicted: return "predicted";
      case Protocol::multicast: return "multicast";
    }
    return "?";
}

const char *
toString(PredictorKind k)
{
    switch (k) {
      case PredictorKind::none: return "none";
      case PredictorKind::sp:   return "sp";
      case PredictorKind::addr: return "addr";
      case PredictorKind::inst: return "inst";
      case PredictorKind::uni:  return "uni";
    }
    return "?";
}

const char *
toString(SharerFormat f)
{
    switch (f) {
      case SharerFormat::full:    return "full";
      case SharerFormat::coarse:  return "coarse";
      case SharerFormat::limited: return "limited";
    }
    return "?";
}

SharerFormat
sharerFormatFromString(const std::string &s)
{
    if (const auto f = parseSharerFormatName(s))
        return *f;
    SPP_FATAL("unknown sharer format '{}' (full, coarse, limited)", s);
}

std::optional<Protocol>
parseProtocolName(const std::string &s)
{
    if (s == "directory")
        return Protocol::directory;
    if (s == "broadcast")
        return Protocol::broadcast;
    if (s == "predicted")
        return Protocol::predicted;
    if (s == "multicast")
        return Protocol::multicast;
    return std::nullopt;
}

std::optional<PredictorKind>
parsePredictorName(const std::string &s)
{
    if (s == "none")
        return PredictorKind::none;
    if (s == "sp")
        return PredictorKind::sp;
    if (s == "addr")
        return PredictorKind::addr;
    if (s == "inst")
        return PredictorKind::inst;
    if (s == "uni")
        return PredictorKind::uni;
    return std::nullopt;
}

std::optional<SharerFormat>
parseSharerFormatName(const std::string &s)
{
    if (s == "full")
        return SharerFormat::full;
    if (s == "coarse")
        return SharerFormat::coarse;
    if (s == "limited")
        return SharerFormat::limited;
    return std::nullopt;
}

std::string
configValidate(const Config &c)
{
    if (c.numCores == 0 || c.numCores > maxCores)
        return strfmt("numCores must be in [1, {}], got {}", maxCores,
                      c.numCores);
    if (c.meshX * c.meshY != c.numCores)
        return strfmt("mesh {}x{} does not cover {} cores", c.meshX,
                      c.meshY, c.numCores);
    if (!std::has_single_bit(c.lineBytes))
        return strfmt("lineBytes must be a power of two, got {}",
                      c.lineBytes);
    if (!std::has_single_bit(c.macroBlockBytes) ||
        c.macroBlockBytes < c.lineBytes) {
        return "macroBlockBytes must be a power of two >= lineBytes";
    }
    if (c.l1Assoc == 0 || c.l1Bytes == 0 ||
        c.l1Bytes % (c.lineBytes * c.l1Assoc) != 0)
        return "L1 geometry does not divide into sets";
    if (c.l2Assoc == 0 || c.l2Bytes == 0 ||
        c.l2Bytes % (c.lineBytes * c.l2Assoc) != 0)
        return "L2 geometry does not divide into sets";
    if (c.hotThreshold <= 0.0 || c.hotThreshold >= 1.0)
        return strfmt("hotThreshold must be in (0, 1), got {}",
                      c.hotThreshold);
    if (c.historyDepth == 0 || c.historyDepth > 8)
        return strfmt("historyDepth must be in [1, 8], got {}",
                      c.historyDepth);
    if ((c.protocol == Protocol::predicted ||
         c.protocol == Protocol::multicast) &&
        c.predictor == PredictorKind::none) {
        return strfmt("Protocol::{} requires a predictor kind",
                      toString(c.protocol));
    }
    if (c.coarseCoresPerBit == 0 || c.coarseCoresPerBit > c.numCores)
        return strfmt("coarseCoresPerBit must be in [1, numCores], "
                      "got {}",
                      c.coarseCoresPerBit);
    if (c.sharerPointers == 0)
        return "sharerPointers must be non-zero";
    if (c.linkBytesPerCycle == 0)
        return "linkBytesPerCycle must be non-zero";
    if (c.enableDram && (c.dramBanks == 0 || c.dramRowLines == 0))
        return "DRAM model needs non-zero banks and row size";
    if (!std::has_single_bit(c.filterRegionBytes) ||
        c.filterRegionBytes < c.lineBytes) {
        return "filterRegionBytes must be a power of two >= "
               "lineBytes";
    }
    return "";
}

void
Config::validate() const
{
    const std::string err = configValidate(*this);
    if (!err.empty())
        SPP_FATAL("{}", err);
}

std::string
configDescribe(const Config &c)
{
    std::ostringstream os;
    bool first = true;
#define SPP_DESCRIBE_FIELD(f)                                         \
    if (!first)                                                       \
        os << ' ';                                                    \
    first = false;                                                    \
    os << #f << '=';                                                  \
    printValue(os, c.f);
    SPP_CONFIG_FIELDS(SPP_DESCRIBE_FIELD)
#undef SPP_DESCRIBE_FIELD
    return os.str();
}

std::uint64_t
configHash(const Config &cfg)
{
    // FNV-1a over the canonical description.
    return fnv1a64(configDescribe(cfg));
}

namespace {

// --- configSetField value parsers, one per field shape -------------

std::string
parseFieldValue(const char *name, const std::string &v, bool &out)
{
    if (v == "0" || v == "false") {
        out = false;
        return "";
    }
    if (v == "1" || v == "true") {
        out = true;
        return "";
    }
    return std::string(name) + " expects 0/1/true/false, got '" + v +
        "'";
}

std::string
parseFieldValue(const char *name, const std::string &v, double &out)
{
    std::size_t used = 0;
    double parsed = 0.0;
    try {
        parsed = std::stod(v, &used);
    } catch (...) {
        used = 0;
    }
    if (used == 0 || used != v.size())
        return std::string(name) + " expects a number, got '" + v +
            "'";
    out = parsed;
    return "";
}

std::string
parseFieldValue(const char *name, const std::string &v, Protocol &out)
{
    if (const auto p = parseProtocolName(v)) {
        out = *p;
        return "";
    }
    return std::string(name) + ": unknown protocol '" + v + "'";
}

std::string
parseFieldValue(const char *name, const std::string &v,
                PredictorKind &out)
{
    if (const auto p = parsePredictorName(v)) {
        out = *p;
        return "";
    }
    return std::string(name) + ": unknown predictor '" + v + "'";
}

std::string
parseFieldValue(const char *name, const std::string &v,
                SharerFormat &out)
{
    if (const auto p = parseSharerFormatName(v)) {
        out = *p;
        return "";
    }
    return std::string(name) + ": unknown sharer format '" + v + "'";
}

template <typename T>
    requires std::is_unsigned_v<T>
std::string
parseFieldValue(const char *name, const std::string &v, T &out)
{
    if (v.empty() ||
        v.find_first_not_of("0123456789") != std::string::npos)
        return std::string(name) +
            " expects an unsigned integer, got '" + v + "'";
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(v.c_str(), &end, 10);
    if (errno != 0 || *end != '\0' ||
        parsed > std::numeric_limits<T>::max())
        return std::string(name) + " value '" + v +
            "' is out of range";
    out = static_cast<T>(parsed);
    return "";
}

} // namespace

std::string
configSetField(Config &cfg, const std::string &name,
               const std::string &value)
{
#define SPP_SET_FIELD(f)                                              \
    if (name == #f)                                                   \
        return parseFieldValue(#f, value, cfg.f);
    SPP_CONFIG_FIELDS(SPP_SET_FIELD)
#undef SPP_SET_FIELD
    return "unknown config field '" + name + "'";
}

} // namespace spp
