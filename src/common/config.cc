#include "common/config.hh"

#include <bit>
#include <sstream>
#include <string>

#include "common/logging.hh"

namespace spp {

const char *
toString(Protocol p)
{
    switch (p) {
      case Protocol::directory: return "directory";
      case Protocol::broadcast: return "broadcast";
      case Protocol::predicted: return "predicted";
      case Protocol::multicast: return "multicast";
    }
    return "?";
}

const char *
toString(PredictorKind k)
{
    switch (k) {
      case PredictorKind::none: return "none";
      case PredictorKind::sp:   return "sp";
      case PredictorKind::addr: return "addr";
      case PredictorKind::inst: return "inst";
      case PredictorKind::uni:  return "uni";
    }
    return "?";
}

void
Config::validate() const
{
    if (numCores == 0 || numCores > maxCores)
        SPP_FATAL("numCores must be in [1, {}], got {}", maxCores,
                  numCores);
    if (meshX * meshY != numCores)
        SPP_FATAL("mesh {}x{} does not cover {} cores", meshX, meshY,
                  numCores);
    if (!std::has_single_bit(lineBytes))
        SPP_FATAL("lineBytes must be a power of two, got {}", lineBytes);
    if (!std::has_single_bit(macroBlockBytes) ||
        macroBlockBytes < lineBytes) {
        SPP_FATAL("macroBlockBytes must be a power of two >= lineBytes");
    }
    if (l1Bytes % (lineBytes * l1Assoc) != 0)
        SPP_FATAL("L1 geometry does not divide into sets");
    if (l2Bytes % (lineBytes * l2Assoc) != 0)
        SPP_FATAL("L2 geometry does not divide into sets");
    if (hotThreshold <= 0.0 || hotThreshold >= 1.0)
        SPP_FATAL("hotThreshold must be in (0, 1), got {}", hotThreshold);
    if (historyDepth == 0 || historyDepth > 8)
        SPP_FATAL("historyDepth must be in [1, 8], got {}", historyDepth);
    if ((protocol == Protocol::predicted ||
         protocol == Protocol::multicast) &&
        predictor == PredictorKind::none) {
        SPP_FATAL("Protocol::{} requires a predictor kind",
                  toString(protocol));
    }
    if (linkBytesPerCycle == 0)
        SPP_FATAL("linkBytesPerCycle must be non-zero");
    if (enableDram && (dramBanks == 0 || dramRowLines == 0))
        SPP_FATAL("DRAM model needs non-zero banks and row size");
    if (!std::has_single_bit(filterRegionBytes) ||
        filterRegionBytes < lineBytes) {
        SPP_FATAL("filterRegionBytes must be a power of two >= "
                  "lineBytes");
    }
}

std::string
configDescribe(const Config &c)
{
    std::ostringstream os;
    auto kv = [&os, first = true](const char *k, auto v) mutable {
        if (!first)
            os << ' ';
        first = false;
        os << k << '=' << v;
    };
    kv("numCores", c.numCores);
    kv("meshX", c.meshX);
    kv("meshY", c.meshY);
    kv("lineBytes", c.lineBytes);
    kv("l1Bytes", c.l1Bytes);
    kv("l1Assoc", c.l1Assoc);
    kv("l1Latency", c.l1Latency);
    kv("l2Bytes", c.l2Bytes);
    kv("l2Assoc", c.l2Assoc);
    kv("l2TagLatency", c.l2TagLatency);
    kv("l2DataLatency", c.l2DataLatency);
    kv("memLatency", c.memLatency);
    kv("dirLatency", c.dirLatency);
    kv("enableDram", c.enableDram);
    kv("dramBanks", c.dramBanks);
    kv("dramRowLines", c.dramRowLines);
    kv("dramRowHitLatency", c.dramRowHitLatency);
    kv("dramRowConflictLatency", c.dramRowConflictLatency);
    kv("routerLatency", c.routerLatency);
    kv("linkLatency", c.linkLatency);
    kv("linkBytesPerCycle", c.linkBytesPerCycle);
    kv("ctrlPacketBytes", c.ctrlPacketBytes);
    kv("dataPacketBytes", c.dataPacketBytes);
    kv("modelContention", c.modelContention);
    kv("protocol", toString(c.protocol));
    kv("predictor", toString(c.predictor));
    kv("enableFState", c.enableFState);
    kv("hotThreshold", c.hotThreshold);
    kv("historyDepth", c.historyDepth);
    kv("warmupMisses", c.warmupMisses);
    kv("noiseMisses", c.noiseMisses);
    kv("confidenceBits", c.confidenceBits);
    kv("enableRecovery", c.enableRecovery);
    kv("enablePatterns", c.enablePatterns);
    kv("unionEpochIntoLock", c.unionEpochIntoLock);
    kv("maxHotSetSize", c.maxHotSetSize);
    kv("spTableLatency", c.spTableLatency);
    kv("enableSharingFilter", c.enableSharingFilter);
    kv("filterRegionBytes", c.filterRegionBytes);
    kv("macroBlockBytes", c.macroBlockBytes);
    kv("groupThreshold", c.groupThreshold);
    kv("trainDownPeriod", c.trainDownPeriod);
    kv("predictorEntries", c.predictorEntries);
    kv("seed", c.seed);
    kv("maxTicks", c.maxTicks);
    kv("injectBug", c.injectBug);
    return os.str();
}

std::uint64_t
configHash(const Config &cfg)
{
    // FNV-1a over the canonical description.
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char byte : configDescribe(cfg)) {
        h ^= byte;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace spp
