#include "common/config.hh"

#include <bit>
#include <cstddef>
#include <sstream>
#include <string>
#include <utility>

#include "common/hash.hh"
#include "common/logging.hh"

namespace spp {

namespace {

// --- SPP_CONFIG_FIELDS completeness guards -------------------------

/** Number of entries in SPP_CONFIG_FIELDS. */
constexpr std::size_t configFieldCount = 0
#define SPP_COUNT_FIELD(f) +1
    SPP_CONFIG_FIELDS(SPP_COUNT_FIELD)
#undef SPP_COUNT_FIELD
    ;

/** Converts to any field type exactly (no narrowing involved). */
struct Probe
{
    template <typename T> constexpr operator T() const;
};

/** True iff aggregate T is brace-initializable with N values. */
template <typename T, std::size_t N>
constexpr bool bracesWithN =
    []<std::size_t... Is>(std::index_sequence<Is...>) {
        return requires { T{((void)Is, Probe{})...}; };
    }(std::make_index_sequence<N>{});

// An aggregate accepts up to (and including) its field count of
// initializers, so together these pin Config's field count to the
// macro's entry count: a field added to the struct but not the list
// (or vice versa) fails here.
static_assert(bracesWithN<Config, configFieldCount>,
              "SPP_CONFIG_FIELDS lists more entries than Config has "
              "fields");
static_assert(!bracesWithN<Config, configFieldCount + 1>,
              "Config gained a field: add it to SPP_CONFIG_FIELDS "
              "(and thus to configDescribe/configHash)");

/** Field order/type mirror; catches list reorderings the count
 * guard cannot. */
struct ConfigMirror
{
#define SPP_MIRROR_FIELD(f) decltype(Config::f) f;
    SPP_CONFIG_FIELDS(SPP_MIRROR_FIELD)
#undef SPP_MIRROR_FIELD
};
static_assert(sizeof(ConfigMirror) == sizeof(Config),
              "SPP_CONFIG_FIELDS disagrees with Config's layout");

// Enum fields render through toString; all others print natively,
// exactly as the hand-written describe always did.
std::ostream &
printValue(std::ostream &os, Protocol v)
{
    return os << toString(v);
}

std::ostream &
printValue(std::ostream &os, PredictorKind v)
{
    return os << toString(v);
}

std::ostream &
printValue(std::ostream &os, SharerFormat v)
{
    return os << toString(v);
}

template <typename T>
std::ostream &
printValue(std::ostream &os, const T &v)
{
    return os << v;
}

} // namespace

const char *
toString(Protocol p)
{
    switch (p) {
      case Protocol::directory: return "directory";
      case Protocol::broadcast: return "broadcast";
      case Protocol::predicted: return "predicted";
      case Protocol::multicast: return "multicast";
    }
    return "?";
}

const char *
toString(PredictorKind k)
{
    switch (k) {
      case PredictorKind::none: return "none";
      case PredictorKind::sp:   return "sp";
      case PredictorKind::addr: return "addr";
      case PredictorKind::inst: return "inst";
      case PredictorKind::uni:  return "uni";
    }
    return "?";
}

const char *
toString(SharerFormat f)
{
    switch (f) {
      case SharerFormat::full:    return "full";
      case SharerFormat::coarse:  return "coarse";
      case SharerFormat::limited: return "limited";
    }
    return "?";
}

SharerFormat
sharerFormatFromString(const std::string &s)
{
    if (s == "full")
        return SharerFormat::full;
    if (s == "coarse")
        return SharerFormat::coarse;
    if (s == "limited")
        return SharerFormat::limited;
    SPP_FATAL("unknown sharer format '{}' (full, coarse, limited)", s);
}

void
Config::validate() const
{
    if (numCores == 0 || numCores > maxCores)
        SPP_FATAL("numCores must be in [1, {}], got {}", maxCores,
                  numCores);
    if (meshX * meshY != numCores)
        SPP_FATAL("mesh {}x{} does not cover {} cores", meshX, meshY,
                  numCores);
    if (!std::has_single_bit(lineBytes))
        SPP_FATAL("lineBytes must be a power of two, got {}", lineBytes);
    if (!std::has_single_bit(macroBlockBytes) ||
        macroBlockBytes < lineBytes) {
        SPP_FATAL("macroBlockBytes must be a power of two >= lineBytes");
    }
    if (l1Bytes % (lineBytes * l1Assoc) != 0)
        SPP_FATAL("L1 geometry does not divide into sets");
    if (l2Bytes % (lineBytes * l2Assoc) != 0)
        SPP_FATAL("L2 geometry does not divide into sets");
    if (hotThreshold <= 0.0 || hotThreshold >= 1.0)
        SPP_FATAL("hotThreshold must be in (0, 1), got {}", hotThreshold);
    if (historyDepth == 0 || historyDepth > 8)
        SPP_FATAL("historyDepth must be in [1, 8], got {}", historyDepth);
    if ((protocol == Protocol::predicted ||
         protocol == Protocol::multicast) &&
        predictor == PredictorKind::none) {
        SPP_FATAL("Protocol::{} requires a predictor kind",
                  toString(protocol));
    }
    if (coarseCoresPerBit == 0 || coarseCoresPerBit > numCores)
        SPP_FATAL("coarseCoresPerBit must be in [1, numCores], got {}",
                  coarseCoresPerBit);
    if (sharerPointers == 0)
        SPP_FATAL("sharerPointers must be non-zero");
    if (linkBytesPerCycle == 0)
        SPP_FATAL("linkBytesPerCycle must be non-zero");
    if (enableDram && (dramBanks == 0 || dramRowLines == 0))
        SPP_FATAL("DRAM model needs non-zero banks and row size");
    if (!std::has_single_bit(filterRegionBytes) ||
        filterRegionBytes < lineBytes) {
        SPP_FATAL("filterRegionBytes must be a power of two >= "
                  "lineBytes");
    }
}

std::string
configDescribe(const Config &c)
{
    std::ostringstream os;
    bool first = true;
#define SPP_DESCRIBE_FIELD(f)                                         \
    if (!first)                                                       \
        os << ' ';                                                    \
    first = false;                                                    \
    os << #f << '=';                                                  \
    printValue(os, c.f);
    SPP_CONFIG_FIELDS(SPP_DESCRIBE_FIELD)
#undef SPP_DESCRIBE_FIELD
    return os.str();
}

std::uint64_t
configHash(const Config &cfg)
{
    // FNV-1a over the canonical description.
    return fnv1a64(configDescribe(cfg));
}

} // namespace spp
