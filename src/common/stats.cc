#include "common/stats.hh"

namespace spp {

void
StatGroup::regCounter(const std::string &name, const Counter &c)
{
    counters_.emplace_back(name, &c);
}

void
StatGroup::regAverage(const std::string &name, const Average &a)
{
    averages_.emplace_back(name, &a);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_)
        os << name_ << '.' << name << ' ' << c->value() << '\n';
    for (const auto &[name, a] : averages_) {
        os << name_ << '.' << name << ".mean " << a->mean() << '\n';
        os << name_ << '.' << name << ".count " << a->count() << '\n';
    }
}

} // namespace spp
