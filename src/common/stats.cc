#include "common/stats.hh"

namespace spp {

void
StatGroup::regCounter(const std::string &name, const Counter &c)
{
    counters_.emplace_back(name, &c);
}

void
StatGroup::regAverage(const std::string &name, const Average &a)
{
    averages_.emplace_back(name, &a);
}

namespace {

template <typename Stat>
std::vector<const std::pair<std::string, const Stat *> *>
sortedByName(const std::vector<std::pair<std::string, const Stat *>> &v)
{
    std::vector<const std::pair<std::string, const Stat *> *> order;
    order.reserve(v.size());
    for (const auto &entry : v)
        order.push_back(&entry);
    std::sort(order.begin(), order.end(),
              [](const auto *a, const auto *b) {
                  return a->first < b->first;
              });
    return order;
}

} // namespace

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto *entry : sortedByName(counters_))
        os << name_ << '.' << entry->first << ' '
           << entry->second->value() << '\n';
    for (const auto *entry : sortedByName(averages_)) {
        os << name_ << '.' << entry->first << ".mean "
           << entry->second->mean() << '\n';
        os << name_ << '.' << entry->first << ".count "
           << entry->second->count() << '\n';
    }
}

} // namespace spp
