/**
 * @file
 * Freelist pools for the coherence hot path.
 *
 * Pool<T> hands out objects from chunked slabs with a freelist:
 * after warm-up, acquire/release touch no allocator. Slots have
 * stable addresses for the pool's lifetime (chunks are never moved
 * or freed), so protocol code can hold a T* across arbitrary
 * intervening acquires — the property the message pool relies on
 * (a delivery closure carries its Msg slot through the mesh) and
 * PooledMap relies on (rehash moves only the index, never values).
 *
 * PooledMap<V> is an open-addressing map from uint64 keys (line
 * addresses, transaction ids) to pool-backed values: the steady-state
 * replacement for the unordered_map node churn of per-miss
 * transaction tables. Erase uses backward-shift deletion, so there
 * are no tombstones and lookup cost stays bounded by load factor.
 */

#ifndef SPP_COMMON_POOL_HH
#define SPP_COMMON_POOL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace spp {

/** Allocation/reuse counters of one pool (telemetry). */
struct PoolStats
{
    std::uint64_t acquires = 0; ///< Total acquire() calls.
    std::uint64_t reuses = 0;   ///< Served from the freelist.
    std::size_t allocated = 0;  ///< Slots ever carved from slabs.
    std::size_t live = 0;       ///< Currently acquired.
    std::size_t peak = 0;       ///< High-water mark of live.

    /** Fraction of acquires served without touching the allocator
     * (slab carving is cheap but hitRate isolates true reuse). */
    double
    hitRate() const
    {
        return acquires == 0
            ? 0.0
            : static_cast<double>(reuses) /
                static_cast<double>(acquires);
    }
};

template <typename T>
class Pool
{
  public:
    /** Acquire a slot in default-constructed state. */
    T *
    acquire()
    {
        ++stats_.acquires;
        if (++stats_.live > stats_.peak)
            stats_.peak = stats_.live;
        if (!free_.empty()) {
            ++stats_.reuses;
            T *p = free_.back();
            free_.pop_back();
            return p;
        }
        if (next_in_chunk_ == chunkSlots) {
            chunks_.push_back(std::make_unique<T[]>(chunkSlots));
            next_in_chunk_ = 0;
        }
        ++stats_.allocated;
        return &chunks_.back()[next_in_chunk_++];
    }

    /** Return @p p to the freelist, resetting it to default state
     * (via T::poolReset() when provided, so containers inside T can
     * keep their capacity). */
    void
    release(T *p)
    {
        SPP_ASSERT(stats_.live > 0, "pool release without acquire");
        --stats_.live;
        if constexpr (requires(T &t) { t.poolReset(); })
            p->poolReset();
        else
            *p = T{};
        free_.push_back(p);
    }

    const PoolStats &stats() const { return stats_; }

  private:
    static constexpr std::size_t chunkSlots = 64;

    std::vector<std::unique_ptr<T[]>> chunks_;
    std::vector<T *> free_;
    std::size_t next_in_chunk_ = chunkSlots;
    PoolStats stats_;
};

/**
 * Open-addressing map uint64 -> V with pool-backed values.
 *
 * Values live in a Pool<V> slab, so V* stays valid across inserts,
 * erases and rehashes of *other* keys — matching unordered_map's
 * pointer-stability guarantee that the protocol engines depend on.
 * Iteration order is unspecified but deterministic for a given
 * insert/erase history (no randomized hashing).
 */
template <typename V>
class PooledMap
{
  public:
    /** @return the value mapped to @p key, or nullptr. */
    V *
    find(std::uint64_t key)
    {
        if (size_ == 0)
            return nullptr;
        const std::size_t mask = buckets_.size() - 1;
        for (std::size_t i = mix(key) & mask;;
             i = (i + 1) & mask) {
            if (buckets_[i].val == nullptr)
                return nullptr;
            if (buckets_[i].key == key)
                return buckets_[i].val;
        }
    }

    const V *
    find(std::uint64_t key) const
    {
        return const_cast<PooledMap *>(this)->find(key);
    }

    bool contains(std::uint64_t key) const
    {
        return find(key) != nullptr;
    }

    /**
     * Map @p key (which must not be present) to a freshly reset
     * value slot.
     */
    V &
    insert(std::uint64_t key)
    {
        SPP_ASSERT(find(key) == nullptr,
                   "duplicate PooledMap key {}", key);
        if ((size_ + 1) * 4 > buckets_.size() * 3)
            grow();
        V *slot = pool_.acquire();
        place(Bucket{key, slot});
        ++size_;
        return *slot;
    }

    /** The value for @p key, inserting a fresh one if absent. */
    V &
    findOrInsert(std::uint64_t key)
    {
        if (V *v = find(key))
            return *v;
        return insert(key);
    }

    /** @return true if @p key was present (and is now removed). */
    bool
    erase(std::uint64_t key)
    {
        if (size_ == 0)
            return false;
        const std::size_t mask = buckets_.size() - 1;
        std::size_t i = mix(key) & mask;
        while (true) {
            if (buckets_[i].val == nullptr)
                return false;
            if (buckets_[i].key == key)
                break;
            i = (i + 1) & mask;
        }
        pool_.release(buckets_[i].val);
        // Backward-shift deletion: pull displaced entries into the
        // hole so probe chains never cross an empty slot.
        std::size_t hole = i;
        for (std::size_t j = (i + 1) & mask;
             buckets_[j].val != nullptr; j = (j + 1) & mask) {
            const std::size_t ideal = mix(buckets_[j].key) & mask;
            if (((j - ideal) & mask) >= ((j - hole) & mask)) {
                buckets_[hole] = buckets_[j];
                hole = j;
            }
        }
        buckets_[hole] = Bucket{};
        --size_;
        return true;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Visit every (key, value) pair; insertion-history order is not
     * guaranteed, but the order is deterministic. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (Bucket &b : buckets_)
            if (b.val != nullptr)
                fn(b.key, *b.val);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Bucket &b : buckets_)
            if (b.val != nullptr)
                fn(b.key, *b.val);
    }

    const PoolStats &stats() const { return pool_.stats(); }

  private:
    struct Bucket
    {
        std::uint64_t key = 0;
        V *val = nullptr;
    };

    /** splitmix64 finalizer: line addresses and txn ids are highly
     * regular, so buckets need real mixing. */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    void
    place(Bucket b)
    {
        const std::size_t mask = buckets_.size() - 1;
        std::size_t i = mix(b.key) & mask;
        while (buckets_[i].val != nullptr)
            i = (i + 1) & mask;
        buckets_[i] = b;
    }

    void
    grow()
    {
        std::vector<Bucket> old = std::move(buckets_);
        buckets_.assign(old.empty() ? 16 : old.size() * 2,
                        Bucket{});
        for (const Bucket &b : old)
            if (b.val != nullptr)
                place(b);
    }

    std::vector<Bucket> buckets_;
    std::size_t size_ = 0;
    Pool<V> pool_;
};

} // namespace spp

#endif // SPP_COMMON_POOL_HH
