/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef SPP_COMMON_TYPES_HH
#define SPP_COMMON_TYPES_HH

#include <cstdint>

namespace spp {

/** Simulated time, in cycles of the core/NoC clock. */
using Tick = std::uint64_t;

/** A physical (simulated) memory address. */
using Addr = std::uint64_t;

/** Identifier of a physical core / tile. */
using CoreId = std::uint32_t;

/** Identifier of a logical thread (see ThreadMap for migration). */
using ThreadId = std::uint32_t;

/** Program counter of a (synthetic) static instruction or sync-point. */
using Pc = std::uint64_t;

/** Sentinel for "no core". */
inline constexpr CoreId invalidCore = ~CoreId{0};

/** Sentinel tick meaning "never" / unscheduled. */
inline constexpr Tick maxTick = ~Tick{0};

/**
 * Hard upper bound on system size: the compile-time capacity of
 * CoreSet's multi-word bit mask. Override with -DSPP_MAX_CORES=N to
 * trade CoreSet footprint against maximum machine size; the default
 * covers a 32x32 mesh.
 */
#ifndef SPP_MAX_CORES
#define SPP_MAX_CORES 1024
#endif
inline constexpr unsigned maxCores = SPP_MAX_CORES;
static_assert(maxCores >= 2 && maxCores <= 65536,
              "SPP_MAX_CORES out of the supported [2, 65536] range");

/** Modelled physical address width; storage cost models derive tag
 * widths from this rather than hard-coding them. */
inline constexpr unsigned physAddrBits = 48;

} // namespace spp

#endif // SPP_COMMON_TYPES_HH
