/**
 * @file
 * System configuration, mirroring Table 4 of the paper plus predictor
 * tuning knobs from Sections 3-5.
 */

#ifndef SPP_COMMON_CONFIG_HH
#define SPP_COMMON_CONFIG_HH

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hh"
#include "mem/mesif.hh"

namespace spp {

/** Which coherence scheme a run uses. */
enum class Protocol
{
    directory,      ///< Baseline directory MESIF (indirection on miss).
    broadcast,      ///< Snooping broadcast on a mesh (latency-ideal).
    predicted,      ///< Directory MESIF + destination-set prediction.
    multicast,      ///< Multicast snooping [8]: snoop the predicted
                    ///< set, verified by a memory-side directory.
};

/** Which destination-set predictor drives Protocol::predicted. */
enum class PredictorKind
{
    none,   ///< No predictor (only meaningful with dir/broadcast).
    sp,     ///< Synchronization-point predictor (this paper).
    addr,   ///< Address (macroblock) indexed group predictor [36].
    inst,   ///< Instruction (PC) indexed group predictor [28, 36].
    uni,    ///< Unindexed locality predictor (single entry).
};

/** Directory sharer-set representation (see sharer_tracker.hh). */
enum class SharerFormat
{
    full,    ///< Exact full-map bit vector: n bits per entry.
    coarse,  ///< One bit per group of coarseCoresPerBit cores;
             ///< invalidations multicast to the group superset.
    limited, ///< sharerPointers exact core IDs + an overflow flag;
             ///< broadcast once more cores share.
};

const char *toString(Protocol p);
const char *toString(PredictorKind k);
const char *toString(SharerFormat f);

/** Parse a --format CLI value; calls fatal() on unknown names. */
SharerFormat sharerFormatFromString(const std::string &s);

/** Non-fatal enum parsers (server requests, generic field setter). */
std::optional<Protocol> parseProtocolName(const std::string &s);
std::optional<PredictorKind> parsePredictorName(const std::string &s);
std::optional<SharerFormat> parseSharerFormatName(const std::string &s);

/** Machine and predictor parameters; defaults follow the paper. */
struct Config
{
    // --- System (Table 4) ---
    unsigned numCores = 16;         ///< Tiles; must be meshX * meshY.
    unsigned meshX = 4;             ///< Mesh columns.
    unsigned meshY = 4;             ///< Mesh rows.

    unsigned lineBytes = 64;        ///< Cache line size.

    unsigned l1Bytes = 16 * 1024;   ///< Private L1 data cache size.
    unsigned l1Assoc = 1;           ///< L1 associativity (direct).
    Tick l1Latency = 2;             ///< Load-to-use latency.

    unsigned l2Bytes = 1024 * 1024; ///< Private L2 size.
    unsigned l2Assoc = 8;           ///< L2 associativity.
    Tick l2TagLatency = 2;          ///< L2 tag lookup.
    Tick l2DataLatency = 6;         ///< L2 data access.

    Tick memLatency = 150;          ///< Main memory access (also the
                                    ///< DRAM closed-bank latency).
    Tick dirLatency = 8;            ///< Directory state read at home
                                    ///< (tag + sharing-vector array).

    // Optional banked open-row DRAM model (default: fixed latency).
    bool enableDram = false;
    unsigned dramBanks = 8;         ///< Banks per home controller.
    unsigned dramRowLines = 32;     ///< Controller-local lines / row.
    Tick dramRowHitLatency = 100;
    Tick dramRowConflictLatency = 180;

    // --- NoC ---
    Tick routerLatency = 2;         ///< Per-hop router pipeline.
    Tick linkLatency = 1;           ///< Per-hop link traversal.
    unsigned linkBytesPerCycle = 16;///< Link width for serialization.
    unsigned ctrlPacketBytes = 8;   ///< Control message payload size.
    unsigned dataPacketBytes = 72;  ///< Data message (line + header).
    bool modelContention = true;    ///< Reserve link slots (busy-until).

    // --- Coherence / prediction ---
    Protocol protocol = Protocol::directory;
    PredictorKind predictor = PredictorKind::none;

    /**
     * MESIF's Forwarding state (default). With false, the protocol
     * degrades to plain MESI: clean-shared lines cannot be sourced
     * cache-to-cache, so reads of shared data go to memory — an
     * ablation showing why the paper's baseline needs F.
     */
    bool enableFState = true;

    /**
     * Directory sharer-set representation. full keeps the exact
     * bit-vector baseline; coarse and limited trade exactness for
     * space at large core counts, over-approximating the sharer set
     * (extra invalidations, never missed ones).
     */
    SharerFormat sharerFormat = SharerFormat::full;
    unsigned coarseCoresPerBit = 4; ///< K: cores per coarse bit.
    unsigned sharerPointers = 4;    ///< P: limited-format pointers.

    /** State a reader of a (non-solo) line fills with. */
    Mesif
    cleanSharedFill() const
    {
        return enableFState ? Mesif::forwarding : Mesif::shared;
    }

    // SP-predictor knobs (Sections 3.3, 4.2-4.4).
    double hotThreshold = 0.10;     ///< Hot if >= 10% of epoch volume.
    unsigned historyDepth = 2;      ///< Signatures kept per SP entry.
    unsigned warmupMisses = 30;     ///< d=0 warm-up before predicting.
    unsigned noiseMisses = 8;       ///< Below this, epoch is "noisy".
    unsigned confidenceBits = 4;    ///< Saturating counter width.
    bool enableRecovery = true;     ///< Confidence-triggered recovery.
    bool enablePatterns = true;     ///< Stride-2 pattern detection.
    bool unionEpochIntoLock = false;///< Sec 4.4 lock extension.
    unsigned maxHotSetSize = 0;     ///< Cap on extracted hot sets
                                    ///< (0 = unbounded; Sec 5.2
                                    ///< power-envelope policy).
    Tick spTableLatency = 4;        ///< Hot-set extraction cost.

    /**
     * Region-based sharing filter (Section 5.3): suppress prediction
     * on misses to regions never observed shared, eliminating most
     * of the bandwidth wasted on non-communicating misses.
     */
    bool enableSharingFilter = false;
    unsigned filterRegionBytes = 4096;

    // Martin-style group predictors (Section 5.4).
    unsigned macroBlockBytes = 256; ///< ADDR indexing granularity.
    unsigned groupThreshold = 2;    ///< 2-bit counter predict level.
    unsigned trainDownPeriod = 32;  ///< 5-bit rollover counter period.
    unsigned predictorEntries = 0;  ///< 0 = unlimited table.

    // --- Workload / run control ---
    std::uint64_t seed = 1;         ///< Root RNG seed.
    Tick maxTicks = 0;              ///< 0 = run until completion.

    /**
     * Fault injection for validating the protocol checker itself
     * (bench/fuzz_protocol --inject N). 0 = off (always, outside the
     * checker's self-test). 1 = the directory skips one invalidation
     * on writes (stale-sharer / SWMR violation). 2 = memory data is
     * served one version stale (freshness violation). 3 = an unblock
     * is occasionally dropped (line-lock leak; caught by the
     * watchdog / quiescence checks).
     */
    unsigned injectBug = 0;

    /** Sanity-check the parameters; calls fatal() on user error. */
    void validate() const;
};

/**
 * Non-fatal twin of Config::validate(): returns "" when @p cfg is
 * consistent, else the first complaint. Servers reject bad requests
 * with it; the CLI path (validate()) turns the same string fatal.
 */
std::string configValidate(const Config &cfg);

/**
 * Every Config field, in declaration order. configDescribe() renders
 * from this list, and config.cc statically asserts the list matches
 * the struct (field count and layout), so adding a Config field
 * without extending this macro fails the build instead of silently
 * vanishing from run manifests and config hashes.
 */
#define SPP_CONFIG_FIELDS(X)                                          \
    X(numCores) X(meshX) X(meshY) X(lineBytes)                        \
    X(l1Bytes) X(l1Assoc) X(l1Latency)                                \
    X(l2Bytes) X(l2Assoc) X(l2TagLatency) X(l2DataLatency)            \
    X(memLatency) X(dirLatency)                                       \
    X(enableDram) X(dramBanks) X(dramRowLines)                        \
    X(dramRowHitLatency) X(dramRowConflictLatency)                    \
    X(routerLatency) X(linkLatency) X(linkBytesPerCycle)              \
    X(ctrlPacketBytes) X(dataPacketBytes) X(modelContention)          \
    X(protocol) X(predictor) X(enableFState)                          \
    X(sharerFormat) X(coarseCoresPerBit) X(sharerPointers)            \
    X(hotThreshold) X(historyDepth) X(warmupMisses) X(noiseMisses)    \
    X(confidenceBits) X(enableRecovery) X(enablePatterns)             \
    X(unionEpochIntoLock) X(maxHotSetSize) X(spTableLatency)          \
    X(enableSharingFilter) X(filterRegionBytes)                       \
    X(macroBlockBytes) X(groupThreshold) X(trainDownPeriod)           \
    X(predictorEntries)                                               \
    X(seed) X(maxTicks) X(injectBug)

/**
 * Canonical one-line "key=value key=value ..." rendering of every
 * Config field, in declaration order. Stable across runs and hosts,
 * so it doubles as the input of configHash() and as the
 * human-auditable config record in telemetry run manifests.
 */
std::string configDescribe(const Config &cfg);

/** FNV-1a hash of configDescribe(@p cfg); stamps run manifests. */
std::uint64_t configHash(const Config &cfg);

/**
 * Set one Config field by its SPP_CONFIG_FIELDS name from a string
 * value: enums parse by name, bools accept 0/1/true/false, numbers
 * parse strictly in their field's type. Returns "" on success, else
 * a description of what was wrong (unknown field, bad value) — the
 * caller decides whether that is fatal (CLI) or a rejected request
 * (server). The unified field API: bench --set, server request
 * overrides and store-key audits all go through the same names
 * configDescribe() prints.
 */
std::string configSetField(Config &cfg, const std::string &name,
                           const std::string &value);

} // namespace spp

#endif // SPP_COMMON_CONFIG_HH
