/**
 * @file
 * Shared content-addressed store machinery.
 *
 * Two subsystems keep artifacts on disk keyed by *what produced
 * them* rather than by a caller-chosen name: the trace store
 * (trace/store.hh, one recorded op stream per workload key) and the
 * result store (service/result_store.hh, one experiment result per
 * config/workload/git key). Both follow the same discipline, which
 * lives here once:
 *
 *  - Keys are FNV-1a hashes of a canonical human-readable
 *    "schema k=v k=v ..." preimage (ContentKey), so every key is
 *    auditable: the preimage is stored next to the payload and in
 *    run manifests.
 *  - Entry paths are "dir/<sanitized name>-<16 hex digits>.<ext>";
 *    names are sanitized to filesystem-safe characters.
 *  - Writes go through a unique temp file + atomic rename
 *    (writeFileBytesAtomic): concurrent writers of the same
 *    deterministic content race harmlessly, and a crash never leaves
 *    a half-written entry behind. The store directory is created on
 *    demand at first write, so read-only consumers never touch the
 *    filesystem.
 *  - Loads are strict: a missing, unreadable or short file reports a
 *    descriptive error instead of partial bytes; content validation
 *    (checksums, schema checks) stays with the caller's codec.
 */

#ifndef SPP_COMMON_CONTENT_STORE_HH
#define SPP_COMMON_CONTENT_STORE_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.hh"

namespace spp {

/**
 * Builds the canonical key preimage ("schema k=v k=v ...") and its
 * FNV-1a hash. Field order is part of the key, so call sites must
 * append in one fixed order; values render exactly as operator<<
 * prints them (doubles in the default 6-significant-digit form the
 * historical trace keys used).
 */
class ContentKey
{
  public:
    explicit ContentKey(const std::string &schema) { os_ << schema; }

    template <typename T>
    ContentKey &
    field(const char *name, const T &value)
    {
        os_ << ' ' << name << '=' << value;
        return *this;
    }

    /** The canonical preimage accumulated so far. */
    std::string describe() const { return os_.str(); }

    /** FNV-1a hash of describe(). */
    std::uint64_t hash() const { return fnv1a64(os_.str()); }

  private:
    std::ostringstream os_;
};

/** @p name with every character outside [A-Za-z0-9._-] replaced by
 * '_'; keeps store entries shell- and filesystem-safe. */
std::string sanitizeStoreName(const std::string &name);

/** Entry path: dir/<sanitized name>-<16 hex digits><extension>.
 * @p extension includes its leading dot (e.g. ".spptrace"). */
std::string contentStorePath(const std::string &dir,
                             const std::string &name,
                             std::uint64_t key_hash,
                             const std::string &extension);

/** Does @p path exist and open readable? */
bool contentFileExists(const std::string &path);

/** Slurp a file; false + @p err when unreadable or short. */
bool readFileBytes(const std::string &path,
                   std::vector<std::uint8_t> &out, std::string &err);

/**
 * Write via a unique temp file + atomic rename, creating the parent
 * directory on demand, so two processes writing the same
 * (deterministic) entry can race harmlessly.
 */
bool writeFileBytesAtomic(const std::string &path,
                          const std::vector<std::uint8_t> &bytes,
                          std::string &err);

/** writeFileBytesAtomic for text payloads (JSON documents). */
bool writeFileTextAtomic(const std::string &path,
                         const std::string &text, std::string &err);

} // namespace spp

#endif // SPP_COMMON_CONTENT_STORE_HH
