#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace spp {

namespace {
// Atomic so parallel sweep workers can consult the flag while the
// main thread toggles it; stderr/stdout writes below are single
// fprintf calls, which the C library serializes per stream.
std::atomic<bool> quiet_flag{false};
} // namespace

void
setQuiet(bool quiet)
{
    quiet_flag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quiet_flag.load(std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, std::string_view msg)
{
    std::fprintf(stderr, "panic: %.*s (%s:%d)\n",
                 static_cast<int>(msg.size()), msg.data(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, std::string_view msg)
{
    std::fprintf(stderr, "fatal: %.*s (%s:%d)\n",
                 static_cast<int>(msg.size()), msg.data(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(std::string_view msg)
{
    if (isQuiet())
        return;
    std::fprintf(stderr, "warn: %.*s\n", static_cast<int>(msg.size()),
                 msg.data());
}

void
informImpl(std::string_view msg)
{
    if (isQuiet())
        return;
    std::fprintf(stdout, "info: %.*s\n", static_cast<int>(msg.size()),
                 msg.data());
}

} // namespace spp
