#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace spp {

namespace {
bool quiet_flag = false;
} // namespace

void
setQuiet(bool quiet)
{
    quiet_flag = quiet;
}

bool
isQuiet()
{
    return quiet_flag;
}

void
panicImpl(const char *file, int line, std::string_view msg)
{
    std::fprintf(stderr, "panic: %.*s (%s:%d)\n",
                 static_cast<int>(msg.size()), msg.data(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, std::string_view msg)
{
    std::fprintf(stderr, "fatal: %.*s (%s:%d)\n",
                 static_cast<int>(msg.size()), msg.data(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(std::string_view msg)
{
    if (quiet_flag)
        return;
    std::fprintf(stderr, "warn: %.*s\n", static_cast<int>(msg.size()),
                 msg.data());
}

void
informImpl(std::string_view msg)
{
    if (quiet_flag)
        return;
    std::fprintf(stdout, "info: %.*s\n", static_cast<int>(msg.size()),
                 msg.data());
}

} // namespace spp
