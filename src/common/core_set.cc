#include "common/core_set.hh"

#include <sstream>

namespace spp {

std::string
CoreSet::toString() const
{
    std::ostringstream os;
    os << '{';
    bool is_first = true;
    for (CoreId c : *this) {
        if (!is_first)
            os << ',';
        os << c;
        is_first = false;
    }
    os << '}';
    return os.str();
}

std::string
CoreSet::toBitString(unsigned n_cores) const
{
    std::string s;
    s.reserve(n_cores);
    for (unsigned c = 0; c < n_cores; ++c)
        s.push_back(test(c) ? '1' : '0');
    return s;
}

} // namespace spp
