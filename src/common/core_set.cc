#include "common/core_set.hh"

#include <sstream>

#include "common/logging.hh"

namespace spp {

std::string
CoreSet::toString() const
{
    std::ostringstream os;
    os << '{';
    bool is_first = true;
    for (CoreId c : *this) {
        if (!is_first)
            os << ',';
        os << c;
        is_first = false;
    }
    os << '}';
    return os.str();
}

std::string
CoreSet::toBitString(unsigned n_cores) const
{
    std::string s;
    s.reserve(n_cores);
    for (unsigned c = 0; c < n_cores; ++c)
        s.push_back(test(c) ? '1' : '0');
    return s;
}

std::string
CoreSet::toHex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string s;
    bool leading = true;
    for (unsigned w = nWords; w-- > 0;) {
        for (unsigned nib = 16; nib-- > 0;) {
            const unsigned d =
                static_cast<unsigned>(w_[w] >> (nib * 4)) & 0xf;
            if (leading && d == 0)
                continue;
            leading = false;
            s.push_back(digits[d]);
        }
    }
    if (s.empty())
        s = "0";
    return s;
}

CoreSet
CoreSet::fromHex(const std::string &hex)
{
    SPP_ASSERT(!hex.empty() && hex.size() <= nWords * 16,
               "malformed CoreSet hex string '{}'", hex);
    CoreSet s;
    unsigned nib = 0; // Nibble position from the least significant end.
    for (std::size_t i = hex.size(); i-- > 0; ++nib) {
        const char c = hex[i];
        unsigned d;
        if (c >= '0' && c <= '9')
            d = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            d = static_cast<unsigned>(c - 'a') + 10;
        else if (c >= 'A' && c <= 'F')
            d = static_cast<unsigned>(c - 'A') + 10;
        else
            SPP_FATAL("malformed CoreSet hex string '{}'", hex);
        s.w_[nib / 16] |= static_cast<Word>(d) << (nib % 16 * 4);
    }
    return s;
}

} // namespace spp
