/**
 * @file
 * CoreSet: a fixed-capacity bit vector over core IDs.
 *
 * Communication signatures, predicted destination sets and directory
 * sharer vectors are all CoreSets. The representation is a single
 * 64-bit mask, which bounds the system at 64 cores (the paper models
 * 16).
 */

#ifndef SPP_COMMON_CORE_SET_HH
#define SPP_COMMON_CORE_SET_HH

#include <bit>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "common/types.hh"

namespace spp {

/**
 * A set of core IDs stored as a bit mask. Value type; cheap to copy.
 */
class CoreSet
{
  public:
    constexpr CoreSet() = default;

    /** Construct from an explicit mask. */
    static constexpr CoreSet
    fromMask(std::uint64_t mask)
    {
        CoreSet s;
        s.bits_ = mask;
        return s;
    }

    /** Construct a set holding exactly one core. */
    static constexpr CoreSet
    single(CoreId core)
    {
        CoreSet s;
        s.set(core);
        return s;
    }

    /** Construct the full set {0, ..., n_cores - 1}. */
    static constexpr CoreSet
    all(unsigned n_cores)
    {
        assert(n_cores <= maxCores);
        CoreSet s;
        s.bits_ = n_cores == maxCores ? ~std::uint64_t{0}
                                      : (std::uint64_t{1} << n_cores) - 1;
        return s;
    }

    constexpr CoreSet(std::initializer_list<CoreId> cores)
    {
        for (CoreId c : cores)
            set(c);
    }

    constexpr void
    set(CoreId core)
    {
        assert(core < maxCores);
        bits_ |= std::uint64_t{1} << core;
    }

    constexpr void
    reset(CoreId core)
    {
        assert(core < maxCores);
        bits_ &= ~(std::uint64_t{1} << core);
    }

    constexpr bool
    test(CoreId core) const
    {
        assert(core < maxCores);
        return bits_ & (std::uint64_t{1} << core);
    }

    constexpr void clear() { bits_ = 0; }

    constexpr bool empty() const { return bits_ == 0; }

    /** Number of cores in the set. */
    constexpr unsigned count() const { return std::popcount(bits_); }

    constexpr std::uint64_t mask() const { return bits_; }

    /** Lowest-numbered member; the set must be non-empty. */
    constexpr CoreId
    first() const
    {
        assert(!empty());
        return static_cast<CoreId>(std::countr_zero(bits_));
    }

    /** True iff this set contains every member of @p other. */
    constexpr bool
    contains(const CoreSet &other) const
    {
        return (other.bits_ & ~bits_) == 0;
    }

    constexpr bool
    intersects(const CoreSet &other) const
    {
        return (bits_ & other.bits_) != 0;
    }

    constexpr CoreSet
    operator|(const CoreSet &o) const
    {
        return fromMask(bits_ | o.bits_);
    }

    constexpr CoreSet
    operator&(const CoreSet &o) const
    {
        return fromMask(bits_ & o.bits_);
    }

    /** Set difference: members of this set not in @p o. */
    constexpr CoreSet
    operator-(const CoreSet &o) const
    {
        return fromMask(bits_ & ~o.bits_);
    }

    constexpr CoreSet &
    operator|=(const CoreSet &o)
    {
        bits_ |= o.bits_;
        return *this;
    }

    constexpr CoreSet &
    operator&=(const CoreSet &o)
    {
        bits_ &= o.bits_;
        return *this;
    }

    constexpr bool operator==(const CoreSet &) const = default;

    /**
     * Iteration support: visits member core IDs in ascending order.
     */
    class iterator
    {
      public:
        explicit constexpr iterator(std::uint64_t rest) : rest_(rest) {}

        constexpr CoreId
        operator*() const
        {
            return static_cast<CoreId>(std::countr_zero(rest_));
        }

        constexpr iterator &
        operator++()
        {
            rest_ &= rest_ - 1;
            return *this;
        }

        constexpr bool operator==(const iterator &) const = default;

      private:
        std::uint64_t rest_;
    };

    constexpr iterator begin() const { return iterator(bits_); }
    constexpr iterator end() const { return iterator(0); }

    /** Render as e.g. "{0,5,12}" for logs and test failure messages. */
    std::string toString() const;

    /** Render as a 0/1 string of @p n_cores bits, LSB (core 0) first. */
    std::string toBitString(unsigned n_cores) const;

  private:
    std::uint64_t bits_ = 0;
};

} // namespace spp

#endif // SPP_COMMON_CORE_SET_HH
