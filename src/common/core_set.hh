/**
 * @file
 * CoreSet: a fixed-capacity bit vector over core IDs.
 *
 * Communication signatures, predicted destination sets and directory
 * sharer vectors are all CoreSets. The representation is a
 * fixed-capacity multi-word bit mask whose capacity follows
 * SPP_MAX_CORES (default 1024, see common/types.hh), so the simulated
 * machine can scale well past the paper's 16-core design point while
 * CoreSet stays a plain value type: no heap, cheap to copy, and the
 * iteration order (ascending core ID) is identical to the historical
 * single-word representation.
 */

#ifndef SPP_COMMON_CORE_SET_HH
#define SPP_COMMON_CORE_SET_HH

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "common/types.hh"

namespace spp {

/**
 * A set of core IDs stored as a multi-word bit mask. Value type;
 * cheap to copy (maxCores / 8 bytes).
 */
class CoreSet
{
  public:
    using Word = std::uint64_t;
    static constexpr unsigned wordBits = 64;
    static constexpr unsigned nWords =
        (maxCores + wordBits - 1) / wordBits;

    constexpr CoreSet() = default;

    /** Construct from an explicit single-word mask (cores 0..63). */
    static constexpr CoreSet
    fromMask(Word mask)
    {
        CoreSet s;
        s.w_[0] = maxCores >= wordBits
            ? mask
            : mask & ((Word{1} << maxCores) - 1);
        return s;
    }

    /** Construct a set holding exactly one core. */
    static constexpr CoreSet
    single(CoreId core)
    {
        CoreSet s;
        s.set(core);
        return s;
    }

    /** Construct the full set {0, ..., n_cores - 1}. */
    static constexpr CoreSet
    all(unsigned n_cores)
    {
        assert(n_cores <= maxCores);
        CoreSet s;
        unsigned full = n_cores / wordBits;
        for (unsigned w = 0; w < full; ++w)
            s.w_[w] = ~Word{0};
        // A shift by a full word width is UB, hence the split above:
        // only the genuinely partial trailing word is shifted.
        const unsigned rem = n_cores % wordBits;
        if (rem != 0)
            s.w_[full] = (Word{1} << rem) - 1;
        return s;
    }

    constexpr CoreSet(std::initializer_list<CoreId> cores)
    {
        for (CoreId c : cores)
            set(c);
    }

    constexpr void
    set(CoreId core)
    {
        assert(core < maxCores);
        w_[core / wordBits] |= Word{1} << (core % wordBits);
    }

    constexpr void
    reset(CoreId core)
    {
        assert(core < maxCores);
        w_[core / wordBits] &= ~(Word{1} << (core % wordBits));
    }

    constexpr bool
    test(CoreId core) const
    {
        assert(core < maxCores);
        return w_[core / wordBits] & (Word{1} << (core % wordBits));
    }

    constexpr void
    clear()
    {
        for (Word &w : w_)
            w = 0;
    }

    constexpr bool
    empty() const
    {
        for (Word w : w_)
            if (w != 0)
                return false;
        return true;
    }

    /** Number of cores in the set. */
    constexpr unsigned
    count() const
    {
        unsigned n = 0;
        for (Word w : w_)
            n += static_cast<unsigned>(std::popcount(w));
        return n;
    }

    /**
     * The historical single-word view; every member must fit in 64
     * bits. Prefer toHex()/fromHex() for serialization — this exists
     * for small-system call sites and tests.
     */
    constexpr Word
    mask() const
    {
        for (unsigned w = 1; w < nWords; ++w)
            assert(w_[w] == 0 && "mask() on a set with cores >= 64");
        return w_[0];
    }

    /** Lowest-numbered member; the set must be non-empty. */
    constexpr CoreId
    first() const
    {
        for (unsigned w = 0; w < nWords; ++w)
            if (w_[w] != 0)
                return static_cast<CoreId>(
                    w * wordBits + std::countr_zero(w_[w]));
        assert(!"first() on an empty CoreSet");
        return invalidCore;
    }

    /** True iff this set contains every member of @p other. */
    constexpr bool
    contains(const CoreSet &other) const
    {
        for (unsigned w = 0; w < nWords; ++w)
            if (other.w_[w] & ~w_[w])
                return false;
        return true;
    }

    constexpr bool
    intersects(const CoreSet &other) const
    {
        for (unsigned w = 0; w < nWords; ++w)
            if (w_[w] & other.w_[w])
                return true;
        return false;
    }

    constexpr CoreSet
    operator|(const CoreSet &o) const
    {
        CoreSet r;
        for (unsigned w = 0; w < nWords; ++w)
            r.w_[w] = w_[w] | o.w_[w];
        return r;
    }

    constexpr CoreSet
    operator&(const CoreSet &o) const
    {
        CoreSet r;
        for (unsigned w = 0; w < nWords; ++w)
            r.w_[w] = w_[w] & o.w_[w];
        return r;
    }

    /** Set difference: members of this set not in @p o. */
    constexpr CoreSet
    operator-(const CoreSet &o) const
    {
        CoreSet r;
        for (unsigned w = 0; w < nWords; ++w)
            r.w_[w] = w_[w] & ~o.w_[w];
        return r;
    }

    constexpr CoreSet &
    operator|=(const CoreSet &o)
    {
        for (unsigned w = 0; w < nWords; ++w)
            w_[w] |= o.w_[w];
        return *this;
    }

    constexpr CoreSet &
    operator&=(const CoreSet &o)
    {
        for (unsigned w = 0; w < nWords; ++w)
            w_[w] &= o.w_[w];
        return *this;
    }

    constexpr bool operator==(const CoreSet &) const = default;

    /**
     * Iteration support: visits member core IDs in ascending order.
     * The iterator references the set's word storage, so the set must
     * outlive the iteration (range-for over a temporary is fine: the
     * temporary's lifetime covers the loop).
     */
    class iterator
    {
      public:
        constexpr iterator(const Word *words, unsigned word)
            : words_(words), word_(word)
        {
            skipEmptyWords();
        }

        constexpr CoreId
        operator*() const
        {
            return static_cast<CoreId>(
                word_ * wordBits + std::countr_zero(rest_));
        }

        constexpr iterator &
        operator++()
        {
            rest_ &= rest_ - 1;
            if (rest_ == 0) {
                ++word_;
                skipEmptyWords();
            }
            return *this;
        }

        constexpr bool
        operator==(const iterator &o) const
        {
            return word_ == o.word_ && rest_ == o.rest_;
        }

      private:
        constexpr void
        skipEmptyWords()
        {
            while (word_ < nWords && words_[word_] == 0)
                ++word_;
            rest_ = word_ < nWords ? words_[word_] : 0;
        }

        const Word *words_;
        unsigned word_;
        Word rest_ = 0;
    };

    constexpr iterator begin() const { return iterator(w_.data(), 0); }
    constexpr iterator end() const
    {
        return iterator(w_.data(), nWords);
    }

    /** Render as e.g. "{0,5,12}" for logs and test failure messages. */
    std::string toString() const;

    /** Render as a 0/1 string of @p n_cores bits, LSB (core 0) first. */
    std::string toBitString(unsigned n_cores) const;

    /**
     * Compact lowercase-hex rendering of the whole mask (least
     * significant digit last, no leading zeros, "0" when empty);
     * width-independent serialization for trace files.
     */
    std::string toHex() const;

    /** Parse a toHex() rendering; fatal on malformed input. */
    static CoreSet fromHex(const std::string &hex);

  private:
    std::array<Word, nWords> w_{};
};

} // namespace spp

#endif // SPP_COMMON_CORE_SET_HH
