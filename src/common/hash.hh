/**
 * @file
 * Incremental state hashing for the model checker.
 *
 * StateHasher folds a stream of 64-bit words into one digest. Two
 * folding modes cover the two container shapes the simulator stores
 * state in:
 *
 *  - mix(): order-sensitive. Use for sequences whose order is part of
 *    the state (FIFO wait queues, per-core arrays walked in index
 *    order, script cursors).
 *  - mixUnordered(): order-insensitive (commutative sum of finalized
 *    element digests). Use for hash-map contents, whose iteration
 *    order depends on insertion history and must not leak into the
 *    digest. Fold each *element* into its own StateHasher first and
 *    feed the finished value here, so element fields stay
 *    order-sensitive inside an order-free collection.
 *
 * The digest is a deterministic function of the folded words only —
 * no pointers, no iteration-order artifacts — so equal logical states
 * reached along different execution paths hash equal, which is what
 * the model checker's visited-state pruning relies on.
 */

#ifndef SPP_COMMON_HASH_HH
#define SPP_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace spp {

/**
 * FNV-1a over a byte range: the content hash used for config
 * identity (configHash), run manifests, and the trace store's
 * workload keys. Stable across hosts and builds by construction.
 */
inline std::uint64_t
fnv1a64(const unsigned char *data, std::size_t n,
        std::uint64_t h = 14695981039346656037ull)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

inline std::uint64_t
fnv1a64(std::string_view s, std::uint64_t h = 14695981039346656037ull)
{
    return fnv1a64(
        reinterpret_cast<const unsigned char *>(s.data()), s.size(),
        h);
}

/** Accumulates a 64-bit digest of a stream of words. */
class StateHasher
{
  public:
    /** splitmix64 finalizer: the bijective mixing step. */
    static std::uint64_t
    mix64(std::uint64_t x)
    {
        x += 0x9e37'79b9'7f4a'7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58'476d'1ce4'e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d0'49bb'1331'11ebULL;
        return x ^ (x >> 31);
    }

    /** Fold @p v order-sensitively. */
    void
    mix(std::uint64_t v)
    {
        ordered_ = mix64(ordered_ ^ v);
    }

    /** Fold @p v order-insensitively (commutative). */
    void
    mixUnordered(std::uint64_t v)
    {
        unordered_ += mix64(v);
    }

    /** The digest of everything folded so far. */
    std::uint64_t
    value() const
    {
        return mix64(ordered_ ^ (unordered_ * 0x2545'f491'4f6c'dd1dULL));
    }

  private:
    std::uint64_t ordered_ = 0x6a09'e667'f3bc'c908ULL;
    std::uint64_t unordered_ = 0;
};

} // namespace spp

#endif // SPP_COMMON_HASH_HH
