/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All stochastic choices in the simulator and the synthetic workloads
 * flow from seeded Rng instances so that every experiment is
 * reproducible bit-for-bit. std::mt19937_64 is avoided because its
 * stream is not guaranteed identical across library versions for the
 * distribution adaptors; we implement the generator and the (simple)
 * distributions we need ourselves.
 */

#ifndef SPP_COMMON_RNG_HH
#define SPP_COMMON_RNG_HH

#include <array>
#include <cassert>
#include <cstdint>

namespace spp {

/**
 * xoshiro256** 1.0 by Blackman and Vigna (public domain reference
 * implementation), wrapped with the handful of draw helpers the
 * simulator needs.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Re-initialize the state from @p seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state_)
            word = splitmix64(seed);
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform draw in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound > 0);
        // Debiased via rejection on the top of the range.
        const std::uint64_t limit = ~std::uint64_t{0} - bound + 1;
        const std::uint64_t reject_above = limit - limit % bound;
        std::uint64_t draw;
        do {
            draw = next();
        } while (draw >= reject_above && reject_above != 0);
        return draw % bound;
    }

    /** Uniform draw in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform real in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with success probability @p p. */
    bool chance(double p) { return real() < p; }

    /**
     * Geometric-ish burst length: 1 + number of successes of
     * repeated chance(p), capped at @p cap. Used for run lengths in
     * workload generators.
     */
    unsigned
    burst(double p, unsigned cap)
    {
        unsigned n = 1;
        while (n < cap && chance(p))
            ++n;
        return n;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** splitmix64 used only for seeding; advances @p x in place. */
    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::array<std::uint64_t, 4> state_;
};

} // namespace spp

#endif // SPP_COMMON_RNG_HH
