/**
 * @file
 * Error and status reporting, following the gem5 convention:
 *
 *  - panic():  an internal invariant was violated (simulator bug);
 *              aborts so a debugger or core dump can inspect state.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments); exits cleanly.
 *  - warn():   something is approximated or suspicious but the run can
 *              continue.
 *  - inform(): normal status output.
 */

#ifndef SPP_COMMON_LOGGING_HH
#define SPP_COMMON_LOGGING_HH

#include <string_view>

#include "common/format.hh"

namespace spp {

[[noreturn]] void panicImpl(const char *file, int line,
                            std::string_view msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            std::string_view msg);
void warnImpl(std::string_view msg);
void informImpl(std::string_view msg);

/** Suppress warn()/inform() output (used by tests and benches). */
void setQuiet(bool quiet);
bool isQuiet();

template <typename... Args>
inline void
warn(std::string_view fmt, const Args &...args)
{
    warnImpl(strfmt(fmt, args...));
}

template <typename... Args>
inline void
inform(std::string_view fmt, const Args &...args)
{
    informImpl(strfmt(fmt, args...));
}

} // namespace spp

#define SPP_PANIC(...)                                                  \
    ::spp::panicImpl(__FILE__, __LINE__, ::spp::strfmt(__VA_ARGS__))
#define SPP_FATAL(...)                                                  \
    ::spp::fatalImpl(__FILE__, __LINE__, ::spp::strfmt(__VA_ARGS__))

/** Assert-like invariant check that survives NDEBUG builds. */
#define SPP_ASSERT(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) [[unlikely]]                                       \
            SPP_PANIC("assertion failed: " #cond " -- {}",              \
                      ::spp::strfmt(__VA_ARGS__));                      \
    } while (0)

#endif // SPP_COMMON_LOGGING_HH
