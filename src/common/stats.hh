/**
 * @file
 * Lightweight statistics primitives.
 *
 * Counters and distributions register themselves with an owning
 * StatGroup so that subsystems can be dumped uniformly. Statistics are
 * plain value types; reading them directly (e.g. from benches) is the
 * expected usage, the group dump is a convenience.
 */

#ifndef SPP_COMMON_STATS_HH
#define SPP_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace spp {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter &
    operator+=(std::uint64_t n)
    {
        value_ += n;
        return *this;
    }

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    /**
     * Read the current value and replace it with @p new_value
     * (default 0) in one step. Interval consumers that only need
     * per-period deltas should instead keep their own last-seen
     * snapshot (telemetry::Sampler does) so the cumulative total
     * survives for end-of-run aggregation; exchange() is for owners
     * that genuinely hand the whole count off.
     */
    std::uint64_t
    exchange(std::uint64_t new_value = 0)
    {
        const std::uint64_t old = value_;
        value_ = new_value;
        return old;
    }

  private:
    std::uint64_t value_ = 0;
};

/** Running sum / count with mean. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        max_ = std::max(max_, v);
        min_ = count_ == 1 ? v : std::min(min_, v);
    }

    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }
    double max() const { return max_; }
    double min() const { return min_; }

    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
        max_ = 0;
        min_ = 0;
    }

    /** Rebuild from serialized parts (result-store warm path); the
     * restored object answers mean()/sum()/... exactly as the
     * original did. */
    void
    restore(double sum, std::uint64_t count, double max, double min)
    {
        sum_ = sum;
        count_ = count;
        max_ = max;
        min_ = min;
    }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
    double max_ = 0;
    double min_ = 0;
};

/** Fixed-bucket histogram over [0, buckets * bucket_width). */
class Distribution
{
  public:
    Distribution(unsigned buckets, double bucket_width)
        : counts_(buckets, 0), width_(bucket_width)
    {}

    void
    sample(double v)
    {
        avg_.sample(v);
        auto idx = static_cast<std::size_t>(v / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        ++counts_[idx];
    }

    const std::vector<std::uint64_t> &counts() const { return counts_; }
    const Average &summary() const { return avg_; }
    double bucketWidth() const { return width_; }

  private:
    std::vector<std::uint64_t> counts_;
    Average avg_;
    double width_;
};

/**
 * A named collection of statistics, dumped as "name value" lines.
 * Groups do not own the registered stats; lifetime is the caller's
 * responsibility (stats normally live in the same object as the
 * group).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void regCounter(const std::string &name, const Counter &c);
    void regAverage(const std::string &name, const Average &a);

    /**
     * Write "group.name value" lines to @p os, sorted by statistic
     * name (counters first, then averages). The ordering is
     * independent of registration order, so consumers that key on
     * line position — telemetry CSV headers, diff-based regression
     * scripts — stay stable across translation-unit reorderings.
     */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::pair<std::string, const Counter *>> counters_;
    std::vector<std::pair<std::string, const Average *>> averages_;
};

} // namespace spp

#endif // SPP_COMMON_STATS_HH
