/**
 * @file
 * Minimal "{}"-placeholder string formatting.
 *
 * libstdc++ shipped with GCC 12 lacks <format>, so the simulator uses
 * this small substitute: strfmt("miss at {} on core {}", addr, core).
 * Each "{}" consumes one argument via operator<<; surplus arguments
 * are appended, surplus placeholders are left verbatim. "{{" escapes a
 * literal brace.
 */

#ifndef SPP_COMMON_FORMAT_HH
#define SPP_COMMON_FORMAT_HH

#include <sstream>
#include <string>
#include <string_view>

namespace spp {

namespace format_detail {

inline void
appendRest(std::ostringstream &os, std::string_view fmt)
{
    for (std::size_t i = 0; i < fmt.size(); ++i) {
        // Un-escape "{{" and "}}".
        if (i + 1 < fmt.size() && fmt[i] == fmt[i + 1] &&
            (fmt[i] == '{' || fmt[i] == '}')) {
            os << fmt[i];
            ++i;
            continue;
        }
        os << fmt[i];
    }
}

template <typename T, typename... Rest>
void
appendRest(std::ostringstream &os, std::string_view fmt, const T &head,
           const Rest &...rest)
{
    for (std::size_t i = 0; i < fmt.size(); ++i) {
        if (fmt[i] == '{' && i + 1 < fmt.size()) {
            if (fmt[i + 1] == '}') {
                os << head;
                appendRest(os, fmt.substr(i + 2), rest...);
                return;
            }
            if (fmt[i + 1] == '{') {
                os << '{';
                ++i;
                continue;
            }
        }
        if (fmt[i] == '}' && i + 1 < fmt.size() &&
            fmt[i + 1] == '}') {
            os << '}';
            ++i;
            continue;
        }
        os << fmt[i];
    }
    // No placeholder left: append remaining arguments space-separated.
    os << ' ' << head;
    (void)std::initializer_list<int>{(os << ' ' << rest, 0)...};
}

} // namespace format_detail

/** Format @p fmt, substituting "{}" placeholders left to right. */
template <typename... Args>
std::string
strfmt(std::string_view fmt, const Args &...args)
{
    std::ostringstream os;
    format_detail::appendRest(os, fmt, args...);
    return os.str();
}

} // namespace spp

#endif // SPP_COMMON_FORMAT_HH
