/**
 * @file
 * Scalable directory sharer-set representations.
 *
 * A full-map bit vector costs n bits per directory entry and stops
 * being reasonable somewhere past a few dozen cores. The classic
 * scalable alternatives trade exactness for space, and stay correct
 * by only ever over-approximating the sharer set (invalidations sent
 * to non-sharers are answered with hadCopy = false acks, so SWMR is
 * preserved):
 *
 *  - full:    exact bit vector, n bits/entry.
 *  - coarse:  one bit per group of K consecutive cores
 *             (Gupta et al.'s coarse vector); ceil(n/K) bits/entry.
 *             Invalidations multicast to the whole group. Per-core
 *             removal is impossible (other group members may still
 *             share), so writebacks leave the group bit set — the
 *             same kind of staleness silent Shared evictions already
 *             leave in a full map.
 *  - limited: P exact core pointers plus an overflow flag (Dir-P-B).
 *             Once more than P cores share, the entry degrades to
 *             broadcast until the next write makes it exact again.
 *             P*ceil(log2 n)+1 bits/entry.
 *
 * SharerTracker is the value type directory entries hold; protocols
 * act on the conservative superset members() returns. A
 * default-constructed tracker is a full-map over the compile-time
 * capacity, i.e. exactly the plain CoreSet it replaced.
 */

#ifndef SPP_COMMON_SHARER_TRACKER_HH
#define SPP_COMMON_SHARER_TRACKER_HH

#include <algorithm>
#include <bit>
#include <cstddef>

#include "common/config.hh"
#include "common/core_set.hh"

namespace spp {

/** Geometry of a sharer-set representation. */
struct SharerLayout
{
    SharerFormat format = SharerFormat::full;
    unsigned nCores = maxCores;
    unsigned coarseCoresPerBit = 4; ///< K (coarse format).
    unsigned sharerPointers = 4;    ///< P (limited format).

    static SharerLayout
    fromConfig(const Config &cfg)
    {
        return {cfg.sharerFormat, cfg.numCores, cfg.coarseCoresPerBit,
                cfg.sharerPointers};
    }
};

/** One directory entry's sharer field, in a configurable format. */
class SharerTracker
{
  public:
    SharerTracker() = default;
    explicit SharerTracker(const SharerLayout &l)
        : format_(l.format), n_cores_(l.nCores),
          k_(l.coarseCoresPerBit), p_(l.sharerPointers)
    {}

    /** Record @p c as a sharer. */
    void
    set(CoreId c)
    {
        switch (format_) {
          case SharerFormat::full:
            bits_.set(c);
            return;
          case SharerFormat::coarse:
            bits_.set(group(c));
            return;
          case SharerFormat::limited:
            if (overflow_ || bits_.test(c))
                return;
            if (bits_.count() < p_)
                bits_.set(c);
            else
                overflow_ = true;
            return;
        }
    }

    /**
     * Forget @p c where the format allows it. Coarse group bits and
     * overflowed limited entries keep their conservative superset
     * (the represented set must never under-approximate).
     */
    void
    reset(CoreId c)
    {
        switch (format_) {
          case SharerFormat::full:
            bits_.reset(c);
            return;
          case SharerFormat::coarse:
            return;
          case SharerFormat::limited:
            if (!overflow_)
                bits_.reset(c);
            return;
        }
    }

    /** The write path's exact re-initialization to one sharer. */
    void
    setSingle(CoreId c)
    {
        bits_.clear();
        overflow_ = false;
        bits_.set(format_ == SharerFormat::coarse ? group(c) : c);
    }

    void
    clear()
    {
        bits_.clear();
        overflow_ = false;
    }

    /** May @p c hold a copy? (Conservative: never false for an
     * actual sharer.) */
    bool
    test(CoreId c) const
    {
        switch (format_) {
          case SharerFormat::full:
            return bits_.test(c);
          case SharerFormat::coarse:
            return bits_.test(group(c));
          case SharerFormat::limited:
            return overflow_ || bits_.test(c);
        }
        return false;
    }

    /** Conservative superset of the recorded sharers, clipped to the
     * configured core count. */
    CoreSet
    members() const
    {
        switch (format_) {
          case SharerFormat::full:
            return bits_;
          case SharerFormat::coarse: {
            CoreSet s;
            for (CoreId g : bits_) {
                const unsigned lo = g * k_;
                const unsigned hi = std::min(lo + k_, n_cores_);
                for (unsigned c = lo; c < hi; ++c)
                    s.set(static_cast<CoreId>(c));
            }
            return s;
          }
          case SharerFormat::limited:
            return overflow_ ? CoreSet::all(n_cores_) : bits_;
        }
        return {};
    }

    /** members() minus @p c — the peers a request must contact. */
    CoreSet
    others(CoreId c) const
    {
        CoreSet s = members();
        s.reset(c);
        return s;
    }

    bool overflowed() const { return overflow_; }

    /** Modelled bits of one entry's sharer field under @p l. */
    static std::size_t
    entryBits(const SharerLayout &l)
    {
        switch (l.format) {
          case SharerFormat::full:
            return l.nCores;
          case SharerFormat::coarse:
            return (l.nCores + l.coarseCoresPerBit - 1) /
                l.coarseCoresPerBit;
          case SharerFormat::limited:
            return l.sharerPointers *
                std::bit_width(l.nCores - 1u) + 1;
        }
        return 0;
    }

  private:
    CoreId group(CoreId c) const { return static_cast<CoreId>(c / k_); }

    SharerFormat format_ = SharerFormat::full;
    unsigned n_cores_ = maxCores;
    unsigned k_ = 1;
    unsigned p_ = 0;
    /** full: exact sharers; coarse: group bits; limited: pointers. */
    CoreSet bits_;
    bool overflow_ = false;
};

} // namespace spp

#endif // SPP_COMMON_SHARER_TRACKER_HH
