#include "common/content_store.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <unistd.h>

namespace spp {

std::string
sanitizeStoreName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name)
        out += (std::isalnum(static_cast<unsigned char>(c)) ||
                c == '.' || c == '_' || c == '-')
            ? c
            : '_';
    return out;
}

std::string
contentStorePath(const std::string &dir, const std::string &name,
                 std::uint64_t key_hash,
                 const std::string &extension)
{
    static const char *hex = "0123456789abcdef";
    std::string digits(16, '0');
    for (int i = 15; i >= 0; --i) {
        digits[static_cast<std::size_t>(i)] = hex[key_hash & 0xf];
        key_hash >>= 4;
    }
    return dir + "/" + sanitizeStoreName(name) + "-" + digits +
        extension;
}

bool
contentFileExists(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return static_cast<bool>(in);
}

bool
readFileBytes(const std::string &path, std::vector<std::uint8_t> &out,
              std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    in.seekg(0, std::ios::beg);
    out.resize(static_cast<std::size_t>(size));
    if (size > 0)
        in.read(reinterpret_cast<char *>(out.data()), size);
    if (!in) {
        err = "short read from " + path;
        return false;
    }
    return true;
}

bool
writeFileBytesAtomic(const std::string &path,
                     const std::vector<std::uint8_t> &bytes,
                     std::string &err)
{
    // A fresh store directory (an option pointing somewhere new) is
    // created on first write rather than up front, so read-only
    // consumers never touch the filesystem.
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
        if (ec) {
            err = "cannot create directory " + parent.string() +
                ": " + ec.message();
            return false;
        }
    }
    // Unique temp name per process *and* call: concurrent writers of
    // the same deterministic entry never share a partially written
    // file, and the final rename is atomic.
    static std::atomic<unsigned> seq{0};
    const std::string tmp = path + ".tmp." +
        std::to_string(::getpid()) + "." +
        std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream of(tmp, std::ios::binary | std::ios::trunc);
        if (!of) {
            err = "cannot create " + tmp;
            return false;
        }
        of.write(reinterpret_cast<const char *>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
        if (!of) {
            err = "short write to " + tmp;
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        err = "cannot rename " + tmp + " to " + path;
        return false;
    }
    return true;
}

bool
writeFileTextAtomic(const std::string &path, const std::string &text,
                    std::string &err)
{
    std::vector<std::uint8_t> bytes(text.begin(), text.end());
    return writeFileBytesAtomic(path, bytes, err);
}

} // namespace spp
