/**
 * @file
 * Coroutine task type for simulated threads.
 *
 * A workload's per-thread program is a C++20 coroutine returning
 * Task. Awaiting a ThreadContext operation suspends the coroutine
 * until the simulated operation (memory access, barrier, ...)
 * completes; awaiting a nested Task runs a sub-program to completion
 * (symmetric transfer, no event-queue round trip).
 */

#ifndef SPP_SIM_TASK_HH
#define SPP_SIM_TASK_HH

#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

namespace spp {

/** A lazily-started coroutine; resumes its awaiter when done. */
class [[nodiscard]] Task
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation;
        // lint: allow(std-function) — fires once per top-level task.
        std::function<void()> onDone;

        Task
        get_return_object()
        {
            return Task{std::coroutine_handle<promise_type>::
                            from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(
                std::coroutine_handle<promise_type> h) noexcept
            {
                promise_type &p = h.promise();
                if (p.onDone)
                    p.onDone();
                return p.continuation ? p.continuation
                                      : std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { std::terminate(); }
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** Start a top-level task; @p on_done fires at completion. */
    void
    // lint: allow(std-function) — once per thread program.
    start(std::function<void()> on_done = {})
    {
        handle_.promise().onDone = std::move(on_done);
        handle_.resume();
    }

    bool done() const { return !handle_ || handle_.done(); }

    /** Awaiting a Task runs it to completion, then resumes the
     * awaiter via symmetric transfer. */
    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            std::coroutine_handle<promise_type> h;

            bool await_ready() const { return !h || h.done(); }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> cont)
            {
                h.promise().continuation = cont;
                return h;
            }

            void await_resume() {}
        };
        return Awaiter{handle_};
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

} // namespace spp

#endif // SPP_SIM_TASK_HH
