/**
 * @file
 * CmpSystem: the complete simulated machine.
 *
 * Builds the event queue, mesh, coherent memory system (directory,
 * broadcast, or directory+prediction), predictor and synchronization
 * runtime per a Config; spawns one coroutine thread per core; runs
 * the event loop to completion and returns the collected statistics.
 */

#ifndef SPP_SIM_CMP_SYSTEM_HH
#define SPP_SIM_CMP_SYSTEM_HH

#include <functional>
#include <memory>
#include <vector>

#include "coherence/directory_protocol.hh"
#include "coherence/mem_sys.hh"
#include "common/config.hh"
#include "core/sp_predictor.hh"
#include "event/event_queue.hh"
#include "noc/mesh.hh"
#include "predict/group_predictor.hh"
#include "sim/task.hh"
#include "sim/thread_context.hh"
#include "sync/sync_manager.hh"
#include "telemetry/self_profile.hh"

namespace spp {

class TraceSink;

/** How a tryRun() attempt ended. */
enum class RunStatus
{
    ok,       ///< All threads finished and the system drained.
    timeout,  ///< maxTicks elapsed with events still pending.
    deadlock, ///< Event queue drained with unfinished threads.
};

const char *toString(RunStatus s);

/** Everything measured over one run. */
struct RunResult
{
    Tick ticks = 0;                 ///< Execution time.
    MemSysStats mem;
    NocStats noc;
    SyncStats sync;
    SpStats sp;                     ///< Zero if not SP-predicted.
    std::size_t predictorStorageBits = 0;
    std::uint64_t predictorTableAccesses = 0;
    std::uint64_t indirectionsAvoided = 0;
    std::uint64_t eventsExecuted = 0;
};

/**
 * One simulated CMP. Construct, optionally attach observers, then
 * run() a workload.
 */
class CmpSystem
{
  public:
    /** Factory producing the per-thread program. */
    // lint: allow(std-function) — setup-time binding, not per-event.
    using ThreadFn = std::function<Task(ThreadContext &)>;

    /** Observer of every completed memory access (tracing). */
    using AccessObserver =
        // lint: allow(std-function) — optional tracing hook; unbound in timed runs.
        std::function<void(CoreId, Addr, Pc, const AccessOutcome &)>;

    explicit CmpSystem(const Config &cfg);
    ~CmpSystem();

    /** Run @p thread_fn on every core to completion. */
    RunResult run(const ThreadFn &thread_fn);

    /**
     * Like run(), but reports timeouts and deadlocks through the
     * return status instead of terminating the process; used by the
     * fuzz harness, for which a hang is a finding, not a fatal error.
     * @p result is filled with whatever statistics accumulated, even
     * on failure.
     */
    RunStatus tryRun(const ThreadFn &thread_fn, RunResult &result);

    // Component access (observers, tests, analysis).
    EventQueue &eventQueue() { return eq_; }
    Mesh &mesh() { return *mesh_; }
    MemSys &memSys() { return *mem_; }
    SyncManager &syncManager() { return *sync_; }
    const Config &config() const { return cfg_; }
    DestinationPredictor *predictor() { return predictor_.get(); }
    SpPredictor *spPredictor() { return sp_predictor_; }
    DirectoryMemSys *directory();

    void setAccessObserver(AccessObserver obs)
    {
        access_observer_ = std::move(obs);
    }
    const AccessObserver &accessObserver() const
    {
        return access_observer_;
    }

    /**
     * Attach a trace recorder: every semantic op a thread issues
     * (memory access, compute burst, sync primitive) is reported at
     * issue time. Observational only; nullptr (the default) turns
     * recording off, leaving one pointer check per issued op.
     */
    void setTraceSink(TraceSink *sink) { trace_sink_ = sink; }
    TraceSink *traceSink() const { return trace_sink_; }

    /**
     * Turn on wall-clock self-profiling: distributes the profiler
     * to the memory system and the mesh and wraps the event loop in
     * the kernel scope. Idempotent; call before run(). Off by
     * default so timed runs see only null-pointer checks.
     */
    void enableSelfProfiling();
    /** The profiler, or nullptr when self-profiling is off. */
    SelfProfiler *selfProfiler()
    {
        return self_prof_.enabled() ? &self_prof_ : nullptr;
    }

  private:
    Config cfg_;
    EventQueue eq_;
    std::unique_ptr<Mesh> mesh_;
    std::unique_ptr<DestinationPredictor> predictor_;
    SpPredictor *sp_predictor_ = nullptr; ///< Borrowed from predictor_.
    std::unique_ptr<MemSys> mem_;
    std::unique_ptr<SyncManager> sync_;
    std::vector<std::unique_ptr<ThreadContext>> contexts_;
    std::vector<Task> tasks_;
    unsigned finished_ = 0;
    AccessObserver access_observer_;
    TraceSink *trace_sink_ = nullptr;
    SelfProfiler self_prof_;

    friend class ThreadContext;
};

} // namespace spp

#endif // SPP_SIM_CMP_SYSTEM_HH
