#include "sim/cmp_system.hh"

#include "coherence/broadcast_protocol.hh"
#include "coherence/multicast_protocol.hh"
#include "common/logging.hh"

namespace spp {

const char *
toString(RunStatus s)
{
    switch (s) {
      case RunStatus::ok: return "ok";
      case RunStatus::timeout: return "timeout";
      case RunStatus::deadlock: return "deadlock";
    }
    return "?";
}

CmpSystem::CmpSystem(const Config &cfg) : cfg_(cfg)
{
    cfg_.validate();
    mesh_ = std::make_unique<Mesh>(cfg_, eq_);

    if (cfg_.protocol == Protocol::predicted ||
        cfg_.protocol == Protocol::multicast) {
        switch (cfg_.predictor) {
          case PredictorKind::sp: {
            auto sp = std::make_unique<SpPredictor>(cfg_,
                                                    cfg_.numCores);
            sp_predictor_ = sp.get();
            predictor_ = std::move(sp);
            break;
          }
          case PredictorKind::addr:
            predictor_ = std::make_unique<GroupPredictor>(
                cfg_, cfg_.numCores, GroupIndex::macroBlock);
            break;
          case PredictorKind::inst:
            predictor_ = std::make_unique<GroupPredictor>(
                cfg_, cfg_.numCores, GroupIndex::instruction);
            break;
          case PredictorKind::uni:
            predictor_ = std::make_unique<GroupPredictor>(
                cfg_, cfg_.numCores, GroupIndex::none);
            break;
          case PredictorKind::none:
            SPP_FATAL("predicted protocol without predictor");
        }
    }

    if (cfg_.protocol == Protocol::broadcast) {
        mem_ = std::make_unique<BroadcastMemSys>(cfg_, eq_, *mesh_);
    } else if (cfg_.protocol == Protocol::multicast) {
        mem_ = std::make_unique<MulticastMemSys>(cfg_, eq_, *mesh_,
                                                 predictor_.get());
    } else {
        mem_ = std::make_unique<DirectoryMemSys>(cfg_, eq_, *mesh_,
                                                 predictor_.get());
    }

    sync_ = std::make_unique<SyncManager>(cfg_, eq_,
                                          layout::syncBase);
    if (sp_predictor_)
        sync_->addListener(sp_predictor_);

    contexts_.reserve(cfg_.numCores);
    for (unsigned c = 0; c < cfg_.numCores; ++c) {
        contexts_.push_back(std::make_unique<ThreadContext>(
            *this, c, cfg_.numCores, cfg_.seed * 7919 + c));
    }
}

CmpSystem::~CmpSystem() = default;

void
CmpSystem::enableSelfProfiling()
{
    self_prof_.enable();
    mem_->setSelfProfiler(&self_prof_);
    mesh_->setSelfProfiler(&self_prof_);
}

DirectoryMemSys *
CmpSystem::directory()
{
    return dynamic_cast<DirectoryMemSys *>(mem_.get());
}

RunResult
CmpSystem::run(const ThreadFn &thread_fn)
{
    RunResult r;
    switch (tryRun(thread_fn, r)) {
      case RunStatus::ok:
        return r;
      case RunStatus::timeout:
        SPP_FATAL("run exceeded maxTicks = {} ({} threads finished)",
                  cfg_.maxTicks, finished_);
      case RunStatus::deadlock:
        SPP_PANIC("event queue drained with only {}/{} threads "
                  "finished (workload deadlock?)\n{}",
                  finished_, cfg_.numCores, mem_->dumpOutstanding());
    }
    SPP_PANIC("unreachable run status");
}

RunStatus
CmpSystem::tryRun(const ThreadFn &thread_fn, RunResult &result)
{
    SPP_ASSERT(tasks_.empty(), "CmpSystem::run may only be called once");

    tasks_.reserve(cfg_.numCores);
    for (unsigned c = 0; c < cfg_.numCores; ++c)
        tasks_.push_back(thread_fn(*contexts_[c]));

    // Every thread begins with an implicit sync-point so the first
    // epoch is well defined, then starts at tick 0.
    for (unsigned c = 0; c < cfg_.numCores; ++c) {
        sync_->notify(c, SyncType::threadStart, 0);
        eq_.schedule(0, [this, c]() {
            tasks_[c].start([this, c]() {
                sync_->threadDone(c);
                ++finished_;
            });
        });
    }

    bool drained_queue;
    {
        SelfProfiler::Scope prof(selfProfiler(), ProfScope::kernel);
        drained_queue = eq_.run(cfg_.maxTicks);
    }

    RunResult &r = result;
    r.ticks = eq_.curTick();
    r.mem = mem_->stats();
    r.noc = mesh_->stats();
    r.sync = sync_->stats();
    if (sp_predictor_)
        r.sp = sp_predictor_->stats();
    if (predictor_) {
        r.predictorStorageBits = predictor_->storageBits();
        r.predictorTableAccesses = predictor_->tableAccesses();
    }
    if (auto *dir = directory())
        r.indirectionsAvoided = dir->indirectionsAvoided();
    r.eventsExecuted = eq_.executed();

    if (!drained_queue)
        return RunStatus::timeout;
    if (finished_ != cfg_.numCores)
        return RunStatus::deadlock;
    SPP_ASSERT(mem_->drained(), "memory system not drained at exit");
    return RunStatus::ok;
}

} // namespace spp
