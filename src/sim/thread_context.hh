/**
 * @file
 * Per-thread simulation context: the API workload programs run
 * against.
 *
 * A ThreadContext pins one logical thread to one core (the paper's
 * first-touch binding) and exposes awaitable operations: memory
 * accesses, compute delays, and synchronization primitives. Sync
 * primitives model their own coherence traffic (barrier arrival
 * writes, lock-word read-modify-writes, condition flag reads), so
 * synchronization costs flow through the same cache/NoC path as data.
 */

#ifndef SPP_SIM_THREAD_CONTEXT_HH
#define SPP_SIM_THREAD_CONTEXT_HH

#include <coroutine>
#include <functional>

#include "coherence/mem_sys.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "sync/sync_manager.hh"

namespace spp {

class CmpSystem;
struct TraceOp;

/** Shared-memory layout constants used by workloads. */
namespace layout {
/** Base of the synchronization-variable region. */
inline constexpr Addr syncBase = 0x0000'0000;
/** Base of the shared data region. */
inline constexpr Addr sharedBase = 0x1000'0000;
/** Base of core 0's private region; one privateStride per core. */
inline constexpr Addr privateBase = 0x8000'0000;
inline constexpr Addr privateStride = 0x0100'0000;
/** Synthetic PCs for sync-primitive memory operations. */
inline constexpr Pc syncPcBase = 0xff00'0000;
} // namespace layout

/**
 * The per-thread execution context.
 */
class ThreadContext
{
  public:
    // lint: allow(std-function) — coroutine resume capsule; one live per blocked thread.
    using Action = std::function<void()>;

    ThreadContext(CmpSystem &sys, CoreId core, unsigned n_threads,
                  std::uint64_t seed);

    CoreId self() const { return core_; }
    unsigned numThreads() const { return n_threads_; }
    Rng &rng() { return rng_; }

    /** Address of shared line #@p index. */
    Addr shared(std::uint64_t index) const;
    /** Address of this thread's private line #@p index. */
    Addr priv(std::uint64_t index) const;
    /** Address of thread @p t's private line #@p index (sharing). */
    Addr privOf(CoreId t, std::uint64_t index) const;

    /** Awaitable wrapper around a callback-style operation. */
    struct Op
    {
        ThreadContext *tc;
        // lint: allow(std-function) — one per co_await suspension, not per event.
        std::function<void(Action)> fn;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            fn([h]() { h.resume(); });
        }

        AccessOutcome await_resume() const { return tc->last_outcome_; }
    };

    /** Load from @p addr attributed to static instruction @p pc. */
    Op read(Addr addr, Pc pc);
    /** Store to @p addr attributed to static instruction @p pc. */
    Op write(Addr addr, Pc pc);
    /** Execute @p instructions of local compute (2-issue core). */
    Op compute(std::uint64_t instructions);

    /** Global barrier across all threads; @p sid is the call site. */
    Op barrier(unsigned id, Pc sid);
    /** Acquire lock @p id (critical section begins). */
    Op lock(unsigned id);
    /** Release lock @p id (critical section ends). */
    Op unlock(unsigned id);
    /** Wait on condition @p id until signalled. */
    Op condWait(unsigned id, Pc sid);
    /** Signal one waiter of condition @p id. */
    Op condSignal(unsigned id, Pc sid);
    /** Wake all waiters of condition @p id. */
    Op condBroadcast(unsigned id, Pc sid);
    /** Semaphore post: wake a waiter or bank a token. */
    Op semPost(unsigned id, Pc sid);
    /** Semaphore wait: proceed immediately if a token is banked. */
    Op semWait(unsigned id, Pc sid);
    /** Wait for all other threads to finish. */
    Op join(Pc sid);

    /** Callback-style memory access (used by the Op wrappers). */
    void mem(Addr addr, bool is_write, Pc pc, Action done);

    /**
     * Issue a recorded op's underlying machine operations and run
     * @p done at completion: the trace-replay entry point,
     * equivalent to awaiting the corresponding factory Op but
     * without the awaitable wrapper (and without reporting to the
     * trace sink — a replay is not re-recorded).
     */
    void issueTraceOp(const TraceOp &op, Action done);

  private:
    // Callback bodies of the sync-primitive Ops; the factories wrap
    // them in awaitables (and record them), issueTraceOp() calls
    // them directly.
    void doCompute(std::uint64_t instructions, Action done);
    void doBarrier(unsigned id, Pc sid, Action done);
    void doLock(unsigned id, Action done);
    void doUnlock(unsigned id, Action done);
    void doCondWait(unsigned id, Pc sid, Action done);
    void doCondSignal(unsigned id, Pc sid, Action done);
    void doCondBroadcast(unsigned id, Pc sid, Action done);
    void doSemPost(unsigned id, Pc sid, Action done);
    void doSemWait(unsigned id, Pc sid, Action done);
    void doJoin(Pc sid, Action done);

    CmpSystem &sys_;
    CoreId core_;
    unsigned n_threads_;
    Rng rng_;
    AccessOutcome last_outcome_;
};

} // namespace spp

#endif // SPP_SIM_THREAD_CONTEXT_HH
