#include "sim/thread_context.hh"

#include "sim/cmp_system.hh"

namespace spp {

ThreadContext::ThreadContext(CmpSystem &sys, CoreId core,
                             unsigned n_threads, std::uint64_t seed)
    : sys_(sys), core_(core), n_threads_(n_threads), rng_(seed)
{
}

Addr
ThreadContext::shared(std::uint64_t index) const
{
    return layout::sharedBase +
        index * sys_.config().lineBytes;
}

Addr
ThreadContext::priv(std::uint64_t index) const
{
    return privOf(core_, index);
}

Addr
ThreadContext::privOf(CoreId t, std::uint64_t index) const
{
    return layout::privateBase +
        static_cast<Addr>(t) * layout::privateStride +
        index * sys_.config().lineBytes;
}

void
ThreadContext::mem(Addr addr, bool is_write, Pc pc, Action done)
{
    sys_.memSys().access(core_, addr, is_write, pc,
        [this, addr, pc, done = std::move(done)](
            const AccessOutcome &out) {
            last_outcome_ = out;
            if (sys_.accessObserver())
                sys_.accessObserver()(core_, addr, pc, out);
            done();
        });
}

ThreadContext::Op
ThreadContext::read(Addr addr, Pc pc)
{
    return Op{this, [this, addr, pc](Action resume) {
        mem(addr, false, pc, std::move(resume));
    }};
}

ThreadContext::Op
ThreadContext::write(Addr addr, Pc pc)
{
    return Op{this, [this, addr, pc](Action resume) {
        mem(addr, true, pc, std::move(resume));
    }};
}

ThreadContext::Op
ThreadContext::compute(std::uint64_t instructions)
{
    // 2-issue in-order core: IPC of 2 on compute bursts.
    const Tick delay = (instructions + 1) / 2;
    return Op{this, [this, delay](Action resume) {
        sys_.eventQueue().scheduleAfter(delay > 0 ? delay : 1,
                                        std::move(resume));
    }};
}

ThreadContext::Op
ThreadContext::barrier(unsigned id, Pc sid)
{
    return Op{this, [this, id, sid](Action resume) {
        SyncManager &mgr = sys_.syncManager();
        // Arrival: write the barrier counter line (contended), then
        // block; on release read the generation flag written by the
        // last arriver, then continue into the new epoch.
        mem(mgr.barrierAddr(id), true, layout::syncPcBase + id,
            [this, id, sid, resume = std::move(resume)]() {
                SyncManager &m = sys_.syncManager();
                m.barrierArrive(core_, id, n_threads_, sid,
                    [this, id, resume = std::move(resume)]() {
                        SyncManager &mm = sys_.syncManager();
                        mem(mm.barrierGenAddr(id), false,
                            layout::syncPcBase + 0x1000 + id,
                            std::move(resume));
                    });
            });
    }};
}

ThreadContext::Op
ThreadContext::lock(unsigned id)
{
    return Op{this, [this, id](Action resume) {
        SyncManager &mgr = sys_.syncManager();
        mgr.lockAcquire(core_, id,
            [this, id, resume = std::move(resume)]() {
                // Lock-word read-modify-write: communicates with the
                // previous holder (migratory pattern).
                mem(sys_.syncManager().lockAddr(id), true,
                    layout::syncPcBase + 0x2000 + id,
                    std::move(resume));
            });
    }};
}

ThreadContext::Op
ThreadContext::unlock(unsigned id)
{
    return Op{this, [this, id](Action resume) {
        // Release store on the lock word, then hand the lock over.
        mem(sys_.syncManager().lockAddr(id), true,
            layout::syncPcBase + 0x3000 + id,
            [this, id, resume = std::move(resume)]() {
                sys_.syncManager().lockRelease(core_, id);
                resume();
            });
    }};
}

ThreadContext::Op
ThreadContext::condWait(unsigned id, Pc sid)
{
    return Op{this, [this, id, sid](Action resume) {
        sys_.syncManager().condWait(core_, id, sid,
            [this, id, resume = std::move(resume)]() {
                // Read the state the signaller published.
                mem(sys_.syncManager().condAddr(id), false,
                    layout::syncPcBase + 0x4000 + id,
                    std::move(resume));
            });
    }};
}

ThreadContext::Op
ThreadContext::condSignal(unsigned id, Pc sid)
{
    return Op{this, [this, id, sid](Action resume) {
        mem(sys_.syncManager().condAddr(id), true,
            layout::syncPcBase + 0x5000 + id,
            [this, id, sid, resume = std::move(resume)]() {
                sys_.syncManager().condSignal(core_, id, sid);
                resume();
            });
    }};
}

ThreadContext::Op
ThreadContext::condBroadcast(unsigned id, Pc sid)
{
    return Op{this, [this, id, sid](Action resume) {
        mem(sys_.syncManager().condAddr(id), true,
            layout::syncPcBase + 0x6000 + id,
            [this, id, sid, resume = std::move(resume)]() {
                sys_.syncManager().condBroadcast(core_, id, sid);
                resume();
            });
    }};
}

ThreadContext::Op
ThreadContext::semPost(unsigned id, Pc sid)
{
    return Op{this, [this, id, sid](Action resume) {
        // Publish the produced state, then post the token.
        mem(sys_.syncManager().condAddr(id), true,
            layout::syncPcBase + 0x7000 + id,
            [this, id, sid, resume = std::move(resume)]() {
                sys_.syncManager().semPost(core_, id, sid);
                resume();
            });
    }};
}

ThreadContext::Op
ThreadContext::semWait(unsigned id, Pc sid)
{
    return Op{this, [this, id, sid](Action resume) {
        sys_.syncManager().semWait(core_, id, sid,
            [this, id, resume = std::move(resume)]() {
                // Consume: read the state the producer published.
                mem(sys_.syncManager().condAddr(id), false,
                    layout::syncPcBase + 0x8000 + id,
                    std::move(resume));
            });
    }};
}

ThreadContext::Op
ThreadContext::join(Pc sid)
{
    return Op{this, [this, sid](Action resume) {
        sys_.syncManager().joinAll(core_, sid, std::move(resume));
    }};
}

} // namespace spp
