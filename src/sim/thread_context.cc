#include "sim/thread_context.hh"

#include "sim/cmp_system.hh"
#include "trace/format.hh"

namespace spp {

namespace {

/**
 * Report one semantic op to the attached trace sink, if any. Ops are
 * recorded at factory-call time — i.e. in per-thread program order,
 * before any of the op's internal memory traffic — which is exactly
 * the order a replay must re-issue them in.
 */
void
recordOp(CmpSystem &sys, CoreId core, const TraceOp &op)
{
    if (TraceSink *sink = sys.traceSink())
        sink->record(core, op);
}

} // namespace

ThreadContext::ThreadContext(CmpSystem &sys, CoreId core,
                             unsigned n_threads, std::uint64_t seed)
    : sys_(sys), core_(core), n_threads_(n_threads), rng_(seed)
{
}

Addr
ThreadContext::shared(std::uint64_t index) const
{
    return layout::sharedBase +
        index * sys_.config().lineBytes;
}

Addr
ThreadContext::priv(std::uint64_t index) const
{
    return privOf(core_, index);
}

Addr
ThreadContext::privOf(CoreId t, std::uint64_t index) const
{
    return layout::privateBase +
        static_cast<Addr>(t) * layout::privateStride +
        index * sys_.config().lineBytes;
}

void
ThreadContext::mem(Addr addr, bool is_write, Pc pc, Action done)
{
    sys_.memSys().access(core_, addr, is_write, pc,
        [this, addr, pc, done = std::move(done)](
            const AccessOutcome &out) {
            last_outcome_ = out;
            if (sys_.accessObserver())
                sys_.accessObserver()(core_, addr, pc, out);
            done();
        });
}

ThreadContext::Op
ThreadContext::read(Addr addr, Pc pc)
{
    recordOp(sys_, core_, {TraceOpKind::read, addr, pc, 0});
    return Op{this, [this, addr, pc](Action resume) {
        mem(addr, false, pc, std::move(resume));
    }};
}

ThreadContext::Op
ThreadContext::write(Addr addr, Pc pc)
{
    recordOp(sys_, core_, {TraceOpKind::write, addr, pc, 0});
    return Op{this, [this, addr, pc](Action resume) {
        mem(addr, true, pc, std::move(resume));
    }};
}

void
ThreadContext::doCompute(std::uint64_t instructions, Action done)
{
    // 2-issue in-order core: IPC of 2 on compute bursts.
    const Tick delay = (instructions + 1) / 2;
    sys_.eventQueue().scheduleAfter(delay > 0 ? delay : 1,
                                    std::move(done));
}

ThreadContext::Op
ThreadContext::compute(std::uint64_t instructions)
{
    recordOp(sys_, core_,
             {TraceOpKind::compute, 0, 0, instructions});
    return Op{this, [this, instructions](Action resume) {
        doCompute(instructions, std::move(resume));
    }};
}

void
ThreadContext::doBarrier(unsigned id, Pc sid, Action done)
{
    SyncManager &mgr = sys_.syncManager();
    // Arrival: write the barrier counter line (contended), then
    // block; on release read the generation flag written by the
    // last arriver, then continue into the new epoch.
    mem(mgr.barrierAddr(id), true, layout::syncPcBase + id,
        [this, id, sid, done = std::move(done)]() {
            SyncManager &m = sys_.syncManager();
            m.barrierArrive(core_, id, n_threads_, sid,
                [this, id, done = std::move(done)]() {
                    SyncManager &mm = sys_.syncManager();
                    mem(mm.barrierGenAddr(id), false,
                        layout::syncPcBase + 0x1000 + id,
                        std::move(done));
                });
        });
}

ThreadContext::Op
ThreadContext::barrier(unsigned id, Pc sid)
{
    recordOp(sys_, core_, {TraceOpKind::barrier, 0, sid, id});
    return Op{this, [this, id, sid](Action resume) {
        doBarrier(id, sid, std::move(resume));
    }};
}

void
ThreadContext::doLock(unsigned id, Action done)
{
    sys_.syncManager().lockAcquire(core_, id,
        [this, id, done = std::move(done)]() {
            // Lock-word read-modify-write: communicates with the
            // previous holder (migratory pattern).
            mem(sys_.syncManager().lockAddr(id), true,
                layout::syncPcBase + 0x2000 + id,
                std::move(done));
        });
}

ThreadContext::Op
ThreadContext::lock(unsigned id)
{
    recordOp(sys_, core_, {TraceOpKind::lock, 0, 0, id});
    return Op{this, [this, id](Action resume) {
        doLock(id, std::move(resume));
    }};
}

void
ThreadContext::doUnlock(unsigned id, Action done)
{
    // Release store on the lock word, then hand the lock over.
    mem(sys_.syncManager().lockAddr(id), true,
        layout::syncPcBase + 0x3000 + id,
        [this, id, done = std::move(done)]() {
            sys_.syncManager().lockRelease(core_, id);
            done();
        });
}

ThreadContext::Op
ThreadContext::unlock(unsigned id)
{
    recordOp(sys_, core_, {TraceOpKind::unlock, 0, 0, id});
    return Op{this, [this, id](Action resume) {
        doUnlock(id, std::move(resume));
    }};
}

void
ThreadContext::doCondWait(unsigned id, Pc sid, Action done)
{
    sys_.syncManager().condWait(core_, id, sid,
        [this, id, done = std::move(done)]() {
            // Read the state the signaller published.
            mem(sys_.syncManager().condAddr(id), false,
                layout::syncPcBase + 0x4000 + id,
                std::move(done));
        });
}

ThreadContext::Op
ThreadContext::condWait(unsigned id, Pc sid)
{
    recordOp(sys_, core_, {TraceOpKind::condWait, 0, sid, id});
    return Op{this, [this, id, sid](Action resume) {
        doCondWait(id, sid, std::move(resume));
    }};
}

void
ThreadContext::doCondSignal(unsigned id, Pc sid, Action done)
{
    mem(sys_.syncManager().condAddr(id), true,
        layout::syncPcBase + 0x5000 + id,
        [this, id, sid, done = std::move(done)]() {
            sys_.syncManager().condSignal(core_, id, sid);
            done();
        });
}

ThreadContext::Op
ThreadContext::condSignal(unsigned id, Pc sid)
{
    recordOp(sys_, core_, {TraceOpKind::condSignal, 0, sid, id});
    return Op{this, [this, id, sid](Action resume) {
        doCondSignal(id, sid, std::move(resume));
    }};
}

void
ThreadContext::doCondBroadcast(unsigned id, Pc sid, Action done)
{
    mem(sys_.syncManager().condAddr(id), true,
        layout::syncPcBase + 0x6000 + id,
        [this, id, sid, done = std::move(done)]() {
            sys_.syncManager().condBroadcast(core_, id, sid);
            done();
        });
}

ThreadContext::Op
ThreadContext::condBroadcast(unsigned id, Pc sid)
{
    recordOp(sys_, core_,
             {TraceOpKind::condBroadcast, 0, sid, id});
    return Op{this, [this, id, sid](Action resume) {
        doCondBroadcast(id, sid, std::move(resume));
    }};
}

void
ThreadContext::doSemPost(unsigned id, Pc sid, Action done)
{
    // Publish the produced state, then post the token.
    mem(sys_.syncManager().condAddr(id), true,
        layout::syncPcBase + 0x7000 + id,
        [this, id, sid, done = std::move(done)]() {
            sys_.syncManager().semPost(core_, id, sid);
            done();
        });
}

ThreadContext::Op
ThreadContext::semPost(unsigned id, Pc sid)
{
    recordOp(sys_, core_, {TraceOpKind::semPost, 0, sid, id});
    return Op{this, [this, id, sid](Action resume) {
        doSemPost(id, sid, std::move(resume));
    }};
}

void
ThreadContext::doSemWait(unsigned id, Pc sid, Action done)
{
    sys_.syncManager().semWait(core_, id, sid,
        [this, id, done = std::move(done)]() {
            // Consume: read the state the producer published.
            mem(sys_.syncManager().condAddr(id), false,
                layout::syncPcBase + 0x8000 + id,
                std::move(done));
        });
}

ThreadContext::Op
ThreadContext::semWait(unsigned id, Pc sid)
{
    recordOp(sys_, core_, {TraceOpKind::semWait, 0, sid, id});
    return Op{this, [this, id, sid](Action resume) {
        doSemWait(id, sid, std::move(resume));
    }};
}

void
ThreadContext::doJoin(Pc sid, Action done)
{
    sys_.syncManager().joinAll(core_, sid, std::move(done));
}

ThreadContext::Op
ThreadContext::join(Pc sid)
{
    recordOp(sys_, core_, {TraceOpKind::join, 0, sid, 0});
    return Op{this, [this, sid](Action resume) {
        doJoin(sid, std::move(resume));
    }};
}

void
ThreadContext::issueTraceOp(const TraceOp &op, Action done)
{
    // Memory and compute ops dominate every trace; test for them
    // with predictable branches before the sync-op switch.
    if (op.kind == TraceOpKind::read) {
        mem(op.addr, false, op.pc, std::move(done));
        return;
    }
    if (op.kind == TraceOpKind::write) {
        mem(op.addr, true, op.pc, std::move(done));
        return;
    }
    if (op.kind == TraceOpKind::compute) {
        doCompute(op.arg, std::move(done));
        return;
    }
    const auto id = static_cast<unsigned>(op.arg);
    switch (op.kind) {
      case TraceOpKind::read:
      case TraceOpKind::write:
      case TraceOpKind::compute:
        break;
      case TraceOpKind::barrier:
        doBarrier(id, op.pc, std::move(done));
        break;
      case TraceOpKind::lock:
        doLock(id, std::move(done));
        break;
      case TraceOpKind::unlock:
        doUnlock(id, std::move(done));
        break;
      case TraceOpKind::condWait:
        doCondWait(id, op.pc, std::move(done));
        break;
      case TraceOpKind::condSignal:
        doCondSignal(id, op.pc, std::move(done));
        break;
      case TraceOpKind::condBroadcast:
        doCondBroadcast(id, op.pc, std::move(done));
        break;
      case TraceOpKind::semPost:
        doSemPost(id, op.pc, std::move(done));
        break;
      case TraceOpKind::semWait:
        doSemWait(id, op.pc, std::move(done));
        break;
      case TraceOpKind::join:
        doJoin(op.pc, std::move(done));
        break;
    }
}

} // namespace spp
