#include "core/sp_predictor.hh"

#include "common/sharer_tracker.hh"

namespace spp {

const char *
toString(PredSource s)
{
    switch (s) {
      case PredSource::none:     return "none";
      case PredSource::warmup:   return "warmup";
      case PredSource::history:  return "history";
      case PredSource::pattern:  return "pattern";
      case PredSource::lock:     return "lock";
      case PredSource::recovery: return "recovery";
      case PredSource::table:    return "table";
    }
    return "?";
}

SpPredictor::SpPredictor(const Config &cfg, unsigned n_cores)
    : cfg_(cfg), n_cores_(n_cores),
      table_(n_cores, cfg.historyDepth), map_(n_cores),
      epochs_(n_cores)
{
    for (EpochState &e : epochs_) {
        e.counters = CommCounters(n_cores);
        e.confidence = confidenceMax();
    }
}

// ---------------------------------------------------------------------
// Epoch lifecycle
// ---------------------------------------------------------------------

void
SpPredictor::closeEpoch(CoreId core)
{
    EpochState &e = epochs_[core];
    if (e.isCriticalSection) {
        // Critical sections encode only the releaser's ID, which the
        // *next* acquirer records on acquisition (Section 4.2); no
        // hot-set signature is stored for the per-core entry.
        return;
    }
    if (e.commMisses < cfg_.noiseMisses) {
        // "Noisy" instance: too little communication activity for a
        // representative signature (Section 3.4).
        ++sp_stats_.noisyEpochs;
        return;
    }
    const CoreSet sig = map_.toLogical(
        e.counters.hotSet(cfg_.hotThreshold, cfg_.maxHotSetSize));
    if (sig.empty()) {
        ++sp_stats_.noisyEpochs;
        return;
    }
    table_.storeSignature(core, e.staticId, sig);
}

void
SpPredictor::formPredictor(CoreId core, const SyncPointInfo &info,
                           const CoreSet &prev_hot)
{
    EpochState &e = epochs_[core];
    e.predictor.clear();
    e.source = PredSource::none;

    if (info.type == SyncType::lock) {
        // The retrieved signatures are the last d holders of the
        // lock; their union is the prediction set (Section 4.4).
        CoreSet holders = table_.lockHolders(info.staticId);
        if (cfg_.unionEpochIntoLock)
            holders |= prev_hot;
        holders = map_.toPhysical(holders);
        holders.reset(core);
        if (!holders.empty()) {
            e.predictor = holders;
            e.source = PredSource::lock;
        }
        return;
    }

    const SpEntry *entry = table_.entry(core, info.staticId);
    if (!entry || entry->sigs.empty())
        return; // d = 0: warm-up extraction happens lazily.

    const auto &sigs = entry->sigs;
    CoreSet sig;
    PredSource src = PredSource::history;
    if (sigs.size() == 1) {
        // d = 1: the last (and only) signature.
        sig = sigs[0];
    } else if (cfg_.enablePatterns && entry->stride >= 2 &&
               entry->stride <= sigs.size()) {
        // Stride-s repetitive pattern: the next instance repeats the
        // signature from s instances ago (with the default d = 2
        // history only stride-2 is detectable, as in the paper).
        sig = sigs[entry->stride - 1];
        src = PredSource::pattern;
        ++sp_stats_.patternHits;
    } else if (entry->stride == 1) {
        // Stable: the last signature.
        sig = sigs[0];
    } else {
        // d = 2 default: the last *stable* hot set, i.e. the
        // intersection of the two most recent signatures; fall back
        // to the most recent when they share nothing.
        sig = sigs[0] & sigs[1];
        if (sig.empty())
            sig = sigs[0];
    }
    sig = map_.toPhysical(sig);
    sig.reset(core);
    if (!sig.empty()) {
        e.predictor = sig;
        e.source = src;
    }
}

void
SpPredictor::onSyncPoint(CoreId core, const SyncPointInfo &info)
{
    closeEpoch(core);

    EpochState &e = epochs_[core];
    // Preceding epoch's hot set, for the lock-union extension.
    const CoreSet prev_hot = map_.toLogical(
        e.counters.hotSet(cfg_.hotThreshold, cfg_.maxHotSetSize));
    e.beginType = info.type;
    e.staticId = info.staticId;
    e.isCriticalSection = beginsCriticalSection(info.type);
    e.counters.reset();
    e.misses = 0;
    e.commMisses = 0;
    e.warmedUp = false;
    e.confidence = confidenceMax();
    ++sp_stats_.epochsStarted;

    if (e.isCriticalSection) {
        ++sp_stats_.lockEpochs;
        // Record the previous holder "just after the lock is
        // acquired" (Section 4.3) so all critical sections protected
        // by the same lock share the history.
        if (info.prevHolder != invalidCore) {
            table_.storeLockHolder(
                info.staticId,
                map_.thread(info.prevHolder));
        }
    }

    formPredictor(core, info, prev_hot);
}

// ---------------------------------------------------------------------
// Per-miss interface
// ---------------------------------------------------------------------

Prediction
SpPredictor::predict(const PredictionQuery &q)
{
    EpochState &e = epochs_[q.core];
    Prediction p;
    if (e.predictor.empty()) {
        // d = 0 (or empty history): after the warm-up, extract the
        // hot set from the activity recorded so far in this interval.
        if (!e.warmedUp && e.misses >= cfg_.warmupMisses) {
            CoreSet hot = e.counters.hotSet(
                cfg_.hotThreshold, cfg_.maxHotSetSize);
            hot.reset(q.core);
            if (!hot.empty()) {
                e.predictor = hot;
                e.source = PredSource::warmup;
                e.warmedUp = true;
                ++sp_stats_.warmupExtractions;
            }
        }
        if (e.predictor.empty())
            return p;
    }
    p.targets = e.predictor;
    p.source = e.source;
    return p;
}

void
SpPredictor::trainResponse(const PredictionQuery &q, const CoreSet &who)
{
    epochs_[q.core].counters.record(who);
}

void
SpPredictor::trainExternal(CoreId observer, Addr line, Addr macro_block,
                           Pc last_pc, CoreId requester, bool is_write)
{
    // SP-prediction trains only on the requester's own responses.
    (void)observer;
    (void)line;
    (void)macro_block;
    (void)last_pc;
    (void)requester;
    (void)is_write;
}

void
SpPredictor::feedback(CoreId core, const Prediction &pred,
                      bool communicating, bool sufficient)
{
    EpochState &e = epochs_[core];
    ++e.misses;
    if (communicating)
        ++e.commMisses;
    if (!pred.valid() || !communicating || !cfg_.enableRecovery)
        return;

    if (sufficient) {
        if (e.confidence < confidenceMax())
            ++e.confidence;
        return;
    }
    if (e.confidence > 0) {
        --e.confidence;
        return;
    }
    // Confidence exhausted: rebuild the predictor from the hot set of
    // the currently running interval (Section 4.4 recovery).
    CoreSet hot =
        e.counters.hotSet(cfg_.hotThreshold, cfg_.maxHotSetSize);
    hot.reset(core);
    if (!hot.empty()) {
        e.predictor = hot;
        e.source = PredSource::recovery;
    } else {
        e.predictor.clear();
        e.source = PredSource::none;
    }
    e.confidence = confidenceMax();
    ++sp_stats_.recoveries;
}

// ---------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------

std::size_t
SpPredictor::storageBits() const
{
    // SP-table entries plus the fixed per-core cost: one one-byte
    // communication counter per target core plus the core's one-byte
    // prediction-register slice. For 16 cores that is 16 + 1 = 17
    // bytes (136 bits) per core, Section 5.4's figure; the formula
    // recomputes it at any scale. Stored signatures follow the
    // machine's sharer format (full: n_cores bits; coarse / limited
    // shrink them the same way they shrink directory entries).
    const std::size_t sig_bits =
        SharerTracker::entryBits(SharerLayout::fromConfig(cfg_));
    const std::size_t fixed_per_core = n_cores_ * 8 + 8;
    return table_.storageBits(n_cores_, sig_bits) +
        n_cores_ * fixed_per_core;
}

std::uint64_t
SpPredictor::tableAccesses() const
{
    return table_.accesses();
}

} // namespace spp
