/**
 * @file
 * SP-table: the communication-signature history structure
 * (Sections 4.3 and 4.6).
 *
 * Distributed hardware embodiment: one slice per core indexed by the
 * static sync-point ID of the epoch, plus logically shared entries
 * for locks, tagged by the lock address and holding the sequence of
 * the last d lock holders. Each per-core entry keeps up to d
 * communication signatures (bit vectors) and the detected repetition
 * stride (1 = stable, 2 = alternating, 0 = unknown).
 */

#ifndef SPP_CORE_SP_TABLE_HH
#define SPP_CORE_SP_TABLE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/core_set.hh"
#include "common/types.hh"

namespace spp {

/** One per-core SP-table entry: signature history of a sync-epoch. */
struct SpEntry
{
    /** Most recent first; bounded by the configured history depth. */
    std::deque<CoreSet> sigs;
    /** Detected repetition stride: 0 unknown, 1 stable, 2 stride-2. */
    unsigned stride = 0;
};

/** Shared lock entry: last d cores that held the lock. */
struct LockEntry
{
    std::deque<CoreId> holders; ///< Most recent first.
};

/**
 * The SP-table: per-core slices plus the shared lock portion.
 */
class SpTable
{
  public:
    SpTable(unsigned n_cores, unsigned history_depth)
        : depth_(history_depth), slices_(n_cores)
    {}

    /**
     * Record the signature of a just-ended epoch instance and update
     * the entry's stride detection (compare the new signature against
     * the stored history: a match at depth s means period s).
     */
    void
    storeSignature(CoreId core, std::uint64_t static_id,
                   const CoreSet &sig)
    {
        SpEntry &e = slices_[core][static_id];
        // A match at depth s means the sequence has period s; the
        // smallest matching depth wins (Section 4.4's pattern
        // detection, generalized to the configured history depth).
        e.stride = 0;
        for (unsigned s = 1; s <= e.sigs.size(); ++s) {
            if (sig == e.sigs[s - 1]) {
                e.stride = s;
                break;
            }
        }
        e.sigs.push_front(sig);
        while (e.sigs.size() > depth_)
            e.sigs.pop_back();
        ++accesses_;
    }

    /** Look up a per-core entry; nullptr if never seen. */
    const SpEntry *
    entry(CoreId core, std::uint64_t static_id) const
    {
        auto it = slices_[core].find(static_id);
        ++accesses_;
        return it == slices_[core].end() ? nullptr : &it->second;
    }

    /** Record @p holder as the latest holder of @p lock_addr. */
    void
    storeLockHolder(std::uint64_t lock_addr, CoreId holder)
    {
        LockEntry &e = lock_entries_[lock_addr];
        e.holders.push_front(holder);
        while (e.holders.size() > depth_)
            e.holders.pop_back();
        ++accesses_;
    }

    /** Union of the last d holders of @p lock_addr. */
    CoreSet
    lockHolders(std::uint64_t lock_addr) const
    {
        CoreSet s;
        auto it = lock_entries_.find(lock_addr);
        ++accesses_;
        if (it == lock_entries_.end())
            return s;
        for (CoreId h : it->second.holders)
            if (h != invalidCore)
                s.set(h);
        return s;
    }

    unsigned depth() const { return depth_; }

    /** Entries across all slices plus the shared lock portion. */
    std::size_t
    entryCount() const
    {
        std::size_t n = lock_entries_.size();
        for (const auto &slice : slices_)
            n += slice.size();
        return n;
    }

    /**
     * Modelled storage cost in bits (Section 4.6): per entry a 32-bit
     * tag, d signatures, a 2-bit stride and a shared bit; lock
     * entries hold d log2-sized holder IDs. A signature is n_cores
     * bits by default (the full bit-vector machine); @p sig_bits
     * overrides its width when the machine stores destination sets in
     * a scalable sharer format (coarse / limited, sharer_tracker.hh).
     */
    std::size_t storageBits(unsigned n_cores,
                            std::size_t sig_bits = 0) const;

    std::uint64_t accesses() const { return accesses_; }

  private:
    unsigned depth_;
    std::vector<std::unordered_map<std::uint64_t, SpEntry>> slices_;
    std::unordered_map<std::uint64_t, LockEntry> lock_entries_;
    mutable std::uint64_t accesses_ = 0;
};

} // namespace spp

#endif // SPP_CORE_SP_TABLE_HH
