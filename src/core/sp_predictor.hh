/**
 * @file
 * SP-prediction: synchronization-point-based destination-set
 * prediction (Section 4, the paper's contribution).
 *
 * Per core, the predictor tracks the running sync-epoch: its
 * communication counters, the prediction register holding the current
 * hot-communication-set predictor, and a 4-bit confidence counter.
 * Sync-point notifications delimit epochs: the ending epoch's hot set
 * is stored as a signature in the SP-table (unless the instance was
 * "noisy"), and the new epoch's predictor is formed from the table
 * per Table 3 (history depth 0/1/2, stride-2 patterns, lock-holder
 * sequences). A confidence drop triggers recovery: the predictor is
 * rebuilt from the counters of the running interval.
 */

#ifndef SPP_CORE_SP_PREDICTOR_HH
#define SPP_CORE_SP_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "core/comm_counters.hh"
#include "core/sp_table.hh"
#include "core/thread_map.hh"
#include "predict/predictor.hh"
#include "sync/sync_types.hh"

namespace spp {

/** SP-predictor statistics of one run. */
struct SpStats
{
    Counter epochsStarted;
    Counter noisyEpochs;        ///< Instances that stored no signature.
    Counter recoveries;         ///< Confidence-triggered rebuilds.
    Counter lockEpochs;         ///< Critical-section epochs.
    Counter warmupExtractions;  ///< d=0 mid-epoch extractions.
    Counter patternHits;        ///< Predictors formed from stride-2.
};

/**
 * The SP destination-set predictor. Also a SyncListener: the
 * SyncManager drives epoch boundaries.
 */
class SpPredictor : public DestinationPredictor, public SyncListener
{
  public:
    SpPredictor(const Config &cfg, unsigned n_cores);

    // --- DestinationPredictor ---
    Prediction predict(const PredictionQuery &q) override;
    void trainResponse(const PredictionQuery &q,
                       const CoreSet &who) override;
    void trainExternal(CoreId observer, Addr line, Addr macro_block,
                       Pc last_pc, CoreId requester,
                       bool is_write) override;
    void feedback(CoreId core, const Prediction &pred,
                  bool communicating, bool sufficient) override;
    std::size_t storageBits() const override;
    std::uint64_t tableAccesses() const override;

    // --- SyncListener ---
    void onSyncPoint(CoreId core, const SyncPointInfo &info) override;

    const SpStats &stats() const { return sp_stats_; }
    const SpTable &table() const { return table_; }
    ThreadMap &threadMap() { return map_; }

    /**
     * Pre-seed the SP-table with a profiled signature (Section 5.2:
     * "this gap may be bridged somewhat if off-line profiling offers
     * initial prediction information"). Signatures use logical
     * thread IDs.
     */
    void
    seedSignature(CoreId core, std::uint64_t static_id,
                  const CoreSet &sig)
    {
        table_.storeSignature(core, static_id, sig);
    }

    /** Pre-seed a lock entry's holder history. */
    void
    seedLockHolder(std::uint64_t lock_addr, ThreadId holder)
    {
        table_.storeLockHolder(lock_addr, holder);
    }

    /** The current prediction register of @p core (tests). */
    const CoreSet &predictorRegister(CoreId core) const
    {
        return epochs_[core].predictor;
    }

    /** Cumulative communication volume recorded by @p core's
     * counters across all epochs (telemetry gauge; survives the
     * per-epoch counter reset). */
    std::uint64_t
    commVolume(CoreId core) const
    {
        return epochs_[core].counters.lifetimeTotal();
    }

  private:
    /** Per-core running-epoch state. */
    struct EpochState
    {
        SyncType beginType = SyncType::threadStart;
        std::uint64_t staticId = 0;
        bool isCriticalSection = false;
        CommCounters counters;
        unsigned misses = 0;        ///< All misses this epoch.
        unsigned commMisses = 0;    ///< Communicating misses.
        CoreSet predictor;          ///< Prediction register.
        PredSource source = PredSource::none;
        unsigned confidence = 0;    ///< Saturating counter.
        bool warmedUp = false;      ///< d=0 extraction happened.
    };

    /** Close the running epoch of @p core (store its signature). */
    void closeEpoch(CoreId core);

    /** Form the new epoch's predictor from the SP-table (Table 3). */
    void formPredictor(CoreId core, const SyncPointInfo &info,
                       const CoreSet &prev_hot);

    unsigned confidenceMax() const
    {
        return (1u << cfg_.confidenceBits) - 1;
    }

    const Config &cfg_;
    unsigned n_cores_;
    SpTable table_;
    ThreadMap map_;
    std::vector<EpochState> epochs_;
    SpStats sp_stats_;
};

} // namespace spp

#endif // SPP_CORE_SP_PREDICTOR_HH
