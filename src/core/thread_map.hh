/**
 * @file
 * Logical-thread to physical-core mapping (Section 5.5).
 *
 * Communication signatures track logical thread IDs; when threads may
 * migrate, the predictor translates a logical signature to the
 * current physical destination set before use, and translates
 * observed physical responders back to logical IDs before recording.
 * With pinned threads (the paper's default) the mapping is identity.
 */

#ifndef SPP_CORE_THREAD_MAP_HH
#define SPP_CORE_THREAD_MAP_HH

#include <numeric>
#include <vector>

#include "common/core_set.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace spp {

/** Bidirectional logical/physical mapping. */
class ThreadMap
{
  public:
    explicit ThreadMap(unsigned n)
        : to_core_(n), to_thread_(n)
    {
        std::iota(to_core_.begin(), to_core_.end(), CoreId{0});
        std::iota(to_thread_.begin(), to_thread_.end(), ThreadId{0});
    }

    /** Move @p thread to @p core, swapping with its current tenant. */
    void
    migrate(ThreadId thread, CoreId core)
    {
        const CoreId old_core = to_core_[thread];
        const ThreadId displaced = to_thread_[core];
        to_core_[thread] = core;
        to_thread_[core] = thread;
        to_core_[displaced] = old_core;
        to_thread_[old_core] = displaced;
    }

    CoreId core(ThreadId t) const { return to_core_[t]; }
    ThreadId thread(CoreId c) const { return to_thread_[c]; }

    /** Translate a logical signature into physical destinations. */
    CoreSet
    toPhysical(const CoreSet &logical) const
    {
        CoreSet phys;
        for (CoreId t : logical)
            phys.set(to_core_[t]);
        return phys;
    }

    /** Translate observed physical responders into logical IDs. */
    CoreSet
    toLogical(const CoreSet &physical) const
    {
        CoreSet log;
        for (CoreId c : physical)
            log.set(to_thread_[c]);
        return log;
    }

  private:
    std::vector<CoreId> to_core_;     ///< thread -> core
    std::vector<ThreadId> to_thread_; ///< core -> thread
};

} // namespace spp

#endif // SPP_CORE_THREAD_MAP_HH
