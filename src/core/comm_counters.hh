/**
 * @file
 * Per-core communication counters and hot-set extraction
 * (Sections 3.3 and 4.2).
 *
 * One 8-bit saturating counter per destination records how much of
 * the current sync-epoch's communication went to that core. At the
 * end of the epoch (or mid-epoch for warm-up/recovery) the hot
 * communication set is extracted: every core that drew at least
 * hotThreshold (default 10%) of the recorded volume.
 */

#ifndef SPP_CORE_COMM_COUNTERS_HH
#define SPP_CORE_COMM_COUNTERS_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/core_set.hh"
#include "common/types.hh"

namespace spp {

/** Bank of saturating communication counters, one per core of the
 * simulated machine (sized by the configured core count, not the
 * compile-time maxCores capacity). */
class CommCounters
{
  public:
    static constexpr std::uint8_t saturation = 255;

    explicit CommCounters(unsigned n_cores = maxCores)
        : counts_(n_cores, 0)
    {}

    /** Record one communication event towards each core in @p who. */
    void
    record(const CoreSet &who)
    {
        for (CoreId c : who)
            if (counts_[c] < saturation)
                ++counts_[c];
    }

    /** Total recorded volume (sum of all counters). */
    unsigned
    total() const
    {
        unsigned sum = 0;
        for (auto v : counts_)
            sum += v;
        return sum;
    }

    /**
     * Extract the hot communication set: cores with at least
     * @p threshold fraction of the total volume. Empty if nothing
     * was recorded. A non-zero @p max_size keeps only the hottest
     * @p max_size cores (Section 5.2's bounded-bandwidth policy).
     */
    CoreSet
    hotSet(double threshold, unsigned max_size = 0) const
    {
        const unsigned sum = total();
        CoreSet hot;
        if (sum == 0)
            return hot;
        const double cut = threshold * sum;
        for (unsigned c = 0; c < counts_.size(); ++c)
            if (counts_[c] >= cut && counts_[c] > 0)
                hot.set(static_cast<CoreId>(c));
        while (max_size != 0 && hot.count() > max_size) {
            // Drop the coldest member until the cap holds.
            CoreId coldest = hot.first();
            for (CoreId c : hot)
                if (counts_[c] < counts_[coldest])
                    coldest = c;
            hot.reset(coldest);
        }
        return hot;
    }

    std::uint8_t count(CoreId c) const { return counts_[c]; }

    /**
     * Clear the per-epoch counters (epoch boundary). The lifetime
     * total is folded in first so interval consumers — the telemetry
     * sampler reads lifetimeTotal() while epochs reset underneath —
     * see a monotonic cumulative series instead of a sawtooth.
     */
    void
    reset()
    {
        lifetime_ += total();
        std::fill(counts_.begin(), counts_.end(), 0);
    }

    /** Cumulative recorded volume across all epochs, including the
     * running one. Model bookkeeping only: not part of the 17 B/core
     * hardware budget (Section 5.4). */
    std::uint64_t lifetimeTotal() const { return lifetime_ + total(); }

  private:
    std::vector<std::uint8_t> counts_;
    std::uint64_t lifetime_ = 0;
};

} // namespace spp

#endif // SPP_CORE_COMM_COUNTERS_HH
