#include "core/sp_table.hh"

#include <bit>

namespace spp {

std::size_t
SpTable::storageBits(unsigned n_cores, std::size_t sig_bits) const
{
    if (sig_bits == 0)
        sig_bits = n_cores;
    const unsigned id_bits =
        std::bit_width(static_cast<unsigned>(n_cores - 1));
    std::size_t bits = 0;
    for (const auto &slice : slices_) {
        // tag (32) + d signatures + stride (2) + shared flag (1).
        bits += slice.size() * (32 + depth_ * sig_bits + 2 + 1);
    }
    bits += lock_entries_.size() * (32 + depth_ * id_bits + 1);
    return bits;
}

} // namespace spp
