#include "check/fuzzer.hh"

#include <algorithm>
#include <array>
#include <optional>

#include "analysis/event_trace.hh"
#include "common/format.hh"
#include "common/logging.hh"
#include "telemetry/telemetry.hh"

namespace spp {

Config
fuzzConfig(const FuzzCase &c)
{
    Config cfg;
    cfg.numCores = c.numCores;
    // Most-square factorization keeping meshX * meshY == numCores.
    unsigned y = 1;
    for (unsigned d = 2; d * d <= c.numCores; ++d)
        if (c.numCores % d == 0)
            y = d;
    cfg.meshY = y;
    cfg.meshX = c.numCores / y;
    cfg.protocol = c.protocol;
    cfg.predictor = c.predictor;
    cfg.sharerFormat = c.sharerFormat;
    cfg.seed = c.workload.seed;
    cfg.maxTicks = c.maxTicks;
    cfg.injectBug = c.injectBug;
    // Tiny caches: evictions, writebacks and capacity misses race
    // with the coherence traffic instead of everything fitting.
    cfg.l1Bytes = 1024;
    cfg.l2Bytes = 4096;
    return cfg;
}

FuzzResult
runFuzzCase(const FuzzCase &c)
{
    const Config cfg = fuzzConfig(c);
    CmpSystem sys(cfg);

    CheckerOptions copts;
    copts.abortOnViolation = false;
    copts.watchdogTicks = c.maxTicks / 4;
    copts.dataBase = layout::sharedBase;
    ProtocolChecker checker(sys.memSys(), copts);
    sys.syncManager().addListener(&checker);

    EventTrace trace;
    if (!c.tracePath.empty())
        trace.attach(sys);

    std::optional<RunTelemetry> telemetry;
    if (c.telemetry.enabled()) {
        telemetry.emplace(c.telemetry, c.telemetryLabel.empty()
                                           ? std::string("fuzz")
                                           : c.telemetryLabel);
        telemetry->manifest().set("kind", Json("fuzz"));
        telemetry->manifest().set("case",
                                  Json(describeFuzzCase(c)));
        telemetry->attach(sys);
    }

    const wl::FuzzWorkloadParams wl = c.workload;
    RunResult rr;
    FuzzResult res;
    res.status = sys.tryRun(
        [wl](ThreadContext &ctx) { return wl::fuzzProgram(ctx, wl); },
        rr);
    if (res.status == RunStatus::ok)
        checker.checkQuiescent();
    else
        res.outstanding = sys.memSys().dumpOutstanding();

    res.violations = checker.violations();
    res.messagesChecked = checker.messagesChecked();
    res.ticks = rr.ticks;
    if (res.failed()) {
        res.trace = checker.dumpTrace();
        if (!c.tracePath.empty())
            trace.save(c.tracePath);
    }
    if (telemetry) {
        telemetry->manifest().set("status",
                                  Json(toString(res.status)));
        telemetry->manifest().set(
            "violations", Json(res.violations.size()));
        telemetry->finish(rr);
    }
    return res;
}

FuzzCase
shrinkFuzzCase(const FuzzCase &failing, unsigned budget)
{
    FuzzCase best = failing;
    best.tracePath.clear();       // No trace I/O during shrinking.
    best.telemetry = TelemetryOptions{}; // No sidecars either.

    // Greedy halving: the candidate order puts the knobs with the
    // biggest run-time payoff first so a small budget still helps.
    auto knobs = [](FuzzCase &c) {
        return std::array<unsigned *, 5>{
            &c.workload.segments, &c.workload.opsPerSegment,
            &c.workload.lines, &c.workload.locks,
            &c.workload.barriers};
    };

    bool progress = true;
    while (progress && budget > 0) {
        progress = false;
        for (std::size_t i = 0; i < knobs(best).size() && budget > 0;
             ++i) {
            FuzzCase cand = best;
            unsigned *knob = knobs(cand)[i];
            if (*knob <= 1)
                continue;
            *knob = std::max(1u, *knob / 2);
            --budget;
            if (runFuzzCase(cand).failed()) {
                best = cand;
                progress = true;
            }
        }
    }
    best.tracePath = failing.tracePath;
    best.telemetry = failing.telemetry;
    return best;
}

std::string
describeFuzzCase(const FuzzCase &c)
{
    std::string s = strfmt(
        "--protocol {} --predictor {} --seed {} --cores {} "
        "--segments {} --ops {} --lines {} --locks {} --barriers {}",
        toString(c.protocol), toString(c.predictor), c.workload.seed,
        c.numCores, c.workload.segments, c.workload.opsPerSegment,
        c.workload.lines, c.workload.locks, c.workload.barriers);
    if (c.sharerFormat != SharerFormat::full)
        s += strfmt(" --format {}", toString(c.sharerFormat));
    if (c.injectBug)
        s += strfmt(" --inject {}", c.injectBug);
    return s;
}

} // namespace spp
