/**
 * @file
 * Deterministic protocol stress-fuzzer.
 *
 * One FuzzCase = one seeded random workload (workload/fuzz.hh) run on
 * one protocol/predictor combination against deliberately tiny caches
 * with a ProtocolChecker attached in record mode. A case "fails" when
 * the run times out, deadlocks, or the checker records any invariant
 * violation; the failing seed can then be shrunk to a minimal
 * reproducer (greedy halving of the workload shape) and rendered as a
 * bench/fuzz_protocol command line for replay.
 */

#ifndef SPP_CHECK_FUZZER_HH
#define SPP_CHECK_FUZZER_HH

#include <string>
#include <vector>

#include "check/protocol_checker.hh"
#include "common/config.hh"
#include "sim/cmp_system.hh"
#include "telemetry/options.hh"
#include "workload/fuzz.hh"

namespace spp {

/** Everything defining one fuzz run; fully reproducible. */
struct FuzzCase
{
    Protocol protocol = Protocol::directory;
    PredictorKind predictor = PredictorKind::none;
    wl::FuzzWorkloadParams workload;
    unsigned numCores = 8;
    SharerFormat sharerFormat = SharerFormat::full;
    Tick maxTicks = 5'000'000;
    unsigned injectBug = 0;     ///< Config::injectBug pass-through.

    /** Optional access-level trace capture for offline replay. */
    std::string tracePath;      ///< Non-empty: save on failure.

    /** Optional telemetry sidecars (series/trace/manifest) per case;
     * disabled unless telemetry.dir is set. Shrinking suppresses
     * them the same way it suppresses trace I/O. */
    TelemetryOptions telemetry;
    std::string telemetryLabel; ///< File stem; default "fuzz".
};

/** Outcome of one fuzz run. */
struct FuzzResult
{
    RunStatus status = RunStatus::ok;
    std::vector<Violation> violations;
    std::uint64_t messagesChecked = 0;
    Tick ticks = 0;
    std::string trace;          ///< Checker message ring (failures).
    std::string outstanding;    ///< dumpOutstanding (hangs).

    bool
    failed() const
    {
        return status != RunStatus::ok || !violations.empty();
    }
};

/** Build the (small-cache) Config a fuzz case runs under. */
Config fuzzConfig(const FuzzCase &c);

/** Run one case to completion; never terminates the process. */
FuzzResult runFuzzCase(const FuzzCase &c);

/**
 * Greedily shrink a failing case: repeatedly halve each workload
 * knob, keeping a change when the case still fails, spending at most
 * @p budget extra runs. Returns the smallest still-failing case
 * (possibly the input itself).
 */
FuzzCase shrinkFuzzCase(const FuzzCase &failing, unsigned budget = 24);

/** Render the case as a replayable bench/fuzz_protocol invocation. */
std::string describeFuzzCase(const FuzzCase &c);

} // namespace spp

#endif // SPP_CHECK_FUZZER_HH
