/**
 * @file
 * Bounded exhaustive model checker for the coherence protocols.
 *
 * Complements the stress fuzzer (check/fuzzer.hh): where the fuzzer
 * samples many random workloads under the simulator's one canonical
 * (FIFO) message ordering, the model checker takes one tiny scripted
 * workload and systematically explores *every* order in which
 * protocol messages that become deliverable at the same tick can be
 * delivered. Races the fuzzer can only hit by luck — late data
 * against a retired transaction, a read overtaking a writeback
 * notice, predicted requests crossing invalidations — are visited
 * deterministically.
 *
 * Mechanics (stateless / VeriSoft-style search):
 *  - MemSys::setDeliveryScheduler routes every protocol message
 *    through the checker instead of the event queue. NoC latency and
 *    traffic accounting are unchanged (Mesh::inject); only the order
 *    among messages deliverable at the same tick is permuted.
 *  - Each batch of >= 2 conflicting ready messages is a choice
 *    point. One execution = one vector of choice indices; the
 *    explorer re-executes the whole (deterministic) simulation per
 *    schedule prefix, depth-first, until every reachable ordering
 *    has been covered.
 *  - Partial-order reduction: messages commute unless they target
 *    the same core or the same line, so only conflicting batch
 *    members generate branches (DESIGN.md §11 argues soundness and
 *    lists the caveats).
 *  - State pruning: at every choice point the full coherence state
 *    (caches, MSHRs, writeback buffers, locks, directories, pending
 *    messages, event-timing profile, workload progress) is hashed;
 *    revisiting a hash suppresses re-branching below it. Hashing is
 *    approximate (see DESIGN.md §11) — --no-prune forces the full
 *    tree.
 *
 * Every execution runs under the ProtocolChecker in record mode; a
 * violation (or deadlock/timeout) stops the search, the failing
 * choice vector is greedily minimized, and the result is replayable
 * via bench/model_check --replay with the same artifact format the
 * fuzzer emits.
 */

#ifndef SPP_CHECK_MODEL_CHECKER_HH
#define SPP_CHECK_MODEL_CHECKER_HH

#include <string>
#include <vector>

#include "check/protocol_checker.hh"
#include "common/config.hh"
#include "sim/cmp_system.hh"

namespace spp {

/** Everything defining one exploration; fully reproducible. */
struct ModelCheckOptions
{
    Protocol protocol = Protocol::directory;
    /** none resolves to the protocol's default (sp where needed). */
    PredictorKind predictor = PredictorKind::none;
    SharerFormat format = SharerFormat::full;
    unsigned cores = 2;
    /** Scripted workload name; see modelCheckWorkloads(). */
    std::string workload = "conflict";
    unsigned injectBug = 0;     ///< Config::injectBug pass-through.

    /** Choice points beyond this depth take the default (FIFO)
     * branch without registering alternatives; 0 = unbounded. */
    unsigned maxDepth = 0;
    /** Stop after this many executions; 0 = unbounded. */
    std::uint64_t maxExecutions = 0;
    /** Per-execution tick budget (a hung schedule is a finding). */
    Tick maxTicks = 1'000'000;
    /** Memory latency for the tiny config. The default paper value
     * (150) puts memory data hopelessly behind every cache-to-cache
     * path; a handful of ticks makes the late/speculative data races
     * reachable. Witness tests tune this per scenario. */
    Tick memLatency = 8;
    /** wbrace only: compute instructions core 1 burns before its one
     * read, phasing it against core 0's dirty eviction. The
     * in-flight-writeback window is narrow (roughly delay 160..190 at
     * 3 cores / memLatency 8) and cannot self-align: any earlier read
     * downgrades the line and makes the eviction clean. The witness
     * test sweeps a small range around this default. */
    unsigned raceDelay = 175;

    bool prune = true;          ///< State-hash revisit suppression.
    bool reduce = true;         ///< Conflict-based branch reduction.
    bool stopOnViolation = true;///< Halt the search at first failure.
    /** Extra executions allowed for schedule minimization. */
    unsigned minimizeBudget = 64;
};

/** Outcome of one exploration (or one replay). */
struct ModelCheckResult
{
    std::uint64_t executions = 0;
    std::uint64_t choicePoints = 0;   ///< Summed over executions.
    std::uint64_t statesHashed = 0;
    std::uint64_t statesPruned = 0;   ///< Revisits that cut branching.
    std::uint64_t branchesReduced = 0;///< Independent members skipped.
    std::uint64_t maxBatch = 0;       ///< Largest same-tick ready set.
    std::size_t deepestChoice = 0;    ///< Longest choice vector seen.
    /** Late-data drops observed across all executions (the PR 3 race
     * windows; broadcast/multicast witness observable). */
    std::uint64_t lateDataDrops = 0;
    bool hitDepthLimit = false;
    bool hitExecLimit = false;

    // First failing execution, if any.
    bool violationFound = false;
    RunStatus failStatus = RunStatus::ok;
    /** Minimized failing choice vector (empty: default order). */
    std::vector<unsigned> schedule;
    std::vector<Violation> violations;
    std::string trace;          ///< Checker message ring (failures).
    std::string outstanding;    ///< dumpOutstanding (hangs).

    /** Every reachable ordering (under the enabled reductions) was
     * visited — no artificial limit cut the search. */
    bool complete() const { return !hitDepthLimit && !hitExecLimit; }
    bool failed() const { return violationFound; }
};

/** The tiny-system Config an exploration runs under. */
Config modelCheckConfig(const ModelCheckOptions &o);

/** Exhaustively explore; never terminates the process. */
ModelCheckResult modelCheck(const ModelCheckOptions &o);

/**
 * Re-execute exactly one schedule (a prior result's choice vector)
 * and report that single execution's outcome.
 */
ModelCheckResult replaySchedule(const ModelCheckOptions &o,
                                const std::vector<unsigned> &schedule);

/** Render as a replayable bench/model_check invocation. */
std::string describeModelCheck(const ModelCheckOptions &o);

/**
 * Schedule-file round trip ("# spp model_check schedule v1": the
 * options defining the run plus the choice vector, line-oriented
 * text). parse returns false (with *err set) on malformed input.
 */
std::string scheduleToText(const ModelCheckOptions &o,
                           const std::vector<unsigned> &schedule);
bool scheduleFromText(const std::string &text, ModelCheckOptions &o,
                      std::vector<unsigned> &schedule,
                      std::string *err = nullptr);

/** "conflict|writeback|pingpong|race|wbrace" (CLI help, validation). */
const char *modelCheckWorkloads();
bool isModelCheckWorkload(const std::string &name);

} // namespace spp

#endif // SPP_CHECK_MODEL_CHECKER_HH
