#include "check/protocol_checker.hh"

#include <algorithm>

#include "coherence/mem_sys.hh"
#include "common/logging.hh"

namespace spp {

namespace {

/** A deposit-bearing message raises the memory version on delivery. */
bool
depositsAtHome(MsgType t)
{
    return t == MsgType::wbNotice || t == MsgType::dirUpdate;
}

} // namespace

ProtocolChecker::ProtocolChecker(MemSys &mem, CheckerOptions opts)
    : mem_(mem), opts_(opts)
{
    mem_.setChecker(this);
}

ProtocolChecker::~ProtocolChecker()
{
    mem_.setChecker(nullptr);
}

void
ProtocolChecker::fail(std::string_view rule, std::string detail)
{
    const Tick now = mem_.eq_.curTick();
    if (opts_.abortOnViolation) {
        SPP_PANIC("protocol invariant violated [{}] at tick {}: {}\n"
                  "recent messages:\n{}",
                  rule, now, detail, dumpTrace());
    }
    if (violations_.size() < opts_.maxViolations)
        violations_.push_back(
            Violation{now, std::string(rule), std::move(detail)});
}

void
ProtocolChecker::record(bool deliver, const Msg &m)
{
    if (!opts_.traceDepth)
        return;
    if (trace_.size() >= opts_.traceDepth)
        trace_.pop_front();
    trace_.push_back(TracedMsg{mem_.eq_.curTick(), deliver, m});
}

std::string
ProtocolChecker::dumpTrace() const
{
    std::string out;
    for (const TracedMsg &t : trace_) {
        out += strfmt("  [{}] {} {} line={} {}->{} req={} txn={} "
                      "ver={}{}{}{}{}\n",
                      t.tick, t.deliver ? "dlv" : "snd",
                      toString(t.msg.type), t.msg.line, t.msg.src,
                      t.msg.dst, t.msg.requester, t.msg.txn,
                      t.msg.version, t.msg.isWrite ? " W" : "",
                      t.msg.predicted ? " pred" : "",
                      t.msg.fromMemory ? " mem" : "",
                      t.msg.ownerAck ? " ownerAck" : "");
    }
    return out;
}

void
ProtocolChecker::sanity(const Msg &m)
{
    if (m.src >= mem_.n_cores_ || m.dst >= mem_.n_cores_)
        fail("msg-endpoints",
             strfmt("{} line {} has tile(s) out of range: {} -> {}",
                    toString(m.type), m.line, m.src, m.dst));
    if (m.version > mem_.version_counter_)
        fail("version-range",
             strfmt("{} line {} carries version {} beyond the global "
                    "counter {}",
                    toString(m.type), m.line, m.version,
                    mem_.version_counter_));
    if (m.type == MsgType::nack && !m.predicted)
        fail("nack-unpredicted",
             strfmt("nack for line {} txn {} without the predicted "
                    "flag; the requester cannot account for it",
                    m.line, m.txn));
    if (m.type == MsgType::data && m.fromMemory &&
        m.version != mem_.memVersion(m.line)) {
        fail("mem-data-freshness",
             strfmt("memory data for line {} carries version {} but "
                    "memory holds {}",
                    m.line, m.version, mem_.memVersion(m.line)));
    }
}

void
ProtocolChecker::onSend(const Msg &m)
{
    ++sent_;
    record(false, m);
    sanity(m);
    auto &seen = max_seen_[m.line];
    seen = std::max(seen, m.version);
    if (depositsAtHome(m.type))
        ++deposits_in_flight_[m.line];
}

void
ProtocolChecker::onDeliver(const Msg &m)
{
    ++delivered_;
    record(true, m);
    // State is inspected *before* the handler runs, so the delivered
    // deposit still counts as in flight during this scan.
    scanLine(m.line);
    if (depositsAtHome(m.type)) {
        auto it = deposits_in_flight_.find(m.line);
        if (it != deposits_in_flight_.end() && --it->second == 0)
            deposits_in_flight_.erase(it);
    }
    if (opts_.watchdogTicks && (delivered_ & 63) == 0)
        watchdog();
}

void
ProtocolChecker::scanLine(Addr line)
{
    // Transients (copies in motion, directories being rewritten) all
    // happen under the per-line home lock; only an unlocked line has
    // to look consistent.
    if (mem_.locks_.isLocked(line))
        return;

    const std::uint64_t mem_ver = mem_.memVersion(line);
    unsigned copies = 0, writable = 0, forwarding = 0;
    bool have_clean = false;
    std::uint64_t clean_ver = 0;
    std::uint64_t max_ver = mem_ver;
    std::string states;

    for (CoreId c = 0; c < mem_.n_cores_; ++c) {
        const MemSys::PeerView v = mem_.peerView(c, line);
        if (!v.valid)
            continue;
        ++copies;
        max_ver = std::max(max_ver, v.version);
        states += strfmt(" core{}={}v{}{}", c, toString(v.state),
                         v.version, v.inBuffer ? "(wb)" : "");
        if (isWritable(v.state))
            ++writable;
        if (v.state == Mesif::forwarding)
            ++forwarding;
        if (v.state == Mesif::shared ||
            v.state == Mesif::forwarding) {
            if (have_clean && clean_ver != v.version)
                fail("clean-version-split",
                     strfmt("clean copies of line {} disagree: {} vs "
                            "{} ({})",
                            line, clean_ver, v.version, states));
            have_clean = true;
            clean_ver = v.version;
        }
        if (v.version < mem_ver)
            fail("stale-copy",
                 strfmt("core {} holds line {} at version {} older "
                        "than memory's {}",
                        c, line, v.version, mem_ver));
    }

    if (writable && copies > 1)
        fail("swmr", strfmt("line {} has a writable copy coexisting "
                            "with {} other cop{}:{}",
                            line, copies - 1,
                            copies == 2 ? "y" : "ies", states));
    if (writable > 1)
        fail("swmr", strfmt("line {} has {} writable copies:{}", line,
                            writable, states));
    if (forwarding > 1)
        fail("multi-forwarder",
             strfmt("line {} has {} Forwarding copies:{}", line,
                    forwarding, states));

    auto &seen = max_seen_[line];
    seen = std::max(seen, max_ver);
    if (copies == 0 && !deposits_in_flight_.contains(line) &&
        mem_ver < seen) {
        fail("lost-update",
             strfmt("line {} has no cached copy and no writeback in "
                    "flight, yet memory holds version {} < newest "
                    "observed {}",
                    line, mem_ver, seen));
    }
}

void
ProtocolChecker::watchdog()
{
    const Tick now = mem_.eq_.curTick();
    for (const auto &slot : mem_.mshr_) {
        if (!slot)
            continue;
        const Tick age = now - slot->issueTick;
        if (age > opts_.watchdogTicks)
            fail("no-progress",
                 strfmt("core {} miss on line {} (txn {}) outstanding "
                        "for {} ticks",
                        slot->core, slot->line, slot->txn, age));
    }
}

void
ProtocolChecker::onSyncPoint(CoreId core, const SyncPointInfo &info)
{
    (void)core;
    if (info.type != SyncType::barrier)
        return;
    // Cores are in order with one outstanding access, and every
    // thread is blocked in the barrier at the release instant, so no
    // data-region demand miss can be outstanding (sync-region traffic
    // of the barrier itself is exempt).
    for (const auto &slot : mem_.mshr_) {
        if (slot && slot->line >= opts_.dataBase)
            fail("barrier-quiesce",
                 strfmt("core {} still has a data-region miss on line "
                        "{} (txn {}) at a barrier release",
                        slot->core, slot->line, slot->txn));
    }
}

void
ProtocolChecker::checkQuiescent()
{
    for (const auto &slot : mem_.mshr_) {
        if (slot)
            fail("mshr-leak",
                 strfmt("core {} miss on line {} (txn {}) leaked past "
                        "end of run",
                        slot->core, slot->line, slot->txn));
    }
    if (!mem_.drained())
        fail("not-drained",
             strfmt("locks/writebacks outstanding at end of run:\n{}",
                    mem_.dumpOutstanding()));
    if (const std::size_t n = mem_.outstandingTxns())
        fail("lingering-leak",
             strfmt("{} resumed-but-undrained transaction(s) at end "
                    "of run:\n{}",
                    n, mem_.dumpOutstanding()));

    // Every line that ever moved must pass the full scan; with the
    // system drained no lock gates it.
    std::vector<Addr> lines;
    lines.reserve(max_seen_.size() + mem_.mem_version_.size());
    // lint: allow(unordered-iter) — collected, then sorted below.
    for (const auto &[line, ver] : max_seen_)
        lines.push_back(line);
    // lint: allow(unordered-iter) — collected, then sorted below.
    for (const auto &[line, ver] : mem_.mem_version_)
        lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    for (Addr line : lines)
        scanLine(line);
}

} // namespace spp
