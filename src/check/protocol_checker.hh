/**
 * @file
 * Always-on coherence protocol invariant checker.
 *
 * Attaches to a MemSys (MemSys::setChecker) and observes every
 * protocol message at send and delivery time, validating the global
 * cache state against the MESIF invariants the model is built on:
 *
 *  - SWMR: a writable (M/E) copy never coexists with any other valid
 *    copy of the same line; at most one Forwarding copy exists.
 *  - Version freshness: every valid copy is at least as new as the
 *    memory image, clean copies mutually agree, and data served from
 *    memory carries exactly the memory version.
 *  - Lost updates: once a line has no cached copy and no deposit
 *    (wbNotice/dirUpdate) in flight, memory holds the newest version
 *    ever observed for it.
 *  - Quiescence: at barrier-release instants no data-region demand
 *    miss is outstanding; at end of run no MSHR, writeback, line lock
 *    or lingering transaction survives (MSHR-leak detection).
 *  - Progress: a watchdog flags any MSHR older than a tick budget
 *    (stuck transaction / dropped message).
 *
 * Per-message state scans are restricted to lines whose home lock is
 * free: all protocol transients happen under the per-line lock, so an
 * unlocked line must look fully consistent. Deposit-bearing messages
 * in flight (wbNotice, dirUpdate) are tracked so that a cached copy
 * legally newer than the memory image is not misreported.
 *
 * Violations are either fatal (abortOnViolation, the default: panic
 * with a dump of the recent message trace) or recorded for the fuzz
 * harness, which shrinks failing seeds and wants the run to finish.
 */

#ifndef SPP_CHECK_PROTOCOL_CHECKER_HH
#define SPP_CHECK_PROTOCOL_CHECKER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "coherence/messages.hh"
#include "common/types.hh"
#include "sync/sync_types.hh"

namespace spp {

class MemSys;

/** Tunables of one checker attachment. */
struct CheckerOptions
{
    /** Panic (with trace dump) on the first violation. The fuzzer
     * turns this off and harvests violations() instead. */
    bool abortOnViolation = true;

    /** An MSHR outstanding longer than this many ticks is reported
     * as a stuck transaction. 0 disables the watchdog. */
    Tick watchdogTicks = 500'000;

    /** Number of recent messages kept for the failure trace. */
    std::size_t traceDepth = 512;

    /** Lines below this address are synchronization variables and
     * exempt from the barrier-quiescence rule. */
    Addr dataBase = 0x1000'0000;

    /** Stop recording after this many violations (record mode). */
    std::size_t maxViolations = 64;
};

/** One detected invariant violation. */
struct Violation
{
    Tick tick = 0;
    std::string rule;   ///< Short rule name ("swmr", "freshness", ...).
    std::string detail; ///< Human-readable description.
};

/**
 * The checker. Construction attaches it to the MemSys; destruction
 * detaches. Also a SyncListener so barrier releases trigger the
 * quiescence rule — register it via SyncManager::addListener.
 */
class ProtocolChecker : public SyncListener
{
  public:
    explicit ProtocolChecker(MemSys &mem, CheckerOptions opts = {});
    ~ProtocolChecker() override;

    ProtocolChecker(const ProtocolChecker &) = delete;
    ProtocolChecker &operator=(const ProtocolChecker &) = delete;

    /** MemSys hooks (called from MemSys::sendMsg / delivery). */
    void onSend(const Msg &m);
    void onDeliver(const Msg &m);

    /** SyncListener: barrier releases check data-region quiescence. */
    void onSyncPoint(CoreId core, const SyncPointInfo &info) override;

    /**
     * End-of-run check: no MSHR, lock, writeback or lingering
     * transaction outstanding, and every line ever touched passes the
     * full state scan. Call after the event queue drained.
     */
    void checkQuiescent();

    const std::vector<Violation> &violations() const
    {
        return violations_;
    }
    std::uint64_t messagesChecked() const { return delivered_; }

    /** Render the retained message ring (oldest first). */
    std::string dumpTrace() const;

  private:
    struct TracedMsg
    {
        Tick tick = 0;
        bool deliver = false;
        Msg msg;
    };

    void fail(std::string_view rule, std::string detail);
    void record(bool deliver, const Msg &m);
    void sanity(const Msg &m);

    /** Full consistency scan of one line; skips locked lines. */
    void scanLine(Addr line);
    void watchdog();

    MemSys &mem_;
    CheckerOptions opts_;
    std::vector<Violation> violations_;
    std::deque<TracedMsg> trace_;
    std::uint64_t sent_ = 0;
    std::uint64_t delivered_ = 0;

    /** Max data version ever observed per line (messages + scans). */
    std::unordered_map<Addr, std::uint64_t> max_seen_;
    /** In-flight memory-deposit messages (wbNotice/dirUpdate). */
    std::unordered_map<Addr, unsigned> deposits_in_flight_;
};

} // namespace spp

#endif // SPP_CHECK_PROTOCOL_CHECKER_HH
