#include "check/model_checker.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <unordered_set>

#include "coherence/broadcast_protocol.hh"
#include "coherence/multicast_protocol.hh"
#include "common/format.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "sim/task.hh"
#include "sim/thread_context.hh"

namespace spp {

namespace {

// ---------------------------------------------------------------------
// Scripted workloads
// ---------------------------------------------------------------------

/**
 * The workload catalog. Each program is deterministic per core and a
 * handful of operations long: the interesting behavior comes from the
 * explorer permuting message deliveries, not from workload size.
 *
 *  - conflict: every core writes line 0, then reads and writes
 *    line 1, barriers, and reads line 0 back. Contended ownership
 *    transfer on two lines; the workload behind the
 *    zero-violation sweeps and the inject-1 (lost invalidation)
 *    self-test.
 *  - writeback: core 0 dirties line 0 and evicts it through the
 *    2-way L2 set (lines 0/2/4 collide), so a writeback races the
 *    barrier and core 1's subsequent read of line 0. Reaches the
 *    wbNotice/read races and the inject-2 (stale memory data)
 *    path; under multicast this is the evicted-owner late-data
 *    window.
 *  - pingpong: every core alternates writes to lines 0 and 1, long
 *    enough to allocate > 61 transactions (the inject-3 unblock
 *    drop fires on txn 61 and leaks the line lock).
 *  - race: core 1 writes line 1; after a barrier core 0 reads it.
 *    Under broadcast the owner response races the speculative
 *    memory fetch (the late-data window).
 *  - wbrace: core 0 cycles dirty evictions of line 1 while core 1
 *    strides reads at it, barrier-free — some read catches the
 *    writeback buffer before the wbAck frees it (the multicast
 *    evicted-owner late-data window).
 */
enum class Wl
{
    conflict,
    writeback,
    pingpong,
    race,
    wbrace,
};

bool
wlFromName(const std::string &s, Wl &out)
{
    if (s == "conflict") { out = Wl::conflict; return true; }
    if (s == "writeback") { out = Wl::writeback; return true; }
    if (s == "pingpong") { out = Wl::pingpong; return true; }
    if (s == "race") { out = Wl::race; return true; }
    if (s == "wbrace") { out = Wl::wbrace; return true; }
    return false;
}

/**
 * The per-thread program. @p progress is shared with the scheduler's
 * state hash: one monotone op counter per core pins the (per-core
 * deterministic) program position, which also implies the barrier
 * arrival state these workloads can be in.
 */
Task
mcProgram(ThreadContext &ctx, Wl w, unsigned delay,
          std::shared_ptr<std::vector<std::uint64_t>> progress)
{
    const CoreId self = ctx.self();
    constexpr Pc pc = 0x00c0'0000;
    auto bump = [&progress, self]() { ++(*progress)[self]; };

    switch (w) {
      case Wl::conflict:
        co_await ctx.write(ctx.shared(0), pc + 0);
        bump();
        co_await ctx.read(ctx.shared(1), pc + 1);
        bump();
        co_await ctx.write(ctx.shared(1), pc + 2);
        bump();
        co_await ctx.barrier(0, pc + 3);
        bump();
        co_await ctx.read(ctx.shared(0), pc + 4);
        bump();
        break;

      case Wl::writeback:
        if (self == 0) {
            // Lines 1, 3 and 5 collide in the 2-way L2 set; the
            // third write evicts dirty line 1 into the writeback
            // buffer, and the wb transaction crosses the barrier.
            co_await ctx.write(ctx.shared(1), pc + 0);
            bump();
            co_await ctx.write(ctx.shared(3), pc + 1);
            bump();
            co_await ctx.write(ctx.shared(5), pc + 2);
            bump();
        }
        co_await ctx.barrier(0, pc + 3);
        bump();
        // Core 1 reads the evicted line. With 3 cores the roles
        // split three ways — reader 1, evicting owner 0, home of
        // line 1 (0x400001 % 3) = core 2 — and the reader sits
        // *closer* to the evicted owner than the home does, so its
        // snoop can reach the writeback buffer before the home's
        // wbAck frees it.
        if (self == 1) {
            co_await ctx.read(ctx.shared(1), pc + 4);
            bump();
        }
        break;

      case Wl::pingpong:
        // Both lines stay resident (separate L2 sets); the cross-core
        // ping-pong makes nearly every access a coherence miss, so
        // the run allocates well past 61 transactions.
        for (unsigned i = 0; i < 40; ++i) {
            co_await ctx.write(ctx.shared(0), pc + 0);
            bump();
            co_await ctx.write(ctx.shared(1), pc + 1);
            bump();
        }
        break;

      case Wl::race:
        // Line 1 so that with 3 cores the requester (0), dirty owner
        // (1) and home (line 0x400001 % 3 == 2) are three distinct
        // tiles — the geometry every ownership-transfer race needs.
        if (self == 1) {
            co_await ctx.write(ctx.shared(1), pc + 0);
            bump();
        }
        co_await ctx.barrier(0, pc + 1);
        bump();
        if (self == 0) {
            co_await ctx.read(ctx.shared(1), pc + 2);
            bump();
        }
        break;

      case Wl::wbrace:
        // Barrier-free: a barrier's own coherence traffic takes far
        // longer than a writeback, so a post-barrier read can never
        // catch the wb in flight, and a read arriving between the
        // dirtying write and the eviction downgrades the line and
        // makes the eviction clean. The only way into the ~10-tick
        // in-flight-writeback window is one read, phase-tuned by a
        // compute burst (options.raceDelay; the witness test sweeps
        // it). Geometry as in `writeback`: reader 1 sits closer to
        // the evicting owner 0 than line 1's home 2 does, so the
        // read's snoop can beat the home's wbAck to the buffer.
        if (self == 0) {
            co_await ctx.write(ctx.shared(1), pc + 0);
            bump();
            co_await ctx.write(ctx.shared(3), pc + 1);
            bump();
            co_await ctx.write(ctx.shared(5), pc + 2);
            bump();
        } else if (self == 1) {
            co_await ctx.compute(delay);
            bump();
            co_await ctx.read(ctx.shared(1), pc + 3);
            bump();
        }
        break;
    }
}

// ---------------------------------------------------------------------
// Delivery scheduling and state hashing
// ---------------------------------------------------------------------

void
hashMsg(StateHasher &h, const Msg &m)
{
    h.mix(static_cast<std::uint64_t>(m.type));
    h.mix(m.line);
    h.mix(m.src);
    h.mix(m.dst);
    h.mix(m.requester);
    h.mix(m.txn);
    for (CoreId c : m.set)
        h.mix(c);
    h.mix(~std::uint64_t{0});
    h.mix(std::uint64_t{m.isWrite} |
          std::uint64_t{m.predicted} << 1 |
          std::uint64_t{m.fromMemory} << 2 |
          std::uint64_t{m.ownerAck} << 3 |
          std::uint64_t{m.becameOwner} << 4 |
          std::uint64_t{m.hadCopy} << 5 |
          std::uint64_t{m.needData} << 6 |
          std::uint64_t{m.sufficient} << 7);
    h.mix(static_cast<std::uint64_t>(m.fillState));
    h.mix(m.ackCount);
    h.mix(m.version);
}

/**
 * The DeliveryScheduler that turns same-tick delivery order into an
 * explorable choice. Every message gets a dispatcher event at its
 * arrival tick; because the minimum message latency is the injection
 * router's pipeline (2 ticks), every message due at tick T was
 * injected before T — so when the first dispatcher at T fires, the
 * tick-T batch is complete. Each dispatcher delivers exactly one
 * ready message; the index chosen at each >= 2-candidate batch is
 * one coordinate of the schedule vector.
 */
class McScheduler : public DeliveryScheduler
{
  public:
    static constexpr std::size_t noSuppression = ~std::size_t{0};

    McScheduler(CmpSystem &sys, const ModelCheckOptions &opts,
                const std::vector<unsigned> &prefix,
                std::unordered_set<std::uint64_t> *visited,
                const std::vector<std::uint64_t> *progress,
                bool lenient)
        : sys_(sys), opts_(opts), prefix_(prefix),
          visited_(visited), progress_(progress), lenient_(lenient)
    {}

    void
    onMessage(Tick arrive, const Msg &m,
              EventQueue::Action deliver) override
    {
        pending_.push_back(
            Pending{arrive, &m, std::move(deliver)});
        sys_.eventQueue().schedule(arrive, [this]() { dispatch(); });
    }

    // Exploration record, read by the driver after the run.
    const std::vector<unsigned> &counts() const { return counts_; }
    const std::vector<unsigned> &chosen() const { return chosen_; }
    std::size_t suppressedAt() const { return suppressed_at_; }
    std::uint64_t statesHashed() const { return states_hashed_; }
    std::uint64_t statesPruned() const { return states_pruned_; }
    std::uint64_t branchesReduced() const { return branches_reduced_; }
    std::uint64_t maxBatch() const { return max_batch_; }

  private:
    struct Pending
    {
        Tick arrive;
        /** Aliases the pooled slot; valid until deliver runs. */
        const Msg *msg;
        EventQueue::Action deliver;
    };

    /**
     * Two deliveries commute unless they share a handler footprint:
     * per-core requester/peer state (same dst) or line-keyed home
     * state — locks, directory entry, memory version (same line).
     */
    static bool
    conflicts(const Msg &a, const Msg &b)
    {
        return a.dst == b.dst || a.line == b.line;
    }

    void
    dispatch()
    {
        const Tick now = sys_.eventQueue().curTick();
        // One dispatcher event exists per undelivered message, so at
        // least one message is due whenever one fires.
        ready_.clear();
        for (std::size_t i = 0; i < pending_.size(); ++i)
            if (pending_[i].arrive <= now)
                ready_.push_back(i);
        SPP_ASSERT(!ready_.empty(),
                   "dispatcher fired with no message due");
        max_batch_ = std::max<std::uint64_t>(max_batch_,
                                             ready_.size());

        // Candidates for "delivered first": with reduction, only
        // batch members that conflict with another member — an
        // independent member commutes with the whole batch, so some
        // later dispatcher at this tick delivers it unchanged.
        cand_.clear();
        if (opts_.reduce && ready_.size() > 1) {
            for (std::size_t i : ready_) {
                for (std::size_t j : ready_) {
                    if (i != j && conflicts(*pending_[i].msg,
                                            *pending_[j].msg)) {
                        cand_.push_back(i);
                        break;
                    }
                }
            }
            if (cand_.empty())
                cand_.push_back(ready_[0]);
            branches_reduced_ += ready_.size() - cand_.size();
        } else {
            cand_ = ready_;
        }

        std::size_t slot;
        if (cand_.size() < 2) {
            slot = cand_[0];
        } else {
            const std::size_t d = counts_.size();
            unsigned choice = 0;
            if (d < prefix_.size()) {
                choice = prefix_[d];
                if (choice >= cand_.size()) {
                    // Minimization probes run lenient: editing an
                    // earlier choice can shrink later batches.
                    SPP_ASSERT(lenient_,
                               "schedule choice {} out of range "
                               "(batch of {}) at depth {}",
                               choice, cand_.size(), d);
                    choice = static_cast<unsigned>(cand_.size()) - 1;
                }
            } else if (opts_.prune && visited_ != nullptr &&
                       suppressed_at_ == noSuppression) {
                // Fresh territory only: prefix-depth states were
                // inserted by the ancestor execution that spawned
                // this prefix and must not suppress it.
                ++states_hashed_;
                if (!visited_->insert(stateHash()).second) {
                    suppressed_at_ = d;
                    ++states_pruned_;
                }
            }
            counts_.push_back(static_cast<unsigned>(cand_.size()));
            chosen_.push_back(choice);
            slot = cand_[choice];
        }

        Pending p = std::move(pending_[slot]);
        pending_.erase(pending_.begin() +
                       static_cast<std::ptrdiff_t>(slot));
        p.deliver();
    }

    /**
     * Digest of everything that determines future behavior, time-
     * shift invariant (ticks fold relative to now). Approximations
     * are documented in DESIGN.md §11: event actions are opaque
     * (only their due-tick profile is folded — workload progress
     * counters disambiguate program position), and predictor /
     * checker-history state is excluded by design.
     */
    std::uint64_t
    stateHash() const
    {
        StateHasher h;
        const Tick now = sys_.eventQueue().curTick();
        for (std::uint64_t p : *progress_)
            h.mix(p);
        sys_.eventQueue().forEachPendingTick(
            [&](Tick when, std::size_t count) {
                h.mix(when - now);
                h.mix(count);
            });
        for (const Pending &p : pending_) {
            h.mix(p.arrive - now);
            hashMsg(h, *p.msg);
        }
        sys_.memSys().hashState(h);
        return h.value();
    }

    CmpSystem &sys_;
    const ModelCheckOptions &opts_;
    const std::vector<unsigned> &prefix_;
    std::unordered_set<std::uint64_t> *visited_;
    const std::vector<std::uint64_t> *progress_;
    const bool lenient_;

    std::vector<Pending> pending_;  ///< FIFO (insertion) order.
    std::vector<std::size_t> ready_;
    std::vector<std::size_t> cand_;

    std::vector<unsigned> counts_;
    std::vector<unsigned> chosen_;
    std::size_t suppressed_at_ = noSuppression;
    std::uint64_t states_hashed_ = 0;
    std::uint64_t states_pruned_ = 0;
    std::uint64_t branches_reduced_ = 0;
    std::uint64_t max_batch_ = 0;
};

// ---------------------------------------------------------------------
// One execution
// ---------------------------------------------------------------------

struct ExecRecord
{
    std::vector<unsigned> counts;
    std::vector<unsigned> chosen;
    std::size_t suppressedAt = McScheduler::noSuppression;
    RunStatus status = RunStatus::ok;
    std::vector<Violation> violations;
    std::string trace;
    std::string outstanding;
    std::uint64_t lateDrops = 0;
    std::uint64_t statesHashed = 0;
    std::uint64_t statesPruned = 0;
    std::uint64_t branchesReduced = 0;
    std::uint64_t maxBatch = 0;

    bool
    failed() const
    {
        return status != RunStatus::ok || !violations.empty();
    }
};

ExecRecord
runSchedule(const ModelCheckOptions &o, Wl wl,
            const std::vector<unsigned> &prefix,
            std::unordered_set<std::uint64_t> *visited, bool lenient)
{
    const Config cfg = modelCheckConfig(o);
    CmpSystem sys(cfg);

    CheckerOptions copts;
    copts.abortOnViolation = false;
    copts.watchdogTicks = o.maxTicks / 2;
    copts.dataBase = layout::sharedBase;
    ProtocolChecker checker(sys.memSys(), copts);
    sys.syncManager().addListener(&checker);

    auto progress = std::make_shared<std::vector<std::uint64_t>>(
        cfg.numCores, 0);
    McScheduler sched(sys, o, prefix, visited, progress.get(),
                      lenient);
    sys.memSys().setDeliveryScheduler(&sched);

    RunResult rr;
    ExecRecord rec;
    rec.status = sys.tryRun(
        [wl, progress, delay = o.raceDelay](ThreadContext &ctx) {
            return mcProgram(ctx, wl, delay, progress);
        },
        rr);
    if (rec.status == RunStatus::ok)
        checker.checkQuiescent();
    else
        rec.outstanding = sys.memSys().dumpOutstanding();

    rec.violations = checker.violations();
    if (rec.failed())
        rec.trace = checker.dumpTrace();
    rec.counts = sched.counts();
    rec.chosen = sched.chosen();
    rec.suppressedAt = sched.suppressedAt();
    rec.statesHashed = sched.statesHashed();
    rec.statesPruned = sched.statesPruned();
    rec.branchesReduced = sched.branchesReduced();
    rec.maxBatch = sched.maxBatch();

    const MemSys &mem = sys.memSys();
    if (auto *b = dynamic_cast<const BroadcastMemSys *>(&mem))
        rec.lateDrops = b->lateDataDrops();
    else if (auto *m = dynamic_cast<const MulticastMemSys *>(&mem))
        rec.lateDrops = m->lateDataDrops();
    return rec;
}

/**
 * Greedily shrink a failing choice vector: drop trailing defaults
 * (replay regenerates them) and try zeroing each remaining non-zero
 * coordinate, keeping changes that still fail. Probes run lenient —
 * editing an early choice can shrink later batches.
 */
void
minimizeSchedule(const ModelCheckOptions &o, Wl wl,
                 ModelCheckResult &res)
{
    auto trim = [](std::vector<unsigned> &s) {
        while (!s.empty() && s.back() == 0)
            s.pop_back();
    };
    std::vector<unsigned> best = res.schedule;
    trim(best);
    {
        // The trimmed vector must still fail (it replays the same
        // execution); re-check to harvest the final trace.
        ExecRecord rec = runSchedule(o, wl, best, nullptr, true);
        if (!rec.failed())
            return; // Defensive: keep the original vector.
    }

    unsigned budget = o.minimizeBudget;
    bool progress = true;
    while (progress && budget > 0) {
        progress = false;
        for (std::size_t i = best.size(); i-- > 0 && budget > 0;) {
            if (best[i] == 0)
                continue;
            std::vector<unsigned> cand = best;
            cand[i] = 0;
            trim(cand);
            --budget;
            ExecRecord rec = runSchedule(o, wl, cand, nullptr, true);
            ++res.executions;
            if (rec.failed()) {
                best = std::move(cand);
                progress = true;
            }
        }
    }
    res.schedule = std::move(best);
}

PredictorKind
resolvedPredictor(const ModelCheckOptions &o)
{
    if ((o.protocol == Protocol::predicted ||
         o.protocol == Protocol::multicast) &&
        o.predictor == PredictorKind::none)
        return PredictorKind::sp;
    return o.predictor;
}

Wl
requireWorkload(const std::string &name)
{
    Wl wl;
    if (!wlFromName(name, wl))
        SPP_FATAL("unknown model-check workload '{}' (expected {})",
                  name, modelCheckWorkloads());
    return wl;
}

bool
predictorFromName(const std::string &s, PredictorKind &out)
{
    if (s == "none") { out = PredictorKind::none; return true; }
    if (s == "sp") { out = PredictorKind::sp; return true; }
    if (s == "addr") { out = PredictorKind::addr; return true; }
    if (s == "inst") { out = PredictorKind::inst; return true; }
    if (s == "uni") { out = PredictorKind::uni; return true; }
    return false;
}

bool
protocolFromName(const std::string &s, Protocol &out)
{
    if (s == "directory") { out = Protocol::directory; return true; }
    if (s == "broadcast") { out = Protocol::broadcast; return true; }
    if (s == "predicted") { out = Protocol::predicted; return true; }
    if (s == "multicast") { out = Protocol::multicast; return true; }
    return false;
}

bool
formatFromName(const std::string &s, SharerFormat &out)
{
    if (s == "full") { out = SharerFormat::full; return true; }
    if (s == "coarse") { out = SharerFormat::coarse; return true; }
    if (s == "limited") { out = SharerFormat::limited; return true; }
    return false;
}

} // namespace

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

const char *
modelCheckWorkloads()
{
    return "conflict|writeback|pingpong|race|wbrace";
}

bool
isModelCheckWorkload(const std::string &name)
{
    Wl wl;
    return wlFromName(name, wl);
}

Config
modelCheckConfig(const ModelCheckOptions &o)
{
    Config cfg;
    cfg.numCores = o.cores;
    // Most-square factorization keeping meshX * meshY == numCores.
    unsigned y = 1;
    for (unsigned d = 2; d * d <= o.cores; ++d)
        if (o.cores % d == 0)
            y = d;
    cfg.meshY = y;
    cfg.meshX = o.cores / y;
    cfg.protocol = o.protocol;
    cfg.predictor = resolvedPredictor(o);
    cfg.sharerFormat = o.format;
    // The default coarse-vector granularity can exceed a tiny core
    // count; clamp so coarse stays the maximal (one-group) over-
    // approximation instead of failing validation.
    cfg.coarseCoresPerBit = std::min(cfg.coarseCoresPerBit, o.cores);
    cfg.seed = 1;
    cfg.maxTicks = o.maxTicks;
    cfg.injectBug = o.injectBug;
    // Micro caches (1 L1 set x 2 ways, 2 L2 sets x 2 ways): shared
    // lines 0/2/4 collide in L2, so evictions and writebacks are
    // reachable within a handful of accesses while the state space
    // stays enumerable.
    cfg.l1Bytes = 128;
    cfg.l1Assoc = 2;
    cfg.l2Bytes = 256;
    cfg.l2Assoc = 2;
    // Short memory path: with the default 150-tick memory latency a
    // speculative or home memory fetch always loses (or is cancelled)
    // long before the owner/buffer response path completes, so the
    // late-data windows would be unreachable. A handful of ticks puts
    // memory data in genuine contention with peer responses.
    cfg.memLatency = o.memLatency;
    cfg.dirLatency = 2;
    // Link contention keeps per-link busy-until state in absolute
    // time; with it off, message latency is a pure function of
    // (src, dst, bytes), so states merged by the time-shift-
    // invariant hash really do behave identically. Contention is a
    // performance model, not protocol behavior.
    cfg.modelContention = false;
    return cfg;
}

ModelCheckResult
modelCheck(const ModelCheckOptions &o)
{
    const Wl wl = requireWorkload(o.workload);

    ModelCheckResult res;
    std::unordered_set<std::uint64_t> visited;
    std::vector<std::vector<unsigned>> work;
    work.push_back({});

    while (!work.empty()) {
        std::vector<unsigned> prefix = std::move(work.back());
        work.pop_back();

        ExecRecord rec = runSchedule(o, wl, prefix,
                                     o.prune ? &visited : nullptr,
                                     false);
        ++res.executions;
        res.choicePoints += rec.counts.size();
        res.statesHashed += rec.statesHashed;
        res.statesPruned += rec.statesPruned;
        res.branchesReduced += rec.branchesReduced;
        res.maxBatch = std::max(res.maxBatch, rec.maxBatch);
        res.deepestChoice = std::max(res.deepestChoice,
                                     rec.chosen.size());
        res.lateDataDrops += rec.lateDrops;

        if (rec.failed() && !res.violationFound) {
            res.violationFound = true;
            res.failStatus = rec.status;
            res.violations = rec.violations;
            res.trace = rec.trace;
            res.outstanding = rec.outstanding;
            res.schedule = rec.chosen;
            if (o.stopOnViolation)
                break;
        }

        // Register the unexplored alternatives of every fresh choice
        // point: depths below the prefix were registered by ancestor
        // executions, depths at or past a state-hash revisit were
        // covered from the first visit.
        for (std::size_t d = prefix.size(); d < rec.counts.size();
             ++d) {
            if (d >= rec.suppressedAt)
                break;
            if (o.maxDepth != 0 && d >= o.maxDepth) {
                res.hitDepthLimit = true;
                break;
            }
            for (unsigned alt = 1; alt < rec.counts[d]; ++alt) {
                std::vector<unsigned> p(
                    rec.chosen.begin(),
                    rec.chosen.begin() +
                        static_cast<std::ptrdiff_t>(d));
                p.push_back(alt);
                work.push_back(std::move(p));
            }
        }

        if (o.maxExecutions != 0 &&
            res.executions >= o.maxExecutions && !work.empty()) {
            res.hitExecLimit = true;
            break;
        }
    }

    if (res.violationFound)
        minimizeSchedule(o, wl, res);
    return res;
}

ModelCheckResult
replaySchedule(const ModelCheckOptions &o,
               const std::vector<unsigned> &schedule)
{
    const Wl wl = requireWorkload(o.workload);
    ExecRecord rec = runSchedule(o, wl, schedule, nullptr, false);

    ModelCheckResult res;
    res.executions = 1;
    res.choicePoints = rec.counts.size();
    res.branchesReduced = rec.branchesReduced;
    res.maxBatch = rec.maxBatch;
    res.deepestChoice = rec.chosen.size();
    res.lateDataDrops = rec.lateDrops;
    res.violationFound = rec.failed();
    res.failStatus = rec.status;
    res.violations = rec.violations;
    res.trace = rec.trace;
    res.outstanding = rec.outstanding;
    res.schedule = schedule;
    return res;
}

std::string
describeModelCheck(const ModelCheckOptions &o)
{
    std::string s = strfmt(
        "--protocol {} --predictor {} --format {} --cores {} "
        "--workload {}",
        toString(o.protocol), toString(resolvedPredictor(o)),
        toString(o.format), o.cores, o.workload);
    if (o.injectBug)
        s += strfmt(" --inject {}", o.injectBug);
    if (o.memLatency != ModelCheckOptions{}.memLatency)
        s += strfmt(" --mem-latency {}", o.memLatency);
    if (o.raceDelay != ModelCheckOptions{}.raceDelay)
        s += strfmt(" --race-delay {}", o.raceDelay);
    if (o.maxDepth)
        s += strfmt(" --depth {}", o.maxDepth);
    if (!o.prune)
        s += " --no-prune";
    if (!o.reduce)
        s += " --no-reduce";
    return s;
}

std::string
scheduleToText(const ModelCheckOptions &o,
               const std::vector<unsigned> &schedule)
{
    std::string s = "# spp model_check schedule v1\n";
    s += strfmt("protocol {}\n", toString(o.protocol));
    s += strfmt("predictor {}\n", toString(resolvedPredictor(o)));
    s += strfmt("format {}\n", toString(o.format));
    s += strfmt("cores {}\n", o.cores);
    s += strfmt("workload {}\n", o.workload);
    s += strfmt("inject {}\n", o.injectBug);
    s += strfmt("memlat {}\n", o.memLatency);
    s += strfmt("delay {}\n", o.raceDelay);
    s += "choices";
    for (unsigned c : schedule)
        s += strfmt(" {}", c);
    s += "\n";
    return s;
}

bool
scheduleFromText(const std::string &text, ModelCheckOptions &o,
                 std::vector<unsigned> &schedule, std::string *err)
{
    auto fail = [&](std::string msg) {
        if (err != nullptr)
            *err = std::move(msg);
        return false;
    };

    schedule.clear();
    bool saw_magic = false;
    bool saw_choices = false;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            if (line.find("spp model_check schedule v1") !=
                std::string::npos)
                saw_magic = true;
            continue;
        }
        const std::size_t sp = line.find(' ');
        const std::string key = line.substr(0, sp);
        const std::string val =
            sp == std::string::npos ? "" : line.substr(sp + 1);
        if (key == "protocol") {
            if (!protocolFromName(val, o.protocol))
                return fail("bad protocol '" + val + "'");
        } else if (key == "predictor") {
            if (!predictorFromName(val, o.predictor))
                return fail("bad predictor '" + val + "'");
        } else if (key == "format") {
            if (!formatFromName(val, o.format))
                return fail("bad format '" + val + "'");
        } else if (key == "cores") {
            const unsigned long n = std::strtoul(val.c_str(),
                                                 nullptr, 10);
            if (n == 0 || n > 64)
                return fail("bad core count '" + val + "'");
            o.cores = static_cast<unsigned>(n);
        } else if (key == "workload") {
            if (!isModelCheckWorkload(val))
                return fail("bad workload '" + val + "'");
            o.workload = val;
        } else if (key == "inject") {
            o.injectBug = static_cast<unsigned>(
                std::strtoul(val.c_str(), nullptr, 10));
        } else if (key == "memlat") {
            const unsigned long n = std::strtoul(val.c_str(),
                                                 nullptr, 10);
            if (n == 0)
                return fail("bad memory latency '" + val + "'");
            o.memLatency = n;
        } else if (key == "delay") {
            o.raceDelay = static_cast<unsigned>(
                std::strtoul(val.c_str(), nullptr, 10));
        } else if (key == "choices") {
            saw_choices = true;
            std::size_t i = 0;
            while (i < val.size()) {
                while (i < val.size() && val[i] == ' ')
                    ++i;
                if (i >= val.size())
                    break;
                if (val[i] < '0' || val[i] > '9')
                    return fail("bad choice list '" + val + "'");
                unsigned c = 0;
                while (i < val.size() && val[i] >= '0' &&
                       val[i] <= '9') {
                    c = c * 10 + static_cast<unsigned>(val[i] - '0');
                    ++i;
                }
                schedule.push_back(c);
            }
        } else {
            return fail("unknown key '" + key + "'");
        }
    }
    if (!saw_magic)
        return fail("missing '# spp model_check schedule v1' header");
    if (!saw_choices)
        return fail("missing 'choices' line");
    return true;
}

} // namespace spp
