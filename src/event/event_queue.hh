/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives a run. Events are type-erased callables
 * scheduled at absolute ticks; same-tick events fire in scheduling
 * order (FIFO), which makes protocol behaviour deterministic.
 */

#ifndef SPP_EVENT_EVENT_QUEUE_HH
#define SPP_EVENT_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/inline_fn.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace spp {

/**
 * Calendar queue over (tick, seq, action) triples: a ring of
 * per-tick FIFO slots covering the near-time window
 * [curTick(), curTick() + windowSlots), with a binary-heap overflow
 * for far-future events. Nearly every event in a coherence run is a
 * short latency hop (cache/dir/link delays of a few dozen ticks), so
 * the common schedule() is a bump into a slot vector and the common
 * step() is a pop from the current slot — both O(1) and, in steady
 * state, allocation-free. Actions are InlineFn, so the closure lives
 * inside the slot entry instead of behind a per-event heap pointer.
 *
 * Determinism contract (same as the old pure heap): events fire in
 * ascending (when, seq) order, seq being global insertion order, so
 * same-tick events run FIFO. The two structures never hold entries
 * that interleave incorrectly: a far entry for tick T can only be
 * inserted while T lies beyond the window, and a slot entry for T
 * only while T lies inside it; the window base (curTick()) never
 * moves backwards, so every heap entry for T predates — and has a
 * smaller seq than — every slot entry for T. Draining heap entries
 * due at T before the slot FIFO at T therefore reproduces the exact
 * global order without ever migrating entries between structures.
 *
 * The heap is managed explicitly (std::pop_heap over a vector):
 * extracting an event must fully remove it from the container
 * *before* running it, because the action may schedule new events.
 */
class EventQueue
{
  public:
    /**
     * Inline capacity for event closures. Sized for the fattest
     * kernel closure (the L2-miss continuation: a DoneFn plus line,
     * pc and issue-time context); anything bigger fails to compile
     * in schedule() rather than silently regressing to heap
     * allocation.
     */
    static constexpr std::size_t actionCapacity = 88;

    using Action = InlineFn<actionCapacity>;

    /**
     * Observer of periodic tick-boundary crossings (telemetry
     * sampling). onBoundary(b) fires the first time execution
     * reaches a tick >= b, *before* the event at that tick runs, so
     * the observer sees simulator state exactly as of the start of
     * the boundary tick. When a single event advances time across
     * several boundaries, one callback fires per boundary (in
     * order), all observing the same quiescent state.
     */
    class TickObserver
    {
      public:
        virtual ~TickObserver() = default;
        virtual void onBoundary(Tick boundary) = 0;
    };

    /** Current simulated time. */
    Tick curTick() const { return cur_tick_; }

    /**
     * Install @p obs, firing every @p period ticks starting at the
     * next multiple of @p period after curTick(); nullptr removes
     * the observer. The observer is polled on the event execution
     * path rather than scheduled as events, so the queue still
     * drains naturally and a disabled (null) observer costs one
     * predictable branch per event.
     */
    void
    setTickObserver(TickObserver *obs, Tick period = 0)
    {
        obs_ = obs;
        if (obs != nullptr) {
            SPP_ASSERT(period > 0,
                       "tick-observer period must be non-zero");
            obs_period_ = period;
            obs_next_ = (cur_tick_ / period + 1) * period;
        }
    }

    bool hasTickObserver() const { return obs_ != nullptr; }

    /** Schedule @p action at absolute time @p when (>= curTick()). */
    void
    schedule(Tick when, Action action)
    {
        SPP_ASSERT(when >= cur_tick_,
                   "schedule in the past: {} < {}", when, cur_tick_);
        if (when - cur_tick_ < windowSlots) {
            const std::size_t idx = when & windowMask;
            slots_[idx].push_back(std::move(action));
            occupancy_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        } else {
            far_.push_back(
                FarEntry{when, next_seq_, std::move(action)});
            std::push_heap(far_.begin(), far_.end(), FarLater{});
        }
        ++next_seq_;
        ++pending_;
    }

    /** Schedule @p action @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Action action)
    {
        schedule(cur_tick_ + delay, std::move(action));
    }

    bool empty() const { return pending_ == 0; }

    std::size_t pending() const { return pending_; }

    /** Events waiting in the near-time window's slots. */
    std::size_t nearPending() const { return pending_ - far_.size(); }

    /** Events parked in the far-future overflow heap. */
    std::size_t farPending() const { return far_.size(); }

    /** Near-window slots currently holding at least one event. */
    std::size_t
    occupiedSlots() const
    {
        std::size_t n = 0;
        for (const std::uint64_t w : occupancy_)
            n += static_cast<std::size_t>(std::popcount(w));
        return n;
    }

    /** Tick of the next pending event; queue must be non-empty. */
    Tick
    nextEventTick() const
    {
        SPP_ASSERT(pending_ != 0, "peek on empty event queue");
        const Tick near = nearNextTick();
        if (!far_.empty() && far_.front().when < near)
            return far_.front().when;
        return near;
    }

    /** Execute the single next event; queue must be non-empty. */
    void
    step()
    {
        SPP_ASSERT(pending_ != 0, "step on empty event queue");
        const Tick now = nextEventTick();
        cur_tick_ = now;
        if (obs_ != nullptr) [[unlikely]] {
            while (cur_tick_ >= obs_next_) {
                obs_->onBoundary(obs_next_);
                obs_next_ += obs_period_;
            }
        }

        // Far entries due now were all scheduled before any slot
        // entry for this tick existed (see class comment), so they
        // run first; among themselves the heap yields (when, seq)
        // order.
        Action action;
        if (!far_.empty() && far_.front().when == now) {
            std::pop_heap(far_.begin(), far_.end(), FarLater{});
            action = std::move(far_.back().action);
            far_.pop_back();
        } else {
            Slot &slot = slots_[now & windowMask];
            action = std::move(slot.fifo[slot.head]);
            if (++slot.head == slot.fifo.size()) {
                // Drained: recycle the vector's capacity and clear
                // the occupancy bit. The action below may schedule
                // back into this same slot; that re-sets the bit.
                slot.fifo.clear();
                slot.head = 0;
                const std::size_t idx = now & windowMask;
                occupancy_[idx >> 6] &=
                    ~(std::uint64_t{1} << (idx & 63));
            }
        }
        --pending_;
        action();
        ++executed_;
    }

    /**
     * Run until the queue drains or curTick() would exceed @p limit
     * (0 = no limit). @return true if the queue drained.
     */
    bool
    run(Tick limit = 0)
    {
        while (pending_ != 0) {
            if (limit != 0 && nextEventTick() > limit)
                return false;
            step();
        }
        return true;
    }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Enumerate the due tick of every pending event as
     * fn(Tick when, std::size_t count), in ascending tick order.
     * Event actions themselves are opaque; this exposes exactly the
     * queue's *timing* profile, which the model checker folds into
     * its state hash (two states with different in-flight event
     * schedules must not be identified). O(windowSlots + far log far)
     * — a model-checking path, not a hot path.
     */
    template <typename Fn>
    void
    forEachPendingTick(Fn fn) const
    {
        // Far entries first into a sorted scratch list: the heap's
        // internal layout depends on insertion history and must not
        // leak into enumeration order.
        std::vector<Tick> far_ticks;
        far_ticks.reserve(far_.size());
        for (const FarEntry &e : far_)
            far_ticks.push_back(e.when);
        std::sort(far_ticks.begin(), far_ticks.end());

        std::size_t fi = 0;
        const std::size_t base = cur_tick_ & windowMask;
        for (std::size_t k = 0; k < windowSlots; ++k) {
            const std::size_t idx = (base + k) & windowMask;
            const Slot &slot = slots_[idx];
            const std::size_t n = slot.fifo.size() - slot.head;
            if (n == 0)
                continue;
            // Far entries due at or before this slot tick precede it
            // (far entries for a tick always predate slot entries for
            // the same tick; see the class comment).
            const Tick when = cur_tick_ + k;
            while (fi < far_ticks.size() && far_ticks[fi] <= when) {
                std::size_t c = 1;
                while (fi + c < far_ticks.size() &&
                       far_ticks[fi + c] == far_ticks[fi])
                    ++c;
                fn(far_ticks[fi], c);
                fi += c;
            }
            fn(when, n);
        }
        while (fi < far_ticks.size()) {
            std::size_t c = 1;
            while (fi + c < far_ticks.size() &&
                   far_ticks[fi + c] == far_ticks[fi])
                ++c;
            fn(far_ticks[fi], c);
            fi += c;
        }
    }

    /** Near-time window width in ticks (and slots). */
    static constexpr std::size_t windowSlots = 1024;

  private:
    static constexpr std::uint64_t windowMask = windowSlots - 1;
    static constexpr std::size_t occupancyWords = windowSlots / 64;

    /** One tick's FIFO: drained front-to-back via a head cursor so
     * the vector (and its capacity) is reused tick after tick. */
    struct Slot
    {
        std::vector<Action> fifo;
        std::size_t head = 0;

        void
        push_back(Action a)
        {
            fifo.push_back(std::move(a));
        }
    };

    struct FarEntry
    {
        Tick when;
        std::uint64_t seq;
        Action action;
    };

    /** Heap comparator: true when @p a fires after @p b, so the
     * earliest (when, seq) sits at far_.front(). */
    struct FarLater
    {
        bool
        operator()(const FarEntry &a, const FarEntry &b) const
        {
            return a.when != b.when ? a.when > b.when
                                    : a.seq > b.seq;
        }
    };

    /**
     * Tick of the first occupied slot at or after curTick();
     * maxTick when the window is empty. Scans the occupancy bitmap
     * circularly starting at the slot of curTick(); because the
     * window is exactly windowSlots wide, the first set bit in
     * circular order is the earliest due tick.
     */
    Tick
    nearNextTick() const
    {
        const std::size_t base = cur_tick_ & windowMask;
        const std::size_t base_word = base >> 6;
        // Head of the base word: bits at or after the base slot.
        std::uint64_t w = occupancy_[base_word] &
            (~std::uint64_t{0} << (base & 63));
        if (w != 0)
            return slotTick(base_word, w, base);
        // Following words, wrapping; the scan ends back at the base
        // word, where only the bits before the base slot remain.
        for (std::size_t k = 1; k <= occupancyWords; ++k) {
            const std::size_t word =
                (base_word + k) & (occupancyWords - 1);
            w = occupancy_[word];
            if (k == occupancyWords)
                w &= (std::uint64_t{1} << (base & 63)) - 1;
            if (w != 0)
                return slotTick(word, w, base);
        }
        return maxTick;
    }

    /** Due tick of the lowest set bit of @p w (a non-zero occupancy
     * word), scanning circularly from the @p base slot. */
    Tick
    slotTick(std::size_t word, std::uint64_t w,
             std::size_t base) const
    {
        const std::size_t idx = (word << 6) +
            static_cast<std::size_t>(std::countr_zero(w));
        return cur_tick_ + ((idx - base) & windowMask);
    }

    std::array<Slot, windowSlots> slots_;
    std::array<std::uint64_t, occupancyWords> occupancy_{};
    std::vector<FarEntry> far_;
    std::size_t pending_ = 0;
    Tick cur_tick_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    TickObserver *obs_ = nullptr;
    Tick obs_period_ = 0;
    Tick obs_next_ = maxTick;
};

} // namespace spp

#endif // SPP_EVENT_EVENT_QUEUE_HH
