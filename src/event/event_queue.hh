/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives a run. Events are type-erased callables
 * scheduled at absolute ticks; same-tick events fire in scheduling
 * order (FIFO), which makes protocol behaviour deterministic.
 */

#ifndef SPP_EVENT_EVENT_QUEUE_HH
#define SPP_EVENT_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace spp {

/**
 * Priority queue of (tick, seq, action) triples. seq breaks ties so
 * that same-tick events run in insertion order.
 *
 * The heap is managed explicitly (std::pop_heap over a vector)
 * rather than through std::priority_queue: extracting an event must
 * fully remove it from the container *before* running it, because
 * the action may schedule new events. Moving out of
 * priority_queue::top() and then calling pop() would make pop()'s
 * sift-down compare entries whose guts the move just stole.
 */
class EventQueue
{
  public:
    using Action = std::function<void()>;

    /**
     * Observer of periodic tick-boundary crossings (telemetry
     * sampling). onBoundary(b) fires the first time execution
     * reaches a tick >= b, *before* the event at that tick runs, so
     * the observer sees simulator state exactly as of the start of
     * the boundary tick. When a single event advances time across
     * several boundaries, one callback fires per boundary (in
     * order), all observing the same quiescent state.
     */
    class TickObserver
    {
      public:
        virtual ~TickObserver() = default;
        virtual void onBoundary(Tick boundary) = 0;
    };

    /** Current simulated time. */
    Tick curTick() const { return cur_tick_; }

    /**
     * Install @p obs, firing every @p period ticks starting at the
     * next multiple of @p period after curTick(); nullptr removes
     * the observer. The observer is polled on the event execution
     * path rather than scheduled as events, so the queue still
     * drains naturally and a disabled (null) observer costs one
     * predictable branch per event.
     */
    void
    setTickObserver(TickObserver *obs, Tick period = 0)
    {
        obs_ = obs;
        if (obs != nullptr) {
            SPP_ASSERT(period > 0,
                       "tick-observer period must be non-zero");
            obs_period_ = period;
            obs_next_ = (cur_tick_ / period + 1) * period;
        }
    }

    bool hasTickObserver() const { return obs_ != nullptr; }

    /** Schedule @p action at absolute time @p when (>= curTick()). */
    void
    schedule(Tick when, Action action)
    {
        SPP_ASSERT(when >= cur_tick_,
                   "schedule in the past: {} < {}", when, cur_tick_);
        queue_.push_back(Entry{when, next_seq_++,
                               std::move(action)});
        std::push_heap(queue_.begin(), queue_.end(), EntryLater{});
    }

    /** Schedule @p action @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Action action)
    {
        schedule(cur_tick_ + delay, std::move(action));
    }

    bool empty() const { return queue_.empty(); }

    std::size_t pending() const { return queue_.size(); }

    /** Execute the single next event; queue must be non-empty. */
    void
    step()
    {
        SPP_ASSERT(!queue_.empty(), "step on empty event queue");
        // pop_heap rotates the minimum entry to the back using only
        // intact entries for its comparisons; once popped off the
        // vector, the action can freely schedule() into the heap.
        std::pop_heap(queue_.begin(), queue_.end(), EntryLater{});
        Entry entry = std::move(queue_.back());
        queue_.pop_back();
        cur_tick_ = entry.when;
        if (obs_ != nullptr) [[unlikely]] {
            while (cur_tick_ >= obs_next_) {
                obs_->onBoundary(obs_next_);
                obs_next_ += obs_period_;
            }
        }
        entry.action();
        ++executed_;
    }

    /**
     * Run until the queue drains or curTick() would exceed @p limit
     * (0 = no limit). @return true if the queue drained.
     */
    bool
    run(Tick limit = 0)
    {
        while (!queue_.empty()) {
            if (limit != 0 && queue_.front().when > limit)
                return false;
            step();
        }
        return true;
    }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Action action;
    };

    /** Heap comparator: true when @p a fires after @p b, so the
     * earliest (when, seq) sits at queue_.front(). */
    struct EntryLater
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a.when != b.when ? a.when > b.when
                                    : a.seq > b.seq;
        }
    };

    /** Min-heap on (when, seq), maintained via std::push_heap /
     * std::pop_heap. */
    std::vector<Entry> queue_;
    Tick cur_tick_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    TickObserver *obs_ = nullptr;
    Tick obs_period_ = 0;
    Tick obs_next_ = maxTick;
};

} // namespace spp

#endif // SPP_EVENT_EVENT_QUEUE_HH
