/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives a run. Events are type-erased callables
 * scheduled at absolute ticks; same-tick events fire in scheduling
 * order (FIFO), which makes protocol behaviour deterministic.
 */

#ifndef SPP_EVENT_EVENT_QUEUE_HH
#define SPP_EVENT_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace spp {

/**
 * Priority queue of (tick, seq, action) triples. seq breaks ties so
 * that same-tick events run in insertion order.
 */
class EventQueue
{
  public:
    using Action = std::function<void()>;

    /** Current simulated time. */
    Tick curTick() const { return cur_tick_; }

    /** Schedule @p action at absolute time @p when (>= curTick()). */
    void
    schedule(Tick when, Action action)
    {
        SPP_ASSERT(when >= cur_tick_,
                   "schedule in the past: {} < {}", when, cur_tick_);
        queue_.push(Entry{when, next_seq_++, std::move(action)});
    }

    /** Schedule @p action @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Action action)
    {
        schedule(cur_tick_ + delay, std::move(action));
    }

    bool empty() const { return queue_.empty(); }

    std::size_t pending() const { return queue_.size(); }

    /** Execute the single next event; queue must be non-empty. */
    void
    step()
    {
        SPP_ASSERT(!queue_.empty(), "step on empty event queue");
        // Move the action out before popping: the action may schedule
        // new events, and pop() would otherwise destroy it mid-flight.
        Entry entry = std::move(const_cast<Entry &>(queue_.top()));
        queue_.pop();
        cur_tick_ = entry.when;
        entry.action();
        ++executed_;
    }

    /**
     * Run until the queue drains or curTick() would exceed @p limit
     * (0 = no limit). @return true if the queue drained.
     */
    bool
    run(Tick limit = 0)
    {
        while (!queue_.empty()) {
            if (limit != 0 && queue_.top().when > limit)
                return false;
            step();
        }
        return true;
    }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Action action;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
        queue_;
    Tick cur_tick_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace spp

#endif // SPP_EVENT_EVENT_QUEUE_HH
