#include "event/event_queue.hh"

// EventQueue is header-only; this translation unit exists so the
// module has an object file and a place for future out-of-line code.
namespace spp {
} // namespace spp
