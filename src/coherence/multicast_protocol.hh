/**
 * @file
 * Multicast snooping with destination-set prediction — the paper's
 * second use case ("In snooping protocols, prediction relaxes the
 * high bandwidth requirements by replacing broadcast with
 * multicast"), in the style of Bilir et al.'s multicast snooping [8].
 *
 * A miss snoops only the *predicted* set of nodes instead of
 * broadcasting. The home tile keeps a memory-side directory used
 * purely for verification and fallback: it checks whether the
 * multicast mask covered every node that had to be contacted, snoops
 * the missed nodes itself when it did not, supplies memory data when
 * no cache owner exists, and tells the requester how many responses
 * to expect. Ordering reuses the per-line home lock (as in the
 * broadcast model); peers behave exactly as broadcast snoop targets.
 *
 * Bandwidth: a correct prediction costs |predicted| + 1 request
 * messages instead of N-1; an empty prediction degrades to full
 * broadcast.
 */

#ifndef SPP_COHERENCE_MULTICAST_PROTOCOL_HH
#define SPP_COHERENCE_MULTICAST_PROTOCOL_HH

#include <unordered_map>

#include "coherence/directory_protocol.hh" // DirEntry
#include "coherence/mem_sys.hh"

namespace spp {

/** Predicted-multicast snooping memory system
 * (Protocol::multicast). */
class MulticastMemSys : public MemSys
{
  public:
    MulticastMemSys(const Config &cfg, EventQueue &eq, Mesh &mesh,
                    DestinationPredictor *predictor);

    std::string dumpOutstanding() const override;

    std::size_t outstandingTxns() const override
    {
        return lingering_.size();
    }

    PoolStats txnPoolStats() const override
    {
        return lingering_.stats();
    }

    /** Multicasts whose mask missed a required node (fallback). */
    std::uint64_t insufficientMasks() const
    {
        return insufficient_masks_;
    }

    void hashState(StateHasher &h) const override;

    /**
     * Late memory-data messages dropped because their transaction had
     * fully retired (an evicted owner's writeback buffer answering a
     * predicted snoop while home memory data is still in flight). The
     * model checker's race-witness tests assert exploration reaches
     * this window.
     */
    std::uint64_t lateDataDrops() const { return late_data_drops_; }

    /** Peek the memory-side verification directory (tests). */
    const DirEntry *
    dirEntry(Addr line) const
    {
        auto it = dir_.find(line);
        return it == dir_.end() ? nullptr : &it->second;
    }

  protected:
    void startMiss(Mshr &m) override;
    void handleMsg(const Msg &m) override;
    void onCompleteMiss(Mshr &m) override;
    void onWriteback(CoreId core, Addr line) override;

  private:
    void launch(Mshr &m);
    void sendSnoop(CoreId src, CoreId dst, const Msg &like);
    void onVerify(const Msg &m);
    void processVerify(const Msg &m);
    void onGrant(const Msg &m);
    void onSnoopResp(const Msg &m);
    void onData(const Msg &m);
    void onAckInv(const Msg &m);
    void onUnblock(const Msg &m);
    void onWbNotice(const Msg &m);
    void onSnoopReq(const Msg &m);
    void checkCompletion(Mshr &m);
    Mshr *txnFor(CoreId core, Addr line, std::uint64_t txn);
    bool maybeResumeCore(Mshr &m);
    void sendMemoryData(Addr line, CoreId requester,
                        std::uint64_t txn, Mesif fill_state);

    /** Find-or-create the entry for @p line in the configured
     * sharer format. */
    DirEntry &dirAt(Addr line);

    /** Memory-side verification directory. */
    std::unordered_map<Addr, DirEntry> dir_;
    SharerLayout sharer_layout_;
    /** Resumed-but-not-drained transactions, keyed by txn id;
     * per-miss churn, so entries come from a pool. */
    PooledMap<Mshr> lingering_;
    std::uint64_t insufficient_masks_ = 0;
    std::uint64_t late_data_drops_ = 0;
};

} // namespace spp

#endif // SPP_COHERENCE_MULTICAST_PROTOCOL_HH
