#include "coherence/directory_protocol.hh"
#include <cstdlib>
#include <cstdio>

namespace spp {

DirectoryMemSys::DirectoryMemSys(const Config &cfg, EventQueue &eq,
                                 Mesh &mesh,
                                 DestinationPredictor *predictor)
    : MemSys(cfg, eq, mesh, predictor),
      sharer_layout_(SharerLayout::fromConfig(cfg))
{
}

DirEntry &
DirectoryMemSys::dirAt(Addr line)
{
    return dir_
        .try_emplace(line, DirEntry{SharerTracker(sharer_layout_),
                                    invalidCore})
        .first->second;
}

// ---------------------------------------------------------------------
// Requester side
// ---------------------------------------------------------------------

void
DirectoryMemSys::startMiss(Mshr &m)
{
    Msg req;
    req.type = m.isWrite ? MsgType::reqWrite : MsgType::reqRead;
    req.line = m.line;
    req.src = m.core;
    req.dst = map_.homeNode(m.line);
    req.requester = m.core;
    req.txn = m.txn;
    req.isWrite = m.isWrite;
    req.hadCopy = m.hadLine;
    req.predicted = m.out.pred.valid();
    req.set = m.out.pred.targets;
    sendMsg(req);

    if (m.out.pred.valid()) {
        for (CoreId t : m.out.pred.targets) {
            Msg p;
            p.type = m.isWrite ? MsgType::predWrite : MsgType::predRead;
            p.line = m.line;
            p.src = m.core;
            p.dst = t;
            p.requester = m.core;
            p.txn = m.txn;
            p.isWrite = m.isWrite;
            p.predicted = true;
            sendMsg(p);
            ++m.predRespPending;
        }
    }
}

void
DirectoryMemSys::onData(const Msg &msg)
{
    Mshr *m = mshrFor(msg.dst, msg.line);
    SPP_ASSERT(m, "data for missing MSHR at core {}", msg.dst);
    absorbData(*m, msg);
    if (msg.predicted) {
        SPP_ASSERT(m->predRespPending > 0, "unexpected pred response");
        --m->predRespPending;
    }
    checkCompletion(*m);
}

void
DirectoryMemSys::onAckInv(const Msg &msg)
{
    Mshr *m = mshrFor(msg.dst, msg.line);
    SPP_ASSERT(m, "ackInv for missing MSHR at core {}", msg.dst);
    m->ackedBy.set(msg.src);
    if (msg.hadCopy)
        m->out.servicedBy.set(msg.src);
    if (msg.ownerAck) {
        // The previous owner handed us (possibly dirty) data. This
        // can race a memory data message for the same miss (e.g. the
        // directory serviced the write from memory while the owner's
        // copy sat un-noticed in its writeback buffer): absorb keeps
        // whichever version is freshest instead of asserting.
        absorbData(*m, msg);
    }
    if (msg.predicted) {
        SPP_ASSERT(m->predRespPending > 0, "unexpected pred response");
        --m->predRespPending;
    }
    checkCompletion(*m);
}

void
DirectoryMemSys::onNack(const Msg &msg)
{
    Mshr *m = mshrFor(msg.dst, msg.line);
    SPP_ASSERT(m, "nack for missing MSHR at core {}", msg.dst);
    m->nackedBy.set(msg.src);
    // Nacks only answer predicted requests today, but guard on the
    // flag like onData/onAckInv do instead of asserting blindly: a
    // future non-predicted nack path must not corrupt the predicted
    // response count.
    if (msg.predicted) {
        SPP_ASSERT(m->predRespPending > 0, "unexpected nack");
        --m->predRespPending;
    }

    if (m->isWrite) {
        maybeRetryNacked(*m);
    } else if (m->predRespPending == 0 && !m->dataReceived &&
               !m->predFailedSent) {
        // Every predicted target refused and no data is on the way
        // from the directory: escalate so the home services the read.
        m->predFailedSent = true;
        Msg f;
        f.type = MsgType::predFailed;
        f.line = m->line;
        f.src = m->core;
        f.dst = map_.homeNode(m->line);
        f.requester = m->core;
        f.txn = m->txn;
        sendMsg(f);
    }
    checkCompletion(*m);
}

void
DirectoryMemSys::onGrant(const Msg &msg)
{
    Mshr *m = mshrFor(msg.dst, msg.line);
    SPP_ASSERT(m, "grant for missing MSHR at core {}", msg.dst);
    SPP_ASSERT(!m->grantReceived, "duplicate grant");
    m->grantReceived = true;
    m->mustAck = msg.set;
    m->needData = msg.needData;
    maybeRetryNacked(*m);
    checkCompletion(*m);
}

void
DirectoryMemSys::maybeRetryNacked(Mshr &m)
{
    if (!m.isWrite || !m.grantReceived)
        return;
    // Predicted targets that Nacked but are in the authoritative ack
    // set must be re-invalidated directly by the requester.
    const CoreSet to_retry = (m.nackedBy & m.mustAck) - m.retried;
    for (CoreId t : to_retry) {
        m.retried.set(t);
        Msg inv;
        inv.type = MsgType::inv;
        inv.line = m.line;
        inv.src = m.core;
        inv.dst = t;
        inv.requester = m.core;
        inv.txn = m.txn;
        sendMsg(inv);
    }
}

void
DirectoryMemSys::checkCompletion(Mshr &m)
{
    if (m.predRespPending != 0)
        return;
    if (m.isWrite) {
        if (!m.grantReceived || !m.ackedBy.contains(m.mustAck))
            return;
        if (m.needData && !m.dataReceived)
            return;
    } else {
        if (!m.dataReceived)
            return;
    }
    if (m.dataFromPeer && !m.predFailedSent && m.out.pred.valid() &&
        m.out.pred.targets.test(m.dataSource)) {
        ++indirections_avoided_;
    }
    completeMiss(m);
}

void
DirectoryMemSys::onCompleteMiss(Mshr &m)
{
    if (cfg_.injectBug == 3 && m.txn % 61 == 0)
        return; // Checker self-test fault: lost unblock leaks the lock.
    Msg u;
    u.type = MsgType::unblock;
    u.line = m.line;
    u.src = m.core;
    u.dst = map_.homeNode(m.line);
    u.requester = m.core;
    u.txn = m.txn;
    u.becameOwner = !m.isWrite;
    sendMsg(u);
}

// ---------------------------------------------------------------------
// Home directory side
// ---------------------------------------------------------------------

void
DirectoryMemSys::onRequest(const Msg &m)
{
    const TxnKey key{m.requester, m.txn};
    // Park the request in a message-pool slot while it waits for the
    // line lock and the directory lookup: a Msg carries a multi-word
    // CoreSet, so capturing it by value would overflow the inline
    // action storage (and reintroduce per-request heap allocation).
    Msg *pending = msg_pool_.acquire();
    *pending = m;
    auto process = [this, pending]() {
        // Directory lookup latency before any action.
        eq_.scheduleAfter(cfg_.dirLatency, [this, pending]() {
            processRequest(*pending);
            msg_pool_.release(pending);
        });
    };
    if (locks_.acquireOrQueue(m.line, key, process))
        process();
}

void
DirectoryMemSys::processRequest(const Msg &m)
{
    DirTxn &t = txns_.findOrInsert(m.line);
    t.key = TxnKey{m.requester, m.txn};
    t.waitingPeer = false;
    if (m.isWrite)
        processWrite(m);
    else
        processRead(m);
}

void
DirectoryMemSys::sendMemoryData(Addr line, CoreId requester,
                                Mesif fill_state)
{
    eq_.scheduleAfter(memAccessLatency(line), [this, line, requester,
                                        fill_state]() {
        Msg d;
        d.type = MsgType::data;
        d.line = line;
        d.src = map_.homeNode(line);
        d.dst = requester;
        d.requester = requester;
        d.fromMemory = true;
        d.fillState = fill_state;
        d.version = memVersion(line);
        if (cfg_.injectBug == 2 && d.version > 0)
            --d.version; // Checker self-test fault: stale memory data.
        sendMsg(d);
    });
}

void
DirectoryMemSys::serviceReadFromDir(const Msg &m, DirEntry &e)
{
    if (e.owner != invalidCore) {
        SPP_ASSERT(e.owner != m.requester,
                   "read miss by core {} on a line it owns",
                   m.requester);
        Msg f;
        f.type = MsgType::fwdRead;
        f.line = m.line;
        f.src = map_.homeNode(m.line);
        f.dst = e.owner;
        f.requester = m.requester;
        f.txn = m.txn;
        sendMsg(f);
    } else {
        const bool solo = e.sharers.others(m.requester).empty();
        sendMemoryData(m.line, m.requester,
                       solo ? Mesif::exclusive
                            : cfg_.cleanSharedFill());
        e.sharers.set(m.requester);
        e.owner = solo || cfg_.enableFState ? m.requester
                                            : invalidCore;
        return;
    }
    e.sharers.set(m.requester);
    // MESIF: the requester becomes the new Forwarding owner. Plain
    // MESI has no clean owner once the line is shared.
    e.owner = cfg_.enableFState ? m.requester : invalidCore;
}

void
DirectoryMemSys::processRead(const Msg &m)
{
    DirEntry &e = dirAt(m.line);
    const TxnKey key{m.requester, m.txn};
    if (m.predicted && e.owner != invalidCore &&
        e.owner != m.requester && m.set.test(e.owner) &&
        !takeEarlyPredFailure(m.line, key)) {
        // The predicted owner services the miss directly; the final
        // sharing state is applied when the requester unblocks. The
        // unblock may even have arrived already (a nearby owner can
        // satisfy the miss before the directory's lookup finishes).
        if (takeEarly(early_unblock_, m.line, key)) {
            e.sharers.set(m.requester);
            e.owner = cfg_.enableFState ? m.requester : invalidCore;
            txns_.erase(m.line);
            locks_.release(m.line, key);
            return;
        }
        txns_.findOrInsert(m.line).waitingPeer = true;
        return;
    }
    serviceReadFromDir(m, e);
}

bool
DirectoryMemSys::takeEarly(
    std::unordered_map<Addr, std::vector<TxnKey>> &map, Addr line,
    const TxnKey &key)
{
    auto it = map.find(line);
    if (it == map.end())
        return false;
    auto &keys = it->second;
    for (auto k = keys.begin(); k != keys.end(); ++k) {
        if (*k == key) {
            keys.erase(k);
            if (keys.empty())
                map.erase(it);
            return true;
        }
    }
    return false;
}

bool
DirectoryMemSys::takeEarlyPredFailure(Addr line, const TxnKey &key)
{
    return takeEarly(early_pred_failed_, line, key);
}

void
DirectoryMemSys::processWrite(const Msg &m)
{
    DirEntry &e = dirAt(m.line);
    CoreSet must_ack = e.sharers.others(m.requester);
    if (cfg_.injectBug == 1) {
        // Checker self-test fault: silently forget one sharer, as a
        // real lost-invalidation bug would. Its stale copy survives
        // the write and trips the SWMR/freshness scan.
        for (CoreId t : must_ack) {
            must_ack.reset(t);
            break;
        }
    }
    const bool upgrade = m.hadCopy && e.sharers.test(m.requester);
    const bool need_data = !upgrade;
    const CoreSet predicted = m.predicted ? m.set : CoreSet{};

    // Invalidate unpredicted sharers from the directory; predicted
    // ones are (normally) handled by the direct predicted requests.
    for (CoreId t : must_ack - predicted) {
        Msg inv;
        inv.type = MsgType::inv;
        inv.line = m.line;
        inv.src = map_.homeNode(m.line);
        inv.dst = t;
        inv.requester = m.requester;
        inv.txn = m.txn;
        sendMsg(inv);
    }

    if (need_data) {
        if (e.owner == invalidCore) {
            sendMemoryData(m.line, m.requester, Mesif::modified);
        } else if (e.owner == m.requester) {
            SPP_PANIC("write miss by core {} on a line it owns",
                      m.requester);
        }
        // Otherwise the owner is in must_ack: either its predicted
        // invalidation or the directory's inv above returns the data
        // with ownerAck.
    }

    Msg g;
    g.type = MsgType::grant;
    g.line = m.line;
    g.src = map_.homeNode(m.line);
    g.dst = m.requester;
    g.requester = m.requester;
    g.txn = m.txn;
    g.set = must_ack;
    g.needData = need_data;
    sendMsg(g);

    e.sharers.setSingle(m.requester);
    e.owner = m.requester;
}

void
DirectoryMemSys::onPredFailed(const Msg &m)
{
    const TxnKey key{m.requester, m.txn};
    DirTxn *t = txns_.find(m.line);
    if (t == nullptr || !(t->key == key)) {
        // The request itself is still queued behind another
        // transaction; remember the failure for processRead.
        early_pred_failed_[m.line].push_back(key);
        return;
    }
    if (!t->waitingPeer)
        return; // The directory path is already servicing the read.
    t->waitingPeer = false;
    serviceReadFromDir(m, dirAt(m.line));
}

void
DirectoryMemSys::onUnblock(const Msg &m)
{
    const TxnKey key{m.requester, m.txn};
    DirTxn *t = txns_.find(m.line);
    if (t == nullptr) {
        // The requester finished (via the predicted peer path)
        // before the directory's lookup of its request completed;
        // processRead picks the record up and releases.
        SPP_ASSERT(m.becameOwner,
                   "early unblock for a write transaction");
        early_unblock_[m.line].push_back(key);
        return;
    }
    SPP_ASSERT(t->key == key,
               "unblock for a foreign transaction");
    if (t->waitingPeer && m.becameOwner) {
        // Predicted read serviced entirely by the peer path: record
        // the requester as the new F holder now (plain MESI keeps no
        // clean owner).
        DirEntry &e = dirAt(m.line);
        e.sharers.set(m.requester);
        e.owner = cfg_.enableFState ? m.requester : invalidCore;
    }
    txns_.erase(m.line);
    // Drop a stale early predFailed record, if any (the read was
    // serviced by the directory path despite the escalation).
    takeEarly(early_pred_failed_, m.line, key);
    locks_.release(m.line, key);
}

void
DirectoryMemSys::onWbNotice(const Msg &m)
{
    onWriteback(m.requester, m.line);
    if (m.ownerAck)
        depositMemVersion(m.line, m.version);
    applyWriteback(m.requester, m.line);
    locks_.release(m.line, TxnKey{m.requester, m.txn});
}

void
DirectoryMemSys::onWriteback(CoreId core, Addr line)
{
    auto it = dir_.find(line);
    if (it == dir_.end())
        return;
    it->second.sharers.reset(core);
    if (it->second.owner == core)
        it->second.owner = invalidCore;
}

void
DirectoryMemSys::onDirUpdate(const Msg &m)
{
    // Dirty-data deposit from an owner that downgraded on a read
    // forward; carries no sharing-state change.
    depositMemVersion(m.line, m.version);
}

// ---------------------------------------------------------------------
// Peer side
// ---------------------------------------------------------------------

void
DirectoryMemSys::onFwdRead(const Msg &m)
{
    const CoreId self = m.dst;
    countSnoop();
    trainExternalAt(self, m.line, m.requester, false);
    PeerView v = peerView(self, m.line);
    SPP_ASSERT(v.valid && canForward(v.state),
               "fwdRead at core {} without a forwardable copy", self);

    const Tick lat = cfg_.l2TagLatency + cfg_.l2DataLatency;
    if (v.state == Mesif::modified) {
        // Downgrade writes the dirty line back to the home tile.
        Msg dep;
        dep.type = MsgType::dirUpdate;
        dep.line = m.line;
        dep.src = self;
        dep.dst = map_.homeNode(m.line);
        dep.requester = m.requester;
        dep.version = v.version;
        sendMsgAfter(lat, dep);
    }
    downgradeToShared(self, m.line);

    Msg d;
    d.type = MsgType::data;
    d.line = m.line;
    d.src = self;
    d.dst = m.requester;
    d.requester = m.requester;
    d.txn = m.txn;
    d.fillState = cfg_.cleanSharedFill();
    d.version = v.version;
    sendMsgAfter(lat, d);
}

void
DirectoryMemSys::onInv(const Msg &m)
{
    const CoreId self = m.dst;
    countSnoop();
    trainExternalAt(self, m.line, m.requester, true);
    PeerView v = peerView(self, m.line);

    Msg a;
    a.type = MsgType::ackInv;
    a.line = m.line;
    a.src = self;
    a.dst = m.requester;
    a.requester = m.requester;
    a.txn = m.txn;
    a.hadCopy = v.valid;
    Tick lat = cfg_.l2TagLatency;
    if (v.valid && canForward(v.state)) {
        a.ownerAck = true;
        a.version = v.version;
        lat += cfg_.l2DataLatency;
    }
    if (v.valid)
        invalidateAt(self, m.line);
    sendMsgAfter(lat, a);
}

void
DirectoryMemSys::onPredRequest(const Msg &m)
{
    const CoreId self = m.dst;
    const TxnKey key{m.requester, m.txn};

    auto send_nack = [this, &m, self]() {
        Msg n;
        n.type = MsgType::nack;
        n.line = m.line;
        n.src = self;
        n.dst = m.requester;
        n.requester = m.requester;
        n.txn = m.txn;
        // A nack always answers a predicted request; carry the flag
        // so the requester decrements predRespPending (onNack guards
        // on it, like the other prediction responses).
        n.predicted = true;
        sendMsgAfter(cfg_.l2TagLatency, n);
    };

    // Accept only when no *other* transaction is in flight on this
    // line (races resolve to the baseline directory path).
    if (locks_.isLockedByOther(m.line, key)) {
        send_nack();
        return;
    }
    countSnoop();
    PeerView v = peerView(self, m.line);
    if (v.noticed) {
        // The copy is logically gone (its writeback has been applied
        // at the home); answering from it would race the directory's
        // own service of this miss.
        send_nack();
        return;
    }

    if (m.type == MsgType::predRead) {
        if (!v.valid || !canForward(v.state)) {
            send_nack();
            return;
        }
        // Reserve the line for this transaction (the requester's
        // directory request joins it on arrival).
        const bool ok = locks_.tryAcquire(m.line, key);
        SPP_ASSERT(ok, "pred reservation raced");
        trainExternalAt(self, m.line, m.requester, false);
        const Tick lat = cfg_.l2TagLatency + cfg_.l2DataLatency;
        if (v.state == Mesif::modified) {
            Msg dep;
            dep.type = MsgType::dirUpdate;
            dep.line = m.line;
            dep.src = self;
            dep.dst = map_.homeNode(m.line);
            dep.requester = m.requester;
            dep.version = v.version;
            sendMsgAfter(lat, dep);
        }
        downgradeToShared(self, m.line);
        Msg d;
        d.type = MsgType::data;
        d.line = m.line;
        d.src = self;
        d.dst = m.requester;
        d.requester = m.requester;
        d.txn = m.txn;
        d.predicted = true;
        d.fillState = cfg_.cleanSharedFill();
        d.version = v.version;
        sendMsgAfter(lat, d);
        return;
    }

    // predWrite.
    if (!v.valid) {
        send_nack();
        return;
    }
    const bool ok = locks_.tryAcquire(m.line, key);
    SPP_ASSERT(ok, "pred reservation raced");
    trainExternalAt(self, m.line, m.requester, true);
    Msg a;
    a.type = MsgType::ackInv;
    a.line = m.line;
    a.src = self;
    a.dst = m.requester;
    a.requester = m.requester;
    a.txn = m.txn;
    a.predicted = true;
    a.hadCopy = true;
    Tick lat = cfg_.l2TagLatency;
    if (canForward(v.state)) {
        a.ownerAck = true;
        a.version = v.version;
        lat += cfg_.l2DataLatency;
    }
    invalidateAt(self, m.line);
    sendMsgAfter(lat, a);
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

void
DirectoryMemSys::handleMsg(const Msg &m)
{
    if (const char *dbg = std::getenv("SPP_DEBUG_LINE")) {
        if (m.line == static_cast<Addr>(std::atoll(dbg))) {
            // lint: allow(std-io) — SPP_DEBUG_LINE opt-in tracer.
            std::fprintf(stderr,
                         "[%8lu] %-10s line %lu %u->%u req=%u txn=%lu "
                         "pred=%d set=%s\n",
                         static_cast<unsigned long>(eq_.curTick()),
                         toString(m.type),
                         static_cast<unsigned long>(m.line), m.src,
                         m.dst, m.requester,
                         static_cast<unsigned long>(m.txn),
                         m.predicted, m.set.toString().c_str());
        }
    }
    switch (m.type) {
      case MsgType::reqRead:
      case MsgType::reqWrite:
        onRequest(m);
        break;
      case MsgType::predRead:
      case MsgType::predWrite:
        onPredRequest(m);
        break;
      case MsgType::predFailed:
        onPredFailed(m);
        break;
      case MsgType::fwdRead:
        onFwdRead(m);
        break;
      case MsgType::inv:
        onInv(m);
        break;
      case MsgType::data:
        onData(m);
        break;
      case MsgType::ackInv:
        onAckInv(m);
        break;
      case MsgType::nack:
        onNack(m);
        break;
      case MsgType::grant:
        onGrant(m);
        break;
      case MsgType::unblock:
        onUnblock(m);
        break;
      case MsgType::wbNotice:
        onWbNotice(m);
        break;
      case MsgType::wbAck:
        finishWriteback(m.dst, m.line);
        break;
      case MsgType::dirUpdate:
        onDirUpdate(m);
        break;
      default:
        SPP_PANIC("directory protocol got {}", toString(m.type));
    }
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

const DirEntry *
DirectoryMemSys::dirEntry(Addr line) const
{
    auto it = dir_.find(line);
    return it == dir_.end() ? nullptr : &it->second;
}

void
DirectoryMemSys::checkDirectory() const
{
    // lint: allow(unordered-iter) — order-independent assertion scan.
    for (const auto &[line, e] : dir_) {
        if (e.owner != invalidCore) {
            SPP_ASSERT(e.sharers.test(e.owner),
                       "owner {} of line {} not in sharer set",
                       e.owner, line);
            PeerView v = peerView(e.owner, line);
            SPP_ASSERT(v.valid && canForward(v.state),
                       "directory owner {} of line {} holds {}",
                       e.owner, line,
                       v.valid ? toString(v.state) : "nothing");
        }
        // Every actual holder must be a recorded sharer (the reverse
        // need not hold: silent Shared evictions leave stale bits).
        for (unsigned c = 0; c < n_cores_; ++c) {
            PeerView v = peerView(c, line);
            SPP_ASSERT(!v.valid || e.sharers.test(c),
                       "core {} holds line {} unknown to directory",
                       c, line);
            if (v.valid && canForward(v.state)) {
                SPP_ASSERT(e.owner == c,
                           "core {} holds {} of line {} but owner "
                           "is {}", c, toString(v.state), line,
                           e.owner);
            }
        }
    }
}

void
DirectoryMemSys::hashState(StateHasher &h) const
{
    MemSys::hashState(h);
    // Sharer trackers hash by behavior: members() + overflow is
    // injective up to behavioral equivalence in every format (an
    // overflowed limited entry acts the same whatever its retained
    // pointers).
    // lint: allow(unordered-iter) — commutative fold.
    for (const auto &[line, e] : dir_) {
        StateHasher sub;
        sub.mix(line);
        sub.mix(e.owner);
        sub.mix(e.sharers.overflowed());
        hashCoreSet(sub, e.sharers.members());
        h.mixUnordered(sub.value());
    }
    txns_.forEach([&](std::uint64_t line, const DirTxn &t) {
        StateHasher sub;
        sub.mix(line);
        sub.mix(t.key.requester);
        sub.mix(t.key.txn);
        sub.mix(t.waitingPeer);
        h.mixUnordered(sub.value());
    });
    // lint: allow(unordered-iter) — commutative fold.
    for (const auto &[line, keys] : early_pred_failed_) {
        StateHasher sub;
        sub.mix(line);
        for (const TxnKey &k : keys) {
            sub.mix(k.requester);
            sub.mix(k.txn);
        }
        h.mixUnordered(sub.value());
    }
    // lint: allow(unordered-iter) — commutative fold.
    for (const auto &[line, keys] : early_unblock_) {
        StateHasher sub;
        sub.mix(~line);
        for (const TxnKey &k : keys) {
            sub.mix(k.requester);
            sub.mix(k.txn);
        }
        h.mixUnordered(sub.value());
    }
}

} // namespace spp
