/**
 * @file
 * Coherence protocol message types.
 *
 * Messages travel between tiles over the Mesh; each carries enough
 * context for the receiving handler (requester-side MSHR, directory
 * slice, or peer cache controller) to act without global state.
 */

#ifndef SPP_COHERENCE_MESSAGES_HH
#define SPP_COHERENCE_MESSAGES_HH

#include <cstdint>

#include "common/core_set.hh"
#include "common/types.hh"
#include "mem/mesif.hh"

namespace spp {

enum class MsgType : std::uint8_t
{
    // Requester -> directory.
    reqRead,        ///< Read miss.
    reqWrite,       ///< Write miss / upgrade (set carries predicted).
    unblock,        ///< Transaction complete; directory may proceed.
    wbNotice,       ///< Eviction of an owned (M/E/F) line.
    wbAck,          ///< Home applied the writeback; buffer may drain.

    // Requester -> predicted peer (Section 4.5).
    predRead,       ///< Predicted cache-to-cache read request.
    predWrite,      ///< Predicted invalidate/ownership request.

    // Directory -> peer.
    fwdRead,        ///< Forward read to owner.
    fwdWrite,       ///< Forward ownership transfer to owner.
    inv,            ///< Invalidate a sharer.

    // Peer / memory -> requester.
    data,           ///< Data response (cache-to-cache or memory).
    ackInv,         ///< Invalidation acknowledgment.
    nack,           ///< Predicted request could not be satisfied.

    // Directory -> requester.
    grant,          ///< Write completion info (acks to expect, etc.).

    // Peer -> directory (prediction extension).
    dirUpdate,      ///< New sharing state after a predicted transfer.

    // Requester -> directory (prediction extension).
    predFailed,     ///< All predicted targets Nacked; service normally.

    // Broadcast protocol.
    snoopReq,       ///< Broadcast snoop request to a peer.
    snoopResp,      ///< Snoop result back to the requester.
    cancel,         ///< Owner hit: cancel the speculative mem fetch.
};

const char *toString(MsgType t);

/** True for message types that carry a full cache line. */
constexpr bool
carriesData(MsgType t)
{
    return t == MsgType::data || t == MsgType::wbNotice;
}

/** One protocol message. */
struct Msg
{
    MsgType type = MsgType::reqRead;
    Addr line = 0;              ///< Line-aligned address.
    CoreId src = invalidCore;   ///< Sending tile.
    CoreId dst = invalidCore;   ///< Receiving tile.
    CoreId requester = invalidCore; ///< Original requester.
    std::uint64_t txn = 0;      ///< Requester transaction number.

    /** Predicted destinations / sharers / ack-senders, by context. */
    CoreSet set;

    bool isWrite = false;       ///< Original request wants ownership.
    bool predicted = false;     ///< Request carried a prediction.
    bool fromMemory = false;    ///< Data originated at memory.
    bool ownerAck = false;      ///< ackInv also transferred ownership.
    bool becameOwner = false;   ///< unblock: requester is now F owner.
    bool hadCopy = false;       ///< snoopResp/ackInv: peer held line;
                                ///< requests: requester held line.
    bool needData = false;      ///< grant: requester must await data.
    bool sufficient = false;    ///< grant: prediction was sufficient.

    /** Fill state granted with a data response. */
    Mesif fillState = Mesif::invalid;

    /** Number of invalidation acks the requester must collect. */
    unsigned ackCount = 0;

    /** Version of the line carried by data (correctness checking). */
    std::uint64_t version = 0;
};

} // namespace spp

#endif // SPP_COHERENCE_MESSAGES_HH
