#include "coherence/messages.hh"

namespace spp {

const char *
toString(MsgType t)
{
    switch (t) {
      case MsgType::reqRead:   return "reqRead";
      case MsgType::reqWrite:  return "reqWrite";
      case MsgType::unblock:   return "unblock";
      case MsgType::wbNotice:  return "wbNotice";
      case MsgType::wbAck:     return "wbAck";
      case MsgType::predRead:  return "predRead";
      case MsgType::predWrite: return "predWrite";
      case MsgType::fwdRead:   return "fwdRead";
      case MsgType::fwdWrite:  return "fwdWrite";
      case MsgType::inv:       return "inv";
      case MsgType::data:      return "data";
      case MsgType::ackInv:    return "ackInv";
      case MsgType::nack:      return "nack";
      case MsgType::grant:     return "grant";
      case MsgType::dirUpdate: return "dirUpdate";
      case MsgType::predFailed: return "predFailed";
      case MsgType::snoopReq:  return "snoopReq";
      case MsgType::snoopResp: return "snoopResp";
      case MsgType::cancel:    return "cancel";
    }
    return "?";
}

} // namespace spp
