#include "coherence/mem_sys.hh"

#include "check/protocol_checker.hh"

namespace spp {

MemSys::MemSys(const Config &cfg, EventQueue &eq, Mesh &mesh,
               DestinationPredictor *predictor)
    : cfg_(cfg), eq_(eq), mesh_(mesh), map_(cfg),
      predictor_(predictor), n_cores_(cfg.numCores)
{
    if (cfg.enableSharingFilter)
        filter_.emplace(n_cores_, cfg.filterRegionBytes);
    if (cfg.enableDram)
        dram_.emplace(cfg_, map_);
    l1_.reserve(n_cores_);
    l2_.reserve(n_cores_);
    wb_buffer_.resize(n_cores_);
    mshr_.resize(n_cores_);
    core_stats_.resize(n_cores_);
    for (unsigned c = 0; c < n_cores_; ++c) {
        l1_.push_back(std::make_unique<CacheArray>(
            cfg.l1Bytes, cfg.l1Assoc, cfg.lineBytes));
        l2_.push_back(std::make_unique<CacheArray>(
            cfg.l2Bytes, cfg.l2Assoc, cfg.lineBytes));
    }
}

MemSys::~MemSys() = default;

// ---------------------------------------------------------------------
// Local access path
// ---------------------------------------------------------------------

void
MemSys::access(CoreId core, Addr addr, bool is_write, Pc pc, DoneFn done)
{
    SPP_ASSERT(core < n_cores_, "access from core {}", core);
    SPP_ASSERT(!mshr_[core].has_value(),
               "core {} issued a second outstanding access", core);
    ++stats_.accesses;

    const Addr line = map_.lineAddr(addr);
    const Tick issue = eq_.curTick();

    // A re-reference to a line sitting in the writeback buffer stalls
    // until the writeback drains, then restarts as a normal access.
    if (WbEntry *wb = wb_buffer_[core].find(line)) {
        DoneFn cb = std::move(done);
        wb->stalled.push_back(
            [this, core, addr, is_write, pc, cb = std::move(cb)]() {
                access(core, addr, is_write, pc, cb);
            });
        return;
    }

    // L1 lookup.
    CacheLine *l1_line = l1_[core]->lookup(line);
    if (l1_line && (!is_write || isWritable(l1_line->state))) {
        const bool promote = is_write &&
            l1_line->state == Mesif::exclusive;
        std::uint64_t version = l1_line->version;
        if (is_write) {
            version = nextVersion();
            l1_line->state = Mesif::modified;
            l1_line->version = version;
            CacheLine *l2_line = l2_[core]->lookup(line);
            SPP_ASSERT(l2_line && isWritable(l2_line->state),
                       "L1 writable without L2 writable (core {})",
                       core);
            l2_line->state = Mesif::modified;
            l2_line->version = version;
            (void)promote;
        }
        ++stats_.l1Hits;
        eq_.scheduleAfter(cfg_.l1Latency,
            [this, done = std::move(done), is_write, issue, version]() {
                AccessOutcome out;
                out.l1Hit = true;
                out.isWrite = is_write;
                out.issueTick = issue;
                out.completeTick = eq_.curTick();
                out.dataVersion = version;
                stats_.hitLatency.sample(
                    static_cast<double>(out.latency()));
                done(out);
            });
        return;
    }

    eq_.scheduleAfter(cfg_.l1Latency,
        [this, core, addr, is_write, pc, done = std::move(done),
         issue]() mutable {
            accessL2(core, addr, is_write, pc, std::move(done), issue);
        });
}

void
MemSys::accessL2(CoreId core, Addr addr, bool is_write, Pc pc,
                 DoneFn done, Tick issue_tick)
{
    const Addr line = map_.lineAddr(addr);
    CacheLine *l2_line = l2_[core]->lookup(line);

    // L2 hit (including a silent E->M promotion on writes).
    if (l2_line && (!is_write || isWritable(l2_line->state))) {
        std::uint64_t version = l2_line->version;
        if (is_write) {
            version = nextVersion();
            l2_line->state = Mesif::modified;
            l2_line->version = version;
        }
        // Refill L1 for subsequent accesses.
        CacheLine *l1_line = l1_[core]->lookup(line);
        if (!l1_line) {
            CacheLine victim;
            l1_line = l1_[core]->allocate(line, victim);
        }
        l1_line->state = l2_line->state;
        l1_line->version = version;
        l1_line->lastPc = l2_line->lastPc;

        ++stats_.l2Hits;
        const Tick lat = cfg_.l2TagLatency + cfg_.l2DataLatency;
        eq_.scheduleAfter(lat,
            [this, done = std::move(done), is_write, issue_tick,
             version]() {
                AccessOutcome out;
                out.l2Hit = true;
                out.isWrite = is_write;
                out.issueTick = issue_tick;
                out.completeTick = eq_.curTick();
                out.dataVersion = version;
                stats_.hitLatency.sample(
                    static_cast<double>(out.latency()));
                done(out);
            });
        return;
    }

    // Miss (or write-upgrade). The transaction starts after the tag
    // lookup determined the miss.
    const bool had_line = l2_line != nullptr;
    eq_.scheduleAfter(cfg_.l2TagLatency,
        [this, core, line, is_write, pc, done = std::move(done),
         issue_tick, had_line]() mutable {
            Mshr &m = mshr_[core].emplace();
            m.core = core;
            m.line = line;
            m.isWrite = is_write;
            m.hadLine = had_line;
            m.pc = pc;
            m.txn = ++txn_counter_;
            m.issueTick = issue_tick;
            m.done = std::move(done);
            m.out.isWrite = is_write;
            m.out.upgrade = had_line && is_write;
            m.out.issueTick = issue_tick;
            m.needData = !(is_write && had_line);

            ++stats_.misses;
            ++core_stats_[core].misses;
            if (m.out.upgrade)
                ++stats_.upgradeMisses;

            if (predictor_ &&
                (cfg_.protocol == Protocol::predicted ||
                 cfg_.protocol == Protocol::multicast)) {
                if (filter_ && !filter_->allowPrediction(core, line)) {
                    // Region never observed shared: skip the
                    // prediction action (Section 5.3 filtering).
                    ++stats_.predictionsSuppressed;
                } else {
                    SelfProfiler::Scope prof(self_prof_,
                                             ProfScope::predictor);
                    PredictionQuery q;
                    q.core = core;
                    q.line = line;
                    q.macroBlock = map_.macroBlock(line);
                    q.pc = pc;
                    q.isWrite = is_write;
                    Prediction p = predictor_->predict(q);
                    p.targets.reset(core); // Never predict self.
                    if (p.valid()) {
                        m.out.pred = p;
                        ++stats_.predictionsAttempted;
                        stats_.predictedTargets.sample(
                            static_cast<double>(p.targets.count()));
                    }
                }
            }
            startMiss(m);
        });
}

// ---------------------------------------------------------------------
// Fills, evictions and writebacks
// ---------------------------------------------------------------------

void
MemSys::fillLine(CoreId core, Addr line, Mesif state, Pc pc,
                 std::uint64_t version)
{
    CacheLine *l2_line = l2_[core]->lookup(line);
    if (!l2_line) {
        CacheLine victim;
        l2_line = l2_[core]->allocate(line, victim);
        if (isValid(victim.state)) {
            // Inclusion: drop the victim from L1 as well.
            l1_[core]->invalidate(victim.tag);
            if (canForward(victim.state)) {
                WbEntry &wb =
                    wb_buffer_[core].findOrInsert(victim.tag);
                wb.state = victim.state;
                wb.version = victim.version;
                wb.lastPc = victim.lastPc;
                startWriteback(core, victim.tag);
            }
            // Shared victims are dropped silently; the directory's
            // sharer bit goes stale, which later invalidations
            // tolerate (acks are sent regardless of a hit).
        }
    }
    l2_line->state = state;
    l2_line->lastPc = pc;
    l2_line->version = version;

    CacheLine *l1_line = l1_[core]->lookup(line);
    if (!l1_line) {
        CacheLine l1_victim;
        l1_line = l1_[core]->allocate(line, l1_victim);
    }
    l1_line->state = state;
    l1_line->lastPc = pc;
    l1_line->version = version;
}

void
MemSys::startWriteback(CoreId core, Addr line)
{
    ++outstanding_wb_;
    ++stats_.writebacks;
    WbEntry &wb = wb_buffer_[core].findOrInsert(line);
    wb.txn = ++txn_counter_;
    const TxnKey key{core, wb.txn};

    auto do_notice = [this, core, line, key]() {
        WbEntry *entry = wb_buffer_[core].find(line);
        if (entry == nullptr || entry->txn != key.txn) {
            // The entry was invalidated (or replaced) while the
            // writeback waited for the line lock: nothing to do.
            locks_.release(line, key);
            --outstanding_wb_;
            return;
        }
        if (!canForward(entry->state)) {
            // Downgraded to Shared while waiting; drop silently.
            std::vector<EventQueue::Action> stalled =
                std::move(entry->stalled);
            wb_buffer_[core].erase(line);
            locks_.release(line, key);
            --outstanding_wb_;
            for (auto &resume : stalled)
                eq_.scheduleAfter(0, std::move(resume));
            return;
        }
        entry->noticed = true;
        Msg m;
        m.type = MsgType::wbNotice;
        m.line = line;
        m.src = core;
        m.dst = map_.homeNode(line);
        m.requester = core;
        m.txn = key.txn;
        m.ownerAck = entry->state == Mesif::modified; // Carries data.
        m.version = entry->version;
        sendMsg(m);
    };

    if (locks_.acquireOrQueue(line, key, do_notice))
        do_notice();
}

void
MemSys::applyWriteback(CoreId core, Addr line)
{
    // Called by the subclass's wbNotice handler at the home tile,
    // after directory-state cleanup (onWriteback).
    Msg ack;
    ack.type = MsgType::wbAck;
    ack.line = line;
    ack.src = map_.homeNode(line);
    ack.dst = core;
    ack.requester = core;
    sendMsg(ack);
}

void
MemSys::finishWriteback(CoreId core, Addr line)
{
    // The home released the line lock when it applied the wbNotice;
    // here the buffer entry just drains.
    WbEntry *entry = wb_buffer_[core].find(line);
    SPP_ASSERT(entry != nullptr,
               "wbAck for missing buffer entry at core {}", core);
    std::vector<EventQueue::Action> stalled =
        std::move(entry->stalled);
    wb_buffer_[core].erase(line);
    --outstanding_wb_;
    for (auto &resume : stalled)
        eq_.scheduleAfter(0, std::move(resume));
}

// ---------------------------------------------------------------------
// Peer-side helpers
// ---------------------------------------------------------------------

MemSys::PeerView
MemSys::peerView(CoreId core, Addr line) const
{
    PeerView v;
    if (const CacheLine *l = l2_[core]->peek(line)) {
        v.valid = true;
        v.state = l->state;
        v.version = l->version;
        v.lastPc = l->lastPc;
        return v;
    }
    const WbEntry *wb = wb_buffer_[core].find(line);
    if (wb != nullptr && isValid(wb->state)) {
        v.valid = true;
        v.inBuffer = true;
        v.noticed = wb->noticed;
        v.state = wb->state;
        v.version = wb->version;
        v.lastPc = wb->lastPc;
    }
    return v;
}

void
MemSys::downgradeToShared(CoreId core, Addr line)
{
    if (CacheLine *l = l2_[core]->find(line)) {
        l->state = Mesif::shared;
        if (CacheLine *l1l = l1_[core]->find(line))
            l1l->state = Mesif::shared;
        return;
    }
    if (WbEntry *wb = wb_buffer_[core].find(line))
        wb->state = Mesif::shared;
}

void
MemSys::invalidateAt(CoreId core, Addr line)
{
    l2_[core]->invalidate(line);
    l1_[core]->invalidate(line);
    if (WbEntry *wb = wb_buffer_[core].find(line)) {
        // A noticed entry's writeback has already been applied at the
        // home (the invalidating transaction could only start after
        // the wb released the line lock); draining it as invalid is
        // safe. An un-noticed entry's queued writeback transaction
        // observes the cancellation when it runs.
        wb->state = Mesif::invalid;
        // Keep the entry so the queued writeback transaction can
        // observe the cancellation; stalled accesses resume when the
        // wb transaction cleans up or, earlier, right now (the line
        // is simply gone, so the access can restart).
        std::vector<EventQueue::Action> stalled =
            std::move(wb->stalled);
        for (auto &resume : stalled)
            eq_.scheduleAfter(0, std::move(resume));
    }
}

void
MemSys::trainExternalAt(CoreId observer, Addr line, CoreId requester,
                        bool is_write)
{
    if (filter_)
        filter_->markShared(observer, line);
    if (!predictor_)
        return;
    PeerView v = peerView(observer, line);
    if (!v.valid)
        return;
    SelfProfiler::Scope prof(self_prof_, ProfScope::predictor);
    predictor_->trainExternal(observer, line, map_.macroBlock(line),
                              v.lastPc, requester, is_write);
}

// ---------------------------------------------------------------------
// Completion
// ---------------------------------------------------------------------

MemSys::Mshr *
MemSys::mshrFor(CoreId core, Addr line)
{
    if (!mshr_[core].has_value() || mshr_[core]->line != line)
        return nullptr;
    return &*mshr_[core];
}

bool
MemSys::absorbData(Mshr &m, const Msg &msg)
{
    const bool keep = !m.dataReceived || msg.version > m.version ||
        (msg.version == m.version && !msg.fromMemory &&
         !m.dataFromPeer);
    m.dataReceived = true;
    if (!keep)
        return false;
    m.version = msg.version;
    if (msg.fillState != Mesif::invalid)
        m.fillState = msg.fillState;
    if (msg.fromMemory) {
        m.dataFromPeer = false;
        m.dataSource = invalidCore;
    } else {
        m.dataFromPeer = true;
        m.dataSource = msg.src;
        m.out.servicedBy.set(msg.src);
    }
    return true;
}

void
MemSys::completeMiss(Mshr &m)
{
    finishOutcome(m);
    retireMshr(m);
}

void
MemSys::retireMshr(Mshr &m)
{
    onCompleteMiss(m);
    DoneFn done = std::move(m.done);
    AccessOutcome result = m.out;
    mshr_[m.core].reset();
    if (done)
        done(result);
}

void
MemSys::finishOutcome(Mshr &m)
{
    AccessOutcome &out = m.out;
    out.completeTick = eq_.curTick();
    out.communicating = !out.servicedBy.empty();
    out.offChip = m.dataReceived && !m.dataFromPeer;

    // Install / promote the line.
    if (m.isWrite) {
        const std::uint64_t version = nextVersion();
        if (CacheLine *l = l2_[m.core]->lookup(m.line)) {
            l->state = Mesif::modified;
            l->version = version;
            l->lastPc = m.pc;
            CacheLine *l1l = l1_[m.core]->lookup(m.line);
            if (!l1l) {
                CacheLine v;
                l1l = l1_[m.core]->allocate(m.line, v);
            }
            l1l->state = Mesif::modified;
            l1l->version = version;
            l1l->lastPc = m.pc;
        } else {
            fillLine(m.core, m.line, Mesif::modified, m.pc, version);
        }
        out.dataVersion = version;
    } else {
        SPP_ASSERT(m.dataReceived, "read miss completed without data");
        const Mesif fill = m.fillState == Mesif::invalid
            ? Mesif::forwarding : m.fillState;
        fillLine(m.core, m.line, fill, m.pc, m.version);
        out.dataVersion = m.version;
    }

    // Prediction sufficiency (Section 5.2: the predicted set must be
    // a superset of the targets that had to be contacted).
    std::uint64_t waste_bytes = 0;
    if (out.pred.valid()) {
        bool sufficient = false;
        if (out.communicating) {
            if (m.isWrite) {
                sufficient = out.pred.targets.contains(m.mustAck) &&
                    m.retried.empty() &&
                    (!m.needData ||
                     (m.dataFromPeer &&
                      out.pred.targets.test(m.dataSource)));
            } else {
                sufficient = m.dataFromPeer && !m.predFailedSent &&
                    out.pred.targets.test(m.dataSource);
            }
        }
        out.predSufficient = sufficient;
        // Attribute wasted predicted-request bandwidth: every target
        // that did not end up servicing the miss cost a request plus
        // a Nack/Ack round trip.
        const unsigned wasted = out.communicating
            ? (out.pred.targets - out.servicedBy).count()
            : out.pred.targets.count();
        waste_bytes = static_cast<std::uint64_t>(wasted) *
            (2ull * cfg_.ctrlPacketBytes);
        if (out.communicating)
            stats_.predWasteBytesComm += waste_bytes;
        else
            stats_.predWasteBytesNonComm += waste_bytes;
        if (out.communicating) {
            ++stats_.predictionsOnCommunicating;
            if (sufficient) {
                ++stats_.predictionsSufficient;
                stats_.sufficientBySource[
                    static_cast<std::size_t>(out.pred.source)]++;
            }
        } else {
            ++stats_.predictionsOnNonComm;
        }
    }

    // The sharing filter learns from observed communication.
    if (filter_ && out.communicating)
        filter_->markShared(m.core, m.line);

    // Statistics.
    const double lat = static_cast<double>(out.latency());
    stats_.missLatency.sample(lat);
    if (out.communicating) {
        ++stats_.communicatingMisses;
        ++core_stats_[m.core].commMisses;
        stats_.commMissLatency.sample(lat);
        stats_.actualTargets.sample(
            static_cast<double>(out.servicedBy.count()));
    } else {
        stats_.nonCommMissLatency.sample(lat);
    }
    if (out.offChip)
        ++stats_.offChipMisses;

    // Predictor training and feedback.
    if (predictor_) {
        SelfProfiler::Scope prof(self_prof_, ProfScope::predictor);
        PredictionQuery q;
        q.core = m.core;
        q.line = m.line;
        q.macroBlock = map_.macroBlock(m.line);
        q.pc = m.pc;
        q.isWrite = m.isWrite;
        if (out.communicating)
            predictor_->trainResponse(q, out.servicedBy);
        predictor_->feedback(m.core, out.pred, out.communicating,
                             out.predSufficient);
    }

    if (attribution_ != nullptr) [[unlikely]]
        attribution_->onMissResolved(m.core, m.line, out, waste_bytes);
}

// ---------------------------------------------------------------------
// Message plumbing
// ---------------------------------------------------------------------

unsigned
MemSys::msgBytes(const Msg &m) const
{
    switch (m.type) {
      case MsgType::data:
      case MsgType::dirUpdate:
        return cfg_.dataPacketBytes;
      case MsgType::wbNotice:
        return m.ownerAck ? cfg_.dataPacketBytes : cfg_.ctrlPacketBytes;
      case MsgType::ackInv:
        return m.ownerAck ? cfg_.dataPacketBytes : cfg_.ctrlPacketBytes;
      default:
        return cfg_.ctrlPacketBytes;
    }
}

TrafficClass
MemSys::msgClass(const Msg &m) const
{
    switch (m.type) {
      case MsgType::reqRead:
      case MsgType::reqWrite:
      case MsgType::snoopReq:
        return TrafficClass::request;
      case MsgType::predRead:
      case MsgType::predWrite:
        return TrafficClass::predRequest;
      case MsgType::fwdRead:
      case MsgType::inv:
        return TrafficClass::forward;
      case MsgType::data:
        return TrafficClass::data;
      case MsgType::wbNotice:
        return m.ownerAck ? TrafficClass::data : TrafficClass::dirUpdate;
      case MsgType::dirUpdate:
        return TrafficClass::dirUpdate;
      case MsgType::ackInv:
        return m.ownerAck ? TrafficClass::data : TrafficClass::response;
      default:
        return TrafficClass::response;
    }
}

void
MemSys::sendMsg(const Msg &m)
{
    Msg *slot = msg_pool_.acquire();
    *slot = m;
    sendPooled(slot);
}

void
MemSys::sendPooled(Msg *slot)
{
    if (checker_) [[unlikely]]
        checker_->onSend(*slot);
    Packet pkt;
    pkt.src = slot->src;
    pkt.dst = slot->dst;
    pkt.bytes = msgBytes(*slot);
    pkt.cls = msgClass(*slot);
    if (attribution_ != nullptr) [[unlikely]] {
        // Attribute traffic to the core whose request caused it;
        // messages without a requester (e.g. evictions) fall back to
        // the sender.
        attribution_->onMessageSent(
            slot->requester != invalidCore ? slot->requester
                                           : slot->src,
            slot->line, pkt.bytes);
    }
    // The delivery closure carries only the slot pointer, so it fits
    // any action inline. The slot is released after the handler
    // returns: handlers receive a const reference into the slot and
    // must copy anything they keep (they do — queued continuations
    // capture the Msg by value); sends they issue take other slots.
    // checker_ is re-read at delivery time so detaching mid-flight
    // is safe; the checker sees the pre-handler state of the system.
    const Tick arrive = mesh_.inject(pkt);
    Mesh::DeliverFn deliver = [this, slot]() {
        if (checker_) [[unlikely]]
            checker_->onDeliver(*slot);
        {
            SelfProfiler::Scope prof(self_prof_,
                                     ProfScope::protocol);
            handleMsg(*slot);
        }
        msg_pool_.release(slot);
    };
    if (delivery_scheduler_ != nullptr) [[unlikely]] {
        delivery_scheduler_->onMessage(arrive, *slot,
                                       std::move(deliver));
    } else {
        eq_.schedule(arrive, std::move(deliver));
    }
}

void
MemSys::sendMsgAfter(Tick extra_delay, const Msg &m)
{
    // Acquire the slot up front so the deferred send is a pointer
    // capture, not a second Msg copy through the closure.
    Msg *slot = msg_pool_.acquire();
    *slot = m;
    eq_.scheduleAfter(extra_delay,
                      [this, slot]() { sendPooled(slot); });
}

Tick
MemSys::memAccessLatency(Addr line)
{
    if (dram_)
        return dram_->accessLatency(line, eq_.curTick());
    return cfg_.memLatency;
}

std::uint64_t
MemSys::memVersion(Addr line) const
{
    auto it = mem_version_.find(line);
    return it == mem_version_.end() ? 0 : it->second;
}

void
MemSys::depositMemVersion(Addr line, std::uint64_t version)
{
    std::uint64_t &v = mem_version_[line];
    if (version > v)
        v = version;
}

// ---------------------------------------------------------------------
// Model-checker state hashing
// ---------------------------------------------------------------------

void
MemSys::hashCoreSet(StateHasher &h, const CoreSet &s)
{
    // Members in ascending order, then a terminator so e.g. {1} into
    // one set and {2} into the next cannot alias {1,2} into the first.
    for (CoreId c : s)
        h.mix(c);
    h.mix(~std::uint64_t{0});
}

void
MemSys::hashMshr(StateHasher &h, const Mshr &m)
{
    h.mix(m.core);
    h.mix(m.line);
    h.mix(std::uint64_t{m.isWrite} |
          std::uint64_t{m.hadLine} << 1 |
          std::uint64_t{m.needData} << 2 |
          std::uint64_t{m.dataReceived} << 3 |
          std::uint64_t{m.dataFromPeer} << 4 |
          std::uint64_t{m.grantReceived} << 5 |
          std::uint64_t{m.predFailedSent} << 6 |
          std::uint64_t{m.peerHadCopy} << 7 |
          std::uint64_t{m.ordered} << 8 |
          std::uint64_t{m.coreResumed} << 9);
    h.mix(m.txn);
    hashCoreSet(h, m.mustAck);
    hashCoreSet(h, m.ackedBy);
    hashCoreSet(h, m.nackedBy);
    hashCoreSet(h, m.retried);
    h.mix(m.predRespPending);
    h.mix(m.peerResponses);
    h.mix(m.dataSource);
    h.mix(static_cast<std::uint64_t>(m.fillState));
    h.mix(m.version);
}

void
MemSys::hashState(StateHasher &h) const
{
    for (unsigned c = 0; c < n_cores_; ++c) {
        StateHasher core;
        core.mix(c);
        // Cache arrays enumerate valid lines in set/way order, which
        // is a function of contents only — safe to fold ordered.
        // lastPc is deliberately excluded: it feeds only predictor
        // training (excluded by design, see hashState's declaration).
        l2_[c]->forEachValid([&](const CacheLine &l) {
            core.mix(l.tag);
            core.mix(static_cast<std::uint64_t>(l.state));
            core.mix(l.version);
        });
        l1_[c]->forEachValid([&](const CacheLine &l) {
            core.mix(l.tag);
            core.mix(static_cast<std::uint64_t>(l.state));
            core.mix(l.version);
        });
        // PooledMap iteration order depends on allocation history, so
        // writeback-buffer entries fold commutatively.
        wb_buffer_[c].forEach([&](Addr line, const WbEntry &wb) {
            StateHasher sub;
            sub.mix(line);
            sub.mix(static_cast<std::uint64_t>(wb.state));
            sub.mix(wb.version);
            sub.mix(wb.txn);
            sub.mix(wb.noticed);
            sub.mix(wb.stalled.size());
            core.mixUnordered(sub.value());
        });
        core.mix(mshr_[c].has_value());
        if (mshr_[c].has_value())
            hashMshr(core, *mshr_[c]);
        h.mix(core.value());
    }
    locks_.hashInto(h);
    // lint: allow(unordered-iter) — commutative fold.
    for (const auto &[line, v] : mem_version_) {
        StateHasher sub;
        sub.mix(line);
        sub.mix(v);
        h.mixUnordered(sub.value());
    }
    h.mix(version_counter_);
    h.mix(txn_counter_);
    h.mix(outstanding_wb_);
}

// ---------------------------------------------------------------------
// Drain / invariant checking
// ---------------------------------------------------------------------

bool
MemSys::drained() const
{
    if (outstanding_wb_ != 0 || locks_.lockedLines() != 0)
        return false;
    for (const auto &m : mshr_)
        if (m.has_value())
            return false;
    return true;
}

std::string
MemSys::dumpOutstanding() const
{
    std::string out;
    for (unsigned c = 0; c < n_cores_; ++c) {
        if (mshr_[c].has_value()) {
            const Mshr &m = *mshr_[c];
            out += strfmt(
                "core {} txn {} line {} write={} hadLine={} data={} "
                "grant={} acks={}/{} predPending={} nacked={} "
                "predFailedSent={} pred={}\n",
                c, m.txn, m.line, m.isWrite, m.hadLine,
                m.dataReceived, m.grantReceived, m.ackedBy.count(),
                m.mustAck.count(), m.predRespPending,
                m.nackedBy.toString(), m.predFailedSent,
                m.out.pred.targets.toString());
        }
        wb_buffer_[c].forEach([&](Addr line, const WbEntry &wb) {
            out += strfmt("core {} wb line {} state {} noticed={} "
                          "stalled={}\n",
                          c, line, toString(wb.state), wb.noticed,
                          wb.stalled.size());
        });
    }
    locks_.dump([&](Addr line, const TxnKey &holder,
                    std::size_t waiters) {
        out += strfmt("lock line {} held by core {} txn {} "
                      "({} waiters)\n",
                      line, holder.requester, holder.txn, waiters);
    });
    return out;
}

void
MemSys::checkCoherence() const
{
    SPP_ASSERT(drained(), "coherence check requires a drained system");

    // Collect every line with at least one valid copy.
    std::unordered_map<Addr, std::vector<std::pair<CoreId, CacheLine>>>
        copies;
    for (unsigned c = 0; c < n_cores_; ++c) {
        l2_[c]->forEachValid([&](const CacheLine &line) {
            copies[line.tag].emplace_back(c, line);
        });
    }

    for (const auto &[line, holders] : copies) {
        unsigned owners = 0;
        unsigned dirty = 0;
        for (const auto &[core, cl] : holders) {
            if (canForward(cl.state))
                ++owners;
            if (isDirty(cl.state))
                ++dirty;
            if (cl.state == Mesif::exclusive ||
                cl.state == Mesif::modified) {
                SPP_ASSERT(holders.size() == 1,
                           "line {} in {} at core {} with {} copies",
                           line, toString(cl.state), core,
                           holders.size());
            }
        }
        SPP_ASSERT(owners <= 1, "line {} has {} forwardable copies",
                   line, owners);
        // Clean copies must agree with each other and with memory.
        if (dirty == 0) {
            const std::uint64_t mem_v = memVersion(line);
            for (const auto &[core, cl] : holders) {
                SPP_ASSERT(cl.version == mem_v,
                           "stale clean copy of line {} at core {}: "
                           "{} vs mem {}",
                           line, core, cl.version, mem_v);
            }
        } else {
            for (const auto &[core, cl] : holders) {
                SPP_ASSERT(cl.version >= memVersion(line),
                           "dirty copy of line {} at core {} older "
                           "than memory", line, core);
            }
        }
    }

    // L1 inclusion in L2 with matching state.
    for (unsigned c = 0; c < n_cores_; ++c) {
        l1_[c]->forEachValid([&](const CacheLine &l1l) {
            const CacheLine *l2l = l2_[c]->peek(l1l.tag);
            SPP_ASSERT(l2l, "L1 line {} at core {} not in L2",
                       l1l.tag, c);
            SPP_ASSERT(l2l->state == l1l.state &&
                       l2l->version == l1l.version,
                       "L1/L2 mismatch for line {} at core {}",
                       l1l.tag, c);
        });
    }
}

} // namespace spp
