/**
 * @file
 * Per-line transaction serialization at the home tile.
 *
 * All three coherence schemes serialize transactions on the same
 * cache line through its home node:
 *
 *  - The directory protocol uses the lock as its natural blocking
 *    MSHR: one transaction per line at a time, later requests queue.
 *  - The broadcast protocol uses it to model the total order an
 *    ordered interconnect provides (the paper's assumption).
 *  - The prediction extension uses it to resolve races between
 *    predicted direct requests and in-flight transactions: a peer
 *    accepts a predicted request only if the line is free or already
 *    locked by the same transaction; otherwise it Nacks and the
 *    requester falls back to the directory path (Section 4.5's
 *    "recover from mispredictions").
 *
 * The lock itself is a zero-latency model artifact standing in for
 * the handshake/retry machinery a real implementation would use; all
 * *observable* costs (messages, hops, serialization, queueing time)
 * are still paid through the mesh.
 */

#ifndef SPP_COHERENCE_LINE_LOCK_HH
#define SPP_COHERENCE_LINE_LOCK_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "event/event_queue.hh"

namespace spp {

/** Identity of one coherence transaction. */
struct TxnKey
{
    CoreId requester = invalidCore;
    std::uint64_t txn = 0;

    bool operator==(const TxnKey &) const = default;
};

/**
 * Home-side per-line lock table with a FIFO wait queue.
 */
class LineLockTable
{
  public:
    /** Queued-waiter resume closure; inline storage, no per-waiter
     * allocation (cf. EventQueue::Action). */
    using Continuation = EventQueue::Action;

    /** Is @p line currently locked (by anyone)? */
    bool
    isLocked(Addr line) const
    {
        return locks_.contains(line);
    }

    /** Is @p line locked by a transaction other than @p key? */
    bool
    isLockedByOther(Addr line, const TxnKey &key) const
    {
        auto it = locks_.find(line);
        return it != locks_.end() && !(it->second.holder == key);
    }

    /**
     * Try to acquire @p line for @p key.
     * @return true if the caller now holds the lock (either newly
     * acquired or already held by the same transaction); false if the
     * line is held by another transaction, in which case @p waiter is
     * queued and will run when the lock becomes available *and has
     * been re-acquired for it*.
     */
    bool
    acquireOrQueue(Addr line, const TxnKey &key, Continuation waiter)
    {
        auto [it, inserted] = locks_.try_emplace(line, Entry{key, {}});
        if (inserted || it->second.holder == key)
            return true;
        it->second.waiters.push_back(
            Waiter{key, std::move(waiter)});
        return false;
    }

    /**
     * Acquire without queuing; @return false if held by another.
     * Used by peers deciding whether to accept a predicted request.
     */
    bool
    tryAcquire(Addr line, const TxnKey &key)
    {
        auto [it, inserted] = locks_.try_emplace(line, Entry{key, {}});
        return inserted || it->second.holder == key;
    }

    /**
     * Release @p line, which must be held by @p key. If waiters are
     * queued, the head waiter becomes the new holder and its
     * continuation runs synchronously (so no other acquire can slip
     * in between release and hand-off).
     */
    void
    release(Addr line, const TxnKey &key)
    {
        auto it = locks_.find(line);
        SPP_ASSERT(it != locks_.end() && it->second.holder == key,
                   "release of line {} not held by core {} txn {}",
                   line, key.requester, key.txn);
        Entry &e = it->second;
        if (!e.hasWaiters()) {
            locks_.erase(it);
            return;
        }
        Waiter next = std::move(e.waiters[e.head]);
        if (++e.head == e.waiters.size()) {
            // Drained: keep the vector's capacity for the next
            // contention burst on this line.
            e.waiters.clear();
            e.head = 0;
        }
        e.holder = next.key;
        next.resume();
    }

    /** Number of lines currently locked (for drain checks). */
    std::size_t lockedLines() const { return locks_.size(); }

    /**
     * Fold holders and ordered wait queues into @p h (model-checker
     * state hashing). Map iteration order must not leak into the
     * digest, so lines fold commutatively; each line's queue folds in
     * FIFO order because hand-off order is part of the state.
     */
    void
    hashInto(StateHasher &h) const
    {
        // lint: allow(unordered-iter) — commutative fold.
        for (const auto &[line, e] : locks_) {
            StateHasher sub;
            sub.mix(line);
            sub.mix(e.holder.requester);
            sub.mix(e.holder.txn);
            for (std::size_t i = e.head; i < e.waiters.size(); ++i) {
                sub.mix(e.waiters[i].key.requester);
                sub.mix(e.waiters[i].key.txn);
            }
            h.mixUnordered(sub.value());
        }
    }

    /** Describe all held locks (deadlock diagnostics). */
    template <typename Out>
    void
    dump(Out &&emit) const
    {
        // lint: allow(unordered-iter) — diagnostic dump only.
        for (const auto &[line, entry] : locks_)
            emit(line, entry.holder, entry.waiterCount());
    }

  private:
    struct Waiter
    {
        TxnKey key;
        Continuation resume;
    };

    /** FIFO wait queue drained via a head cursor (vector instead of
     * deque: no allocation on construction, capacity reuse). */
    struct Entry
    {
        TxnKey holder;
        std::vector<Waiter> waiters;
        std::size_t head = 0;

        bool hasWaiters() const { return head < waiters.size(); }
        std::size_t waiterCount() const
        {
            return waiters.size() - head;
        }
    };

    std::unordered_map<Addr, Entry> locks_;
};

} // namespace spp

#endif // SPP_COHERENCE_LINE_LOCK_HH
