#include "coherence/multicast_protocol.hh"

namespace spp {

MulticastMemSys::MulticastMemSys(const Config &cfg, EventQueue &eq,
                                 Mesh &mesh,
                                 DestinationPredictor *predictor)
    : MemSys(cfg, eq, mesh, predictor),
      sharer_layout_(SharerLayout::fromConfig(cfg))
{
}

DirEntry &
MulticastMemSys::dirAt(Addr line)
{
    return dir_
        .try_emplace(line, DirEntry{SharerTracker(sharer_layout_),
                                    invalidCore})
        .first->second;
}

// ---------------------------------------------------------------------
// Requester side
// ---------------------------------------------------------------------

void
MulticastMemSys::startMiss(Mshr &m)
{
    const TxnKey key{m.core, m.txn};
    const CoreId core = m.core;
    const Addr line = m.line;
    auto go = [this, core, line]() {
        Mshr *mm = mshrFor(core, line);
        SPP_ASSERT(mm, "multicast start without MSHR");
        launch(*mm);
    };
    if (locks_.acquireOrQueue(line, key, go))
        go();
}

void
MulticastMemSys::launch(Mshr &m)
{
    // Snoop the predicted set; an empty prediction degrades to the
    // full broadcast.
    CoreSet targets = m.out.pred.targets;
    targets.reset(m.core);
    if (targets.empty()) {
        targets = CoreSet::all(n_cores_);
        targets.reset(m.core);
    }

    Msg like;
    like.line = m.line;
    like.requester = m.core;
    like.txn = m.txn;
    like.isWrite = m.isWrite;
    for (CoreId t : targets)
        sendSnoop(m.core, t, like);

    // Verification request to the home's memory-side directory.
    Msg v;
    v.type = m.isWrite ? MsgType::reqWrite : MsgType::reqRead;
    v.line = m.line;
    v.src = m.core;
    v.dst = map_.homeNode(m.line);
    v.requester = m.core;
    v.txn = m.txn;
    v.isWrite = m.isWrite;
    v.hadCopy = m.hadLine;
    v.predicted = m.out.pred.valid();
    v.set = targets;
    sendMsg(v);
}

void
MulticastMemSys::sendSnoop(CoreId src, CoreId dst, const Msg &like)
{
    Msg s = like;
    s.type = MsgType::snoopReq;
    s.src = src;
    s.dst = dst;
    sendMsg(s);
}

MulticastMemSys::Mshr *
MulticastMemSys::txnFor(CoreId core, Addr line, std::uint64_t txn)
{
    if (Mshr *m = mshrFor(core, line)) {
        if (m->txn == txn)
            return m;
    }
    return lingering_.find(txn);
}

void
MulticastMemSys::onData(const Msg &msg)
{
    Mshr *m = txnFor(msg.dst, msg.line, msg.txn);
    if (!m) {
        // The home serves memory data when its directory lists no
        // owner, but an evicted owner's writeback buffer answers
        // snoops until its wbAck arrives; the transaction can then
        // complete on the (fresher) buffer copy plus all snoop
        // responses before the slower memory data lands. Late memory
        // data for a retired transaction is dropped; late *peer*
        // data would mean lost coherence state.
        SPP_ASSERT(msg.fromMemory,
                   "multicast peer data for missing txn at core {}",
                   msg.dst);
        ++late_data_drops_;
        return;
    }
    // Duplicates are reachable here for the same reason: the buffer
    // copy and home memory data race when the transaction is still
    // live. Absorb keeps the freshest version.
    absorbData(*m, msg);
    if (!msg.fromMemory)
        ++m->peerResponses;
    checkCompletion(*m);
}

void
MulticastMemSys::onAckInv(const Msg &msg)
{
    Mshr *m = txnFor(msg.dst, msg.line, msg.txn);
    SPP_ASSERT(m, "multicast ackInv for missing txn");
    ++m->peerResponses;
    if (msg.hadCopy)
        m->out.servicedBy.set(msg.src);
    if (msg.ownerAck)
        absorbData(*m, msg);
    checkCompletion(*m);
}

void
MulticastMemSys::onSnoopResp(const Msg &msg)
{
    Mshr *m = txnFor(msg.dst, msg.line, msg.txn);
    SPP_ASSERT(m, "multicast snoopResp for missing txn");
    ++m->peerResponses;
    checkCompletion(*m);
}

void
MulticastMemSys::onGrant(const Msg &msg)
{
    Mshr *m = txnFor(msg.dst, msg.line, msg.txn);
    SPP_ASSERT(m, "multicast grant for missing txn");
    SPP_ASSERT(!m->grantReceived, "duplicate multicast grant");
    m->grantReceived = true;
    m->mustAck = msg.set; // Every node that was (or will be) snooped.
    if (m->isWrite)
        m->needData = msg.needData;
    checkCompletion(*m);
}

bool
MulticastMemSys::maybeResumeCore(Mshr &m)
{
    if (m.coreResumed)
        return false;
    if (!m.isWrite) {
        // Reads resume on data (memory data is authoritative: the
        // home consults its directory before fetching).
        if (!m.dataReceived)
            return false;
    } else {
        // Writes resume once the home ordered/verified the request
        // and the data (if any) arrived.
        if (!m.grantReceived || (m.needData && !m.dataReceived))
            return false;
    }
    m.coreResumed = true;
    finishOutcome(m);
    const CoreId core = m.core;
    const std::uint64_t txn = m.txn;
    Mshr &moved = lingering_.insert(txn);
    moved = std::move(m);
    mshr_[core].reset();
    DoneFn done = std::move(moved.done);
    moved.done = nullptr;
    done(moved.out);
    return true;
}

void
MulticastMemSys::checkCompletion(Mshr &m)
{
    const CoreId core = m.core;
    const Addr line = m.line;
    const std::uint64_t txn = m.txn;
    maybeResumeCore(m);
    Mshr *mm = txnFor(core, line, txn);
    SPP_ASSERT(mm, "multicast txn lost during completion");
    if (!mm->coreResumed || !mm->grantReceived)
        return;
    if (mm->peerResponses < mm->mustAck.count())
        return;
    Msg u;
    u.type = MsgType::unblock;
    u.line = line;
    u.src = core;
    u.dst = map_.homeNode(line);
    u.requester = core;
    u.txn = txn;
    sendMsg(u);
    lingering_.erase(txn);
}

void
MulticastMemSys::onCompleteMiss(Mshr &m)
{
    (void)m; // Retirement handled by checkCompletion's lingering path.
}

// ---------------------------------------------------------------------
// Home (memory-side directory) side
// ---------------------------------------------------------------------

void
MulticastMemSys::onVerify(const Msg &m)
{
    // Pool-slot capture: a Msg (with its multi-word CoreSet) exceeds
    // the inline action capacity, so the deferred lookup carries a
    // slot pointer instead of the message itself.
    Msg *pending = msg_pool_.acquire();
    *pending = m;
    eq_.scheduleAfter(cfg_.dirLatency, [this, pending]() {
        processVerify(*pending);
        msg_pool_.release(pending);
    });
}

void
MulticastMemSys::sendMemoryData(Addr line, CoreId requester,
                                std::uint64_t txn, Mesif fill_state)
{
    eq_.scheduleAfter(memAccessLatency(line), [this, line, requester, txn,
                                        fill_state]() {
        Msg d;
        d.type = MsgType::data;
        d.line = line;
        d.src = map_.homeNode(line);
        d.dst = requester;
        d.requester = requester;
        d.txn = txn;
        d.fromMemory = true;
        d.fillState = fill_state;
        d.version = memVersion(line);
        sendMsg(d);
    });
}

void
MulticastMemSys::processVerify(const Msg &m)
{
    DirEntry &e = dirAt(m.line);
    const CoreId home = map_.homeNode(m.line);
    CoreSet snooped = m.set;
    bool need_data = true;

    if (m.isWrite) {
        const CoreSet required = e.sharers.others(m.requester);
        const CoreSet missing = required - m.set;
        for (CoreId t : missing)
            sendSnoop(home, t, m);
        snooped |= missing;
        if (!missing.empty())
            ++insufficient_masks_;

        need_data = !(m.hadCopy && e.sharers.test(m.requester));
        if (need_data && e.owner == invalidCore)
            sendMemoryData(m.line, m.requester, m.txn,
                           Mesif::modified);
        // An existing owner is in `required`, hence snooped; its
        // ackInv carries the data.

        e.sharers.setSingle(m.requester);
        e.owner = m.requester;
    } else {
        if (e.owner != invalidCore && e.owner != m.requester) {
            if (!m.set.test(e.owner)) {
                sendSnoop(home, e.owner, m);
                snooped.set(e.owner);
                ++insufficient_masks_;
            }
        } else {
            const bool solo = e.sharers.others(m.requester).empty();
            sendMemoryData(m.line, m.requester, m.txn,
                           solo ? Mesif::exclusive
                                : cfg_.cleanSharedFill());
            e.sharers.set(m.requester);
            e.owner = solo || cfg_.enableFState ? m.requester
                                                : invalidCore;
            goto granted;
        }
        e.sharers.set(m.requester);
        e.owner = cfg_.enableFState ? m.requester : invalidCore;
    }

  granted:
    Msg g;
    g.type = MsgType::grant;
    g.line = m.line;
    g.src = home;
    g.dst = m.requester;
    g.requester = m.requester;
    g.txn = m.txn;
    g.set = snooped;
    g.needData = need_data;
    sendMsg(g);
}

void
MulticastMemSys::onUnblock(const Msg &m)
{
    locks_.release(m.line, TxnKey{m.requester, m.txn});
}

void
MulticastMemSys::onWbNotice(const Msg &m)
{
    onWriteback(m.requester, m.line);
    if (m.ownerAck)
        depositMemVersion(m.line, m.version);
    applyWriteback(m.requester, m.line);
    locks_.release(m.line, TxnKey{m.requester, m.txn});
}

void
MulticastMemSys::onWriteback(CoreId core, Addr line)
{
    auto it = dir_.find(line);
    if (it == dir_.end())
        return;
    it->second.sharers.reset(core);
    if (it->second.owner == core)
        it->second.owner = invalidCore;
}

// ---------------------------------------------------------------------
// Peer side
// ---------------------------------------------------------------------

void
MulticastMemSys::onSnoopReq(const Msg &m)
{
    const CoreId self = m.dst;
    const CoreId home = map_.homeNode(m.line);
    countSnoop();
    trainExternalAt(self, m.line, m.requester, m.isWrite);
    PeerView v = peerView(self, m.line);

    if (!m.isWrite) {
        if (v.valid && canForward(v.state)) {
            const Tick lat = cfg_.l2TagLatency + cfg_.l2DataLatency;
            if (v.state == Mesif::modified) {
                Msg dep;
                dep.type = MsgType::dirUpdate;
                dep.line = m.line;
                dep.src = self;
                dep.dst = home;
                dep.requester = m.requester;
                dep.txn = m.txn;
                dep.version = v.version;
                sendMsgAfter(lat, dep);
            }
            downgradeToShared(self, m.line);
            Msg d;
            d.type = MsgType::data;
            d.line = m.line;
            d.src = self;
            d.dst = m.requester;
            d.requester = m.requester;
            d.txn = m.txn;
            d.fillState = cfg_.cleanSharedFill();
            d.version = v.version;
            sendMsgAfter(lat, d);
        } else {
            Msg r;
            r.type = MsgType::snoopResp;
            r.line = m.line;
            r.src = self;
            r.dst = m.requester;
            r.requester = m.requester;
            r.txn = m.txn;
            r.hadCopy = v.valid;
            sendMsgAfter(cfg_.l2TagLatency, r);
        }
        return;
    }

    if (v.valid) {
        Msg a;
        a.type = MsgType::ackInv;
        a.line = m.line;
        a.src = self;
        a.dst = m.requester;
        a.requester = m.requester;
        a.txn = m.txn;
        a.hadCopy = true;
        Tick lat = cfg_.l2TagLatency;
        if (canForward(v.state)) {
            a.ownerAck = true;
            a.version = v.version;
            lat += cfg_.l2DataLatency;
        }
        invalidateAt(self, m.line);
        if (Mshr *own = mshrFor(self, m.line)) {
            if (own->isWrite)
                own->needData = true;
        }
        sendMsgAfter(lat, a);
    } else {
        Msg r;
        r.type = MsgType::snoopResp;
        r.line = m.line;
        r.src = self;
        r.dst = m.requester;
        r.requester = m.requester;
        r.txn = m.txn;
        r.hadCopy = false;
        sendMsgAfter(cfg_.l2TagLatency, r);
    }
}

// ---------------------------------------------------------------------
// Dispatch / diagnostics
// ---------------------------------------------------------------------

void
MulticastMemSys::handleMsg(const Msg &m)
{
    switch (m.type) {
      case MsgType::reqRead:
      case MsgType::reqWrite:
        onVerify(m);
        break;
      case MsgType::snoopReq:
        onSnoopReq(m);
        break;
      case MsgType::snoopResp:
        onSnoopResp(m);
        break;
      case MsgType::data:
        onData(m);
        break;
      case MsgType::ackInv:
        onAckInv(m);
        break;
      case MsgType::grant:
        onGrant(m);
        break;
      case MsgType::unblock:
        onUnblock(m);
        break;
      case MsgType::wbNotice:
        onWbNotice(m);
        break;
      case MsgType::wbAck:
        finishWriteback(m.dst, m.line);
        break;
      case MsgType::dirUpdate:
        depositMemVersion(m.line, m.version);
        break;
      default:
        SPP_PANIC("multicast protocol got {}", toString(m.type));
    }
}

std::string
MulticastMemSys::dumpOutstanding() const
{
    std::string out = MemSys::dumpOutstanding();
    lingering_.forEach([&](std::uint64_t txn, const Mshr &m) {
        out += strfmt("lingering txn {} core {} line {} write={} "
                      "responses={}/{} grant={} data={}\n",
                      txn, m.core, m.line, m.isWrite,
                      m.peerResponses, m.mustAck.count(),
                      m.grantReceived, m.dataReceived);
    });
    out += strfmt("insufficient multicast masks: {}\n",
                  insufficient_masks_);
    return out;
}

void
MulticastMemSys::hashState(StateHasher &h) const
{
    MemSys::hashState(h);
    // lint: allow(unordered-iter) — commutative fold.
    for (const auto &[line, e] : dir_) {
        StateHasher sub;
        sub.mix(line);
        sub.mix(e.owner);
        sub.mix(e.sharers.overflowed());
        hashCoreSet(sub, e.sharers.members());
        h.mixUnordered(sub.value());
    }
    lingering_.forEach([&](std::uint64_t txn, const Mshr &m) {
        StateHasher sub;
        sub.mix(txn);
        hashMshr(sub, m);
        h.mixUnordered(sub.value());
    });
}

} // namespace spp
