/**
 * @file
 * Distributed directory MESIF protocol with the paper's Section 4.5
 * destination-set prediction extension.
 *
 * Baseline transaction flow (no prediction):
 *   requester --req--> home directory --fwd/inv--> peers --data/ack-->
 *   requester --unblock--> home.
 * The home directory serializes transactions per line (LineLockTable)
 * and keeps a full-map sharer vector plus the owner (the E/M/F
 * holder, which can source data cache-to-cache).
 *
 * Prediction extension (Section 4.5): on a miss, the requester sends
 * predicted requests directly to the predicted nodes and, in
 * parallel, the normal request (carrying the predicted bit vector) to
 * the directory. Predicted owners forward data immediately (2-hop
 * miss); predicted sharers invalidate and ack directly. The directory
 * detects insufficient predictions and services them at baseline
 * latency. Races between predicted requests and in-flight
 * transactions resolve via Nacks: a peer accepts a predicted request
 * only if the line's home lock is free or held by the same
 * transaction; a requester whose predicted targets all Nacked
 * escalates with predFailed, and Nacked invalidation targets are
 * retried directly once the grant names the authoritative ack set.
 */

#ifndef SPP_COHERENCE_DIRECTORY_PROTOCOL_HH
#define SPP_COHERENCE_DIRECTORY_PROTOCOL_HH

#include <unordered_map>

#include "coherence/mem_sys.hh"
#include "common/sharer_tracker.hh"

namespace spp {

/**
 * Directory entry: a sharer set in the configured representation
 * (full map / coarse vector / limited pointers; sharer_tracker.hh)
 * plus the exact owner. Protocols act on the conservative superset
 * the tracker reports, so inexact formats cost extra invalidations,
 * never correctness.
 */
struct DirEntry
{
    SharerTracker sharers;
    CoreId owner = invalidCore; ///< E/M/F holder, if any.
};

/**
 * Directory MESIF memory system (Protocol::directory and
 * Protocol::predicted).
 */
class DirectoryMemSys : public MemSys
{
  public:
    DirectoryMemSys(const Config &cfg, EventQueue &eq, Mesh &mesh,
                    DestinationPredictor *predictor);

    /** Directory-state consistency check (tests; call when drained). */
    void checkDirectory() const;

    /** Peek a directory entry (tests). */
    const DirEntry *dirEntry(Addr line) const;

    /** Misses serviced without directory indirection (Fig. 12). */
    std::uint64_t indirectionsAvoided() const
    {
        return indirections_avoided_;
    }

    PoolStats txnPoolStats() const override { return txns_.stats(); }

    void hashState(StateHasher &h) const override;

  protected:
    void startMiss(Mshr &m) override;
    void handleMsg(const Msg &m) override;
    void onCompleteMiss(Mshr &m) override;
    void onWriteback(CoreId core, Addr line) override;

  private:
    /** Per-line transaction bookkeeping while the home lock is held. */
    struct DirTxn
    {
        TxnKey key;
        bool waitingPeer = false;   ///< Read left to the peer path.
    };

    // Home-side handlers.
    void onRequest(const Msg &m);
    void processRequest(const Msg &m);
    void processRead(const Msg &m);
    void processWrite(const Msg &m);
    void onPredFailed(const Msg &m);
    void onUnblock(const Msg &m);
    void onWbNotice(const Msg &m);
    void onDirUpdate(const Msg &m);
    void serviceReadFromDir(const Msg &m, DirEntry &e);
    void sendMemoryData(Addr line, CoreId requester, Mesif fill_state);
    bool takeEarlyPredFailure(Addr line, const TxnKey &key);

    // Peer-side handlers.
    void onFwdRead(const Msg &m);
    void onInv(const Msg &m);
    void onPredRequest(const Msg &m);

    // Requester-side handlers.
    void onData(const Msg &m);
    void onAckInv(const Msg &m);
    void onNack(const Msg &m);
    void onGrant(const Msg &m);
    void maybeRetryNacked(Mshr &m);
    void checkCompletion(Mshr &m);

    /** Find-or-create the entry for @p line in the configured
     * sharer format. */
    DirEntry &dirAt(Addr line);

    /** Warm-up-only growth: lines are never removed, so the node
     * churn PooledMap avoids does not occur here. */
    std::unordered_map<Addr, DirEntry> dir_;
    SharerLayout sharer_layout_;
    /** One entry per in-flight home transaction: per-miss insert and
     * erase, so entries come from a pool. */
    PooledMap<DirTxn> txns_;
    /** predFailed notices that arrived before their request was
     * processed (their request may be queued behind other
     * transactions, so several can be pending per line). */
    std::unordered_map<Addr, std::vector<TxnKey>> early_pred_failed_;
    /** Unblocks that arrived before their request was processed. */
    std::unordered_map<Addr, std::vector<TxnKey>> early_unblock_;

    /** Find-and-erase @p key in an early-record map. */
    static bool takeEarly(
        std::unordered_map<Addr, std::vector<TxnKey>> &map, Addr line,
        const TxnKey &key);
    std::uint64_t indirections_avoided_ = 0;
};

} // namespace spp

#endif // SPP_COHERENCE_DIRECTORY_PROTOCOL_HH
