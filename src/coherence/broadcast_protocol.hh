/**
 * @file
 * Broadcast snooping protocol over a (modelled) totally ordered
 * interconnect.
 *
 * The paper's latency-ideal / bandwidth-maximal endpoint: every miss
 * is broadcast to all peers; the owner responds cache-to-cache (2-hop
 * miss), sharers invalidate on writes, and every peer returns a snoop
 * response so the requester can resolve ordering. The home tile
 * starts a speculative memory fetch in parallel, cancelled by an
 * owner's cancel message (modelled as a flag set when the owner's
 * data response is generated).
 *
 * Total order is modelled by the shared per-line home lock: a miss
 * acquires it (zero-latency arbitration, see line_lock.hh) before
 * broadcasting and releases it on completion. Waiting time while the
 * line is held by another miss is paid for real.
 */

#ifndef SPP_COHERENCE_BROADCAST_PROTOCOL_HH
#define SPP_COHERENCE_BROADCAST_PROTOCOL_HH

#include "coherence/mem_sys.hh"

namespace spp {

/** Snooping broadcast memory system (Protocol::broadcast). */
class BroadcastMemSys : public MemSys
{
  public:
    BroadcastMemSys(const Config &cfg, EventQueue &eq, Mesh &mesh);

    std::string dumpOutstanding() const override;

    std::size_t outstandingTxns() const override
    {
        return lingering_.size();
    }

    PoolStats
    txnPoolStats() const override
    {
        PoolStats sum = lingering_.stats();
        const PoolStats &s = spec_fetch_.stats();
        sum.acquires += s.acquires;
        sum.reuses += s.reuses;
        sum.allocated += s.allocated;
        sum.live += s.live;
        sum.peak += s.peak;
        return sum;
    }

    void hashState(StateHasher &h) const override;

    /**
     * Late data messages dropped because their transaction had fully
     * retired (a speculative memory fetch losing the race against the
     * owner's cache-to-cache response). A correctness-relevant
     * ordering window: the model checker's race-witness tests assert
     * exploration actually drives executions into it.
     */
    std::uint64_t lateDataDrops() const { return late_data_drops_; }

  protected:
    void startMiss(Mshr &m) override;
    void handleMsg(const Msg &m) override;
    void onCompleteMiss(Mshr &m) override;
    void onWriteback(CoreId core, Addr line) override;

  private:
    /** Home-side speculative memory fetch state, keyed by line. */
    struct SpecFetch
    {
        TxnKey key;
        bool cancelled = false;
    };

    void broadcast(Mshr &m);
    void onSnoopReq(const Msg &m);
    void onSnoopResp(const Msg &m);
    void onData(const Msg &m);
    void onAckInv(const Msg &m);
    void onUnblock(const Msg &m);
    void onWbNotice(const Msg &m);
    void checkCompletion(Mshr &m);

    /**
     * Find the transaction state for a response: the active MSHR, or
     * a lingering transaction whose core already resumed.
     */
    Mshr *txnFor(CoreId core, Addr line, std::uint64_t txn);

    /**
     * The ordered interconnect lets the core resume as soon as data
     * arrives (or, for upgrades, once the request is ordered); the
     * transaction lingers until every snoop response arrived, then
     * unblocks the home. @return true if the Mshr was moved (invalid
     * reference afterwards).
     */
    bool maybeResumeCore(Mshr &m);

    /** Per-miss insert/erase churn: pool-backed (see pool.hh). */
    PooledMap<SpecFetch> spec_fetch_;
    /** Resumed-but-not-drained transactions, keyed by txn id. */
    PooledMap<Mshr> lingering_;
    std::uint64_t late_data_drops_ = 0;
};

} // namespace spp

#endif // SPP_COHERENCE_BROADCAST_PROTOCOL_HH
