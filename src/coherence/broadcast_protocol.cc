#include "coherence/broadcast_protocol.hh"
#include <cstdlib>
#include <cstdio>

namespace spp {

BroadcastMemSys::BroadcastMemSys(const Config &cfg, EventQueue &eq,
                                 Mesh &mesh)
    : MemSys(cfg, eq, mesh, nullptr)
{
}

// ---------------------------------------------------------------------
// Requester side
// ---------------------------------------------------------------------

void
BroadcastMemSys::startMiss(Mshr &m)
{
    const TxnKey key{m.core, m.txn};
    const CoreId core = m.core;
    const Addr line = m.line;
    auto go = [this, core, line]() {
        Mshr *mm = mshrFor(core, line);
        SPP_ASSERT(mm, "broadcast start without MSHR");
        broadcast(*mm);
    };
    if (locks_.acquireOrQueue(line, key, go))
        go();
}

void
BroadcastMemSys::broadcast(Mshr &m)
{
    const CoreId home = map_.homeNode(m.line);

    // The request is "ordered" once it would be visible on the
    // ordered fabric: one traversal to the ordering point. Upgrades
    // may resume the core at that point (TSO bus semantics).
    {
        const CoreId core = m.core;
        const Addr line = m.line;
        const std::uint64_t txn = m.txn;
        const Tick ordering_delay = mesh_.zeroLoadLatency(
            mesh_.hops(m.core, home), cfg_.ctrlPacketBytes);
        eq_.scheduleAfter(ordering_delay, [this, core, line, txn]() {
            if (Mshr *mm = txnFor(core, line, txn)) {
                mm->ordered = true;
                checkCompletion(*mm);
            }
        });
    }
    for (unsigned c = 0; c < n_cores_; ++c) {
        if (c == m.core)
            continue;
        Msg s;
        s.type = MsgType::snoopReq;
        s.line = m.line;
        s.src = m.core;
        s.dst = c;
        s.requester = m.core;
        s.txn = m.txn;
        s.isWrite = m.isWrite;
        sendMsg(s);
    }

    // Speculative memory fetch at the home tile, cancellable by an
    // owner hit. When the requester is the home, start it locally;
    // otherwise the snoopReq arriving at the home starts it.
    SpecFetch &sf = spec_fetch_.findOrInsert(m.line);
    sf.key = TxnKey{m.core, m.txn};
    sf.cancelled = false;
    if (home == m.core) {
        const Addr line = m.line;
        const TxnKey key{m.core, m.txn};
        eq_.scheduleAfter(memAccessLatency(line), [this, line, key]() {
            const SpecFetch *f = spec_fetch_.find(line);
            if (f == nullptr || !(f->key == key) || f->cancelled)
                return;
            spec_fetch_.erase(line);
            Msg d;
            d.type = MsgType::data;
            d.line = line;
            d.src = map_.homeNode(line);
            d.dst = key.requester;
            d.requester = key.requester;
            d.txn = key.txn;
            d.fromMemory = true;
            d.version = memVersion(line);
            sendMsg(d);
        });
    }
}

void
BroadcastMemSys::onData(const Msg &msg)
{
    Mshr *m = txnFor(msg.dst, msg.line, msg.txn);
    if (!m) {
        // Speculative memory data can outlive its transaction (the
        // owner's data plus all snoop responses retire it first);
        // drop it. Late *peer* data would mean lost coherence state.
        SPP_ASSERT(msg.fromMemory,
                   "broadcast peer data for missing txn at core {}",
                   msg.dst);
        ++late_data_drops_;
        return;
    }
    // absorbData resolves the speculative-fill race: owner data is
    // authoritative (it is at least as fresh as the memory copy and
    // wins version ties), while late speculative memory data never
    // overrides an owner's response. Memory data is usable only if
    // no owner shows up in the snoop responses (resume-time check).
    absorbData(*m, msg);
    if (!msg.fromMemory) {
        // Owner data doubles as this peer's snoop response.
        m->peerHadCopy = true;
        ++m->peerResponses;
    }
    checkCompletion(*m);
}

void
BroadcastMemSys::onAckInv(const Msg &msg)
{
    Mshr *m = txnFor(msg.dst, msg.line, msg.txn);
    SPP_ASSERT(m,
               "ackInv for missing broadcast MSHR at core {}", msg.dst);
    ++m->peerResponses;
    if (msg.hadCopy) {
        m->out.servicedBy.set(msg.src);
        m->peerHadCopy = true;
    }
    if (msg.ownerAck) {
        // Authoritative owner data; overrides a speculative fill.
        absorbData(*m, msg);
    }
    checkCompletion(*m);
}

void
BroadcastMemSys::onSnoopResp(const Msg &msg)
{
    Mshr *m = txnFor(msg.dst, msg.line, msg.txn);
    SPP_ASSERT(m, "snoopResp for missing MSHR at core {}", msg.dst);
    ++m->peerResponses;
    if (msg.hadCopy)
        m->peerHadCopy = true;
    checkCompletion(*m);
}

BroadcastMemSys::Mshr *
BroadcastMemSys::txnFor(CoreId core, Addr line, std::uint64_t txn)
{
    if (Mshr *m = mshrFor(core, line)) {
        if (m->txn == txn)
            return m;
    }
    return lingering_.find(txn);
}

bool
BroadcastMemSys::maybeResumeCore(Mshr &m)
{
    if (m.coreResumed)
        return false;
    // Reads resume on data. Writes resume once ordered and the data
    // (if any) arrived; the ordered fabric guarantees invalidations.
    // Speculative memory data is consumable only once every snoop
    // response confirmed no cache owner exists.
    const bool all_responses = m.peerResponses >= n_cores_ - 1;
    const bool data_ok =
        m.dataReceived && (m.dataFromPeer || all_responses);
    if (m.needData && !data_ok)
        return false;
    if (m.isWrite && !m.ordered)
        return false;
    if (!m.isWrite && !m.dataFromPeer) {
        // Memory data with sharers on chip fills Forwarding; a solo
        // copy fills Exclusive. Late snoop responses could still
        // raise peerHadCopy; filling F either way is conservative
        // only in forwarding ability, but distinguish when known.
        m.fillState = m.peerHadCopy ? cfg_.cleanSharedFill()
                                    : Mesif::exclusive;
    }
    m.coreResumed = true;
    finishOutcome(m);

    // Move the transaction aside so the core can issue its next
    // access; responses keep finding it via txnFor().
    const CoreId core = m.core;
    const std::uint64_t txn = m.txn;
    Mshr &moved = lingering_.insert(txn);
    moved = std::move(m);
    mshr_[core].reset();
    DoneFn done = std::move(moved.done);
    moved.done = nullptr;
    done(moved.out);
    return true;
}

void
BroadcastMemSys::checkCompletion(Mshr &m)
{
    // NOTE: maybeResumeCore may move the Mshr into lingering_;
    // re-resolve before the final-drain check.
    const CoreId core = m.core;
    const Addr line = m.line;
    const std::uint64_t txn = m.txn;
    maybeResumeCore(m);
    Mshr *mm = txnFor(core, line, txn);
    SPP_ASSERT(mm, "broadcast txn lost during completion");
    if (!mm->coreResumed)
        return;
    if (mm->peerResponses < n_cores_ - 1)
        return;
    // Fully drained: release the home ordering lock.
    Msg u;
    u.type = MsgType::unblock;
    u.line = line;
    u.src = core;
    u.dst = map_.homeNode(line);
    u.requester = core;
    u.txn = txn;
    sendMsg(u);
    lingering_.erase(txn);
}

void
BroadcastMemSys::onCompleteMiss(Mshr &m)
{
    // Unused: broadcast transactions retire via checkCompletion's
    // lingering path, which sends the unblock itself.
    (void)m;
}

// ---------------------------------------------------------------------
// Peer side
// ---------------------------------------------------------------------

void
BroadcastMemSys::onSnoopReq(const Msg &m)
{
    const CoreId self = m.dst;
    const CoreId home = map_.homeNode(m.line);
    countSnoop();

    // The home tile starts the speculative memory fetch.
    if (self == home) {
        const Addr line = m.line;
        const TxnKey key{m.requester, m.txn};
        eq_.scheduleAfter(memAccessLatency(line), [this, line, key]() {
            const SpecFetch *f = spec_fetch_.find(line);
            if (f == nullptr || !(f->key == key) || f->cancelled)
                return;
            spec_fetch_.erase(line);
            Msg d;
            d.type = MsgType::data;
            d.line = line;
            d.src = map_.homeNode(line);
            d.dst = key.requester;
            d.requester = key.requester;
            d.txn = key.txn;
            d.fromMemory = true;
            d.version = memVersion(line);
            sendMsg(d);
        });
    }

    PeerView v = peerView(self, m.line);

    if (!m.isWrite) {
        if (v.valid && canForward(v.state)) {
            const Tick lat = cfg_.l2TagLatency + cfg_.l2DataLatency;
            if (v.state == Mesif::modified) {
                Msg dep;
                dep.type = MsgType::dirUpdate;
                dep.line = m.line;
                dep.src = self;
                dep.dst = home;
                dep.requester = m.requester;
                dep.txn = m.txn;
                dep.version = v.version;
                sendMsgAfter(lat, dep);
            } else {
                Msg c;
                c.type = MsgType::cancel;
                c.line = m.line;
                c.src = self;
                c.dst = home;
                c.requester = m.requester;
                c.txn = m.txn;
                sendMsgAfter(lat, c);
            }
            downgradeToShared(self, m.line);
            Msg d;
            d.type = MsgType::data;
            d.line = m.line;
            d.src = self;
            d.dst = m.requester;
            d.requester = m.requester;
            d.txn = m.txn;
            d.fillState = cfg_.cleanSharedFill();
            d.version = v.version;
            sendMsgAfter(lat, d);
        } else {
            Msg r;
            r.type = MsgType::snoopResp;
            r.line = m.line;
            r.src = self;
            r.dst = m.requester;
            r.requester = m.requester;
            r.txn = m.txn;
            r.hadCopy = v.valid;
            sendMsgAfter(cfg_.l2TagLatency, r);
        }
        return;
    }

    // Write snoop.
    if (v.valid) {
        Msg a;
        a.type = MsgType::ackInv;
        a.line = m.line;
        a.src = self;
        a.dst = m.requester;
        a.requester = m.requester;
        a.txn = m.txn;
        a.hadCopy = true;
        Tick lat = cfg_.l2TagLatency;
        if (canForward(v.state)) {
            a.ownerAck = true;
            a.version = v.version;
            lat += cfg_.l2DataLatency;
            Msg c;
            c.type = MsgType::cancel;
            c.line = m.line;
            c.src = self;
            c.dst = home;
            c.requester = m.requester;
            c.txn = m.txn;
            sendMsgAfter(lat, c);
        }
        invalidateAt(self, m.line);
        // An in-flight upgrade at this peer just lost its copy; it
        // now needs data from the eventual owner or memory.
        if (Mshr *own = mshrFor(self, m.line)) {
            if (own->isWrite)
                own->needData = true;
        }
        sendMsgAfter(lat, a);
    } else {
        Msg r;
        r.type = MsgType::snoopResp;
        r.line = m.line;
        r.src = self;
        r.dst = m.requester;
        r.requester = m.requester;
        r.txn = m.txn;
        r.hadCopy = false;
        sendMsgAfter(cfg_.l2TagLatency, r);
    }
}

// ---------------------------------------------------------------------
// Home side
// ---------------------------------------------------------------------

void
BroadcastMemSys::onUnblock(const Msg &m)
{
    const TxnKey key{m.requester, m.txn};
    const SpecFetch *f = spec_fetch_.find(m.line);
    if (f != nullptr && f->key == key)
        spec_fetch_.erase(m.line);
    locks_.release(m.line, key);
}

void
BroadcastMemSys::onWbNotice(const Msg &m)
{
    if (m.ownerAck)
        depositMemVersion(m.line, m.version);
    applyWriteback(m.requester, m.line);
    locks_.release(m.line, TxnKey{m.requester, m.txn});
}

void
BroadcastMemSys::onWriteback(CoreId core, Addr line)
{
    (void)core;
    (void)line;
}

std::string
BroadcastMemSys::dumpOutstanding() const
{
    std::string out = MemSys::dumpOutstanding();
    lingering_.forEach([&](std::uint64_t txn, const Mshr &m) {
        out += strfmt("lingering txn {} core {} line {} write={} "
                      "resumed={} responses={}/{} data={}\n",
                      txn, m.core, m.line, m.isWrite, m.coreResumed,
                      m.peerResponses, n_cores_ - 1, m.dataReceived);
    });
    return out;
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

void
BroadcastMemSys::handleMsg(const Msg &m)
{
    if (const char *dbg = std::getenv("SPP_DEBUG_LINE")) {
        if (m.line == static_cast<Addr>(std::atoll(dbg))) {
            // lint: allow(std-io) — SPP_DEBUG_LINE opt-in tracer.
            std::fprintf(stderr,
                         "[%8lu] bc %-10s line %lu %u->%u req=%u "
                         "txn=%lu hadCopy=%d owner=%d\n",
                         static_cast<unsigned long>(eq_.curTick()),
                         toString(m.type),
                         static_cast<unsigned long>(m.line), m.src,
                         m.dst, m.requester,
                         static_cast<unsigned long>(m.txn), m.hadCopy,
                         m.ownerAck);
        }
    }
    switch (m.type) {
      case MsgType::snoopReq:
        onSnoopReq(m);
        break;
      case MsgType::snoopResp:
        onSnoopResp(m);
        break;
      case MsgType::data:
        onData(m);
        break;
      case MsgType::ackInv:
        onAckInv(m);
        break;
      case MsgType::unblock:
        onUnblock(m);
        break;
      case MsgType::wbNotice:
        onWbNotice(m);
        break;
      case MsgType::wbAck:
        finishWriteback(m.dst, m.line);
        break;
      case MsgType::cancel: {
        SpecFetch *f = spec_fetch_.find(m.line);
        if (f != nullptr && f->key == TxnKey{m.requester, m.txn})
            f->cancelled = true;
        break;
      }
      case MsgType::dirUpdate: {
        depositMemVersion(m.line, m.version);
        SpecFetch *f = spec_fetch_.find(m.line);
        if (f != nullptr && f->key == TxnKey{m.requester, m.txn})
            f->cancelled = true;
        break;
      }
      default:
        SPP_PANIC("broadcast protocol got {}", toString(m.type));
    }
}

void
BroadcastMemSys::hashState(StateHasher &h) const
{
    MemSys::hashState(h);
    spec_fetch_.forEach([&](std::uint64_t line, const SpecFetch &f) {
        StateHasher sub;
        sub.mix(line);
        sub.mix(f.key.requester);
        sub.mix(f.key.txn);
        sub.mix(f.cancelled);
        h.mixUnordered(sub.value());
    });
    lingering_.forEach([&](std::uint64_t txn, const Mshr &m) {
        StateHasher sub;
        sub.mix(txn);
        hashMshr(sub, m);
        h.mixUnordered(sub.value());
    });
}

} // namespace spp
