/**
 * @file
 * Base class of the coherent memory system.
 *
 * Owns the per-tile L1/L2 arrays, writeback buffers and requester-side
 * MSHRs; implements the local access path (hit timing, miss issue,
 * fills, evictions) and message plumbing over the mesh. The directory
 * and broadcast engines subclass it and implement the miss protocol.
 *
 * Modeling conventions (see DESIGN.md):
 *  - One outstanding demand access per core (in-order cores).
 *  - Owned-line evictions go through a writeback buffer; the buffer
 *    entry answers external requests until the home tile acknowledges
 *    the writeback, which makes evictions race-free.
 *  - A logical "version" number stands in for line data; writers bump
 *    a global counter, data messages carry versions, and the checker
 *    verifies single-writer/multiple-reader and freshness invariants.
 */

#ifndef SPP_COHERENCE_MEM_SYS_HH
#define SPP_COHERENCE_MEM_SYS_HH

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "coherence/line_lock.hh"
#include "coherence/messages.hh"
#include "common/config.hh"
#include "common/core_set.hh"
#include "common/hash.hh"
#include "common/pool.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "event/event_queue.hh"
#include "mem/address_map.hh"
#include "mem/cache_array.hh"
#include "mem/dram.hh"
#include "noc/mesh.hh"
#include "predict/predictor.hh"
#include "predict/sharing_filter.hh"
#include "telemetry/self_profile.hh"

namespace spp {

class ProtocolChecker;

/**
 * Hook between message injection and delivery scheduling. When
 * attached (MemSys::setDeliveryScheduler), every protocol message
 * still pays its full NoC cost — Mesh::inject computes the arrival
 * tick and accounts traffic exactly as in a normal run — but instead
 * of the mesh scheduling the delivery, the hook receives (arrival
 * tick, message, delivery action) and becomes responsible for running
 * the action at that tick. The model checker uses this to permute the
 * delivery order of messages that become ready at the same tick; a
 * null hook (the default) keeps the one-branch-per-send fast path.
 */
class DeliveryScheduler
{
  public:
    virtual ~DeliveryScheduler() = default;

    /**
     * Take ownership of delivering @p m: run @p deliver exactly once
     * at tick @p arrive (never earlier). @p m aliases the pooled
     * message slot, which stays valid until @p deliver returns.
     */
    virtual void onMessage(Tick arrive, const Msg &m,
                           EventQueue::Action deliver) = 0;
};

struct AccessOutcome;

/**
 * Observer of resolved predictor decisions and injected coherence
 * traffic (the attribution profiler). Purely observational: a sink
 * never changes protocol behavior, timing or statistics, so a run
 * with one attached is event-for-event identical to an unobserved
 * run. Detached (the default) each hook site is one untaken branch.
 */
class AttributionSink
{
  public:
    virtual ~AttributionSink() = default;

    /**
     * A miss finished and its outcome is final. @p wasted_bytes is
     * the predicted-request waste this resolution charged to the
     * predWasteBytes counters (0 when no prediction was attempted).
     */
    virtual void onMissResolved(CoreId core, Addr line,
                                const AccessOutcome &out,
                                std::uint64_t wasted_bytes) = 0;

    /**
     * A protocol message entered the NoC. @p requester is the core
     * whose transaction the message belongs to (the message's
     * requester field, falling back to the sender for traffic that
     * carries none, e.g. writebacks).
     */
    virtual void onMessageSent(CoreId requester, Addr line,
                               unsigned bytes) = 0;
};

/** Everything a caller learns about one finished memory access. */
struct AccessOutcome
{
    bool l1Hit = false;
    bool l2Hit = false;
    bool isWrite = false;
    bool upgrade = false;       ///< Write hit on a shared line.
    bool communicating = false; ///< A remote cache was involved.
    bool offChip = false;       ///< Memory supplied the data.
    CoreSet servicedBy;         ///< Remote caches that serviced us.
    Prediction pred;            ///< Prediction attempted (may be none).
    bool predSufficient = false;///< Prediction fully serviced the miss.
    Tick issueTick = 0;
    Tick completeTick = 0;
    std::uint64_t dataVersion = 0;

    bool miss() const { return !l1Hit && !l2Hit; }
    Tick latency() const { return completeTick - issueTick; }
};

/** Aggregate statistics of one MemSys over a run. */
struct MemSysStats
{
    Counter accesses;
    Counter l1Hits;
    Counter l2Hits;
    Counter misses;             ///< Coherence transactions started.
    Counter upgradeMisses;
    Counter communicatingMisses;
    Counter offChipMisses;
    Counter writebacks;
    Counter snoopLookups;       ///< Peer tag lookups from externals.

    Counter predictionsAttempted;
    Counter predictionsSuppressed; ///< Filtered by the sharing filter.
    Counter predictionsOnCommunicating;
    Counter predictionsOnNonComm;   ///< Wasted bandwidth (Fig. 9).
    Counter predictionsSufficient;
    /** Wasted predicted-request bytes (request + Nack/Ack) split by
     * whether the miss was communicating (Fig. 9 attribution). */
    Counter predWasteBytesComm;
    Counter predWasteBytesNonComm;
    /** Sufficient predictions by PredSource (Fig. 7 breakdown). */
    std::array<std::uint64_t, 7> sufficientBySource{};

    Average missLatency;
    Average commMissLatency;
    Average nonCommMissLatency;
    Average hitLatency;
    Average actualTargets;      ///< |servicedBy| per comm. miss.
    Average predictedTargets;   ///< |pred| per attempted prediction.
};

/**
 * Per-core miss counts, kept next to the aggregate MemSysStats so
 * the telemetry sampler can expose time-resolved per-core series.
 * The vector is sized once at construction; cell addresses stay
 * stable for the lifetime of the MemSys (samplers hold pointers).
 */
struct CoreMemStats
{
    std::uint64_t misses = 0;
    std::uint64_t commMisses = 0;
};

/**
 * Abstract coherent memory system: local caches + a miss protocol.
 */
class MemSys
{
  public:
    // lint: allow(std-function) — one per core-side access slot, bound at miss issue, not per event.
    using DoneFn = std::function<void(const AccessOutcome &)>;

    MemSys(const Config &cfg, EventQueue &eq, Mesh &mesh,
           DestinationPredictor *predictor);
    virtual ~MemSys();

    MemSys(const MemSys &) = delete;
    MemSys &operator=(const MemSys &) = delete;

    /**
     * Issue a load or store from @p core. @p done runs at completion
     * time with the filled-in outcome. At most one outstanding access
     * per core.
     */
    void access(CoreId core, Addr addr, bool is_write, Pc pc,
                DoneFn done);

    const AddressMap &map() const { return map_; }
    const Config &config() const { return cfg_; }
    const MemSysStats &stats() const { return stats_; }
    const std::vector<CoreMemStats> &coreStats() const
    {
        return core_stats_;
    }
    /** Lines currently locked at their home tiles (telemetry gauge). */
    std::size_t outstandingLineLocks() const
    {
        return locks_.lockedLines();
    }
    EventQueue &eventQueue() { return eq_; }
    Mesh &mesh() { return mesh_; }

    /** Coherence-message pool counters (telemetry / leak tests). */
    const PoolStats &msgPoolStats() const { return msg_pool_.stats(); }

    /** Writeback-buffer pool counters, summed across cores. */
    PoolStats
    wbPoolStats() const
    {
        PoolStats sum;
        for (const auto &buf : wb_buffer_) {
            const PoolStats &s = buf.stats();
            sum.acquires += s.acquires;
            sum.reuses += s.reuses;
            sum.allocated += s.allocated;
            sum.live += s.live;
            sum.peak += s.peak;
        }
        return sum;
    }

    /** In-flight transaction-table pool counters (protocol engines
     * with pooled transaction state override this). */
    virtual PoolStats txnPoolStats() const { return {}; }

    /** The sharing filter, when enabled (tests/benches). */
    const SharingFilter *sharingFilter() const
    {
        return filter_ ? &*filter_ : nullptr;
    }

    /** The DRAM model, when enabled (tests/benches). */
    const DramModel *dram() const { return dram_ ? &*dram_ : nullptr; }

    CacheArray &l2(CoreId c) { return *l2_[c]; }
    const CacheArray &l2(CoreId c) const { return *l2_[c]; }
    const CacheArray &l1(CoreId c) const { return *l1_[c]; }

    /** No MSHRs, writebacks or locked lines outstanding. */
    bool drained() const;

    /**
     * Transactions that resumed their core but have not fully
     * drained yet (broadcast/multicast lingering entries). drained()
     * covers them indirectly via the line locks they hold; the
     * protocol checker asserts both independently.
     */
    virtual std::size_t outstandingTxns() const { return 0; }

    /**
     * Attach (or detach, with nullptr) an invariant checker that
     * observes every sendMsg() and delivery. At most one; the caller
     * keeps ownership and must outlive the attachment.
     */
    void setChecker(ProtocolChecker *checker) { checker_ = checker; }

    /**
     * Attach (or detach, with nullptr) a delivery scheduler that
     * takes over running delivery actions (model checking). At most
     * one; the caller keeps ownership and must outlive the
     * attachment. Attach before any traffic flows: messages already
     * scheduled through the event queue are not re-routed.
     */
    void
    setDeliveryScheduler(DeliveryScheduler *s)
    {
        delivery_scheduler_ = s;
    }

    /**
     * Attach (or detach, with nullptr) an attribution sink observing
     * every resolved miss and injected message. At most one; the
     * caller keeps ownership and must outlive the attachment.
     */
    void setAttributionSink(AttributionSink *s) { attribution_ = s; }
    AttributionSink *attributionSink() const { return attribution_; }

    /**
     * Attach (or detach, with nullptr) the self-profiler timing the
     * protocol-handler and predictor scopes. The caller (CmpSystem)
     * keeps ownership.
     */
    void setSelfProfiler(SelfProfiler *p) { self_prof_ = p; }

    /**
     * Fold every behavior-relevant piece of coherence state into
     * @p h: cache contents, writeback buffers, MSHRs, line locks,
     * memory versions and the version/transaction counters.
     * Subclasses extend it with their protocol-engine state
     * (directory entries, in-flight transaction tables, lingering
     * transactions). Statistics are deliberately excluded — they
     * never feed back into protocol decisions — and predictor
     * internals are excluded by design (see DESIGN.md §11: they
     * steer only *which* requests are predicted, not whether the
     * protocol is allowed to behave as observed).
     */
    virtual void hashState(StateHasher &h) const;

    /** Describe outstanding MSHRs/writebacks/locks (deadlock digs). */
    virtual std::string dumpOutstanding() const;

    /**
     * Verify coherence invariants across all tiles: at most one
     * owner/writer per line, no writable copy coexisting with other
     * copies, version agreement among clean copies. Panics on
     * violation. Call only when drained.
     */
    void checkCoherence() const;

  protected:
    /** Requester-side miss state. One per core (in-order cores). */
    struct Mshr
    {
        CoreId core = invalidCore;
        Addr line = 0;
        bool isWrite = false;
        bool hadLine = false;       ///< Valid copy at issue (upgrade).
        Pc pc = 0;
        std::uint64_t txn = 0;
        Tick issueTick = 0;
        DoneFn done;
        AccessOutcome out;

        // Protocol progress.
        bool needData = true;
        bool dataReceived = false;
        bool dataFromPeer = false;
        bool grantReceived = false;
        CoreSet mustAck;            ///< Write: acks to collect.
        CoreSet ackedBy;
        CoreSet nackedBy;
        CoreSet retried;            ///< Predicted targets re-invalidated.
        unsigned predRespPending = 0;
        bool predFailedSent = false;
        unsigned peerResponses = 0; ///< Broadcast: responses collected.
        bool peerHadCopy = false;   ///< Broadcast: some peer had line.
        bool ordered = false;       ///< Broadcast: request is ordered.
        bool coreResumed = false;   ///< Broadcast: done() already ran.
        CoreId dataSource = invalidCore;
        Mesif fillState = Mesif::invalid;
        std::uint64_t version = 0;
    };

    /** Writeback buffer entry for an evicted owned line. */
    struct WbEntry
    {
        Mesif state = Mesif::invalid;
        std::uint64_t version = 0;
        Pc lastPc = 0;
        std::uint64_t txn = 0;      ///< Lock key of the wb transaction.
        bool noticed = false;       ///< wbNotice sent (lock held).
        /** Accesses stalled until this writeback drains. */
        std::vector<EventQueue::Action> stalled;

        /** Pool recycling: reset fields, keep stalled's capacity. */
        void
        poolReset()
        {
            state = Mesif::invalid;
            version = 0;
            lastPc = 0;
            txn = 0;
            noticed = false;
            stalled.clear();
        }
    };

    /** What a peer knows about a line (cache or writeback buffer). */
    struct PeerView
    {
        bool valid = false;
        bool inBuffer = false;
        bool noticed = false;   ///< Buffer entry already written back.
        Mesif state = Mesif::invalid;
        std::uint64_t version = 0;
        Pc lastPc = 0;
    };

    /** Start the protocol transaction for a prepared MSHR. */
    virtual void startMiss(Mshr &m) = 0;

    /** Dispatch a delivered protocol message. */
    virtual void handleMsg(const Msg &m) = 0;

    /** Send @p m over the mesh; delivery invokes handleMsg(). */
    void sendMsg(const Msg &m);

    /** Send @p m after @p extra_delay local processing cycles. */
    void sendMsgAfter(Tick extra_delay, const Msg &m);

    /** Packet size of a message, by data/control class. */
    unsigned msgBytes(const Msg &m) const;

    /** Traffic class for bandwidth attribution. */
    TrafficClass msgClass(const Msg &m) const;

    /** Inspect a line at @p core: L2 first, then writeback buffer. */
    PeerView peerView(CoreId core, Addr line) const;

    /** Count a snoop-induced tag lookup at @p core. */
    void countSnoop() { ++stats_.snoopLookups; }

    /** Downgrade @p core's copy (cache or buffer) to Shared. */
    void downgradeToShared(CoreId core, Addr line);

    /** Invalidate @p core's copy (cache, L1 and buffer). */
    void invalidateAt(CoreId core, Addr line);

    /**
     * Install @p line at @p core with @p state; handles victim
     * eviction (writeback buffer + notice) and fills L1 alongside.
     */
    void fillLine(CoreId core, Addr line, Mesif state, Pc pc,
                  std::uint64_t version);

    /** Complete the MSHR of @p core: outcome, training, callback. */
    void completeMiss(Mshr &m);

    /**
     * Finalize the outcome of @p m and resume the core (fill, stats,
     * predictor training, done callback) without retiring the MSHR;
     * used by protocols that release the core before the transaction
     * fully drains (ordered-interconnect broadcast).
     */
    void finishOutcome(Mshr &m);

    /** Retire @p m after finishOutcome(): hook + free the MSHR. */
    void retireMshr(Mshr &m);

    /** The per-core MSHR, if any. */
    Mshr *mshrFor(CoreId core, Addr line);

    /**
     * Fold a data-bearing response into @p m, tolerating duplicates.
     * Data can legally arrive twice for one transaction — e.g. an
     * owner handoff (ackInv with ownerAck) racing a memory/directory
     * data message for the same miss — so rather than asserting
     * single delivery, keep the freshest version; on a version tie,
     * prefer peer provenance (a peer copy is at least as fresh as
     * memory and keeps the 2-hop attribution). @return true when
     * @p msg 's payload was kept.
     */
    bool absorbData(Mshr &m, const Msg &msg);

    /** Allocate the next global data version (writers). */
    std::uint64_t nextVersion() { return ++version_counter_; }

    /** Memory's committed version of @p line. */
    std::uint64_t memVersion(Addr line) const;

    /** Demand-fetch latency at @p line's home controller, now. */
    Tick memAccessLatency(Addr line);

    /** Raise memory's version (max-merge; versions are monotonic). */
    void depositMemVersion(Addr line, std::uint64_t version);

    /** Hook: called right before completeMiss finalizes stats. */
    virtual void onCompleteMiss(Mshr &m) { (void)m; }

    /** Train predictors about an external request at @p observer. */
    void trainExternalAt(CoreId observer, Addr line, CoreId requester,
                         bool is_write);

    /** Fold one MSHR into @p h (hashState helpers). */
    static void hashMshr(StateHasher &h, const Mshr &m);

    /** Fold a CoreSet into @p h. */
    static void hashCoreSet(StateHasher &h, const CoreSet &s);

    const Config &cfg_;
    EventQueue &eq_;
    Mesh &mesh_;
    AddressMap map_;
    DestinationPredictor *predictor_;

    unsigned n_cores_;
    std::optional<SharingFilter> filter_;
    std::optional<DramModel> dram_;
    std::vector<std::unique_ptr<CacheArray>> l1_;
    std::vector<std::unique_ptr<CacheArray>> l2_;
    std::vector<PooledMap<WbEntry>> wb_buffer_;
    std::vector<std::optional<Mshr>> mshr_;
    LineLockTable locks_;
    MemSysStats stats_;
    std::vector<CoreMemStats> core_stats_;

    std::uint64_t version_counter_ = 0;
    std::uint64_t txn_counter_ = 0;
    std::unordered_map<Addr, std::uint64_t> mem_version_;
    std::uint64_t outstanding_wb_ = 0;
    ProtocolChecker *checker_ = nullptr;
    DeliveryScheduler *delivery_scheduler_ = nullptr;
    AttributionSink *attribution_ = nullptr;
    SelfProfiler *self_prof_ = nullptr;

    /**
     * Freelist of in-flight coherence messages. A message occupies a
     * slot from send until its delivery handler returns, so the
     * steady-state send path performs no allocation; nested sends
     * from inside a handler simply take other slots.
     */
    Pool<Msg> msg_pool_;

    /** Send an already-pooled message; releases @p slot on delivery
     * after handleMsg() returns. */
    void sendPooled(Msg *slot);

    friend class ProtocolChecker;

  private:
    /** Second phase of access(): L2 lookup after L1 miss. */
    void accessL2(CoreId core, Addr addr, bool is_write, Pc pc,
                  DoneFn done, Tick issue_tick);

    /** Start the writeback transaction for @p line at @p core. */
    void startWriteback(CoreId core, Addr line);

  protected:
    /** Home-side writeback application; shared by both protocols. */
    void applyWriteback(CoreId core, Addr line);

    /** Subclass hook: clear directory owner/sharer state on wb. */
    virtual void onWriteback(CoreId core, Addr line) = 0;

    /** Finish a writeback at the evictor (wbAck received). */
    void finishWriteback(CoreId core, Addr line);
};

} // namespace spp

#endif // SPP_COHERENCE_MEM_SYS_HH
