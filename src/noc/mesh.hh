/**
 * @file
 * 2D mesh network-on-chip model.
 *
 * Topology: meshX x meshY tiles, dimension-order (X then Y) routing,
 * 2-stage routers and single-cycle links (Table 4). Contention is
 * modelled at link granularity: each directional link keeps a
 * busy-until tick, a packet reserves its links hop by hop and its
 * serialization time is bytes / linkBytesPerCycle on each link. This
 * reproduces hop latency, serialization and queueing delay without
 * flit-level simulation (the paper reports congestion stays low).
 *
 * Delivery is callback-based: send() computes the arrival tick,
 * schedules the callback on the EventQueue, and accounts bytes per
 * traffic class for the bandwidth/energy figures.
 */

#ifndef SPP_NOC_MESH_HH
#define SPP_NOC_MESH_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "event/event_queue.hh"
#include "noc/packet.hh"
#include "telemetry/self_profile.hh"

namespace spp {

/** Aggregate NoC traffic statistics for one run. */
struct NocStats
{
    Counter packets;
    Counter flitBytes;              ///< Bytes injected (payload).
    Counter byteHops;               ///< Sum over packets of bytes*hops.
    Counter byteRouters;            ///< Sum of bytes*(hops+1).
    Counter routerTraversals;       ///< Sum over packets of hops+1.
    Average packetLatency;          ///< Injection to delivery.

    /** Bytes injected, by traffic class (index = TrafficClass). */
    std::array<std::uint64_t, 6> bytesByClass{};

    std::uint64_t
    bytesOf(TrafficClass cls) const
    {
        return bytesByClass[static_cast<std::size_t>(cls)];
    }
};

/**
 * The mesh interconnect. One instance per simulated system.
 */
class Mesh
{
  public:
    /** Delivery continuation; an event-queue action so the closure
     * rides inline from send() into the scheduled event. */
    using DeliverFn = EventQueue::Action;

    Mesh(const Config &cfg, EventQueue &eq);

    /** Manhattan hop count between two tiles. */
    unsigned hops(CoreId src, CoreId dst) const;

    /**
     * Inject @p pkt; @p on_delivery runs at the arrival tick.
     * Local (src == dst) packets are delivered after the router
     * pipeline only.
     */
    void send(const Packet &pkt, DeliverFn on_delivery);

    /**
     * Inject @p pkt without scheduling a delivery: accounts traffic,
     * reserves links (under contention modeling) and returns the
     * arrival tick. send() is inject() plus scheduling the callback;
     * callers that route delivery through their own scheduler (the
     * model checker's interleaving explorer) use inject() directly,
     * so the NoC timing/accounting model stays identical in both
     * modes.
     */
    Tick inject(const Packet &pkt);

    /**
     * Zero-load latency of a packet of @p bytes over @p n_hops hops:
     * per-hop router + link plus serialization on the final link.
     */
    Tick zeroLoadLatency(unsigned n_hops, unsigned bytes) const;

    const NocStats &stats() const { return stats_; }

    /**
     * Cumulative ticks each directional link has been reserved for
     * packet serialization; index = tile * 4 + direction (0 = +X,
     * 1 = -X, 2 = +Y, 3 = -Y). Zeros when contention modeling is
     * off. The vector is sized once at construction, so cell
     * addresses stay stable (the telemetry sampler holds pointers).
     */
    const std::vector<std::uint64_t> &linkBusyTicks() const
    {
        return link_busy_;
    }

    unsigned numCores() const { return n_cores_; }

    /** Attach (or detach with nullptr) the simulator self-profiler;
     * inject() charges its routing work to the noc scope. */
    void setSelfProfiler(SelfProfiler *p) { self_prof_ = p; }

  private:
    /** Index of the directional link from tile @p a to neighbour b. */
    std::size_t linkIndex(unsigned a, unsigned b) const;

    /** Enumerate the tile sequence of the X-Y route src -> dst. */
    void route(CoreId src, CoreId dst,
               std::vector<unsigned> &path) const;

    const Config &cfg_;
    EventQueue &eq_;
    unsigned n_cores_;
    /** busy-until tick per directional link (n_cores * 4 entries). */
    std::vector<Tick> link_free_;
    /** Cumulative serialization-busy ticks per directional link. */
    std::vector<std::uint64_t> link_busy_;
    NocStats stats_;
    SelfProfiler *self_prof_ = nullptr;
    /** Scratch buffer reused by send() to avoid per-packet allocs. */
    std::vector<unsigned> path_scratch_;
};

} // namespace spp

#endif // SPP_NOC_MESH_HH
