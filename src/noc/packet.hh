/**
 * @file
 * NoC packet descriptor and traffic classification.
 */

#ifndef SPP_NOC_PACKET_HH
#define SPP_NOC_PACKET_HH

#include <cstdint>

#include "common/types.hh"

namespace spp {

/**
 * Why a packet is on the network; used to attribute bandwidth in the
 * Figure 9 breakdown.
 */
enum class TrafficClass : std::uint8_t
{
    request,        ///< Miss request to the directory / snoop targets.
    predRequest,    ///< Predicted request sent directly to a peer.
    forward,        ///< Directory-initiated forward/invalidate.
    response,       ///< Control response (Ack/Nack/completion).
    data,           ///< Data-bearing response or writeback.
    dirUpdate,      ///< Sharing-state update from a predicted node.
};

/** Description of one packet handed to the mesh for delivery. */
struct Packet
{
    CoreId src = invalidCore;
    CoreId dst = invalidCore;
    unsigned bytes = 0;
    TrafficClass cls = TrafficClass::request;
};

} // namespace spp

#endif // SPP_NOC_PACKET_HH
