#include "noc/mesh.hh"

#include <cstdlib>

namespace spp {

Mesh::Mesh(const Config &cfg, EventQueue &eq)
    : cfg_(cfg), eq_(eq), n_cores_(cfg.numCores),
      link_free_(static_cast<std::size_t>(cfg.numCores) * 4, 0),
      link_busy_(static_cast<std::size_t>(cfg.numCores) * 4, 0)
{
    // Rectangular meshes are fine; a mesh that does not cover the
    // core count would silently mis-route (tile = y * meshX + x).
    SPP_ASSERT(cfg.meshX * cfg.meshY == cfg.numCores,
               "mesh {}x{} does not cover {} cores", cfg.meshX,
               cfg.meshY, cfg.numCores);
}

unsigned
Mesh::hops(CoreId src, CoreId dst) const
{
    const int sx = static_cast<int>(src % cfg_.meshX);
    const int sy = static_cast<int>(src / cfg_.meshX);
    const int dx = static_cast<int>(dst % cfg_.meshX);
    const int dy = static_cast<int>(dst / cfg_.meshX);
    return static_cast<unsigned>(std::abs(sx - dx) + std::abs(sy - dy));
}

std::size_t
Mesh::linkIndex(unsigned a, unsigned b) const
{
    // Direction encoding: 0 = +X, 1 = -X, 2 = +Y, 3 = -Y.
    unsigned dir;
    if (b == a + 1) {
        dir = 0;
    } else if (b + 1 == a) {
        dir = 1;
    } else if (b == a + cfg_.meshX) {
        dir = 2;
    } else {
        SPP_ASSERT(b + cfg_.meshX == a, "non-adjacent hop {} -> {}", a, b);
        dir = 3;
    }
    return static_cast<std::size_t>(a) * 4 + dir;
}

void
Mesh::route(CoreId src, CoreId dst, std::vector<unsigned> &path) const
{
    path.clear();
    unsigned cur = src;
    path.push_back(cur);
    const unsigned dst_x = dst % cfg_.meshX;
    // X dimension first...
    while (cur % cfg_.meshX != dst_x) {
        cur = cur % cfg_.meshX < dst_x ? cur + 1 : cur - 1;
        path.push_back(cur);
    }
    // ...then Y.
    while (cur != dst) {
        cur = cur < dst ? cur + cfg_.meshX : cur - cfg_.meshX;
        path.push_back(cur);
    }
}

Tick
Mesh::zeroLoadLatency(unsigned n_hops, unsigned bytes) const
{
    const Tick serialization =
        (bytes + cfg_.linkBytesPerCycle - 1) / cfg_.linkBytesPerCycle;
    return cfg_.routerLatency // Injection router.
         + n_hops * (cfg_.linkLatency + cfg_.routerLatency)
         + (n_hops ? serialization : 0);
}

void
Mesh::send(const Packet &pkt, DeliverFn on_delivery)
{
    eq_.schedule(inject(pkt), std::move(on_delivery));
}

Tick
Mesh::inject(const Packet &pkt)
{
    SPP_ASSERT(pkt.src < n_cores_ && pkt.dst < n_cores_,
               "packet endpoints out of range: {} -> {}", pkt.src,
               pkt.dst);

    SelfProfiler::Scope prof(self_prof_, ProfScope::noc);
    const Tick now = eq_.curTick();
    const unsigned n_hops = hops(pkt.src, pkt.dst);

    ++stats_.packets;
    stats_.flitBytes += pkt.bytes;
    stats_.byteHops += static_cast<std::uint64_t>(pkt.bytes) * n_hops;
    stats_.byteRouters +=
        static_cast<std::uint64_t>(pkt.bytes) * (n_hops + 1);
    stats_.routerTraversals += n_hops + 1;
    stats_.bytesByClass[static_cast<std::size_t>(pkt.cls)] += pkt.bytes;

    Tick arrive;
    if (!cfg_.modelContention || n_hops == 0) {
        arrive = now + zeroLoadLatency(n_hops, pkt.bytes);
    } else {
        const Tick serialization =
            (pkt.bytes + cfg_.linkBytesPerCycle - 1) /
            cfg_.linkBytesPerCycle;
        route(pkt.src, pkt.dst, path_scratch_);
        // Head traversal with per-link reservation: the head may wait
        // for a busy link; each link stays busy for the packet's
        // serialization time once the head passes.
        Tick head = now + cfg_.routerLatency;
        for (std::size_t i = 0; i + 1 < path_scratch_.size(); ++i) {
            const std::size_t idx =
                linkIndex(path_scratch_[i], path_scratch_[i + 1]);
            Tick &free_at = link_free_[idx];
            if (free_at > head)
                head = free_at;              // Queueing delay.
            free_at = head + serialization;  // Occupy for the body.
            link_busy_[idx] += serialization;
            head += cfg_.linkLatency + cfg_.routerLatency;
        }
        // Tail arrives a serialization time after the head.
        arrive = head + serialization;
    }

    stats_.packetLatency.sample(static_cast<double>(arrive - now));
    return arrive;
}

} // namespace spp
