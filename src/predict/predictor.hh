/**
 * @file
 * Destination-set predictor interface.
 *
 * Implementations: SpPredictor (src/core, the paper's contribution)
 * and the Martin-style "group" baselines ADDR / INST / UNI
 * (src/predict). The coherence engine is predictor-agnostic: it asks
 * for a destination set on each L2 miss and feeds back training
 * events.
 */

#ifndef SPP_PREDICT_PREDICTOR_HH
#define SPP_PREDICT_PREDICTOR_HH

#include <cstddef>
#include <cstdint>

#include "common/core_set.hh"
#include "common/types.hh"

namespace spp {

/**
 * What knowledge produced a prediction; drives the Figure 7 accuracy
 * breakdown.
 */
enum class PredSource : std::uint8_t
{
    none,       ///< No prediction made.
    warmup,     ///< d=0: hot set extracted mid-epoch after warm-up.
    history,    ///< d>=1: signature(s) from past epoch instances.
    pattern,    ///< Stride-repetitive signature detected.
    lock,       ///< Last lock holder(s) signature.
    recovery,   ///< Confidence-triggered mid-epoch re-extraction.
    table,      ///< ADDR/INST/UNI table lookup.
};

const char *toString(PredSource s);

/** Per-miss prediction query. */
struct PredictionQuery
{
    CoreId core = invalidCore;  ///< Requesting core.
    Addr line = 0;              ///< Line-aligned address.
    Addr macroBlock = 0;        ///< ADDR predictor index.
    Pc pc = 0;                  ///< Static instruction of the miss.
    bool isWrite = false;
};

/** Prediction result. An empty target set means "do not predict". */
struct Prediction
{
    CoreSet targets;
    PredSource source = PredSource::none;

    bool valid() const { return !targets.empty(); }
};

/**
 * Abstract destination-set predictor.
 *
 * Training callbacks:
 *  - trainResponse(): the requester observed who serviced its miss
 *    (data provider for reads, invalidation-ack senders for writes).
 *  - trainExternal(): a cache observed an incoming coherence request
 *    (forward or invalidation) from @p requester for a line it holds;
 *    @p last_pc is the static instruction that last touched the line
 *    locally (Kaxiras-Goodman style instruction correlation).
 *  - feedback(): outcome of an earlier prediction (sufficient or
 *    not), used by SP-prediction's confidence mechanism.
 */
class DestinationPredictor
{
  public:
    virtual ~DestinationPredictor() = default;

    /** Predict the destination set for a miss; may return invalid. */
    virtual Prediction predict(const PredictionQuery &q) = 0;

    /** The requester's miss was serviced by @p who. */
    virtual void trainResponse(const PredictionQuery &q,
                               const CoreSet &who) = 0;

    /** @p observer received an external request from @p requester. */
    virtual void trainExternal(CoreId observer, Addr line,
                               Addr macro_block, Pc last_pc,
                               CoreId requester, bool is_write) = 0;

    /** Report whether the predicted set was sufficient. */
    virtual void feedback(CoreId core, const Prediction &pred,
                          bool communicating, bool sufficient) = 0;

    /** Modelled storage cost in bits (Section 5.4 comparison). */
    virtual std::size_t storageBits() const = 0;

    /** Modelled prediction-table accesses (power comparison). */
    virtual std::uint64_t tableAccesses() const = 0;
};

} // namespace spp

#endif // SPP_PREDICT_PREDICTOR_HH
