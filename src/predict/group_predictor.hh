/**
 * @file
 * Martin-style "group" destination-set predictors (Section 5.4,
 * after [36]): ADDR (macroblock-indexed), INST (PC-indexed) and UNI
 * (unindexed).
 *
 * Each entry keeps one 2-bit saturating train-up counter per core and
 * a rollover counter implementing periodic train-down, so inactive
 * destinations decay out of the predicted group. The predicted set is
 * every core whose counter is at or above the threshold. Training
 * uses both the requester's own miss responses and external coherence
 * requests observed at a cache (associated with the data address or
 * with the static instruction that last touched the block).
 *
 * Tables can be capacity-limited (predictorEntries > 0): a
 * fully-associative LRU cache of entries models the 4 KB
 * configuration of Figure 13.
 */

#ifndef SPP_PREDICT_GROUP_PREDICTOR_HH
#define SPP_PREDICT_GROUP_PREDICTOR_HH

#include <array>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/core_set.hh"
#include "predict/predictor.hh"

namespace spp {

/** One group-predictor entry: 2-bit counters + train-down rollover.
 * Counter storage is sized by the configured core count, not the
 * compile-time maxCores capacity, so entries stay proportional to the
 * machine actually simulated. */
class GroupEntry
{
  public:
    static constexpr std::uint8_t counterMax = 3;

    explicit GroupEntry(unsigned n_cores) : counters_(n_cores, 0) {}

    /** Train up the counters of @p who; decay all counters once per
     * @p traindown_period trainings. */
    void
    train(const CoreSet &who, unsigned traindown_period)
    {
        for (CoreId c : who)
            if (counters_[c] < counterMax)
                ++counters_[c];
        if (++rollover_ >= traindown_period) {
            rollover_ = 0;
            for (auto &v : counters_)
                if (v > 0)
                    --v;
        }
    }

    /** Cores whose counter meets @p threshold. */
    CoreSet
    predict(unsigned threshold) const
    {
        CoreSet s;
        for (unsigned c = 0; c < counters_.size(); ++c)
            if (counters_[c] >= threshold)
                s.set(static_cast<CoreId>(c));
        return s;
    }

    std::uint8_t counter(CoreId c) const { return counters_[c]; }

  private:
    std::vector<std::uint8_t> counters_;
    std::uint8_t rollover_ = 0;
};

/**
 * A per-core table of GroupEntry records, optionally capacity-limited
 * with LRU replacement (capacity = 0 means unbounded).
 */
class GroupTable
{
  public:
    GroupTable(std::size_t capacity, unsigned n_cores)
        : capacity_(capacity), n_cores_(n_cores)
    {}

    /** Find or allocate the entry for @p key (touches LRU). */
    GroupEntry &
    entry(std::uint64_t key)
    {
        ++accesses_;
        auto it = map_.find(key);
        if (it != map_.end()) {
            if (capacity_ != 0)
                lru_.splice(lru_.begin(), lru_, it->second.lruPos);
            return it->second.entry;
        }
        if (capacity_ != 0 && map_.size() >= capacity_) {
            const std::uint64_t victim = lru_.back();
            lru_.pop_back();
            map_.erase(victim);
        }
        Slot slot{GroupEntry(n_cores_), {}};
        if (capacity_ != 0) {
            lru_.push_front(key);
            slot.lruPos = lru_.begin();
        }
        return map_.emplace(key, std::move(slot)).first->second.entry;
    }

    /** Find without allocating; nullptr on miss. */
    const GroupEntry *
    peek(std::uint64_t key) const
    {
        ++accesses_;
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second.entry;
    }

    std::size_t size() const { return map_.size(); }
    std::uint64_t accesses() const { return accesses_; }

  private:
    struct Slot
    {
        GroupEntry entry;
        std::list<std::uint64_t>::iterator lruPos{};
    };

    std::size_t capacity_;
    unsigned n_cores_;
    std::unordered_map<std::uint64_t, Slot> map_;
    std::list<std::uint64_t> lru_;
    mutable std::uint64_t accesses_ = 0;
};

/** How a group predictor indexes its table. */
enum class GroupIndex
{
    macroBlock, ///< ADDR prediction.
    instruction,///< INST prediction.
    none,       ///< UNI prediction (single entry).
};

/**
 * The ADDR / INST / UNI predictor family.
 */
class GroupPredictor : public DestinationPredictor
{
  public:
    GroupPredictor(const Config &cfg, unsigned n_cores,
                   GroupIndex index);

    Prediction predict(const PredictionQuery &q) override;
    void trainResponse(const PredictionQuery &q,
                       const CoreSet &who) override;
    void trainExternal(CoreId observer, Addr line, Addr macro_block,
                       Pc last_pc, CoreId requester,
                       bool is_write) override;
    void feedback(CoreId core, const Prediction &pred,
                  bool communicating, bool sufficient) override;
    std::size_t storageBits() const override;
    std::uint64_t tableAccesses() const override;

    GroupIndex index() const { return index_; }

  private:
    std::uint64_t keyOf(Addr macro_block, Pc pc) const;

    const Config &cfg_;
    unsigned n_cores_;
    GroupIndex index_;
    std::vector<GroupTable> tables_; ///< One per core.
};

} // namespace spp

#endif // SPP_PREDICT_GROUP_PREDICTOR_HH
