#include "predict/group_predictor.hh"

namespace spp {

GroupPredictor::GroupPredictor(const Config &cfg, unsigned n_cores,
                               GroupIndex index)
    : cfg_(cfg), n_cores_(n_cores), index_(index)
{
    tables_.reserve(n_cores);
    for (unsigned c = 0; c < n_cores; ++c)
        tables_.emplace_back(
            static_cast<std::size_t>(
                index == GroupIndex::none ? 1 : cfg.predictorEntries),
            n_cores);
}

std::uint64_t
GroupPredictor::keyOf(Addr macro_block, Pc pc) const
{
    switch (index_) {
      case GroupIndex::macroBlock:  return macro_block;
      case GroupIndex::instruction: return pc;
      case GroupIndex::none:        return 0;
    }
    return 0;
}

Prediction
GroupPredictor::predict(const PredictionQuery &q)
{
    Prediction p;
    const GroupEntry *e =
        tables_[q.core].peek(keyOf(q.macroBlock, q.pc));
    if (!e)
        return p;
    CoreSet targets = e->predict(cfg_.groupThreshold);
    targets.reset(q.core);
    if (targets.empty())
        return p;
    p.targets = targets;
    p.source = PredSource::table;
    return p;
}

void
GroupPredictor::trainResponse(const PredictionQuery &q,
                              const CoreSet &who)
{
    tables_[q.core].entry(keyOf(q.macroBlock, q.pc))
        .train(who, cfg_.trainDownPeriod);
}

void
GroupPredictor::trainExternal(CoreId observer, Addr line,
                              Addr macro_block, Pc last_pc,
                              CoreId requester, bool is_write)
{
    // An external coherence request tells this node that @p requester
    // is a future communication target for this block / instruction.
    (void)line;
    (void)is_write;
    tables_[observer].entry(keyOf(macro_block, last_pc))
        .train(CoreSet::single(requester), cfg_.trainDownPeriod);
}

void
GroupPredictor::feedback(CoreId core, const Prediction &pred,
                         bool communicating, bool sufficient)
{
    // Group predictors have no confidence mechanism.
    (void)core;
    (void)pred;
    (void)communicating;
    (void)sufficient;
}

std::size_t
GroupPredictor::storageBits() const
{
    // Per entry: 2 bits per core of train-up counters plus a 5-bit
    // rollover counter (Section 5.4: 37 bits for 16 cores).
    const std::size_t entry_bits = 2ul * n_cores_ + 5;
    std::size_t entries = 0;
    for (const auto &t : tables_)
        entries += t.size();
    return entries * entry_bits;
}

std::uint64_t
GroupPredictor::tableAccesses() const
{
    std::uint64_t n = 0;
    for (const auto &t : tables_)
        n += t.accesses();
    return n;
}

} // namespace spp
