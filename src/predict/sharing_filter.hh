/**
 * @file
 * Region-based sharing filter (after RegionScout [38] / TLB-based
 * snoop filtering [17], which Section 5.3 cites as the orthogonal fix
 * for prediction bandwidth wasted on non-communicating misses).
 *
 * Each core tracks the memory regions it has ever observed *shared*:
 * a region becomes shared when one of the core's misses in it was
 * serviced by a remote cache, or when the core receives an external
 * coherence request for a line in it. Misses to regions never seen
 * shared skip the prediction action entirely — they are almost
 * certainly private or cold data that only memory can service.
 */

#ifndef SPP_PREDICT_SHARING_FILTER_HH
#define SPP_PREDICT_SHARING_FILTER_HH

#include <bit>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace spp {

/** Per-core region sharing filter. */
class SharingFilter
{
  public:
    SharingFilter(unsigned n_cores, unsigned region_bytes)
        : shift_(std::countr_zero(
              static_cast<unsigned long>(region_bytes))),
          tag_bits_(physAddrBits - shift_), regions_(n_cores)
    {
        // countr_zero on a non-power-of-two would silently mis-bucket
        // every region (e.g. 3072 -> 1 KB buckets).
        SPP_ASSERT(region_bytes != 0 &&
                       std::has_single_bit(region_bytes),
                   "sharing-filter region size must be a power of "
                   "two, got {}", region_bytes);
        SPP_ASSERT(shift_ < physAddrBits,
                   "sharing-filter region too large: {} bytes",
                   region_bytes);
    }

    /** Should a prediction be attempted for this miss? */
    bool
    allowPrediction(CoreId core, Addr addr) const
    {
        return regions_[core].contains(addr >> shift_);
    }

    /** The core observed communication on a line of this region. */
    void
    markShared(CoreId core, Addr addr)
    {
        regions_[core].insert(addr >> shift_);
    }

    /** Regions currently tracked as shared at @p core. */
    std::size_t
    sharedRegions(CoreId core) const
    {
        return regions_[core].size();
    }

    /** Modelled storage: one region tag per tracked region per
     * core, the tag being the region number (physAddrBits minus the
     * region-offset bits). */
    std::size_t
    storageBits() const
    {
        std::size_t n = 0;
        for (const auto &r : regions_)
            n += r.size();
        return n * tag_bits_;
    }

    /** Bits of one stored region tag. */
    unsigned tagBits() const { return tag_bits_; }

  private:
    unsigned shift_;
    unsigned tag_bits_;
    std::vector<std::unordered_set<Addr>> regions_;
};

} // namespace spp

#endif // SPP_PREDICT_SHARING_FILTER_HH
