/**
 * @file
 * Region-based sharing filter (after RegionScout [38] / TLB-based
 * snoop filtering [17], which Section 5.3 cites as the orthogonal fix
 * for prediction bandwidth wasted on non-communicating misses).
 *
 * Each core tracks the memory regions it has ever observed *shared*:
 * a region becomes shared when one of the core's misses in it was
 * serviced by a remote cache, or when the core receives an external
 * coherence request for a line in it. Misses to regions never seen
 * shared skip the prediction action entirely — they are almost
 * certainly private or cold data that only memory can service.
 */

#ifndef SPP_PREDICT_SHARING_FILTER_HH
#define SPP_PREDICT_SHARING_FILTER_HH

#include <bit>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace spp {

/** Per-core region sharing filter. */
class SharingFilter
{
  public:
    SharingFilter(unsigned n_cores, unsigned region_bytes)
        : shift_(std::countr_zero(
              static_cast<unsigned long>(region_bytes))),
          regions_(n_cores)
    {}

    /** Should a prediction be attempted for this miss? */
    bool
    allowPrediction(CoreId core, Addr addr) const
    {
        return regions_[core].contains(addr >> shift_);
    }

    /** The core observed communication on a line of this region. */
    void
    markShared(CoreId core, Addr addr)
    {
        regions_[core].insert(addr >> shift_);
    }

    /** Regions currently tracked as shared at @p core. */
    std::size_t
    sharedRegions(CoreId core) const
    {
        return regions_[core].size();
    }

    /** Modelled storage: one tag per tracked region per core. */
    std::size_t
    storageBits() const
    {
        std::size_t n = 0;
        for (const auto &r : regions_)
            n += r.size();
        return n * 32;
    }

  private:
    unsigned shift_;
    std::vector<std::unordered_set<Addr>> regions_;
};

} // namespace spp

#endif // SPP_PREDICT_SHARING_FILTER_HH
