/**
 * @file
 * Trace capture/replay knobs. A leaf header (strings only) so
 * ExperimentConfig can embed the options without pulling the trace
 * subsystem into every translation unit.
 */

#ifndef SPP_TRACE_OPTIONS_HH
#define SPP_TRACE_OPTIONS_HH

#include <string>

namespace spp {

struct TraceOptions
{
    /**
     * Content-addressed trace store directory. When set, every
     * runExperiment() call resolves its workload key (see
     * traceKeyHash): replay-if-present, record-if-missing. Empty =
     * trace capture/replay is off and the run pays one null-pointer
     * check per issued op.
     */
    std::string dir;

    /** Force re-recording even when the store already holds the
     * trace (requires dir). */
    bool record = false;

    /**
     * Replay this exact `.spptrace` file for every workload instead
     * of consulting the store — the entry point for imported
     * (mcsim) traces. Takes precedence over dir.
     */
    std::string replayFile;

    bool enabled() const { return !dir.empty() || !replayFile.empty(); }

    /** SPP_TRACE_DIR (store directory), SPP_TRACE_RECORD (any value
     * but "0"), SPP_TRACE_REPLAY (file). */
    static TraceOptions fromEnv();
};

} // namespace spp

#endif // SPP_TRACE_OPTIONS_HH
