#include "trace/mcsim.hh"

#include <algorithm>
#include <cstddef>
#include <sstream>

#include "trace/codec.hh"

namespace spp {

namespace {

/** On-disk stride of one PTSInstrTrace record (LP64 tail padding). */
constexpr std::size_t recordBytes = 40;

std::uint64_t
readU64(const std::vector<std::uint8_t> &b, std::size_t off)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[off + static_cast<std::size_t>(i)];
    return v;
}

/** Flush a pending run of access-free instructions as one compute. */
void
flushCompute(std::vector<TraceOp> &ops, std::uint64_t &pending)
{
    if (pending == 0)
        return;
    ops.push_back({TraceOpKind::compute, 0, 0, pending});
    pending = 0;
}

bool
importThread(const std::string &path, std::vector<TraceOp> &ops,
             std::string &err)
{
    std::vector<std::uint8_t> bytes;
    if (!readFileBytes(path, bytes, err))
        return false;
    if (bytes.size() % recordBytes != 0) {
        std::ostringstream os;
        os << path << ": size " << bytes.size() << " is not a "
           << "multiple of the " << recordBytes
           << "-byte PTSInstrTrace record (snappy-compressed input?)";
        err = os.str();
        return false;
    }

    std::uint64_t pending = 0;
    for (std::size_t off = 0; off < bytes.size();
         off += recordBytes) {
        const std::uint64_t waddr = readU64(bytes, off);
        const std::uint64_t raddr = readU64(bytes, off + 8);
        const std::uint64_t raddr2 = readU64(bytes, off + 16);
        const std::uint64_t ip = readU64(bytes, off + 24);
        if (raddr == 0 && raddr2 == 0 && waddr == 0) {
            ++pending;
            continue;
        }
        flushCompute(ops, pending);
        if (raddr != 0)
            ops.push_back({TraceOpKind::read, raddr, ip, 0});
        if (raddr2 != 0)
            ops.push_back({TraceOpKind::read, raddr2, ip, 0});
        if (waddr != 0)
            ops.push_back({TraceOpKind::write, waddr, ip, 0});
    }
    flushCompute(ops, pending);
    return true;
}

bool
isMemOp(const TraceOp &op)
{
    return op.kind == TraceOpKind::read ||
        op.kind == TraceOpKind::write;
}

std::uint64_t
memOpCount(const std::vector<TraceOp> &ops)
{
    std::uint64_t n = 0;
    for (const TraceOp &op : ops)
        n += isMemOp(op) ? 1 : 0;
    return n;
}

/**
 * Rebuild @p ops with a global barrier after every @p sync_every-th
 * memory op, stopping after @p max_barriers so every thread reaches
 * the same barrier count.
 */
void
injectBarriers(std::vector<TraceOp> &ops, unsigned sync_every,
               std::uint64_t max_barriers)
{
    std::vector<TraceOp> out;
    out.reserve(ops.size() +
                static_cast<std::size_t>(max_barriers));
    std::uint64_t mem_ops = 0;
    std::uint64_t barriers = 0;
    for (const TraceOp &op : ops) {
        out.push_back(op);
        if (isMemOp(op) && ++mem_ops % sync_every == 0 &&
            barriers < max_barriers) {
            out.push_back({TraceOpKind::barrier, 0, 0, 0});
            ++barriers;
        }
    }
    // Threads shorter than max_barriers * sync_every still have to
    // show up at the remaining barriers or the rest would hang.
    while (barriers < max_barriers) {
        out.push_back({TraceOpKind::barrier, 0, 0, 0});
        ++barriers;
    }
    ops = std::move(out);
}

} // namespace

bool
importMcsimTrace(const std::vector<std::string> &thread_files,
                 unsigned sync_every, TraceData &out, std::string &err)
{
    if (thread_files.empty()) {
        err = "mcsim import needs at least one per-thread trace file";
        return false;
    }

    out = TraceData{};
    out.meta.workload = "mcsim-import";
    out.meta.numThreads =
        static_cast<std::uint32_t>(thread_files.size());
    out.meta.seed = 0;
    out.meta.scale = 1.0;
    out.meta.keyHash = 0;
    out.threads.resize(thread_files.size());

    for (std::size_t t = 0; t < thread_files.size(); ++t) {
        if (!importThread(thread_files[t], out.threads[t], err))
            return false;
    }

    if (sync_every > 0) {
        std::uint64_t min_mem = memOpCount(out.threads[0]);
        for (const auto &ops : out.threads)
            min_mem = std::min(min_mem, memOpCount(ops));
        const std::uint64_t max_barriers = min_mem / sync_every;
        if (max_barriers > 0) {
            for (auto &ops : out.threads)
                injectBarriers(ops, sync_every, max_barriers);
        }
    }
    return true;
}

} // namespace spp
