/**
 * @file
 * Trace replay: drive a CmpSystem from a recorded `.spptrace` op
 * stream instead of a live generator coroutine.
 *
 * Replay preserves per-thread program order exactly — each thread
 * awaits its recorded ops one at a time through the ordinary
 * ThreadContext API — and sync ops execute through the live
 * SyncManager, so inter-thread ordering (lock handoff, barrier
 * release, condition wakeup) is re-derived from the replayed
 * machine's timing, exactly as in a live run. Under the recording
 * Config this reproduces the original simulation event-for-event
 * (the determinism contract DESIGN.md §13 documents and the
 * record/replay tests enforce); under any other Config it replays
 * the same sharing pattern against different hardware.
 */

#ifndef SPP_TRACE_REPLAY_HH
#define SPP_TRACE_REPLAY_HH

#include <memory>

#include "sim/cmp_system.hh"
#include "trace/format.hh"

namespace spp {

/**
 * Per-thread program that replays @p trace; pass to CmpSystem::run.
 * The trace is shared, not copied, by the per-core closures.
 * Call traceReplayError() first — a thread-count mismatch is fatal
 * inside the returned function.
 */
CmpSystem::ThreadFn
replayThreadFn(std::shared_ptr<const TraceData> trace);

} // namespace spp

#endif // SPP_TRACE_REPLAY_HH
