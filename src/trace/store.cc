#include "trace/store.hh"

#include <cstdlib>
#include <sstream>

#include "common/content_store.hh"
#include "trace/options.hh"

namespace spp {

TraceOptions
TraceOptions::fromEnv()
{
    TraceOptions o;
    if (const char *dir = std::getenv("SPP_TRACE_DIR"))
        o.dir = dir;
    if (const char *rec = std::getenv("SPP_TRACE_RECORD"))
        o.record = rec[0] != '\0' &&
            !(rec[0] == '0' && rec[1] == '\0');
    if (const char *file = std::getenv("SPP_TRACE_REPLAY"))
        o.replayFile = file;
    return o;
}

namespace {

/** The shared content-store key of one recorded op stream. */
ContentKey
traceKey(const std::string &workload, const Config &cfg, double scale)
{
    ContentKey key("trace_v1");
    key.field("workload", workload)
        .field("scale", scale)
        .field("seed", cfg.seed)
        .field("cores", cfg.numCores)
        .field("lineBytes", cfg.lineBytes);
    return key;
}

} // namespace

std::string
traceKeyDescribe(const std::string &workload, const Config &cfg,
                 double scale)
{
    return traceKey(workload, cfg, scale).describe();
}

std::uint64_t
traceKeyHash(const std::string &workload, const Config &cfg,
             double scale)
{
    return traceKey(workload, cfg, scale).hash();
}

std::string
tracePath(const std::string &dir, const std::string &workload,
          std::uint64_t key_hash)
{
    return contentStorePath(dir, workload, key_hash, ".spptrace");
}

bool
traceFileExists(const std::string &path)
{
    return contentFileExists(path);
}

TraceMeta
traceMetaFor(const std::string &workload, const Config &cfg,
             double scale)
{
    TraceMeta m;
    m.workload = workload;
    m.numThreads = cfg.numCores;
    m.seed = cfg.seed;
    m.lineBytes = cfg.lineBytes;
    m.scale = scale;
    m.keyHash = traceKeyHash(workload, cfg, scale);
    return m;
}

std::string
traceReplayError(const TraceData &trace, const Config &cfg)
{
    if (trace.meta.numThreads != cfg.numCores) {
        std::ostringstream os;
        os << "trace holds " << trace.meta.numThreads
           << " thread streams but the machine has " << cfg.numCores
           << " cores; re-record with --cores "
           << trace.meta.numThreads << " or match the geometry";
        return os.str();
    }
    if (trace.threads.size() != trace.meta.numThreads)
        return "trace stream count disagrees with its header";
    return "";
}

} // namespace spp
