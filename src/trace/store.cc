#include "trace/store.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/hash.hh"
#include "trace/options.hh"

namespace spp {

TraceOptions
TraceOptions::fromEnv()
{
    TraceOptions o;
    if (const char *dir = std::getenv("SPP_TRACE_DIR"))
        o.dir = dir;
    if (const char *rec = std::getenv("SPP_TRACE_RECORD"))
        o.record = rec[0] != '\0' &&
            !(rec[0] == '0' && rec[1] == '\0');
    if (const char *file = std::getenv("SPP_TRACE_REPLAY"))
        o.replayFile = file;
    return o;
}

std::string
traceKeyDescribe(const std::string &workload, const Config &cfg,
                 double scale)
{
    std::ostringstream os;
    os << "trace_v" << 1 << " workload=" << workload
       << " scale=" << scale << " seed=" << cfg.seed
       << " cores=" << cfg.numCores
       << " lineBytes=" << cfg.lineBytes;
    return os.str();
}

std::uint64_t
traceKeyHash(const std::string &workload, const Config &cfg,
             double scale)
{
    return fnv1a64(traceKeyDescribe(workload, cfg, scale));
}

std::string
tracePath(const std::string &dir, const std::string &workload,
          std::uint64_t key_hash)
{
    static const char *hex = "0123456789abcdef";
    std::string name;
    for (char c : workload)
        name += (std::isalnum(static_cast<unsigned char>(c)) ||
                 c == '.' || c == '_' || c == '-')
            ? c
            : '_';
    std::string digits(16, '0');
    for (int i = 15; i >= 0; --i) {
        digits[static_cast<std::size_t>(i)] = hex[key_hash & 0xf];
        key_hash >>= 4;
    }
    return dir + "/" + name + "-" + digits + ".spptrace";
}

bool
traceFileExists(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return static_cast<bool>(in);
}

TraceMeta
traceMetaFor(const std::string &workload, const Config &cfg,
             double scale)
{
    TraceMeta m;
    m.workload = workload;
    m.numThreads = cfg.numCores;
    m.seed = cfg.seed;
    m.lineBytes = cfg.lineBytes;
    m.scale = scale;
    m.keyHash = traceKeyHash(workload, cfg, scale);
    return m;
}

std::string
traceReplayError(const TraceData &trace, const Config &cfg)
{
    if (trace.meta.numThreads != cfg.numCores) {
        std::ostringstream os;
        os << "trace holds " << trace.meta.numThreads
           << " thread streams but the machine has " << cfg.numCores
           << " cores; re-record with --cores "
           << trace.meta.numThreads << " or match the geometry";
        return os.str();
    }
    if (trace.threads.size() != trace.meta.numThreads)
        return "trace stream count disagrees with its header";
    return "";
}

} // namespace spp
