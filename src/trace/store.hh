/**
 * @file
 * Content-addressed trace store.
 *
 * A workload's op stream is a deterministic function of the
 * generator, its iteration scale, the RNG seed, the thread/core
 * count, and the line size (addresses are line-indexed) — and of
 * nothing else: protocol, predictor, sharer format, latencies and
 * topology only shape *when* ops complete, never *which* ops a
 * thread issues. The store therefore keys each trace by an FNV-1a
 * hash (the same hash family that stamps run manifests) of exactly
 * those fields, so one recorded generator run is shared by every
 * protocol/predictor/format cell of a sweep: record-if-missing,
 * replay-if-present.
 */

#ifndef SPP_TRACE_STORE_HH
#define SPP_TRACE_STORE_HH

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "trace/format.hh"

namespace spp {

/** Canonical "key=value ..." description of a trace key (the FNV-1a
 * preimage; also recorded in run manifests for auditability). */
std::string traceKeyDescribe(const std::string &workload,
                             const Config &cfg, double scale);

/** FNV-1a hash of traceKeyDescribe(). */
std::uint64_t traceKeyHash(const std::string &workload,
                           const Config &cfg, double scale);

/** Store path of a trace: dir/<workload>-<hex key>.spptrace. */
std::string tracePath(const std::string &dir,
                      const std::string &workload,
                      std::uint64_t key_hash);

/** Does @p path exist (and is readable)? */
bool traceFileExists(const std::string &path);

/** Fill @p meta from the run parameters (store bookkeeping). */
TraceMeta traceMetaFor(const std::string &workload, const Config &cfg,
                       double scale);

/**
 * Validate that @p trace can drive a machine configured as @p cfg:
 * the thread count must match cfg.numCores exactly. Returns an
 * error message, or "" when compatible. A differing lineBytes is
 * legal (addresses are absolute) but changes sharing granularity;
 * the caller may warn.
 */
std::string traceReplayError(const TraceData &trace,
                             const Config &cfg);

} // namespace spp

#endif // SPP_TRACE_STORE_HH
