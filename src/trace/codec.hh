/**
 * @file
 * Binary encoding of `.spptrace` files (format version 1).
 *
 * Layout (all integers little-endian):
 *
 *   magic[8] = "SPPTRACE"
 *   u32 version           (current: 1)
 *   u32 numThreads
 *   u64 seed              recorded Config::seed
 *   u32 lineBytes         recorded Config::lineBytes
 *   u32 flags             reserved, must be 0
 *   u64 scaleBits         IEEE-754 bits of WorkloadParams::scale
 *   u64 keyHash           traceKeyHash of the recorded run (0 = n/a)
 *   u32 nameLen, bytes    workload name / import tag
 *   u64 totalOps          must equal the sum of per-thread counts
 *   per thread:  u64 opCount, then opCount encoded ops
 *   u64 checksum          FNV-1a of every preceding byte
 *
 * Ops are one opcode byte plus LEB128 varints. Memory-op addresses
 * and PCs are zigzag deltas against the previous value *of the same
 * thread* (workloads walk lines sequentially, so deltas are small);
 * sync ops carry their primitive id as a plain varint and their
 * call-site sid as a PC delta. Typical cost: ~2-4 bytes/op vs 25
 * raw.
 *
 * decodeTrace() is strict: bad magic, unknown version, truncation
 * anywhere, overlong varints, unknown opcodes, count mismatches,
 * trailing garbage, and checksum failures all produce a descriptive
 * error instead of a partial trace.
 */

#ifndef SPP_TRACE_CODEC_HH
#define SPP_TRACE_CODEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/content_store.hh"
#include "trace/format.hh"

namespace spp {

/** Current on-disk format version. */
inline constexpr std::uint32_t traceFormatVersion = 1;

/** Serialize @p trace to the v1 byte layout. */
std::vector<std::uint8_t> encodeTrace(const TraceData &trace);

/**
 * Strictly parse @p bytes into @p out. Returns false and sets
 * @p err (leaving @p out unspecified) on any malformation.
 */
bool decodeTrace(const std::vector<std::uint8_t> &bytes,
                 TraceData &out, std::string &err);

/** Load + decode @p path; fatal() with the decode error on failure. */
TraceData loadTraceOrFatal(const std::string &path);

} // namespace spp

#endif // SPP_TRACE_CODEC_HH
