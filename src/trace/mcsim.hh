/**
 * @file
 * Import adapter for mcsim (McSimA+) TraceGen traces.
 *
 * mcsim's Pin-based TraceGen emits one binary file per thread of
 * fixed-size PTSInstrTrace records:
 *
 *   struct PTSInstrTrace {          // 40 bytes on disk (LP64,
 *       uint64_t waddr;             //  4 B tail padding included)
 *       uint64_t raddr;
 *       uint64_t raddr2;
 *       uint64_t ip;
 *       uint32_t category;
 *   };
 *
 * Each record is one retired instruction: up to two loads (raddr,
 * raddr2), one store (waddr) — zero meaning "no access" — and the
 * instruction pointer. We map loads/stores to trace read/write ops
 * keyed by ip, and fold runs of access-free records into a single
 * compute op, preserving per-thread instruction counts. mcsim
 * production traces are snappy-compressed in chunks; decompress
 * them first (this repo takes no third-party dependencies).
 *
 * mcsim traces carry no synchronization events (pthreads run in
 * mcsim's frontend), so an imported trace has no epoch boundaries
 * for SP-prediction to latch onto. The optional @p sync_every knob
 * injects a global barrier every N memory ops per thread — capped
 * at the count the *shortest* thread reaches, so no thread blocks
 * on a barrier its peers never arrive at — giving the predictor a
 * uniform epoch structure to train against.
 */

#ifndef SPP_TRACE_MCSIM_HH
#define SPP_TRACE_MCSIM_HH

#include <string>
#include <vector>

#include "trace/format.hh"

namespace spp {

/**
 * Import one TraceGen file per thread into @p out. Returns false and
 * sets @p err on unreadable or malformed (non-multiple-of-record)
 * input. @p sync_every 0 = no barrier injection.
 */
bool importMcsimTrace(const std::vector<std::string> &thread_files,
                      unsigned sync_every, TraceData &out,
                      std::string &err);

} // namespace spp

#endif // SPP_TRACE_MCSIM_HH
