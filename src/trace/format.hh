/**
 * @file
 * In-memory model of a `.spptrace` workload trace.
 *
 * A trace is the per-thread sequence of *semantic* operations a
 * workload issued against ThreadContext: memory reads/writes (line
 * address + static PC), compute bursts, and synchronization ops
 * (barrier / lock / unlock / condition wait-signal-broadcast /
 * semaphore post-wait / join, each with its primitive id and
 * call-site sid). Sync primitives are recorded at this level — not
 * as their internal lock-word / barrier-counter memory traffic — so
 * a replay regenerates that traffic through the live SyncManager and
 * stays valid under any protocol, predictor, or sharer-format
 * configuration.
 *
 * Derived quantities (macroblock id, home node, region) are pure
 * functions of the line address and the replay Config, so the format
 * stores only the address. This header is a leaf (types only); the
 * binary encoding lives in codec.hh.
 */

#ifndef SPP_TRACE_FORMAT_HH
#define SPP_TRACE_FORMAT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace spp {

/** Operation kinds; values are the on-disk opcodes (append only). */
enum class TraceOpKind : std::uint8_t
{
    read = 0,
    write = 1,
    compute = 2,
    barrier = 3,
    lock = 4,
    unlock = 5,
    condWait = 6,
    condSignal = 7,
    condBroadcast = 8,
    semPost = 9,
    semWait = 10,
    join = 11,
};

inline constexpr unsigned traceOpKinds = 12;

const char *toString(TraceOpKind k);

/** One recorded operation of one thread. */
struct TraceOp
{
    TraceOpKind kind = TraceOpKind::read;
    Addr addr = 0;          ///< read/write: byte address (line base).
    Pc pc = 0;              ///< read/write: PC; sync ops: sid.
    std::uint64_t arg = 0;  ///< compute: instructions; sync ops: id.

    bool
    operator==(const TraceOp &o) const
    {
        return kind == o.kind && addr == o.addr && pc == o.pc &&
            arg == o.arg;
    }
};

/** Provenance of a trace: what produced it and for which geometry. */
struct TraceMeta
{
    std::string workload;       ///< Generator name or import tag.
    std::uint32_t numThreads = 0;
    std::uint64_t seed = 0;     ///< Config::seed of the recorded run.
    std::uint32_t lineBytes = 64;
    double scale = 1.0;         ///< WorkloadParams::scale.
    std::uint64_t keyHash = 0;  ///< traceKeyHash of the recorded run;
                                ///< 0 for imported traces.
};

/** A fully decoded trace: metadata + one op stream per thread. */
struct TraceData
{
    TraceMeta meta;
    std::vector<std::vector<TraceOp>> threads;

    std::uint64_t
    totalOps() const
    {
        std::uint64_t n = 0;
        for (const auto &t : threads)
            n += t.size();
        return n;
    }
};

/**
 * Recording hook: CmpSystem carries an optional TraceSink pointer;
 * when set, ThreadContext reports every semantic op at issue time.
 * Observational only — recording must not perturb the simulation.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(CoreId core, const TraceOp &op) = 0;
};

/** The standard sink: buffers per-thread op streams in memory. */
class TraceRecorder : public TraceSink
{
  public:
    explicit TraceRecorder(unsigned n_threads)
    {
        data.threads.resize(n_threads);
        data.meta.numThreads = n_threads;
    }

    void
    record(CoreId core, const TraceOp &op) override
    {
        data.threads[core].push_back(op);
    }

    TraceData data;
};

} // namespace spp

#endif // SPP_TRACE_FORMAT_HH
