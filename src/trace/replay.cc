#include "trace/replay.hh"

#include <coroutine>
#include <cstdint>

#include "common/logging.hh"

namespace spp {

namespace {

/**
 * Replay-time op layout: half the footprint of TraceOp, so a large
 * trace streams through the cache at 16 B/op instead of 32 and
 * displaces less simulator state. Generator traces always fit (the
 * layout:: address map and synthetic PCs are 32-bit); imported
 * traces with 64-bit addresses or PCs replay from the wide TraceOp
 * stream instead.
 */
struct PackedOp
{
    std::uint32_t addr;
    std::uint32_t pc;
    std::uint32_t arg;
    std::uint8_t kind;
};

TraceOp
widen(const PackedOp &p)
{
    return {static_cast<TraceOpKind>(p.kind), p.addr, p.pc, p.arg};
}

TraceOp
widen(const TraceOp &op)
{
    return op;
}

bool
fitsPacked(const TraceData &trace)
{
    constexpr std::uint64_t lim = ~std::uint32_t{0};
    for (const auto &ops : trace.threads)
        for (const TraceOp &op : ops)
            if (op.addr > lim || op.pc > lim || op.arg > lim)
                return false;
    return true;
}

/**
 * One thread's replay cursor. Rather than a coroutine with one
 * suspension point per op kind — whose per-op resume overhead shows
 * up directly in replay throughput — the chain hands each op to
 * ThreadContext::issueTraceOp with `issue` as its completion
 * action. Every op bottoms out in a scheduled event (memory and
 * compute always do; sync ops either block or fall through to
 * memory traffic), so the chain trampolines through the event loop
 * instead of recursing. The op sequence, issue points and event
 * schedule are exactly those of the equivalent coroutine.
 */
template <typename O>
struct ReplayChain
{
    ThreadContext &ctx;
    const std::vector<O> &ops;
    std::size_t next = 0;
    std::coroutine_handle<> done{};

    void
    issue()
    {
        if (next == ops.size()) {
            done.resume();
            return;
        }
        const TraceOp op = widen(ops[next++]);
        ctx.issueTraceOp(op, ThreadContext::Action([this]() {
            issue();
        }));
    }
};

/** Suspend once, pump the whole chain, resume at stream end. */
template <typename O>
struct ChainAwait
{
    ReplayChain<O> *chain;

    bool await_ready() const noexcept { return chain->ops.empty(); }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        chain->done = h;
        chain->issue();
    }

    void await_resume() const noexcept {}
};

template <typename O>
Task
replayOps(ThreadContext &ctx, const std::vector<O> &ops)
{
    ReplayChain<O> chain{ctx, ops};
    co_await ChainAwait<O>{&chain};
}

} // namespace

CmpSystem::ThreadFn
replayThreadFn(std::shared_ptr<const TraceData> trace)
{
    if (fitsPacked(*trace)) {
        auto packed = std::make_shared<
            std::vector<std::vector<PackedOp>>>();
        packed->reserve(trace->threads.size());
        for (const auto &ops : trace->threads) {
            auto &out = packed->emplace_back();
            out.reserve(ops.size());
            for (const TraceOp &op : ops)
                out.push_back({static_cast<std::uint32_t>(op.addr),
                               static_cast<std::uint32_t>(op.pc),
                               static_cast<std::uint32_t>(op.arg),
                               static_cast<std::uint8_t>(op.kind)});
        }
        return [packed](ThreadContext &ctx) {
            SPP_ASSERT(ctx.self() < packed->size(),
                       "replay trace has {} thread streams, core {} "
                       "has none",
                       packed->size(), ctx.self());
            return replayOps(ctx, (*packed)[ctx.self()]);
        };
    }
    return [trace](ThreadContext &ctx) {
        SPP_ASSERT(ctx.self() < trace->threads.size(),
                   "replay trace has {} thread streams, core {} has "
                   "none",
                   trace->threads.size(), ctx.self());
        return replayOps(ctx, trace->threads[ctx.self()]);
    };
}

} // namespace spp
