#include "trace/codec.hh"

#include <bit>
#include <cstring>

#include "common/hash.hh"
#include "common/logging.hh"

namespace spp {

const char *
toString(TraceOpKind k)
{
    switch (k) {
      case TraceOpKind::read: return "read";
      case TraceOpKind::write: return "write";
      case TraceOpKind::compute: return "compute";
      case TraceOpKind::barrier: return "barrier";
      case TraceOpKind::lock: return "lock";
      case TraceOpKind::unlock: return "unlock";
      case TraceOpKind::condWait: return "cond_wait";
      case TraceOpKind::condSignal: return "cond_signal";
      case TraceOpKind::condBroadcast: return "cond_broadcast";
      case TraceOpKind::semPost: return "sem_post";
      case TraceOpKind::semWait: return "sem_wait";
      case TraceOpKind::join: return "join";
    }
    return "?";
}

namespace {

constexpr char kMagic[8] = {'S', 'P', 'P', 'T', 'R', 'A', 'C', 'E'};

// ------------------------------------------------------------------
// Primitive writers (explicit little-endian byte order).
// ------------------------------------------------------------------

void
put8(std::vector<std::uint8_t> &b, std::uint8_t v)
{
    b.push_back(v);
}

void
put32(std::vector<std::uint8_t> &b, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
put64(std::vector<std::uint8_t> &b, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putVarint(std::vector<std::uint8_t> &b, std::uint64_t v)
{
    while (v >= 0x80) {
        b.push_back(static_cast<std::uint8_t>(v) | 0x80u);
        v >>= 7;
    }
    b.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::uint64_t cur, std::uint64_t prev)
{
    // Two's-complement difference, zigzag-folded to keep small
    // forward and backward steps small on disk.
    const auto d = static_cast<std::int64_t>(cur - prev);
    return (static_cast<std::uint64_t>(d) << 1) ^
        static_cast<std::uint64_t>(d >> 63);
}

std::uint64_t
unzigzag(std::uint64_t z, std::uint64_t prev)
{
    const std::uint64_t d = (z >> 1) ^ (~(z & 1) + 1);
    return prev + d;
}

/** Does @p kind carry a call-site / instruction PC field? */
bool
hasPc(TraceOpKind k)
{
    return k != TraceOpKind::compute && k != TraceOpKind::lock &&
        k != TraceOpKind::unlock;
}

/** Does @p kind carry an id/instructions argument? */
bool
hasArg(TraceOpKind k)
{
    return k != TraceOpKind::read && k != TraceOpKind::write &&
        k != TraceOpKind::join;
}

bool
hasAddr(TraceOpKind k)
{
    return k == TraceOpKind::read || k == TraceOpKind::write;
}

// ------------------------------------------------------------------
// Bounded reader.
// ------------------------------------------------------------------

struct Cursor
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;
    std::string err{};

    bool failed() const { return !err.empty(); }

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what + " at offset " + std::to_string(pos);
        return false;
    }

    bool
    need(std::size_t n, const char *what)
    {
        if (failed())
            return false;
        if (size - pos < n)
            return fail(std::string("truncated ") + what);
        return true;
    }

    std::uint8_t
    get8(const char *what)
    {
        if (!need(1, what))
            return 0;
        return data[pos++];
    }

    std::uint32_t
    get32(const char *what)
    {
        if (!need(4, what))
            return 0;
        std::uint32_t v = 0;
        for (unsigned i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
        return v;
    }

    std::uint64_t
    get64(const char *what)
    {
        if (!need(8, what))
            return 0;
        std::uint64_t v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
        return v;
    }

    std::uint64_t
    getVarint(const char *what)
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            if (!need(1, what))
                return 0;
            const std::uint8_t byte = data[pos++];
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if ((byte & 0x80) == 0) {
                if (shift == 63 && (byte & 0x7e) != 0) {
                    fail(std::string("overflowing varint ") + what);
                    return 0;
                }
                return v;
            }
        }
        fail(std::string("overlong varint ") + what);
        return 0;
    }
};

} // namespace

std::vector<std::uint8_t>
encodeTrace(const TraceData &trace)
{
    std::vector<std::uint8_t> b;
    b.reserve(64 + trace.totalOps() * 4);

    for (char c : kMagic)
        put8(b, static_cast<std::uint8_t>(c));
    put32(b, traceFormatVersion);
    put32(b, static_cast<std::uint32_t>(trace.threads.size()));
    put64(b, trace.meta.seed);
    put32(b, trace.meta.lineBytes);
    put32(b, 0); // flags (reserved)
    put64(b, std::bit_cast<std::uint64_t>(trace.meta.scale));
    put64(b, trace.meta.keyHash);
    put32(b, static_cast<std::uint32_t>(trace.meta.workload.size()));
    for (char c : trace.meta.workload)
        put8(b, static_cast<std::uint8_t>(c));
    put64(b, trace.totalOps());

    for (const std::vector<TraceOp> &ops : trace.threads) {
        put64(b, ops.size());
        std::uint64_t prev_addr = 0;
        std::uint64_t prev_pc = 0;
        for (const TraceOp &op : ops) {
            put8(b, static_cast<std::uint8_t>(op.kind));
            if (hasArg(op.kind))
                putVarint(b, op.arg);
            if (hasPc(op.kind)) {
                putVarint(b, zigzag(op.pc, prev_pc));
                prev_pc = op.pc;
            }
            if (hasAddr(op.kind)) {
                putVarint(b, zigzag(op.addr, prev_addr));
                prev_addr = op.addr;
            }
        }
    }

    put64(b, fnv1a64(b.data(), b.size()));
    return b;
}

bool
decodeTrace(const std::vector<std::uint8_t> &bytes, TraceData &out,
            std::string &err)
{
    Cursor c{bytes.data(), bytes.size()};

    char magic[8];
    for (char &m : magic)
        m = static_cast<char>(c.get8("magic"));
    if (c.failed() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        err = c.failed() ? c.err : "bad magic (not a .spptrace file)";
        return false;
    }

    const std::uint32_t version = c.get32("version");
    if (!c.failed() && version != traceFormatVersion) {
        err = "unsupported trace format version " +
            std::to_string(version) + " (this build reads version " +
            std::to_string(traceFormatVersion) + ")";
        return false;
    }

    out = TraceData{};
    const std::uint32_t n_threads = c.get32("thread count");
    if (!c.failed() && (n_threads == 0 || n_threads > 65536)) {
        err = "implausible thread count " + std::to_string(n_threads);
        return false;
    }
    out.meta.numThreads = n_threads;
    out.meta.seed = c.get64("seed");
    out.meta.lineBytes = c.get32("line bytes");
    const std::uint32_t flags = c.get32("flags");
    if (!c.failed() && flags != 0) {
        err = "unknown header flags " + std::to_string(flags);
        return false;
    }
    out.meta.scale = std::bit_cast<double>(c.get64("scale"));
    out.meta.keyHash = c.get64("key hash");
    const std::uint32_t name_len = c.get32("name length");
    if (!c.failed() && name_len > 4096) {
        err = "implausible workload-name length " +
            std::to_string(name_len);
        return false;
    }
    if (c.need(name_len, "workload name")) {
        out.meta.workload.assign(
            reinterpret_cast<const char *>(c.data + c.pos), name_len);
        c.pos += name_len;
    }
    const std::uint64_t total_ops = c.get64("total op count");
    if (c.failed()) {
        err = c.err;
        return false;
    }

    out.threads.resize(n_threads);
    std::uint64_t decoded_ops = 0;
    for (std::uint32_t t = 0; t < n_threads && !c.failed(); ++t) {
        const std::uint64_t op_count = c.get64("thread op count");
        if (c.failed())
            break;
        // Every encoded op is at least one byte, so a count larger
        // than the file is corrupt (and would otherwise drive a
        // giant allocation before the truncation check fired).
        if (op_count > bytes.size()) {
            c.fail("implausible op count " + std::to_string(op_count));
            break;
        }
        std::vector<TraceOp> &ops = out.threads[t];
        ops.reserve(op_count);
        std::uint64_t prev_addr = 0;
        std::uint64_t prev_pc = 0;
        for (std::uint64_t i = 0; i < op_count && !c.failed(); ++i) {
            TraceOp op;
            const std::uint8_t opcode = c.get8("opcode");
            if (c.failed())
                break;
            if (opcode >= traceOpKinds) {
                c.fail("unknown opcode " + std::to_string(opcode));
                break;
            }
            op.kind = static_cast<TraceOpKind>(opcode);
            if (hasArg(op.kind))
                op.arg = c.getVarint("op arg");
            if (hasPc(op.kind)) {
                op.pc = unzigzag(c.getVarint("op pc"), prev_pc);
                prev_pc = op.pc;
            }
            if (hasAddr(op.kind)) {
                op.addr = unzigzag(c.getVarint("op addr"), prev_addr);
                prev_addr = op.addr;
            }
            if (!c.failed())
                ops.push_back(op);
        }
        decoded_ops += ops.size();
    }

    if (!c.failed() && decoded_ops != total_ops)
        c.fail("op count mismatch: header promises " +
               std::to_string(total_ops) + ", streams hold " +
               std::to_string(decoded_ops));

    const std::size_t payload_end = c.pos;
    const std::uint64_t stored_sum = c.get64("checksum");
    if (!c.failed() && c.pos != bytes.size())
        c.fail("trailing garbage (" +
               std::to_string(bytes.size() - c.pos) + " bytes)");
    if (!c.failed() &&
        stored_sum != fnv1a64(bytes.data(), payload_end))
        c.fail("checksum mismatch (corrupt trace)");

    if (c.failed()) {
        err = c.err;
        return false;
    }
    return true;
}

TraceData
loadTraceOrFatal(const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    std::string err;
    if (!readFileBytes(path, bytes, err))
        SPP_FATAL("trace replay: {}", err);
    TraceData trace;
    if (!decodeTrace(bytes, trace, err))
        SPP_FATAL("trace replay: {}: {}", path, err);
    return trace;
}

} // namespace spp
