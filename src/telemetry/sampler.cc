#include "telemetry/sampler.hh"

#include <ostream>

#include "common/logging.hh"

namespace spp {

Sampler::Sampler(MetricRegistry registry, Tick period)
    : reg_(std::move(registry)), period_(period)
{
    SPP_ASSERT(period_ > 0, "sampler period must be non-zero");
}

Sampler::~Sampler()
{
    if (eq_ != nullptr)
        eq_->setTickObserver(nullptr);
}

void
Sampler::attach(EventQueue &eq)
{
    SPP_ASSERT(eq_ == nullptr, "sampler attached twice");
    eq_ = &eq;
    eq.setTickObserver(this, period_);
    sample(eq.curTick());
}

void
Sampler::onBoundary(Tick boundary)
{
    sample(boundary);
}

void
Sampler::finalize()
{
    if (eq_ == nullptr)
        return;
    // When the run ends exactly on a boundary, that row was sampled
    // *before* the boundary-tick events ran; drop it and re-sample so
    // the final row always reflects the end-of-run state.
    if (!rows_.empty() && rows_.back().tick == eq_->curTick())
        rows_.pop_back();
    sample(eq_->curTick());
    eq_->setTickObserver(nullptr);
    eq_ = nullptr;
}

void
Sampler::sample(Tick t)
{
    Row row;
    row.tick = t;
    row.values.reserve(reg_.size());
    for (std::size_t i = 0; i < reg_.size(); ++i)
        row.values.push_back(reg_.read(i));
    rows_.push_back(std::move(row));
}

double
Sampler::delta(std::size_t row, std::size_t metric) const
{
    const double cur = rows_[row].values[metric];
    return row == 0 ? cur : cur - rows_[row - 1].values[metric];
}

void
Sampler::writeCsv(std::ostream &os) const
{
    os << "tick";
    for (std::size_t i = 0; i < reg_.size(); ++i)
        os << ',' << reg_.name(i);
    os << '\n';
    for (const Row &row : rows_) {
        os << row.tick;
        for (double v : row.values) {
            os << ',';
            writeJsonNumber(os, v);
        }
        os << '\n';
    }
}

Json
Sampler::toJson() const
{
    Json doc = Json::object();
    doc["period"] = Json(period_);
    Json names = Json::array();
    for (std::size_t i = 0; i < reg_.size(); ++i)
        names.push(Json(reg_.name(i)));
    doc["metrics"] = std::move(names);
    Json rows = Json::array();
    for (const Row &row : rows_) {
        Json r = Json::array();
        r.push(Json(row.tick));
        for (double v : row.values)
            r.push(Json(v));
        rows.push(std::move(r));
    }
    doc["rows"] = std::move(rows);
    return doc;
}

} // namespace spp
