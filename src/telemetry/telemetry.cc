#include "telemetry/telemetry.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>

#include "common/format.hh"
#include "common/logging.hh"

namespace spp {

namespace {

std::string
hex64(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

// ---------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------

TelemetryOptions
TelemetryOptions::fromEnv()
{
    TelemetryOptions opts;
    if (const char *dir = std::getenv("SPP_TELEMETRY"))
        opts.dir = dir;
    if (const char *period = std::getenv("SPP_TELEMETRY_PERIOD")) {
        const long long n = std::atoll(period);
        if (n > 0)
            opts.samplePeriod = static_cast<Tick>(n);
        else
            warn("ignoring invalid SPP_TELEMETRY_PERIOD='{}'", period);
    }
    if (const char *sp = std::getenv("SPP_SELF_PROFILE"))
        opts.selfProfile = std::string_view(sp) != "0";
    return opts;
}

std::string
sanitizeFileLabel(const std::string &label)
{
    std::string out = label;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        if (!ok)
            c = '_';
    }
    return out.empty() ? std::string("run") : out;
}

// ---------------------------------------------------------------------
// Epoch timeline recorder
// ---------------------------------------------------------------------

/**
 * SyncListener turning the per-core sync-point stream into Chrome
 * duration events: each epoch [sync-point, next sync-point) becomes
 * one "X" event on the core's track, named by the sync type and
 * static ID that *began* it (the paper's epoch naming).
 *
 * With an epoch annotator installed, every closed epoch additionally
 * carries an "attr" args object, and its wasted_bytes / noc_bytes
 * fields become per-sync-point counter series (one pair of tracks
 * per distinct sync-point name, capped so a pathological workload
 * cannot drown the timeline; drops are counted in the manifest).
 */
struct RunTelemetry::EpochRecorder : SyncListener
{
    ChromeTraceWriter *trace = nullptr;
    const EventQueue *eq = nullptr;
    const EpochAnnotator *annotator = nullptr;

    /** Per-sync-point counter-track cap (each name costs two
     * tracks). */
    static constexpr std::size_t maxAttrTracks = 64;
    std::set<std::string> attrTracks;
    std::uint64_t attrTracksDropped = 0;

    struct Open
    {
        bool valid = false;
        Tick begin = 0;
        SyncType type = SyncType::threadStart;
        std::uint64_t staticId = 0;
        std::uint64_t dynamicId = 0;
    };
    std::vector<Open> open;
    std::uint64_t epochsClosed = 0;

    void
    onSyncPoint(CoreId core, const SyncPointInfo &info) override
    {
        const Tick now = eq->curTick();
        closeEpoch(core, now);
        trace->instant(toString(info.type), "sync", core, now);
        Open &o = open[core];
        o.valid = true;
        o.begin = now;
        o.type = info.type;
        o.staticId = info.staticId;
        o.dynamicId = info.dynamicId;
    }

    void
    closeEpoch(CoreId core, Tick now)
    {
        Open &o = open[core];
        if (!o.valid)
            return;
        const std::string name =
            strfmt("{}#{}", toString(o.type), o.staticId);
        Json args = Json::object();
        args["staticId"] = Json(o.staticId);
        args["dynamicId"] = Json(o.dynamicId);
        if (annotator != nullptr && *annotator) {
            Json attr = (*annotator)(core);
            emitAttrCounters(name, attr, now);
            args["attr"] = std::move(attr);
        }
        trace->duration(name, "epoch", core, o.begin, now,
                        std::move(args));
        ++epochsClosed;
        o.valid = false;
    }

    /** Per-sync-point cost series: the closing epoch's wasted and
     * NoC bytes, plotted at the close tick under the epoch name. */
    void
    emitAttrCounters(const std::string &name, const Json &attr,
                     Tick now)
    {
        if (attrTracks.find(name) == attrTracks.end()) {
            if (attrTracks.size() >= maxAttrTracks) {
                ++attrTracksDropped;
                return;
            }
            attrTracks.insert(name);
        }
        for (const char *field : {"wasted_bytes", "noc_bytes"}) {
            const Json *v = attr.find(field);
            if (v != nullptr && v->isNumber()) {
                trace->counter(strfmt("attr.{}.{}", name, field),
                               now, v->asNumber());
            }
        }
    }
};

// ---------------------------------------------------------------------
// RunTelemetry
// ---------------------------------------------------------------------

RunTelemetry::RunTelemetry(TelemetryOptions opts, std::string label)
    : opts_(std::move(opts)), label_(sanitizeFileLabel(label))
{
}

RunTelemetry::~RunTelemetry() = default;

std::string
RunTelemetry::base() const
{
    return opts_.dir + "/" + label_;
}

void
RunTelemetry::registerMetrics(CmpSystem &sys)
{
    MetricRegistry reg;
    const MemSys &mem = sys.memSys();
    const MemSysStats &ms = mem.stats();
    const EventQueue &eq = sys.eventQueue();

    reg.addGauge("events", [&eq] {
        return static_cast<double>(eq.executed());
    });

    reg.addCounter("mem.accesses", ms.accesses);
    reg.addCounter("mem.misses", ms.misses);
    reg.addCounter("mem.comm_misses", ms.communicatingMisses);
    reg.addCounter("mem.offchip_misses", ms.offChipMisses);
    reg.addCounter("mem.writebacks", ms.writebacks);

    reg.addCounter("pred.attempted", ms.predictionsAttempted);
    reg.addCounter("pred.sufficient", ms.predictionsSufficient);
    reg.addCounter("pred.on_noncomm", ms.predictionsOnNonComm);
    reg.addCounter("pred.suppressed", ms.predictionsSuppressed);

    reg.addGauge("locks.outstanding", [&mem] {
        return static_cast<double>(mem.outstandingLineLocks());
    });

    // Event-kernel internals: calendar-queue depth/occupancy and
    // freelist-pool efficiency (hit rate 1.0 = steady state without
    // allocator traffic).
    reg.addGauge("eq.near_pending", [&eq] {
        return static_cast<double>(eq.nearPending());
    });
    reg.addGauge("eq.far_pending", [&eq] {
        return static_cast<double>(eq.farPending());
    });
    reg.addGauge("eq.occupied_slots", [&eq] {
        return static_cast<double>(eq.occupiedSlots());
    });
    reg.addGauge("pool.msg.hit_rate",
                 [&mem] { return mem.msgPoolStats().hitRate(); });
    reg.addGauge("pool.msg.live", [&mem] {
        return static_cast<double>(mem.msgPoolStats().live);
    });
    reg.addGauge("pool.wb.hit_rate",
                 [&mem] { return mem.wbPoolStats().hitRate(); });
    reg.addGauge("pool.txn.hit_rate",
                 [&mem] { return mem.txnPoolStats().hitRate(); });
    reg.addGauge("pool.txn.live", [&mem] {
        return static_cast<double>(mem.txnPoolStats().live);
    });

    const NocStats &noc = sys.mesh().stats();
    reg.addCounter("noc.packets", noc.packets);
    reg.addCounter("noc.flit_bytes", noc.flitBytes);

    const SyncStats &sync = sys.syncManager().stats();
    reg.addCounter("sync.sync_points", sync.syncPoints);
    reg.addCounter("sync.lock_acquisitions", sync.lockAcquisitions);

    if (const SpPredictor *sp = sys.spPredictor()) {
        const SpStats &ss = sp->stats();
        reg.addCounter("sp.epochs", ss.epochsStarted);
        reg.addCounter("sp.noisy_epochs", ss.noisyEpochs);
        reg.addCounter("sp.recoveries", ss.recoveries);
    }

    // Per-core series. The CoreMemStats vector is sized once at
    // MemSys construction, so the cell addresses are stable.
    const auto &cores = mem.coreStats();
    for (unsigned c = 0; c < cores.size(); ++c) {
        reg.addCell(strfmt("mem.core{}.misses", c), cores[c].misses);
        reg.addCell(strfmt("mem.core{}.comm_misses", c),
                    cores[c].commMisses);
    }
    if (const SpPredictor *sp = sys.spPredictor()) {
        for (unsigned c = 0; c < cores.size(); ++c) {
            reg.addGauge(strfmt("sp.core{}.comm_volume", c),
                         [sp, c] {
                             return static_cast<double>(
                                 sp->commVolume(c));
                         });
        }
    }

    // Per-link utilization (cumulative busy ticks; diff rows and
    // divide by the sample period for a utilization fraction).
    const auto &links = sys.mesh().linkBusyTicks();
    for (std::size_t i = 0; i < links.size(); ++i)
        reg.addCell(strfmt("noc.link{}.busy_ticks", i), links[i]);

    // Simulator self-profiling: host milliseconds per instrumented
    // scope. Wall-clock gauges, so the series is only deterministic
    // with self-profiling off (it is off by default).
    if (const SelfProfiler *prof = sys.selfProfiler()) {
        for (unsigned i = 0; i < numProfScopes; ++i) {
            const auto scope = static_cast<ProfScope>(i);
            reg.addGauge(strfmt("prof.{}.ms", toString(scope)),
                         [prof, scope] {
                             return static_cast<double>(
                                        prof->ns(scope)) /
                                 1e6;
                         });
        }
    }

    if (extra_metrics_)
        extra_metrics_(reg);

    sampler_ = std::make_unique<Sampler>(std::move(reg),
                                         opts_.samplePeriod);
    sampler_->attach(sys.eventQueue());
}

void
RunTelemetry::attach(CmpSystem &sys)
{
    if (!enabled())
        return;
    SPP_ASSERT(sys_ == nullptr, "telemetry attached twice");
    sys_ = &sys;

    std::error_code ec;
    std::filesystem::create_directories(opts_.dir, ec);
    if (ec) {
        SPP_FATAL("cannot create telemetry directory '{}': {}",
                  opts_.dir, ec.message());
    }

    if (opts_.selfProfile)
        sys.enableSelfProfiling();

    registerMetrics(sys);

    if (opts_.emitTrace) {
        trace_ = std::make_unique<ChromeTraceWriter>(
            opts_.maxTraceEvents);
        trace_->setProcessName(label_);
        for (unsigned c = 0; c < sys.config().numCores; ++c)
            trace_->setThreadName(c, strfmt("core {}", c));

        epochs_ = std::make_unique<EpochRecorder>();
        epochs_->trace = trace_.get();
        epochs_->eq = &sys.eventQueue();
        epochs_->annotator = &epoch_annotator_;
        epochs_->open.resize(sys.config().numCores);
        sys.syncManager().addListener(epochs_.get());

        // Miss instants ride the access-observer chain so an
        // existing observer (CommTrace, tests) keeps working.
        ChromeTraceWriter *trace = trace_.get();
        auto prev = sys.accessObserver();
        sys.setAccessObserver(
            [trace, prev](CoreId core, Addr addr, Pc pc,
                          const AccessOutcome &out) {
                if (prev)
                    prev(core, addr, pc, out);
                if (!out.miss())
                    return;
                trace->instant(out.communicating ? "comm miss"
                                                 : "miss",
                               "mem", core, out.completeTick);
            });
    }

    const Config &cfg = sys.config();
    Json jcfg = Json::object();
    jcfg["hash"] = Json(hex64(configHash(cfg)));
    jcfg["describe"] = Json(configDescribe(cfg));
    jcfg["protocol"] = Json(toString(cfg.protocol));
    jcfg["predictor"] = Json(toString(cfg.predictor));
    jcfg["cores"] = Json(cfg.numCores);
    jcfg["seed"] = Json(cfg.seed);
    manifest_.set("label", Json(label_));
    manifest_.set("config", std::move(jcfg));
    manifest_.set("sample_period", Json(opts_.samplePeriod));
}

void
RunTelemetry::emitCounterTracks()
{
    // Aggregate series become Perfetto counter tracks; the per-core
    // and per-link columns stay CSV-only (hundreds of tracks would
    // drown the timeline).
    const MetricRegistry &reg = sampler_->registry();
    const auto &rows = sampler_->rows();
    for (std::size_t m = 0; m < reg.size(); ++m) {
        const std::string &name = reg.name(m);
        if (name.find(".core") != std::string::npos ||
            name.find(".link") != std::string::npos) {
            continue;
        }
        for (std::size_t r = 1; r < rows.size(); ++r) {
            const double v = reg.cumulative(m)
                ? sampler_->delta(r, m)
                : rows[r].values[m];
            trace_->counter(name, rows[r].tick, v);
        }
    }
}

void
RunTelemetry::finish(const RunResult &result)
{
    if (sys_ == nullptr || finished_)
        return;
    finished_ = true;

    sampler_->finalize();
    const Tick end = sys_->eventQueue().curTick();
    if (epochs_) {
        for (CoreId c = 0; c < epochs_->open.size(); ++c)
            epochs_->closeEpoch(c, end);
    }
    if (trace_)
        emitCounterTracks();

    manifest_.endPhase();

    if (opts_.emitSeries) {
        std::ofstream os(seriesPath());
        if (!os)
            SPP_FATAL("cannot write '{}'", seriesPath());
        sampler_->writeCsv(os);
    }
    if (opts_.emitSeriesJson) {
        std::ofstream os(seriesJsonPath());
        if (!os)
            SPP_FATAL("cannot write '{}'", seriesJsonPath());
        sampler_->toJson().write(os, 0);
        os << '\n';
    }
    if (trace_) {
        std::ofstream os(tracePath());
        if (!os)
            SPP_FATAL("cannot write '{}'", tracePath());
        trace_->write(os);
    }

    if (opts_.emitManifest) {
        Json summary = Json::object();
        summary["ticks"] = Json(result.ticks);
        summary["events"] = Json(result.eventsExecuted);
        summary["accesses"] = Json(result.mem.accesses.value());
        summary["misses"] = Json(result.mem.misses.value());
        summary["comm_misses"] =
            Json(result.mem.communicatingMisses.value());
        summary["pred_sufficient"] =
            Json(result.mem.predictionsSufficient.value());
        summary["noc_bytes"] = Json(result.noc.flitBytes.value());
        summary["sync_points"] = Json(result.sync.syncPoints.value());
        manifest_.set("result", std::move(summary));

        Json files = Json::object();
        if (opts_.emitSeries)
            files["series"] = Json(label_ + ".series.csv");
        if (trace_)
            files["trace"] = Json(label_ + ".trace.json");
        files["samples"] = Json(sampler_->rows().size());
        if (trace_) {
            files["trace_events"] = Json(trace_->events());
            files["trace_dropped"] = Json(trace_->dropped());
            if (epochs_) {
                files["epochs"] = Json(epochs_->epochsClosed);
                if (epochs_->attrTracksDropped > 0) {
                    files["attr_tracks_dropped"] =
                        Json(epochs_->attrTracksDropped);
                }
            }
        }
        manifest_.set("telemetry", std::move(files));
        if (const SelfProfiler *prof = sys_->selfProfiler())
            manifest_.set("self_profile", prof->toJson());
        manifest_.write(manifestPath());
    }
}

} // namespace spp
