#include "telemetry/chrome_trace.hh"

#include <ostream>

namespace spp {

namespace {

/** Common skeleton of one trace event. */
Json
base(const char *ph, const std::string &name, unsigned tid, Tick ts)
{
    Json e = Json::object();
    e["name"] = Json(name);
    e["ph"] = Json(ph);
    e["ts"] = Json(ts);
    e["pid"] = Json(0);
    e["tid"] = Json(tid);
    return e;
}

} // namespace

ChromeTraceWriter::ChromeTraceWriter(std::size_t max_events)
    : max_events_(max_events)
{
}

bool
ChromeTraceWriter::admit()
{
    if (events_.size() >= max_events_) {
        ++dropped_;
        return false;
    }
    return true;
}

void
ChromeTraceWriter::setProcessName(const std::string &name)
{
    Json e = base("M", "process_name", 0, 0);
    e["args"]["name"] = Json(name);
    metadata_.push_back(std::move(e));
}

void
ChromeTraceWriter::setThreadName(unsigned tid, const std::string &name)
{
    Json e = base("M", "thread_name", tid, 0);
    e["args"]["name"] = Json(name);
    metadata_.push_back(std::move(e));
}

void
ChromeTraceWriter::duration(const std::string &name,
                            const std::string &category, unsigned tid,
                            Tick begin, Tick end, Json args)
{
    if (!admit())
        return;
    Json e = base("X", name, tid, begin);
    e["cat"] = Json(category);
    e["dur"] = Json(end - begin);
    if (!args.isNull())
        e["args"] = std::move(args);
    events_.push_back(std::move(e));
}

void
ChromeTraceWriter::instant(const std::string &name,
                           const std::string &category, unsigned tid,
                           Tick ts, Json args)
{
    if (!admit())
        return;
    Json e = base("i", name, tid, ts);
    e["cat"] = Json(category);
    e["s"] = Json("t"); // Thread-scoped.
    if (!args.isNull())
        e["args"] = std::move(args);
    events_.push_back(std::move(e));
}

void
ChromeTraceWriter::counter(const std::string &name, Tick ts, double v)
{
    if (!admit())
        return;
    Json e = base("C", name, 0, ts);
    e["args"]["value"] = Json(v);
    events_.push_back(std::move(e));
}

Json
ChromeTraceWriter::toJson() const
{
    Json doc = Json::object();
    Json evs = Json::array();
    for (const Json &e : metadata_)
        evs.push(e);
    for (const Json &e : events_)
        evs.push(e);
    doc["traceEvents"] = std::move(evs);
    doc["displayTimeUnit"] = Json("ms");
    Json other = Json::object();
    other["droppedEvents"] = Json(dropped_);
    doc["otherData"] = std::move(other);
    return doc;
}

void
ChromeTraceWriter::write(std::ostream &os) const
{
    toJson().write(os);
    os << '\n';
}

} // namespace spp
