/**
 * @file
 * Scoped wall-clock self-profiling of the simulator itself.
 *
 * Four coarse scopes cover where a run spends host time: the event
 * kernel (the whole event loop), protocol handlers (message
 * dispatch), the destination predictor (predict/train/feedback) and
 * the NoC (routing + link reservation). Each hook site constructs a
 * Scope guard; when the profiler is detached (the default) the guard
 * is a null-pointer check and nothing else, so timed runs pay no
 * measurable cost. When enabled, every scope costs two steady_clock
 * reads.
 *
 * Scopes nest (protocol handlers run inside the kernel scope and
 * call into the predictor and the NoC), so the per-scope totals
 * overlap rather than partition: kernel ns is the whole loop,
 * protocol/predictor/noc ns are the slices attributable to those
 * subsystems. The numbers are host wall clock and therefore
 * nondeterministic; they feed the MetricRegistry and the run
 * manifest, never any result file that must be byte-stable.
 */

#ifndef SPP_TELEMETRY_SELF_PROFILE_HH
#define SPP_TELEMETRY_SELF_PROFILE_HH

#include <array>
#include <chrono>
#include <cstdint>

#include "telemetry/json.hh"

namespace spp {

/** The instrumented simulator subsystems. */
enum class ProfScope : unsigned
{
    kernel,     ///< The whole event loop (EventQueue::run).
    protocol,   ///< Coherence message handlers.
    predictor,  ///< Destination-predictor predict/train/feedback.
    noc,        ///< Mesh routing and link reservation.
};

inline constexpr unsigned numProfScopes = 4;

const char *toString(ProfScope s);

class SelfProfiler
{
  public:
    bool enabled() const { return enabled_; }
    void enable() { enabled_ = true; }

    std::uint64_t
    ns(ProfScope s) const
    {
        return ns_[static_cast<unsigned>(s)];
    }
    std::uint64_t
    calls(ProfScope s) const
    {
        return calls_[static_cast<unsigned>(s)];
    }

    /** RAII guard accumulating one scope's elapsed time. Pass a null
     * profiler (the detached state) for a free no-op. */
    class Scope
    {
      public:
        Scope(SelfProfiler *p, ProfScope s) : p_(p), s_(s)
        {
            if (p_ != nullptr)
                t0_ = std::chrono::steady_clock::now();
        }
        ~Scope()
        {
            if (p_ != nullptr)
                p_->add(s_, std::chrono::steady_clock::now() - t0_);
        }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        SelfProfiler *p_;
        ProfScope s_;
        std::chrono::steady_clock::time_point t0_{};
    };

    /** {"kernel": {"ns": N, "calls": N}, ...} for the manifest. */
    Json
    toJson() const
    {
        Json doc = Json::object();
        for (unsigned i = 0; i < numProfScopes; ++i) {
            Json s = Json::object();
            s["ns"] = Json(ns_[i]);
            s["calls"] = Json(calls_[i]);
            doc[toString(static_cast<ProfScope>(i))] = std::move(s);
        }
        return doc;
    }

  private:
    void
    add(ProfScope s, std::chrono::steady_clock::duration d)
    {
        const unsigned i = static_cast<unsigned>(s);
        ns_[i] += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(d)
                .count());
        ++calls_[i];
    }

    bool enabled_ = false;
    std::array<std::uint64_t, numProfScopes> ns_{};
    std::array<std::uint64_t, numProfScopes> calls_{};
};

inline const char *
toString(ProfScope s)
{
    switch (s) {
      case ProfScope::kernel: return "kernel";
      case ProfScope::protocol: return "protocol";
      case ProfScope::predictor: return "predictor";
      case ProfScope::noc: return "noc";
    }
    return "?";
}

} // namespace spp

#endif // SPP_TELEMETRY_SELF_PROFILE_HH
