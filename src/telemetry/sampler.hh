/**
 * @file
 * Periodic time-series sampler.
 *
 * The sampler installs itself as the EventQueue's TickObserver and
 * snapshots every registered metric each time simulated time crosses
 * a period boundary. Boundary semantics: the row stamped tick T
 * holds the simulator state after all events at ticks < T completed
 * and before any event at tick T ran — "state at the start of tick
 * T". When one event advances time across several boundaries, one
 * row lands per boundary, all identical (nothing executed between
 * them), so the series cadence is exact regardless of event spacing.
 *
 * Sampling is non-destructive: cumulative metrics are recorded as
 * running totals (delta() derives per-interval rates), never via
 * Counter::reset()/exchange(), so the final row reconciles exactly
 * with the end-of-run aggregate statistics.
 */

#ifndef SPP_TELEMETRY_SAMPLER_HH
#define SPP_TELEMETRY_SAMPLER_HH

#include <iosfwd>
#include <vector>

#include "common/types.hh"
#include "event/event_queue.hh"
#include "telemetry/json.hh"
#include "telemetry/metrics.hh"

namespace spp {

class Sampler : public EventQueue::TickObserver
{
  public:
    /** One snapshot of every metric at a point in simulated time. */
    struct Row
    {
        Tick tick = 0;
        std::vector<double> values;
    };

    Sampler(MetricRegistry registry, Tick period);
    ~Sampler() override;

    /** Install on @p eq and record the initial row at curTick(). */
    void attach(EventQueue &eq);

    /**
     * Record the final, possibly partial, interval: a last row
     * stamped with the end-of-run tick captures state *after* the
     * final events ran (replacing a same-tick boundary row, which
     * preceded them), so the series always reconciles with the
     * end-of-run aggregates. Uninstalls the observer. Idempotent.
     */
    void finalize();

    void onBoundary(Tick boundary) override;

    const MetricRegistry &registry() const { return reg_; }
    Tick period() const { return period_; }
    const std::vector<Row> &rows() const { return rows_; }

    /** Delta of metric @p metric between rows @p row - 1 and @p row
     * (row 0 deltas against zero). Meaningful for cumulative
     * metrics; gauges chart as raw levels instead. */
    double delta(std::size_t row, std::size_t metric) const;

    /** "tick,metric,..." header plus one line per row. */
    void writeCsv(std::ostream &os) const;

    /** {"period": N, "metrics": [names], "rows": [[tick, v...]]} */
    Json toJson() const;

  private:
    void sample(Tick t);

    MetricRegistry reg_;
    Tick period_;
    EventQueue *eq_ = nullptr;
    std::vector<Row> rows_;
};

} // namespace spp

#endif // SPP_TELEMETRY_SAMPLER_HH
