/**
 * @file
 * Structured run manifests.
 *
 * Every telemetry-enabled bench/sweep invocation leaves a JSON
 * sidecar next to its results recording *how* the numbers were
 * produced: config hash and canonical description, workload, git
 * describe of the tree, host parallelism, wall-clock per phase, and
 * a summary of the run's headline statistics. Manifests make any
 * result file self-describing: given only the sidecar, the exact
 * run can be reconstructed.
 */

#ifndef SPP_TELEMETRY_MANIFEST_HH
#define SPP_TELEMETRY_MANIFEST_HH

#include <chrono>
#include <string>
#include <vector>

#include "telemetry/json.hh"

namespace spp {

class RunManifest
{
  public:
    /** Stamps schema version, creation time, git describe and host
     * info into the document. */
    RunManifest();

    /** Set (or overwrite) a top-level field. */
    void set(const std::string &key, Json value);

    /**
     * Start a named wall-clock phase, ending the previous one. The
     * manifest's "phases" object maps each phase name to elapsed
     * milliseconds.
     */
    void beginPhase(const std::string &name);

    /** End the running phase (if any). */
    void endPhase();

    Json toJson() const;

    /** Serialize to @p path (pretty-printed); fatal on I/O failure. */
    void write(const std::string &path) const;

    /** Parse a manifest (or any JSON) file; nullopt on failure. */
    static std::optional<Json> read(const std::string &path);

  private:
    using Clock = std::chrono::steady_clock;

    Json doc_;
    std::vector<std::pair<std::string, double>> phase_ms_;
    std::string open_phase_;
    Clock::time_point phase_start_{};
};

/** `git describe --always --dirty` of the working tree, computed
 * once per process; "unknown" when git or the repo is unavailable. */
const std::string &gitDescribe();

/** Hardware concurrency of the host (min 1). */
unsigned hostThreads();

} // namespace spp

#endif // SPP_TELEMETRY_MANIFEST_HH
