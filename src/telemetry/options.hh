/**
 * @file
 * Telemetry knobs. Deliberately a leaf header (types + strings only)
 * so ExperimentConfig can embed the options without pulling the
 * whole telemetry subsystem into every translation unit.
 */

#ifndef SPP_TELEMETRY_OPTIONS_HH
#define SPP_TELEMETRY_OPTIONS_HH

#include <cstddef>
#include <string>

#include "common/types.hh"

namespace spp {

struct TelemetryOptions
{
    /** Output directory for all sidecar files; empty = telemetry is
     * disabled and the run pays zero observation cost. */
    std::string dir;

    /** Sampling cadence of the time-series, in ticks. */
    Tick samplePeriod = 5000;

    bool emitSeries = true;     ///< <label>.series.csv
    bool emitSeriesJson = false;///< <label>.series.json (opt-in).
    bool emitTrace = true;      ///< <label>.trace.json (Perfetto).
    bool emitManifest = true;   ///< <label>.manifest.json

    /** Chrome-trace event cap; drops are counted, not silent. */
    std::size_t maxTraceEvents = 1u << 20;

    /** Wall-clock self-profiling of the simulator (kernel, protocol,
     * predictor, NoC scopes). Adds prof.* gauges to the series and a
     * self_profile manifest section; the values are host time and
     * thus nondeterministic, so this is a separate opt-in. */
    bool selfProfile = false;

    bool enabled() const { return !dir.empty(); }

    /** SPP_TELEMETRY (dir), SPP_TELEMETRY_PERIOD (ticks) and
     * SPP_SELF_PROFILE (any value but "0"). */
    static TelemetryOptions fromEnv();
};

/** Replace everything but [A-Za-z0-9._-] with '_' so labels derived
 * from workload/protocol names are safe file stems. */
std::string sanitizeFileLabel(const std::string &label);

} // namespace spp

#endif // SPP_TELEMETRY_OPTIONS_HH
