#include "telemetry/manifest.hh"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/logging.hh"

namespace spp {

namespace {

std::string
isoTimestamp()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

std::string
runGitDescribe()
{
    FILE *pipe = popen("git describe --always --dirty 2>/dev/null", "r");
    if (pipe == nullptr)
        return "unknown";
    char buf[256];
    std::string out;
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr)
        out += buf;
    const int status = pclose(pipe);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    if (status != 0 || out.empty())
        return "unknown";
    return out;
}

} // namespace

const std::string &
gitDescribe()
{
    // Computed once per process: sweeps write one manifest per job
    // from many threads, and spawning git for each would dominate.
    static std::once_flag once;
    static std::string cached;
    std::call_once(once, [] {
        cached = runGitDescribe();
        if (cached == "unknown") {
            warn("git describe failed (not a git checkout?); "
                 "manifests and result-store keys use \"unknown\" — "
                 "cached results will not invalidate across code "
                 "changes");
        }
    });
    return cached;
}

unsigned
hostThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

RunManifest::RunManifest()
{
    doc_ = Json::object();
    doc_["schema"] = Json("spp-run-manifest-v1");
    doc_["created"] = Json(isoTimestamp());
    doc_["git_describe"] = Json(gitDescribe());
    doc_["host_threads"] = Json(hostThreads());
}

void
RunManifest::set(const std::string &key, Json value)
{
    doc_[key] = std::move(value);
}

void
RunManifest::beginPhase(const std::string &name)
{
    endPhase();
    open_phase_ = name;
    phase_start_ = Clock::now();
}

void
RunManifest::endPhase()
{
    if (open_phase_.empty())
        return;
    const double ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - phase_start_)
                          .count();
    phase_ms_.emplace_back(open_phase_, ms);
    open_phase_.clear();
}

Json
RunManifest::toJson() const
{
    Json doc = doc_;
    Json phases = Json::object();
    for (const auto &[name, ms] : phase_ms_)
        phases[name] = Json(ms);
    if (!open_phase_.empty()) {
        // A still-open phase reports its running elapsed time.
        phases[open_phase_] = Json(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      phase_start_)
                .count());
    }
    doc["phases"] = std::move(phases);
    return doc;
}

void
RunManifest::write(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        SPP_FATAL("cannot write manifest '{}'", path);
    toJson().write(os, 0);
    os << '\n';
    if (!os)
        SPP_FATAL("write to manifest '{}' failed", path);
}

std::optional<Json>
RunManifest::read(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return std::nullopt;
    std::ostringstream buf;
    buf << is.rdbuf();
    return Json::parse(buf.str());
}

} // namespace spp
