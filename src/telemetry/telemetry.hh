/**
 * @file
 * RunTelemetry: the facade wiring all telemetry pieces into one
 * simulated run.
 *
 * attach() hooks a CmpSystem: it registers the standard metric set
 * (aggregate and per-core miss counters, predictor outcome counters,
 * NoC flits and per-link utilization, epoch and sync counts,
 * outstanding line locks) with a Sampler on the event queue, starts
 * a Chrome-trace timeline (per-core sync-epoch duration tracks, miss
 * and sync-point instants) and opens the run manifest. finish()
 * closes the final sampling interval, folds the sampler series into
 * counter tracks, and writes every sidecar file:
 *
 *   <dir>/<label>.series.csv      time-series of sampled metrics
 *   <dir>/<label>.series.json     same, as JSON (opt-in)
 *   <dir>/<label>.trace.json      chrome://tracing / Perfetto
 *   <dir>/<label>.manifest.json   config hash, git, phases, summary
 *
 * With TelemetryOptions disabled (empty dir) every method is an
 * inert no-op: nothing is allocated, no observer is installed and
 * the simulated run is bit-identical to an unobserved one.
 */

#ifndef SPP_TELEMETRY_TELEMETRY_HH
#define SPP_TELEMETRY_TELEMETRY_HH

#include <functional>
#include <memory>
#include <string>

#include "sim/cmp_system.hh"
#include "telemetry/chrome_trace.hh"
#include "telemetry/manifest.hh"
#include "telemetry/options.hh"
#include "telemetry/sampler.hh"

namespace spp {

class RunTelemetry
{
  public:
    /** Extension hook: register additional metrics (the attribution
     * profiler's attr.* counters) into the sampled set. */
    // lint: allow(std-function) — setup-time binding, not per-event.
    using ExtraMetrics = std::function<void(MetricRegistry &)>;

    /** Extension hook: annotate each closing sync-epoch with a JSON
     * snapshot (per-sync-point attribution). Called once per closed
     * epoch; the result rides the trace event's args and feeds the
     * per-sync-point counter series. */
    // lint: allow(std-function) — per-epoch, not per-event.
    using EpochAnnotator = std::function<Json(CoreId)>;

    RunTelemetry(TelemetryOptions opts, std::string label);
    ~RunTelemetry();

    bool enabled() const { return opts_.enabled(); }
    bool attached() const { return sys_ != nullptr; }

    /** Hook @p sys; creates the output directory. No-op if
     * disabled. Must precede CmpSystem::run(). */
    void attach(CmpSystem &sys);

    /** Stop sampling and write all sidecar files. No-op if never
     * attached. Idempotent. */
    void finish(const RunResult &result);

    /** The manifest, for callers adding fields before finish(). */
    RunManifest &manifest() { return manifest_; }

    /** Install the extra-metrics hook; call before attach(). */
    void setExtraMetrics(ExtraMetrics fn)
    {
        extra_metrics_ = std::move(fn);
    }

    /** Install the epoch annotator; call before attach(). When the
     * annotator reads state that the annotated sync-point also
     * resets (the attribution profiler's per-epoch snapshot), attach
     * this telemetry *before* the resetting listener so the closing
     * epoch is observed first. */
    void setEpochAnnotator(EpochAnnotator fn)
    {
        epoch_annotator_ = std::move(fn);
    }

    const Sampler *sampler() const { return sampler_.get(); }
    const ChromeTraceWriter *trace() const { return trace_.get(); }

    std::string seriesPath() const { return base() + ".series.csv"; }
    std::string seriesJsonPath() const
    {
        return base() + ".series.json";
    }
    std::string tracePath() const { return base() + ".trace.json"; }
    std::string manifestPath() const
    {
        return base() + ".manifest.json";
    }

  private:
    struct EpochRecorder;

    std::string base() const;
    void registerMetrics(CmpSystem &sys);
    void emitCounterTracks();

    TelemetryOptions opts_;
    std::string label_;
    CmpSystem *sys_ = nullptr;
    bool finished_ = false;
    std::unique_ptr<Sampler> sampler_;
    std::unique_ptr<ChromeTraceWriter> trace_;
    std::unique_ptr<EpochRecorder> epochs_;
    RunManifest manifest_;
    ExtraMetrics extra_metrics_;
    EpochAnnotator epoch_annotator_;
};

} // namespace spp

#endif // SPP_TELEMETRY_TELEMETRY_HH
