/**
 * @file
 * Minimal JSON document model for the telemetry subsystem.
 *
 * The simulator has no third-party dependencies, so telemetry brings
 * its own small JSON value type: enough to build Chrome-trace files
 * and run manifests (writer with full string escaping, objects that
 * preserve insertion order) and to parse them back (a strict
 * recursive-descent parser the tests use to verify every emitted
 * document is well formed and round-trips).
 *
 * Numbers are stored as double; values that are integral print
 * without a fractional part so counters round-trip exactly (all
 * simulator counters stay far below 2^53).
 */

#ifndef SPP_TELEMETRY_JSON_HH
#define SPP_TELEMETRY_JSON_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spp {

class Json
{
  public:
    enum class Kind { null, boolean, number, string, array, object };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : kind_(Kind::boolean), bool_(b) {}
    Json(double v) : kind_(Kind::number), num_(v) {}
    Json(int v) : Json(static_cast<double>(v)) {}
    Json(unsigned v) : Json(static_cast<double>(v)) {}
    Json(long v) : Json(static_cast<double>(v)) {}
    Json(unsigned long v) : Json(static_cast<double>(v)) {}
    Json(long long v) : Json(static_cast<double>(v)) {}
    Json(unsigned long long v) : Json(static_cast<double>(v)) {}
    Json(const char *s) : kind_(Kind::string), str_(s) {}
    Json(std::string s) : kind_(Kind::string), str_(std::move(s)) {}

    static Json
    array()
    {
        Json j;
        j.kind_ = Kind::array;
        return j;
    }

    static Json
    object()
    {
        Json j;
        j.kind_ = Kind::object;
        return j;
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::null; }
    bool isObject() const { return kind_ == Kind::object; }
    bool isArray() const { return kind_ == Kind::array; }
    bool isNumber() const { return kind_ == Kind::number; }
    bool isString() const { return kind_ == Kind::string; }

    bool asBool() const { return bool_; }
    double asNumber() const { return num_; }
    const std::string &asString() const { return str_; }

    /** Object member access; inserts a null member when absent. A
     * null/default Json silently becomes an object first. */
    Json &operator[](const std::string &key);

    /** Object member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;

    /** Object members, in insertion order. */
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return obj_;
    }

    /** Array append. A null/default Json becomes an array first. */
    void push(Json v);

    const std::vector<Json> &items() const { return arr_; }

    std::size_t
    size() const
    {
        return kind_ == Kind::array ? arr_.size() : obj_.size();
    }

    /**
     * Serialize. @p indent < 0 emits the compact single-line form;
     * >= 0 pretty-prints with that starting indentation depth (two
     * spaces per level).
     */
    void write(std::ostream &os, int indent = -1) const;
    std::string dump(int indent = -1) const;

    /** Strict parse of a complete document; nullopt on malformed
     * input or trailing garbage. */
    static std::optional<Json> parse(std::string_view text);

  private:
    Kind kind_ = Kind::null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/** Print @p v the way the JSON writer does: integral values without
 * a fractional part, others with full round-trip precision. Shared
 * with the CSV exporter so both formats agree byte-for-byte. */
void writeJsonNumber(std::ostream &os, double v);

} // namespace spp

#endif // SPP_TELEMETRY_JSON_HH
