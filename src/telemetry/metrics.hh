/**
 * @file
 * MetricRegistry: the set of named values the telemetry sampler
 * snapshots into a time series.
 *
 * A metric is either *cumulative* (a monotonically increasing count:
 * a Counter or a raw std::uint64_t cell owned by a subsystem) or a
 * *gauge* (an instantaneous level computed on demand, e.g. the
 * number of outstanding line locks). Cumulative metrics are sampled
 * by snapshot — never by Counter::reset()/exchange() — so the
 * end-of-run aggregates the StatGroup/report machinery prints remain
 * intact and the final sampler row reconciles with them exactly.
 *
 * Registered pointers are borrowed: the owning subsystem must
 * outlive the sampler (they do — both live inside one experiment
 * scope), and the pointed-to cells must not move (the per-core and
 * per-link vectors are sized once at construction).
 */

#ifndef SPP_TELEMETRY_METRICS_HH
#define SPP_TELEMETRY_METRICS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"

namespace spp {

class MetricRegistry
{
  public:
    // lint: allow(std-function) — sampled at report time only.
    using Gauge = std::function<double()>;

    /** Register a cumulative Counter. */
    void
    addCounter(std::string name, const Counter &c)
    {
        metrics_.push_back(
            {std::move(name), true, &c, nullptr, nullptr});
    }

    /** Register a cumulative raw cell (per-core / per-link arrays). */
    void
    addCell(std::string name, const std::uint64_t &cell)
    {
        metrics_.push_back(
            {std::move(name), true, nullptr, &cell, nullptr});
    }

    /** Register an instantaneous gauge. */
    void
    addGauge(std::string name, Gauge fn)
    {
        metrics_.push_back(
            {std::move(name), false, nullptr, nullptr, std::move(fn)});
    }

    std::size_t size() const { return metrics_.size(); }

    const std::string &name(std::size_t i) const
    {
        return metrics_[i].name;
    }

    /** Cumulative metrics chart best as per-interval deltas; gauges
     * as raw levels. */
    bool cumulative(std::size_t i) const
    {
        return metrics_[i].cumulative;
    }

    /** Current value of metric @p i. */
    double
    read(std::size_t i) const
    {
        const Metric &m = metrics_[i];
        if (m.counter != nullptr)
            return static_cast<double>(m.counter->value());
        if (m.cell != nullptr)
            return static_cast<double>(*m.cell);
        return m.gauge();
    }

  private:
    struct Metric
    {
        std::string name;
        bool cumulative;
        const Counter *counter;
        const std::uint64_t *cell;
        Gauge gauge;
    };

    std::vector<Metric> metrics_;
};

} // namespace spp

#endif // SPP_TELEMETRY_METRICS_HH
