/**
 * @file
 * Chrome trace-event exporter (chrome://tracing / Perfetto JSON).
 *
 * Emits the "JSON object format" of the Trace Event specification:
 * {"traceEvents": [...]}, which both chrome://tracing and
 * ui.perfetto.dev open directly. One simulated core maps to one
 * thread track (tid = core); sync-epochs render as complete ("X")
 * duration events, misses and sync-points as instant ("i") events,
 * and sampler series as counter ("C") tracks. Simulated ticks are
 * written as microseconds 1:1, so the viewer's time axis reads in
 * ticks.
 *
 * Event storage is bounded: past @p max_events the writer counts
 * drops instead of growing (the drop count lands in the emitted
 * metadata), keeping worst-case memory predictable on huge runs.
 */

#ifndef SPP_TELEMETRY_CHROME_TRACE_HH
#define SPP_TELEMETRY_CHROME_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"
#include "telemetry/json.hh"

namespace spp {

class ChromeTraceWriter
{
  public:
    explicit ChromeTraceWriter(std::size_t max_events = 1u << 20);

    /** Label of the single process track. */
    void setProcessName(const std::string &name);

    /** Label thread track @p tid (e.g. "core 3"). */
    void setThreadName(unsigned tid, const std::string &name);

    /** Complete duration event spanning [begin, end] on @p tid. */
    void duration(const std::string &name, const std::string &category,
                  unsigned tid, Tick begin, Tick end,
                  Json args = Json());

    /** Thread-scoped instant event at @p ts. */
    void instant(const std::string &name, const std::string &category,
                 unsigned tid, Tick ts, Json args = Json());

    /** Counter-track sample: series @p name has value @p v at @p ts. */
    void counter(const std::string &name, Tick ts, double v);

    std::size_t events() const { return events_.size(); }
    std::uint64_t dropped() const { return dropped_; }

    /** Emit the complete JSON document. */
    void write(std::ostream &os) const;
    Json toJson() const;

  private:
    bool admit();

    std::size_t max_events_;
    std::uint64_t dropped_ = 0;
    std::vector<Json> events_;
    std::vector<Json> metadata_; ///< Name records; never dropped.
};

} // namespace spp

#endif // SPP_TELEMETRY_CHROME_TRACE_HH
