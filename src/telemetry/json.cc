#include "telemetry/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace spp {

// ---------------------------------------------------------------------
// Mutation
// ---------------------------------------------------------------------

Json &
Json::operator[](const std::string &key)
{
    if (kind_ == Kind::null)
        kind_ = Kind::object;
    for (auto &[k, v] : obj_)
        if (k == key)
            return v;
    obj_.emplace_back(key, Json());
    return obj_.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    for (const auto &[k, v] : obj_)
        if (k == key)
            return &v;
    return nullptr;
}

void
Json::push(Json v)
{
    if (kind_ == Kind::null)
        kind_ = Kind::array;
    arr_.push_back(std::move(v));
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

void
writeJsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0; // JSON has no inf/nan; clamp rather than corrupt.
        return;
    }
    // Counters and ticks: print integral doubles as integers so they
    // round-trip exactly and diff cleanly.
    constexpr double exact_limit = 9007199254740992.0; // 2^53
    if (v == std::floor(v) && std::abs(v) < exact_limit) {
        os << static_cast<long long>(v);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

namespace {

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << static_cast<char>(c);
            }
        }
    }
    os << '"';
}

void
newlineIndent(std::ostream &os, int depth)
{
    os << '\n';
    for (int i = 0; i < depth; ++i)
        os << "  ";
}

} // namespace

void
Json::write(std::ostream &os, int indent) const
{
    const bool pretty = indent >= 0;
    const int next = pretty ? indent + 1 : -1;
    switch (kind_) {
      case Kind::null:
        os << "null";
        break;
      case Kind::boolean:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::number:
        writeJsonNumber(os, num_);
        break;
      case Kind::string:
        writeEscaped(os, str_);
        break;
      case Kind::array:
        os << '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                os << ',';
            if (pretty)
                newlineIndent(os, next);
            arr_[i].write(os, next);
        }
        if (pretty && !arr_.empty())
            newlineIndent(os, indent);
        os << ']';
        break;
      case Kind::object:
        os << '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                os << ',';
            if (pretty)
                newlineIndent(os, next);
            writeEscaped(os, obj_[i].first);
            os << (pretty ? ": " : ":");
            obj_[i].second.write(os, next);
        }
        if (pretty && !obj_.empty())
            newlineIndent(os, indent);
        os << '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace {

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    bool failed = false;

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return false;
        pos += word.size();
        return true;
    }

    Json
    fail()
    {
        failed = true;
        return Json();
    }

    Json
    parseString()
    {
        // Opening quote already consumed.
        std::string out;
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return Json(std::move(out));
            if (c == '\\') {
                if (pos >= text.size())
                    return fail();
                char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail();
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text[pos++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail();
                    }
                    // Encode the BMP codepoint as UTF-8 (surrogate
                    // pairs are not produced by our writer).
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    break;
                  }
                  default:
                    return fail();
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return fail(); // Raw control char inside a string.
            } else {
                out += c;
            }
        }
        return fail(); // Unterminated string.
    }

    Json
    parseValue()
    {
        skipWs();
        if (pos >= text.size())
            return fail();
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            Json obj = Json::object();
            skipWs();
            if (consume('}'))
                return obj;
            for (;;) {
                if (!consume('"'))
                    return fail();
                Json key = parseString();
                if (failed)
                    return Json();
                if (!consume(':'))
                    return fail();
                Json val = parseValue();
                if (failed)
                    return Json();
                obj[key.asString()] = std::move(val);
                if (consume(','))
                    continue;
                if (consume('}'))
                    return obj;
                return fail();
            }
        }
        if (c == '[') {
            ++pos;
            Json arr = Json::array();
            skipWs();
            if (consume(']'))
                return arr;
            for (;;) {
                Json val = parseValue();
                if (failed)
                    return Json();
                arr.push(std::move(val));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return arr;
                return fail();
            }
        }
        if (c == '"') {
            ++pos;
            return parseString();
        }
        if (c == 't')
            return literal("true") ? Json(true) : fail();
        if (c == 'f')
            return literal("false") ? Json(false) : fail();
        if (c == 'n')
            return literal("null") ? Json(nullptr) : fail();
        // Number.
        const std::size_t start = pos;
        if (text[pos] == '-')
            ++pos;
        bool digits = false;
        auto eatDigits = [&] {
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9') {
                ++pos;
                digits = true;
            }
        };
        eatDigits();
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            eatDigits();
        }
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            eatDigits();
        }
        if (!digits)
            return fail();
        const std::string num(text.substr(start, pos - start));
        return Json(std::strtod(num.c_str(), nullptr));
    }
};

} // namespace

std::optional<Json>
Json::parse(std::string_view text)
{
    Parser p{text};
    Json v = p.parseValue();
    if (p.failed)
        return std::nullopt;
    p.skipWs();
    if (p.pos != text.size())
        return std::nullopt; // Trailing garbage.
    return v;
}

} // namespace spp
