/**
 * @file
 * Analytical cell triage for the batch sweep server.
 *
 * Before simulating a queued experiment cell, the server can ask for
 * a closed-form estimate of how communication-heavy the cell will
 * be, in the spirit of analytical multicore performance models
 * (PPT-Multicore): no simulation, just arithmetic over the recorded
 * op stream that the trace store already holds for the cell's
 * workload key. Coherence communication is driven by stores to
 * shared lines (invalidation + cache-to-cache transfers), and
 * cross-core reuse concentrates around synchronization points, so
 * the estimate combines the write fraction of the memory ops with
 * the sync-op density, amplified by the thread count:
 *
 *     score = write_fraction + sync_density * sqrt(n_threads)
 *
 * The score is relative — it orders cells, it does not predict
 * ticks. Cells with no recorded trace (or no trace store at all)
 * get the neutral score 1.0 with fromTrace = false, so ordering
 * degrades gracefully and skip-mode never drops a cell it knows
 * nothing about.
 */

#ifndef SPP_SERVICE_TRIAGE_HH
#define SPP_SERVICE_TRIAGE_HH

#include <string>

#include "common/config.hh"

namespace spp {

/** One cell's analytical estimate. */
struct TriageEstimate
{
    double score = 1.0;     ///< Relative communication intensity.
    bool fromTrace = false; ///< False: neutral default, no trace.
};

/**
 * Estimate the cell (@p workload, @p cfg, @p scale) from the trace
 * store at @p trace_dir. @p cfg must be the fully tweaked per-cell
 * config (the trace key hashes its seed/cores/lineBytes fields).
 * Returns the neutral estimate when @p trace_dir is empty, the
 * store has no matching entry, or the entry fails to decode.
 */
TriageEstimate triageCell(const std::string &workload,
                          const Config &cfg, double scale,
                          const std::string &trace_dir);

} // namespace spp

#endif // SPP_SERVICE_TRIAGE_HH
