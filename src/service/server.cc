#include "service/server.hh"

#include <algorithm>
#include <chrono>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "service/result_codec.hh"
#include "service/result_store.hh"
#include "service/triage.hh"
#include "telemetry/manifest.hh"
#include "workload/workload.hh"

namespace spp {

const char *
toString(TriageMode m)
{
    switch (m) {
      case TriageMode::off:   return "off";
      case TriageMode::order: return "order";
      case TriageMode::skip:  return "skip";
    }
    return "?";
}

namespace {

/** Render a "set" value for configSetField(): strings pass through,
 * numbers print exactly as the JSON writer would, booleans as 0/1. */
bool
settingToString(const Json &v, std::string &out)
{
    if (v.isString()) {
        out = v.asString();
        return true;
    }
    if (v.isNumber()) {
        std::ostringstream os;
        writeJsonNumber(os, v.asNumber());
        out = os.str();
        return true;
    }
    if (v.kind() == Json::Kind::boolean) {
        out = v.asBool() ? "1" : "0";
        return true;
    }
    return false;
}

/** Apply a {"field": value, ...} override object; "" or an error. */
std::string
applySettings(Config &cfg, const Json &set)
{
    if (!set.isObject())
        return "'set' is not an object";
    for (const auto &[name, value] : set.members()) {
        std::string text;
        if (!settingToString(value, text))
            return "field '" + name + "' has a non-scalar value";
        const std::string err = configSetField(cfg, name, text);
        if (!err.empty())
            return err;
    }
    return "";
}

/** Most-square mesh for requests that resize the machine without
 * fixing a geometry (mirrors the bench --cores behavior). */
void
autoMesh(Config &cfg)
{
    if (cfg.numCores != 0 && cfg.meshX * cfg.meshY == cfg.numCores)
        return;
    unsigned y = 1;
    for (unsigned d = 1; d * d <= cfg.numCores; ++d)
        if (cfg.numCores % d == 0)
            y = d;
    cfg.meshY = y;
    cfg.meshX = cfg.numCores / y;
}

} // namespace

SweepServer::SweepServer(ServerOptions opts)
    : opts_(std::move(opts)), runner_(opts_.jobs)
{
    metrics_.addGauge("server.queue_depth", [this] {
        return static_cast<double>(queue_depth_.load());
    });
    metrics_.addGauge("server.requests_served", [this] {
        return static_cast<double>(requests_served_);
    });
    metrics_.addGauge("server.cells_run", [this] {
        return static_cast<double>(cells_run_);
    });
    metrics_.addGauge("store.hits", [] {
        return static_cast<double>(resultStoreStats().hits.load());
    });
    metrics_.addGauge("store.misses", [] {
        return static_cast<double>(resultStoreStats().misses.load());
    });
    metrics_.addGauge("store.bypasses", [] {
        return static_cast<double>(
            resultStoreStats().bypasses.load());
    });
    metrics_.addGauge("store.corrupt", [] {
        return static_cast<double>(resultStoreStats().corrupt.load());
    });
}

unsigned
SweepServer::serve(std::istream &in, std::ostream &out)
{
    std::string line;
    unsigned served = 0;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        ++served;
        if (handleLine(line, out))
            break;
    }
    return served;
}

void
SweepServer::emit(std::ostream &out, const Json &event)
{
    out << event.dump() << '\n';
    out.flush();
}

Json
SweepServer::gaugesJson() const
{
    Json g = Json::object();
    for (std::size_t i = 0; i < metrics_.size(); ++i)
        g[metrics_.name(i)] = Json(metrics_.read(i));
    return g;
}

bool
SweepServer::handleLine(const std::string &line, std::ostream &out)
{
    ++requests_served_;
    const auto doc = Json::parse(line);
    Json id;
    if (doc) {
        if (const Json *i = doc->find("id"))
            id = *i;
    }
    const auto reject = [&](const std::string &msg) {
        Json ev = Json::object();
        ev["event"] = Json("error");
        ev["id"] = id;
        ev["error"] = Json(msg);
        emit(out, ev);
        return false;
    };
    if (!doc || !doc->isObject())
        return reject("request is not a JSON object");
    const Json *op = doc->find("op");
    if (op == nullptr || !op->isString())
        return reject("missing 'op'");
    if (op->asString() == "shutdown") {
        shutdown_ = true;
        Json ev = Json::object();
        ev["event"] = Json("bye");
        emit(out, ev);
        return true;
    }
    if (op->asString() == "stats") {
        Json ev = Json::object();
        ev["event"] = Json("stats");
        ev["gauges"] = gaugesJson();
        emit(out, ev);
        return false;
    }
    if (op->asString() == "sweep") {
        handleSweep(*doc, id, out);
        return false;
    }
    return reject("unknown op '" + op->asString() + "'");
}

void
SweepServer::handleSweep(const Json &req, const Json &id,
                         std::ostream &out)
{
    const auto reject = [&](const std::string &msg) {
        Json ev = Json::object();
        ev["event"] = Json("error");
        ev["id"] = id;
        ev["error"] = Json(msg);
        emit(out, ev);
    };

    double scale = opts_.defaultScale;
    if (const Json *s = req.find("scale")) {
        if (!s->isNumber() || !(s->asNumber() > 0.0))
            return reject("'scale' must be a positive number");
        scale = s->asNumber();
    }
    bool collect = false;
    if (const Json *c = req.find("collect_trace")) {
        if (c->kind() != Json::Kind::boolean)
            return reject("'collect_trace' must be a boolean");
        collect = c->asBool();
    }
    Config base = opts_.baseConfig;
    if (const Json *set = req.find("set")) {
        const std::string err = applySettings(base, *set);
        if (!err.empty())
            return reject(err);
    }

    const Json *cells_doc = req.find("cells");
    if (cells_doc == nullptr || !cells_doc->isArray() ||
        cells_doc->size() == 0)
        return reject("'cells' must be a non-empty array");

    struct Cell
    {
        std::string workload;
        std::string label;
        ExperimentConfig xcfg;
        double score = 1.0;
        bool skipped = false;
        bool cached = false;
    };
    std::vector<Cell> cells;
    for (const Json &cd : cells_doc->items()) {
        const std::string at =
            "cell " + std::to_string(cells.size()) + ": ";
        if (!cd.isObject())
            return reject(at + "not an object");
        const Json *w = cd.find("workload");
        if (w == nullptr || !w->isString())
            return reject(at + "missing 'workload'");
        Cell cell;
        cell.workload = w->asString();
        if (findWorkload(cell.workload) == nullptr)
            return reject(at + "unknown workload '" + cell.workload +
                          "'");
        cell.xcfg.config = base;
        cell.xcfg.scale = scale;
        cell.xcfg.collectTrace = collect;
        cell.xcfg.resultStore = opts_.resultStore;
        if (const Json *set = cd.find("set")) {
            const std::string err =
                applySettings(cell.xcfg.config, *set);
            if (!err.empty())
                return reject(at + err);
        }
        autoMesh(cell.xcfg.config);
        const std::string cfg_err = configValidate(cell.xcfg.config);
        if (!cfg_err.empty())
            return reject(at + cfg_err);
        if (const Json *l = cd.find("label");
            l != nullptr && l->isString())
            cell.label = l->asString();
        if (cell.label.empty()) {
            cell.label = cell.workload + "/" +
                toString(cell.xcfg.config.protocol);
            if (cell.xcfg.config.predictor != PredictorKind::none)
                cell.label += std::string("/") +
                    toString(cell.xcfg.config.predictor);
        }
        cells.push_back(std::move(cell));
    }

    // Triage: score, reorder, optionally drop.
    std::vector<std::size_t> order(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        order[i] = i;
    if (opts_.triage != TriageMode::off) {
        for (Cell &cell : cells) {
            const TriageEstimate est =
                triageCell(cell.workload, cell.xcfg.config,
                           cell.xcfg.scale, opts_.traceDir);
            cell.score = est.score;
            // Only a trace-backed estimate may drop a cell; neutral
            // scores keep unknown cells in the queue.
            cell.skipped = opts_.triage == TriageMode::skip &&
                est.fromTrace && est.score < opts_.triageThreshold;
        }
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return cells[a].score > cells[b].score;
                         });
        Json tri = Json::object();
        tri["event"] = Json("triage");
        tri["id"] = id;
        Json ord = Json::array();
        for (std::size_t i : order)
            ord.push(Json(i));
        tri["order"] = std::move(ord);
        Json scores = Json::array();
        for (const Cell &cell : cells)
            scores.push(Json(cell.score));
        tri["scores"] = std::move(scores);
        Json skipped = Json::array();
        for (std::size_t i = 0; i < cells.size(); ++i)
            if (cells[i].skipped)
                skipped.push(Json(i));
        tri["skipped"] = std::move(skipped);
        emit(out, tri);
    }

    std::vector<std::size_t> run_order;
    for (std::size_t i : order)
        if (!cells[i].skipped)
            run_order.push_back(i);

    Json acc = Json::object();
    acc["event"] = Json("accepted");
    acc["id"] = id;
    acc["cells"] = Json(cells.size());
    acc["queued"] = Json(run_order.size());
    emit(out, acc);

    // Warm/cold flags, resolved before dispatch so each result can
    // say whether it was served from the store.
    for (std::size_t i : run_order) {
        Cell &cell = cells[i];
        if (!opts_.resultStore.enabled() ||
            opts_.resultStore.refresh || !resultCacheable(cell.xcfg))
            continue;
        const ContentKey key = resultKey(
            cell.workload, cell.xcfg.config, cell.xcfg.scale,
            cell.xcfg.collectTrace, cell.xcfg.recordMissTargets,
            gitDescribe());
        cell.cached = contentFileExists(resultPath(
            opts_.resultStore.dir, cell.workload, key.hash()));
    }

    ResultStoreStats &stats = resultStoreStats();
    const std::uint64_t h0 = stats.hits;
    const std::uint64_t m0 = stats.misses;
    const std::uint64_t b0 = stats.bypasses;
    const std::uint64_t c0 = stats.corrupt;
    const auto t0 = std::chrono::steady_clock::now();
    queue_depth_ = run_order.size();

    // Stream results in run order as the completed prefix grows:
    // workers park finished events in their slot, and whoever owns
    // the lock flushes the contiguous prefix — deterministic event
    // order at any pool width.
    struct Slot
    {
        std::size_t pos;
        std::size_t cell;
    };
    std::vector<Slot> slots;
    slots.reserve(run_order.size());
    for (std::size_t p = 0; p < run_order.size(); ++p)
        slots.push_back({p, run_order[p]});
    std::mutex mu;
    std::vector<std::unique_ptr<Json>> parked(run_order.size());
    std::size_t next = 0;
    runner_.map(slots, [&](const Slot &slot) -> int {
        const Cell &cell = cells[slot.cell];
        const ExperimentResult res =
            runExperiment(cell.workload, cell.xcfg);
        auto ev = std::make_unique<Json>(Json::object());
        (*ev)["event"] = Json("result");
        (*ev)["id"] = id;
        (*ev)["cell"] = Json(slot.cell);
        (*ev)["label"] = Json(cell.label);
        (*ev)["workload"] = Json(cell.workload);
        (*ev)["cached"] = Json(cell.cached);
        if (opts_.triage != TriageMode::off)
            (*ev)["score"] = Json(cell.score);
        (*ev)["result"] = resultToJson(res);
        std::lock_guard<std::mutex> lock(mu);
        parked[slot.pos] = std::move(ev);
        --queue_depth_;
        ++cells_run_;
        while (next < parked.size() && parked[next] != nullptr) {
            emit(out, *parked[next]);
            parked[next].reset();
            ++next;
        }
        return 0;
    });

    Json fin = Json::object();
    fin["event"] = Json("done");
    fin["id"] = id;
    fin["cells_run"] = Json(run_order.size());
    fin["skipped"] = Json(cells.size() - run_order.size());
    fin["hits"] = Json(stats.hits - h0);
    fin["misses"] = Json(stats.misses - m0);
    fin["bypasses"] = Json(stats.bypasses - b0);
    fin["corrupt"] = Json(stats.corrupt - c0);
    fin["wall_ms"] = Json(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
    emit(out, fin);
}

} // namespace spp
