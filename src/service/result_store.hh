/**
 * @file
 * Content-addressed experiment result store (the warm half of
 * "sweep as a service").
 *
 * One entry caches the full ExperimentResult of one experiment cell,
 * keyed by everything that determines it: the workload name, the
 * iteration scale, the trace-collection flags, the complete (tweaked)
 * Config rendering, and the code version (git describe). Sweeps
 * consult the store before simulating; a warm cell deserializes to a
 * result byte-identical to a live run, a cold cell simulates and
 * populates the entry atomically (temp + rename, the shared
 * content-store discipline — see common/content_store.hh).
 *
 * Keys are auditable: the canonical preimage is stored inside each
 * entry and verified on load, so a hash collision or a hand-renamed
 * file can never serve the wrong cell. Loads are strict — any parse
 * or schema failure marks the entry corrupt, warns, and falls back
 * to simulation (which then overwrites the bad entry).
 *
 * Not every cell is cacheable: runs with prepare() hooks mutate the
 * built system in ways the key cannot see, and runs with telemetry,
 * attribution, trace capture/replay, or coherence checking produce
 * side artifacts a cache hit would silently skip. Those cells bypass
 * the store (counted separately from misses).
 */

#ifndef SPP_SERVICE_RESULT_STORE_HH
#define SPP_SERVICE_RESULT_STORE_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "analysis/experiment.hh"
#include "common/content_store.hh"

namespace spp {

/** On-disk schema tag; bump when the entry layout changes. */
inline constexpr const char *resultStoreSchema = "spp-result-v1";

/**
 * Process-wide store traffic counters. Atomic: sweep workers consult
 * the store concurrently. Benches report them after a sweep and the
 * batch server exports them as gauges.
 */
struct ResultStoreStats
{
    std::atomic<std::uint64_t> hits{0};     ///< Served from disk.
    std::atomic<std::uint64_t> misses{0};   ///< Simulated + stored.
    std::atomic<std::uint64_t> bypasses{0}; ///< Uncacheable cells.
    std::atomic<std::uint64_t> corrupt{0};  ///< Bad entries replaced.

    void
    reset()
    {
        hits = 0;
        misses = 0;
        bypasses = 0;
        corrupt = 0;
    }
};

/** The one store-traffic tally of this process. */
ResultStoreStats &resultStoreStats();

/**
 * Canonical key of one experiment cell. @p cfg must be the fully
 * tweaked per-cell config. @p git is the code version baked into the
 * key — production callers pass gitDescribe(); tests pass synthetic
 * values to exercise staleness without rebuilding.
 */
ContentKey resultKey(const std::string &workload, const Config &cfg,
                     double scale, bool collect_trace,
                     bool record_targets, const std::string &git);

/** Entry path inside @p dir (".sppresult.json" extension). */
std::string resultPath(const std::string &dir,
                       const std::string &workload,
                       std::uint64_t key_hash);

/** Can the store serve/populate this cell? See file comment. */
bool resultCacheable(const ExperimentConfig &cfg);

/**
 * Try to serve @p path. True on a warm hit with @p res filled (and
 * hits incremented); false on absent (miss) or corrupt (corrupt,
 * with a warning) entries — the caller simulates either way.
 * @p key_preimage is the expected resultKey().describe() rendering;
 * entries recording any other key are rejected as corrupt.
 */
bool loadCachedResult(const std::string &path,
                      const std::string &key_preimage,
                      ExperimentResult &res);

/**
 * Populate @p path after a cold simulation (atomic temp + rename;
 * the store directory is created on demand). Serialization failures
 * warn and drop the entry rather than failing the run.
 */
void storeResult(const std::string &path,
                 const std::string &key_preimage,
                 const ExperimentResult &res);

} // namespace spp

#endif // SPP_SERVICE_RESULT_STORE_HH
