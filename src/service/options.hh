/**
 * @file
 * Result-store configuration (see service/result_store.hh).
 *
 * Mirrors trace/options.hh: a tiny value struct the bench CLI and
 * the environment fill in, inert unless a directory is set, so the
 * default experiment path never touches the filesystem.
 */

#ifndef SPP_SERVICE_OPTIONS_HH
#define SPP_SERVICE_OPTIONS_HH

#include <cstdlib>
#include <string>

namespace spp {

/** Where (and whether) experiment results are cached on disk. */
struct ResultStoreOptions
{
    /** Store directory; empty disables the store entirely. */
    std::string dir;

    /** Re-simulate and overwrite even when a warm entry exists
     * (--result-refresh); the store still populates. */
    bool refresh = false;

    bool enabled() const { return !dir.empty(); }

    /** Seed from the environment: SPP_RESULT_STORE names the store
     * directory (the CLI flag overrides it). */
    static ResultStoreOptions
    fromEnv()
    {
        ResultStoreOptions opt;
        if (const char *dir = std::getenv("SPP_RESULT_STORE"))
            opt.dir = dir;
        return opt;
    }
};

} // namespace spp

#endif // SPP_SERVICE_OPTIONS_HH
