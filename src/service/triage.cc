#include "service/triage.hh"

#include <cmath>
#include <cstdint>
#include <vector>

#include "trace/codec.hh"
#include "trace/store.hh"

namespace spp {

TriageEstimate
triageCell(const std::string &workload, const Config &cfg,
           double scale, const std::string &trace_dir)
{
    TriageEstimate est;
    if (trace_dir.empty())
        return est;
    const std::string path = tracePath(
        trace_dir, workload, traceKeyHash(workload, cfg, scale));

    std::vector<std::uint8_t> bytes;
    std::string err;
    if (!readFileBytes(path, bytes, err))
        return est;
    TraceData trace;
    if (!decodeTrace(bytes, trace, err))
        return est;

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t syncs = 0;
    std::uint64_t total = 0;
    for (const auto &ops : trace.threads) {
        for (const TraceOp &op : ops) {
            ++total;
            switch (op.kind) {
              case TraceOpKind::read:
                ++reads;
                break;
              case TraceOpKind::write:
                ++writes;
                break;
              case TraceOpKind::compute:
                break;
              default:
                ++syncs;
                break;
            }
        }
    }
    if (total == 0)
        return est;

    const std::uint64_t mem_ops = reads + writes;
    const double write_fraction = mem_ops != 0
        ? static_cast<double>(writes) / static_cast<double>(mem_ops)
        : 0.0;
    const double sync_density =
        static_cast<double>(syncs) / static_cast<double>(total);
    const double threads =
        static_cast<double>(trace.threads.size());
    est.score = write_fraction + sync_density * std::sqrt(threads);
    est.fromTrace = true;
    return est;
}

} // namespace spp
