#include "service/result_codec.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/core_set.hh"

namespace spp {

namespace {

// Every serialized statistic field, by group. The size guards below
// pin these lists to the structs: a counter or Average added to a
// stats struct but not to its list (or vice versa) fails the build
// instead of silently vanishing from cached results.

#define SPP_MEM_COUNTER_FIELDS(X)                                     \
    X(accesses) X(l1Hits) X(l2Hits) X(misses) X(upgradeMisses)        \
    X(communicatingMisses) X(offChipMisses) X(writebacks)             \
    X(snoopLookups) X(predictionsAttempted)                           \
    X(predictionsSuppressed) X(predictionsOnCommunicating)            \
    X(predictionsOnNonComm) X(predictionsSufficient)                  \
    X(predWasteBytesComm) X(predWasteBytesNonComm)

#define SPP_MEM_AVERAGE_FIELDS(X)                                     \
    X(missLatency) X(commMissLatency) X(nonCommMissLatency)           \
    X(hitLatency) X(actualTargets) X(predictedTargets)

#define SPP_NOC_COUNTER_FIELDS(X)                                     \
    X(packets) X(flitBytes) X(byteHops) X(byteRouters)                \
    X(routerTraversals)

#define SPP_SYNC_COUNTER_FIELDS(X)                                    \
    X(syncPoints) X(barriersReleased) X(lockAcquisitions)             \
    X(lockContended) X(wakeups)

#define SPP_SP_COUNTER_FIELDS(X)                                      \
    X(epochsStarted) X(noisyEpochs) X(recoveries) X(lockEpochs)       \
    X(warmupExtractions) X(patternHits)

#define SPP_COUNT(f) +1
constexpr std::size_t memCounters = 0 SPP_MEM_COUNTER_FIELDS(SPP_COUNT);
constexpr std::size_t memAverages = 0 SPP_MEM_AVERAGE_FIELDS(SPP_COUNT);
constexpr std::size_t nocCounters = 0 SPP_NOC_COUNTER_FIELDS(SPP_COUNT);
constexpr std::size_t syncCounters =
    0 SPP_SYNC_COUNTER_FIELDS(SPP_COUNT);
constexpr std::size_t spCounters = 0 SPP_SP_COUNTER_FIELDS(SPP_COUNT);
#undef SPP_COUNT

// Counter is one u64; Average is {double, u64, double, double}.
// All members are 8-byte aligned, so the struct sizes are exact
// sums and any drift (field added/removed) trips these.
static_assert(sizeof(MemSysStats) ==
                  memCounters * sizeof(Counter) +
                      7 * sizeof(std::uint64_t) +
                      memAverages * sizeof(Average),
              "MemSysStats changed: update the codec field lists");
static_assert(sizeof(NocStats) ==
                  nocCounters * sizeof(Counter) + sizeof(Average) +
                      6 * sizeof(std::uint64_t),
              "NocStats changed: update the codec field lists");
static_assert(sizeof(SyncStats) == syncCounters * sizeof(Counter),
              "SyncStats changed: update the codec field lists");
static_assert(sizeof(SpStats) == spCounters * sizeof(Counter),
              "SpStats changed: update the codec field lists");

/** Largest double that still identifies an exact integer. */
constexpr double maxExactCount = 9007199254740992.0; // 2^53

// ------------------------------------------------------------------
// Encoding helpers.
// ------------------------------------------------------------------

Json
averageToJson(const Average &a)
{
    Json arr = Json::array();
    arr.push(Json(a.sum()));
    arr.push(Json(a.count()));
    arr.push(Json(a.max()));
    arr.push(Json(a.min()));
    return arr;
}

/** uint64 identifiers ride as decimal strings (see file comment). */
Json
u64ToJson(std::uint64_t v)
{
    return Json(std::to_string(v));
}

// ------------------------------------------------------------------
// Strict decoding helpers. All report through @p err and return
// false; callers bail out on the first failure.
// ------------------------------------------------------------------

const Json *
need(const Json &obj, const char *key, std::string &err)
{
    const Json *m = obj.isObject() ? obj.find(key) : nullptr;
    if (m == nullptr && err.empty())
        err = std::string("missing field '") + key + "'";
    return m;
}

bool
getDouble(const Json &obj, const char *key, double &out,
          std::string &err)
{
    const Json *m = need(obj, key, err);
    if (m == nullptr)
        return false;
    if (!m->isNumber()) {
        err = std::string("field '") + key + "' is not a number";
        return false;
    }
    out = m->asNumber();
    return true;
}

bool
countFromNumber(const Json &j, const char *what, std::uint64_t &out,
                std::string &err)
{
    if (!j.isNumber()) {
        err = std::string(what) + " is not a number";
        return false;
    }
    const double v = j.asNumber();
    if (!(v >= 0.0) || v > maxExactCount || v != std::floor(v)) {
        err = std::string(what) + " is not an exact count";
        return false;
    }
    out = static_cast<std::uint64_t>(v);
    return true;
}

bool
getCount(const Json &obj, const char *key, std::uint64_t &out,
         std::string &err)
{
    const Json *m = need(obj, key, err);
    if (m == nullptr)
        return false;
    return countFromNumber(*m, key, out, err);
}

bool
getCounter(const Json &obj, const char *key, Counter &out,
           std::string &err)
{
    std::uint64_t v = 0;
    if (!getCount(obj, key, v, err))
        return false;
    out.exchange(v);
    return true;
}

bool
u64FromJson(const Json &j, const char *what, std::uint64_t &out,
            std::string &err)
{
    if (!j.isString()) {
        err = std::string(what) + " is not a decimal string";
        return false;
    }
    const std::string &s = j.asString();
    if (s.empty() ||
        s.find_first_not_of("0123456789") != std::string::npos) {
        err = std::string(what) + " is not a decimal string";
        return false;
    }
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || *end != '\0') {
        err = std::string(what) + " value '" + s + "' out of range";
        return false;
    }
    return true;
}

bool
getU64Field(const Json &obj, const char *key, std::uint64_t &out,
            std::string &err)
{
    const Json *m = need(obj, key, err);
    if (m == nullptr)
        return false;
    return u64FromJson(*m, key, out, err);
}

bool
getAverage(const Json &obj, const char *key, Average &out,
           std::string &err)
{
    const Json *m = need(obj, key, err);
    if (m == nullptr)
        return false;
    if (!m->isArray() || m->size() != 4) {
        err = std::string("field '") + key +
            "' is not a [sum, count, max, min] array";
        return false;
    }
    const auto &a = m->items();
    for (unsigned i = 0; i < 4; ++i) {
        if (!a[i].isNumber()) {
            err = std::string("field '") + key +
                "' holds a non-number";
            return false;
        }
    }
    std::uint64_t count = 0;
    if (!countFromNumber(a[1], key, count, err))
        return false;
    out.restore(a[0].asNumber(), count, a[2].asNumber(),
                a[3].asNumber());
    return true;
}

template <std::size_t N>
bool
getU64Array(const Json &obj, const char *key,
            std::array<std::uint64_t, N> &out, std::string &err)
{
    const Json *m = need(obj, key, err);
    if (m == nullptr)
        return false;
    if (!m->isArray() || m->size() != N) {
        err = std::string("field '") + key + "' is not a " +
            std::to_string(N) + "-element array";
        return false;
    }
    for (std::size_t i = 0; i < N; ++i) {
        if (!countFromNumber(m->items()[i], key, out[i], err))
            return false;
    }
    return true;
}

// ------------------------------------------------------------------
// CommTrace payload.
// ------------------------------------------------------------------

Json
traceToJson(const CommTrace &t)
{
    Json doc = Json::object();
    doc["num_cores"] = Json(t.numCores());
    doc["record_targets"] = Json(t.recordsTargets());
    doc["total_misses"] = Json(t.totalMisses());
    doc["total_comm_misses"] = Json(t.totalCommMisses());

    Json epochs = Json::array();
    for (unsigned c = 0; c < t.numCores(); ++c) {
        Json per_core = Json::array();
        for (const EpochRecord &e : t.epochs(c)) {
            Json rec = Json::object();
            rec["begin_type"] =
                Json(static_cast<unsigned>(e.beginType));
            rec["static_id"] = u64ToJson(e.staticId);
            rec["dynamic_id"] = u64ToJson(e.dynamicId);
            rec["begin_tick"] = Json(e.beginTick);
            rec["misses"] = Json(e.misses);
            rec["comm_misses"] = Json(e.commMisses);
            Json vol = Json::array();
            for (std::uint32_t v : e.volume)
                vol.push(Json(v));
            rec["volume"] = std::move(vol);
            if (t.recordsTargets()) {
                Json targets = Json::array();
                for (const CoreSet &s : e.missTargets)
                    targets.push(Json(s.toHex()));
                rec["miss_targets"] = std::move(targets);
            }
            per_core.push(std::move(rec));
        }
        epochs.push(std::move(per_core));
    }
    doc["epochs"] = std::move(epochs);

    Json whole = Json::array();
    for (unsigned c = 0; c < t.numCores(); ++c) {
        Json row = Json::array();
        for (std::uint64_t v : t.wholeRunVolume(c))
            row.push(u64ToJson(v));
        whole.push(std::move(row));
    }
    doc["whole_run_volume"] = std::move(whole);

    Json pcs = Json::array();
    for (unsigned c = 0; c < t.numCores(); ++c) {
        Json per_core = Json::array();
        for (const auto &[pc, vol] : t.pcVolume(c)) {
            Json entry = Json::array();
            entry.push(u64ToJson(pc));
            Json row = Json::array();
            for (std::uint32_t v : vol)
                row.push(Json(v));
            entry.push(std::move(row));
            per_core.push(std::move(entry));
        }
        pcs.push(std::move(per_core));
    }
    doc["pc_volume"] = std::move(pcs);
    return doc;
}

bool
u32FromCount(std::uint64_t v, const char *what, std::uint32_t &out,
             std::string &err)
{
    if (v > std::numeric_limits<std::uint32_t>::max()) {
        err = std::string(what) + " exceeds 32 bits";
        return false;
    }
    out = static_cast<std::uint32_t>(v);
    return true;
}

bool
volumeFromJson(const Json &j, unsigned n_cores, const char *what,
               std::vector<std::uint32_t> &out, std::string &err)
{
    if (!j.isArray() || j.size() != n_cores) {
        err = std::string(what) + " is not a per-core array";
        return false;
    }
    out.assign(n_cores, 0);
    for (unsigned i = 0; i < n_cores; ++i) {
        std::uint64_t v = 0;
        if (!countFromNumber(j.items()[i], what, v, err) ||
            !u32FromCount(v, what, out[i], err))
            return false;
    }
    return true;
}

bool
coreSetFromJson(const Json &j, CoreSet &out, std::string &err)
{
    if (!j.isString()) {
        err = "miss target is not a hex string";
        return false;
    }
    const std::string &hex = j.asString();
    // Pre-validate: CoreSet::fromHex() is fatal on malformed input,
    // and a corrupt store entry must decode-fail, not abort.
    if (hex.empty() || hex.size() > CoreSet::nWords * 16 ||
        hex.find_first_not_of("0123456789abcdefABCDEF") !=
            std::string::npos) {
        err = "malformed miss-target hex string '" + hex + "'";
        return false;
    }
    out = CoreSet::fromHex(hex);
    return true;
}

bool
traceFromJson(const Json &doc, std::unique_ptr<CommTrace> &out,
              std::string &err)
{
    if (!doc.isObject()) {
        err = "trace payload is not an object";
        return false;
    }
    std::uint64_t n_cores_raw = 0;
    if (!getCount(doc, "num_cores", n_cores_raw, err))
        return false;
    if (n_cores_raw == 0 || n_cores_raw > maxCores) {
        err = "implausible trace core count " +
            std::to_string(n_cores_raw);
        return false;
    }
    const auto n_cores = static_cast<unsigned>(n_cores_raw);
    const Json *rt = need(doc, "record_targets", err);
    if (rt == nullptr)
        return false;
    if (rt->kind() != Json::Kind::boolean) {
        err = "field 'record_targets' is not a boolean";
        return false;
    }
    const bool record_targets = rt->asBool();
    std::uint64_t total_misses = 0;
    std::uint64_t total_comm = 0;
    if (!getCount(doc, "total_misses", total_misses, err) ||
        !getCount(doc, "total_comm_misses", total_comm, err))
        return false;

    const Json *epochs_doc = need(doc, "epochs", err);
    if (epochs_doc == nullptr)
        return false;
    if (!epochs_doc->isArray() || epochs_doc->size() != n_cores) {
        err = "field 'epochs' is not a per-core array";
        return false;
    }
    std::vector<std::vector<EpochRecord>> epochs(n_cores);
    for (unsigned c = 0; c < n_cores; ++c) {
        const Json &per_core = epochs_doc->items()[c];
        if (!per_core.isArray()) {
            err = "per-core epoch list is not an array";
            return false;
        }
        for (const Json &rec : per_core.items()) {
            EpochRecord e(n_cores);
            e.core = static_cast<CoreId>(c);
            std::uint64_t bt = 0;
            if (!getCount(rec, "begin_type", bt, err))
                return false;
            if (bt > static_cast<std::uint64_t>(
                         SyncType::broadcastWake)) {
                err = "unknown sync type " + std::to_string(bt);
                return false;
            }
            e.beginType = static_cast<SyncType>(bt);
            if (!getU64Field(rec, "static_id", e.staticId, err) ||
                !getU64Field(rec, "dynamic_id", e.dynamicId, err) ||
                !getCount(rec, "begin_tick", e.beginTick, err))
                return false;
            std::uint64_t v = 0;
            if (!getCount(rec, "misses", v, err) ||
                !u32FromCount(v, "misses", e.misses, err) ||
                !getCount(rec, "comm_misses", v, err) ||
                !u32FromCount(v, "comm_misses", e.commMisses, err))
                return false;
            const Json *vol = need(rec, "volume", err);
            if (vol == nullptr ||
                !volumeFromJson(*vol, n_cores, "epoch volume",
                                e.volume, err))
                return false;
            if (record_targets) {
                const Json *targets = need(rec, "miss_targets", err);
                if (targets == nullptr)
                    return false;
                if (!targets->isArray()) {
                    err = "field 'miss_targets' is not an array";
                    return false;
                }
                for (const Json &s : targets->items()) {
                    CoreSet set;
                    if (!coreSetFromJson(s, set, err))
                        return false;
                    e.missTargets.push_back(set);
                }
            }
            epochs[c].push_back(std::move(e));
        }
    }

    const Json *whole_doc = need(doc, "whole_run_volume", err);
    if (whole_doc == nullptr)
        return false;
    if (!whole_doc->isArray() || whole_doc->size() != n_cores) {
        err = "field 'whole_run_volume' is not a per-core array";
        return false;
    }
    std::vector<std::vector<std::uint64_t>> whole(
        n_cores, std::vector<std::uint64_t>(n_cores, 0));
    for (unsigned c = 0; c < n_cores; ++c) {
        const Json &row = whole_doc->items()[c];
        if (!row.isArray() || row.size() != n_cores) {
            err = "whole-run volume row is not a per-core array";
            return false;
        }
        for (unsigned t = 0; t < n_cores; ++t) {
            if (!u64FromJson(row.items()[t], "whole-run volume",
                             whole[c][t], err))
                return false;
        }
    }

    const Json *pcs_doc = need(doc, "pc_volume", err);
    if (pcs_doc == nullptr)
        return false;
    if (!pcs_doc->isArray() || pcs_doc->size() != n_cores) {
        err = "field 'pc_volume' is not a per-core array";
        return false;
    }
    std::vector<CommTrace::PcVolumeMap> pc_volume(n_cores);
    for (unsigned c = 0; c < n_cores; ++c) {
        const Json &per_core = pcs_doc->items()[c];
        if (!per_core.isArray()) {
            err = "per-core pc-volume list is not an array";
            return false;
        }
        for (const Json &entry : per_core.items()) {
            if (!entry.isArray() || entry.size() != 2) {
                err = "pc-volume entry is not a [pc, volumes] pair";
                return false;
            }
            Pc pc = 0;
            std::vector<std::uint32_t> vol;
            if (!u64FromJson(entry.items()[0], "pc", pc, err) ||
                !volumeFromJson(entry.items()[1], n_cores,
                                "pc volume", vol, err))
                return false;
            pc_volume[c][pc] = std::move(vol);
        }
    }

    out = std::make_unique<CommTrace>(CommTrace::restore(
        n_cores, record_targets, std::move(epochs), std::move(whole),
        std::move(pc_volume), total_misses, total_comm));
    return true;
}

} // namespace

Json
resultToJson(const ExperimentResult &res)
{
    const RunResult &run = res.run;
    Json doc = Json::object();
    doc["ticks"] = Json(run.ticks);
    doc["events_executed"] = Json(run.eventsExecuted);
    doc["predictor_storage_bits"] = Json(run.predictorStorageBits);
    doc["predictor_table_accesses"] =
        Json(run.predictorTableAccesses);
    doc["indirections_avoided"] = Json(run.indirectionsAvoided);
    doc["energy"] = Json(res.energy);

    Json mem = Json::object();
#define SPP_PUT_COUNTER(f) mem[#f] = Json(run.mem.f.value());
    SPP_MEM_COUNTER_FIELDS(SPP_PUT_COUNTER)
#undef SPP_PUT_COUNTER
#define SPP_PUT_AVERAGE(f) mem[#f] = averageToJson(run.mem.f);
    SPP_MEM_AVERAGE_FIELDS(SPP_PUT_AVERAGE)
#undef SPP_PUT_AVERAGE
    Json by_source = Json::array();
    for (std::uint64_t v : run.mem.sufficientBySource)
        by_source.push(Json(v));
    mem["sufficientBySource"] = std::move(by_source);
    doc["mem"] = std::move(mem);

    Json noc = Json::object();
#define SPP_PUT_COUNTER(f) noc[#f] = Json(run.noc.f.value());
    SPP_NOC_COUNTER_FIELDS(SPP_PUT_COUNTER)
#undef SPP_PUT_COUNTER
    noc["packetLatency"] = averageToJson(run.noc.packetLatency);
    Json by_class = Json::array();
    for (std::uint64_t v : run.noc.bytesByClass)
        by_class.push(Json(v));
    noc["bytesByClass"] = std::move(by_class);
    doc["noc"] = std::move(noc);

    Json sync = Json::object();
#define SPP_PUT_COUNTER(f) sync[#f] = Json(run.sync.f.value());
    SPP_SYNC_COUNTER_FIELDS(SPP_PUT_COUNTER)
#undef SPP_PUT_COUNTER
    doc["sync"] = std::move(sync);

    Json sp = Json::object();
#define SPP_PUT_COUNTER(f) sp[#f] = Json(run.sp.f.value());
    SPP_SP_COUNTER_FIELDS(SPP_PUT_COUNTER)
#undef SPP_PUT_COUNTER
    doc["sp"] = std::move(sp);

    doc["trace"] = res.trace ? traceToJson(*res.trace) : Json();
    return doc;
}

bool
resultFromJson(const Json &doc, ExperimentResult &out,
               std::string &err)
{
    if (!doc.isObject()) {
        err = "result payload is not an object";
        return false;
    }
    out = ExperimentResult{};
    RunResult &run = out.run;
    std::uint64_t bits = 0;
    if (!getCount(doc, "ticks", run.ticks, err) ||
        !getCount(doc, "events_executed", run.eventsExecuted, err) ||
        !getCount(doc, "predictor_storage_bits", bits, err) ||
        !getCount(doc, "predictor_table_accesses",
                  run.predictorTableAccesses, err) ||
        !getCount(doc, "indirections_avoided",
                  run.indirectionsAvoided, err) ||
        !getDouble(doc, "energy", out.energy, err))
        return false;
    run.predictorStorageBits = bits;

    const Json *mem = need(doc, "mem", err);
    if (mem == nullptr)
        return false;
#define SPP_GET_COUNTER(f)                                            \
    if (!getCounter(*mem, #f, run.mem.f, err))                        \
        return false;
    SPP_MEM_COUNTER_FIELDS(SPP_GET_COUNTER)
#undef SPP_GET_COUNTER
#define SPP_GET_AVERAGE(f)                                            \
    if (!getAverage(*mem, #f, run.mem.f, err))                        \
        return false;
    SPP_MEM_AVERAGE_FIELDS(SPP_GET_AVERAGE)
#undef SPP_GET_AVERAGE
    if (!getU64Array(*mem, "sufficientBySource",
                     run.mem.sufficientBySource, err))
        return false;

    const Json *noc = need(doc, "noc", err);
    if (noc == nullptr)
        return false;
#define SPP_GET_COUNTER(f)                                            \
    if (!getCounter(*noc, #f, run.noc.f, err))                        \
        return false;
    SPP_NOC_COUNTER_FIELDS(SPP_GET_COUNTER)
#undef SPP_GET_COUNTER
    if (!getAverage(*noc, "packetLatency", run.noc.packetLatency,
                    err) ||
        !getU64Array(*noc, "bytesByClass", run.noc.bytesByClass,
                     err))
        return false;

    const Json *sync = need(doc, "sync", err);
    if (sync == nullptr)
        return false;
#define SPP_GET_COUNTER(f)                                            \
    if (!getCounter(*sync, #f, run.sync.f, err))                      \
        return false;
    SPP_SYNC_COUNTER_FIELDS(SPP_GET_COUNTER)
#undef SPP_GET_COUNTER

    const Json *sp = need(doc, "sp", err);
    if (sp == nullptr)
        return false;
#define SPP_GET_COUNTER(f)                                            \
    if (!getCounter(*sp, #f, run.sp.f, err))                          \
        return false;
    SPP_SP_COUNTER_FIELDS(SPP_GET_COUNTER)
#undef SPP_GET_COUNTER

    const Json *trace = need(doc, "trace", err);
    if (trace == nullptr)
        return false;
    if (!trace->isNull() && !traceFromJson(*trace, out.trace, err))
        return false;
    return true;
}

} // namespace spp
