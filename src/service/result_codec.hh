/**
 * @file
 * JSON encoding of ExperimentResult for the result store.
 *
 * The payload covers everything a warm cache hit must reproduce
 * byte-identically: the full RunResult statistics (counters, Average
 * summaries, breakdown arrays), the energy-model total, and — when
 * the run collected one — the finalized CommTrace (epoch records,
 * whole-run and per-PC volume matrices, per-miss target sets).
 * Attribution profilers are never serialized; runs that enable them
 * bypass the store (see resultCacheable()).
 *
 * Counters and tick values encode as JSON numbers (the writer prints
 * integral doubles without a fractional part, and every simulator
 * counter stays far below 2^53); uint64 *identifiers* — PCs, sync
 * static IDs, whole-run volumes — encode as decimal strings so
 * arbitrary 64-bit values survive; CoreSets use their width-
 * independent hex form. resultFromJson() is strict: a missing or
 * mistyped field, an out-of-range count, or a wrong-size array
 * produces a descriptive error, and the store treats the entry as
 * corrupt (re-simulates and overwrites).
 */

#ifndef SPP_SERVICE_RESULT_CODEC_HH
#define SPP_SERVICE_RESULT_CODEC_HH

#include <string>

#include "analysis/experiment.hh"
#include "telemetry/json.hh"

namespace spp {

/** Serialize @p res (statistics, energy, optional comm trace). */
Json resultToJson(const ExperimentResult &res);

/**
 * Strictly parse @p doc into @p out. Returns false and sets @p err
 * (leaving @p out unspecified) on any malformation.
 */
bool resultFromJson(const Json &doc, ExperimentResult &out,
                    std::string &err);

} // namespace spp

#endif // SPP_SERVICE_RESULT_CODEC_HH
