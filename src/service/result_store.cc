#include "service/result_store.hh"

#include <utility>

#include "common/logging.hh"
#include "service/result_codec.hh"

namespace spp {

ResultStoreStats &
resultStoreStats()
{
    static ResultStoreStats stats;
    return stats;
}

ContentKey
resultKey(const std::string &workload, const Config &cfg,
          double scale, bool collect_trace, bool record_targets,
          const std::string &git)
{
    ContentKey key("result_v1");
    key.field("workload", workload)
        .field("scale", scale)
        .field("trace", collect_trace ? 1 : 0)
        .field("targets", record_targets ? 1 : 0)
        .field("git", git)
        .field("config", configDescribe(cfg));
    return key;
}

std::string
resultPath(const std::string &dir, const std::string &workload,
           std::uint64_t key_hash)
{
    return contentStorePath(dir, workload, key_hash,
                            ".sppresult.json");
}

bool
resultCacheable(const ExperimentConfig &cfg)
{
    // prepare() mutates the built system invisibly to the key;
    // telemetry, attribution, trace capture/replay and the coherence
    // checkers all do work a cache hit would silently skip.
    return !cfg.prepare && !cfg.telemetry.enabled() &&
        !cfg.attribution.enabled() && cfg.trace.dir.empty() &&
        cfg.trace.replayFile.empty() && !cfg.checkCoherence;
}

namespace {

/** Parse + verify one entry; false with @p err on any defect. */
bool
decodeEntry(const std::vector<std::uint8_t> &bytes,
            const std::string &key_preimage, ExperimentResult &res,
            std::string &err)
{
    const auto doc = Json::parse(std::string_view(
        reinterpret_cast<const char *>(bytes.data()), bytes.size()));
    if (!doc) {
        err = "not a well-formed JSON document";
        return false;
    }
    const Json *schema = doc->find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->asString() != resultStoreSchema) {
        err = std::string("missing or unexpected schema (want ") +
            resultStoreSchema + ")";
        return false;
    }
    // The stored preimage must match exactly: this turns both hash
    // collisions and renamed/copied files into detected corruption
    // instead of silently serving another cell's numbers.
    const Json *key = doc->find("key");
    if (key == nullptr || !key->isString()) {
        err = "missing key preimage";
        return false;
    }
    if (key->asString() != key_preimage) {
        err = "key mismatch: entry records '" + key->asString() + "'";
        return false;
    }
    const Json *result = doc->find("result");
    if (result == nullptr) {
        err = "missing result payload";
        return false;
    }
    return resultFromJson(*result, res, err);
}

} // namespace

bool
loadCachedResult(const std::string &path,
                 const std::string &key_preimage,
                 ExperimentResult &res)
{
    std::vector<std::uint8_t> bytes;
    std::string err;
    if (!readFileBytes(path, bytes, err)) {
        // Absent is the normal cold case; anything else (present but
        // unreadable) is indistinguishable from absent here and is
        // likewise simulated.
        ++resultStoreStats().misses;
        return false;
    }
    if (!decodeEntry(bytes, key_preimage, res, err)) {
        warn("result store: {}: {}; re-simulating", path, err);
        ++resultStoreStats().corrupt;
        return false;
    }
    ++resultStoreStats().hits;
    return true;
}

void
storeResult(const std::string &path, const std::string &key_preimage,
            const ExperimentResult &res)
{
    Json doc = Json::object();
    doc["schema"] = Json(resultStoreSchema);
    doc["key"] = Json(key_preimage);
    doc["result"] = resultToJson(res);
    std::string err;
    if (!writeFileTextAtomic(path, doc.dump() + "\n", err))
        warn("result store: cannot write {}: {}", path, err);
}

} // namespace spp
