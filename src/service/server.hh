/**
 * @file
 * Batch experiment server: sweep-as-a-service.
 *
 * A long-running loop that accepts experiment requests as
 * newline-delimited JSON (one document per line) on an input stream
 * — stdin, or a unix-socket connection the bench driver wires up —
 * and streams per-cell results back the same way. Clients may queue
 * any number of requests ahead; they are served in order, and each
 * request's cells run on the shared SweepRunner pool with results
 * streamed in job order as the completed prefix grows (so output is
 * deterministic at any --jobs count).
 *
 * Requests
 *
 *   {"op": "sweep", "id": "q1",
 *    "scale": 0.1,                 // optional, default from options
 *    "collect_trace": false,       // optional
 *    "set": {"numCores": 16},      // optional base config overrides
 *    "cells": [                    // one entry per experiment cell
 *      {"workload": "ocean",
 *       "label": "dir",            // optional; defaults derived
 *       "set": {"protocol": "directory"}}]}   // per-cell overrides
 *   {"op": "stats"}                // snapshot the gauges
 *   {"op": "shutdown"}             // finish and exit the loop
 *
 * Config overrides go through configSetField(), i.e. the exact field
 * names configDescribe() prints — the same unified vocabulary the
 * store keys, the manifests and the bench --set flag use. A request
 * changing numCores without fixing meshX/meshY gets the most-square
 * mesh automatically. Malformed requests are rejected with an
 * "error" event; they never terminate the server.
 *
 * Responses (events, one JSON document per line)
 *
 *   {"event": "accepted", "id", "cells", "queued"}
 *   {"event": "triage", "id", "order", "scores", "skipped"}  // when on
 *   {"event": "result", "id", "cell", "label", "workload",
 *    "cached", "result": {...}}    // full result-codec payload
 *   {"event": "done", "id", "cells_run", "skipped",
 *    "hits", "misses", "bypasses", "corrupt", "wall_ms"}
 *   {"event": "stats", "gauges": {...}}
 *   {"event": "error", "id", "error"}
 *   {"event": "bye"}
 *
 * The server exports its health through a telemetry MetricRegistry:
 * server.queue_depth (cells admitted but not yet finished),
 * server.requests_served, server.cells_run, and the process-wide
 * result-store traffic (store.hits / misses / bypasses / corrupt).
 * The "stats" op renders that registry, so a client sees cache and
 * queue gauges without scraping logs.
 *
 * With a result store configured every cacheable cell is served
 * from / populates the store exactly as CLI sweeps do — the server
 * and the CLI share one on-disk cache. The optional triage hook
 * (service/triage.hh) orders cells most-communicating-first or
 * skips cells scoring below a threshold; off by default.
 */

#ifndef SPP_SERVICE_SERVER_HH
#define SPP_SERVICE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "analysis/sweep.hh"
#include "common/config.hh"
#include "service/options.hh"
#include "telemetry/json.hh"
#include "telemetry/metrics.hh"

namespace spp {

/** How the server uses triage scores (see service/triage.hh). */
enum class TriageMode
{
    off,    ///< Run cells in request order.
    order,  ///< Run most-communicating cells first.
    skip,   ///< Order, and drop cells scoring below the threshold.
};

const char *toString(TriageMode m);

/** Everything a SweepServer is configured with. */
struct ServerOptions
{
    /** Result cache shared with CLI sweeps; empty dir = no cache. */
    ResultStoreOptions resultStore;
    /** Trace store consulted by triage (empty = neutral scores). */
    std::string traceDir;
    TriageMode triage = TriageMode::off;
    /** skip mode drops cells with score < threshold. */
    double triageThreshold = 0.25;
    /** Sweep pool width; 0 = SweepRunner::defaultJobs(). */
    unsigned jobs = 0;
    /** Base config cells specialize via "set" overrides. */
    Config baseConfig;
    /** Scale for requests that do not name one. */
    double defaultScale = 1.0;
};

class SweepServer
{
  public:
    explicit SweepServer(ServerOptions opts);

    /**
     * Serve requests from @p in until EOF or a shutdown op, writing
     * events to @p out (flushed per event, so clients can stream).
     * Returns the number of requests served (sweeps + control ops).
     */
    unsigned serve(std::istream &in, std::ostream &out);

    /** The health gauges (see file comment). */
    const MetricRegistry &metrics() const { return metrics_; }

    /** True once a shutdown op was served (socket frontends stop
     * accepting new connections; EOF alone leaves this false). */
    bool shutdownRequested() const { return shutdown_; }

  private:
    /** One request line; true = shutdown was requested. */
    bool handleLine(const std::string &line, std::ostream &out);
    void handleSweep(const Json &req, const Json &id,
                     std::ostream &out);
    Json gaugesJson() const;
    void emit(std::ostream &out, const Json &event);

    ServerOptions opts_;
    SweepRunner runner_;
    MetricRegistry metrics_;
    std::atomic<std::uint64_t> queue_depth_{0};
    std::uint64_t requests_served_ = 0;
    std::uint64_t cells_run_ = 0;
    bool shutdown_ = false;
};

} // namespace spp

#endif // SPP_SERVICE_SERVER_HH
