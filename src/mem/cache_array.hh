/**
 * @file
 * Generic set-associative cache tag/state array with LRU replacement.
 *
 * The array stores coherence state only (the simulator carries data
 * values in a separate logical memory for checking); it is used for
 * both the L1 filter cache and the private L2.
 */

#ifndef SPP_MEM_CACHE_ARRAY_HH
#define SPP_MEM_CACHE_ARRAY_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/mesif.hh"

namespace spp {

/** One cache line's bookkeeping. */
struct CacheLine
{
    Addr tag = 0;               ///< Full line address (not truncated).
    Mesif state = Mesif::invalid;
    std::uint64_t lru = 0;      ///< Higher = more recently used.
    Pc lastPc = 0;              ///< Instruction that last missed here
                                ///< (INST predictor training).
    std::uint64_t version = 0;  ///< Logical data version (checker).
};

/** Statistics for one cache array. */
struct CacheStats
{
    Counter lookups;
    Counter hits;
    Counter misses;
    Counter evictions;
    Counter dirtyEvictions;
};

/**
 * Set-associative array of CacheLine records indexed by line address.
 */
class CacheArray
{
  public:
    /**
     * @param size_bytes Total capacity.
     * @param assoc Ways per set.
     * @param line_bytes Line size (power of two).
     */
    CacheArray(unsigned size_bytes, unsigned assoc, unsigned line_bytes);

    /**
     * Look up @p line_addr (must be line-aligned). Touches LRU on hit.
     * @return pointer to the line, or nullptr on miss.
     */
    CacheLine *lookup(Addr line_addr);

    /** Look up without updating LRU or stats (for checkers/peeks). */
    const CacheLine *peek(Addr line_addr) const;

    /** Mutable lookup without LRU/stats updates (protocol actions). */
    CacheLine *
    find(Addr line_addr)
    {
        return const_cast<CacheLine *>(
            static_cast<const CacheArray *>(this)->peek(line_addr));
    }

    /**
     * Allocate a way for @p line_addr, evicting the LRU victim if the
     * set is full. The line is returned in Mesif::invalid with the tag
     * set; the caller installs the state.
     *
     * @param[out] victim If an eviction occurred, receives the evicted
     *             line's previous contents (tag + state); otherwise
     *             victim.state == Mesif::invalid.
     * @return the allocated line.
     */
    CacheLine *allocate(Addr line_addr, CacheLine &victim);

    /** Invalidate @p line_addr if present. @return previous state. */
    Mesif invalidate(Addr line_addr);

    /** Number of valid lines currently held (O(size); for tests). */
    unsigned validCount() const;

    unsigned numSets() const { return n_sets_; }
    unsigned assoc() const { return assoc_; }
    unsigned lineBytes() const { return line_bytes_; }

    const CacheStats &stats() const { return stats_; }

    /** Call @p fn(line) for every valid line (used by flush/tests). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const auto &line : lines_)
            if (isValid(line.state))
                fn(line);
    }

  private:
    std::size_t setBase(Addr line_addr) const;

    unsigned n_sets_;
    unsigned assoc_;
    unsigned line_bytes_;
    unsigned line_shift_;
    std::uint64_t next_lru_ = 1;
    std::vector<CacheLine> lines_;
    CacheStats stats_;
};

} // namespace spp

#endif // SPP_MEM_CACHE_ARRAY_HH
