/**
 * @file
 * MESIF cache line states.
 *
 * MESIF extends MESI with a Forwarding state: exactly one sharer of a
 * clean line holds F and answers cache-to-cache transfer requests, so
 * clean data never needs a memory round trip while shared on chip
 * (Intel QPI protocol; the paper's baseline).
 */

#ifndef SPP_MEM_MESIF_HH
#define SPP_MEM_MESIF_HH

#include <cstdint>

namespace spp {

enum class Mesif : std::uint8_t
{
    invalid,
    shared,     ///< Clean, possibly multiple copies, not forwardable.
    forwarding, ///< Clean, newest sharer, answers c2c requests.
    exclusive,  ///< Clean, only copy.
    modified,   ///< Dirty, only copy.
};

/** True if a cache holding the line in @p s may satisfy a read
 * request with data (E, M or F). */
constexpr bool
canForward(Mesif s)
{
    return s == Mesif::exclusive || s == Mesif::modified ||
           s == Mesif::forwarding;
}

/** True if the line is valid in any readable state. */
constexpr bool
isValid(Mesif s)
{
    return s != Mesif::invalid;
}

/** True if a store can proceed without a coherence transaction. */
constexpr bool
isWritable(Mesif s)
{
    return s == Mesif::exclusive || s == Mesif::modified;
}

constexpr bool
isDirty(Mesif s)
{
    return s == Mesif::modified;
}

const char *toString(Mesif s);

} // namespace spp

#endif // SPP_MEM_MESIF_HH
