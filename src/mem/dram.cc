#include "mem/dram.hh"

namespace spp {

DramModel::DramModel(const Config &cfg, const AddressMap &map)
    : cfg_(cfg), map_(map), banks_per_ctrl_(cfg.dramBanks),
      lines_per_row_(cfg.dramRowLines),
      banks_(static_cast<std::size_t>(cfg.numCores) * cfg.dramBanks)
{
}

Tick
DramModel::accessLatency(Addr line, Tick now)
{
    ++stats_.accesses;
    // Lines interleave across homes first (AddressMap), then across
    // a controller's banks, with dramRowLines consecutive
    // controller-local lines per row.
    const Addr local_line = map_.lineNum(line) / cfg_.numCores;
    const CoreId home = map_.homeNode(line);
    const Addr bank_idx = (local_line / lines_per_row_) %
        banks_per_ctrl_;
    const Addr row = local_line / lines_per_row_ / banks_per_ctrl_;
    Bank &bank = banks_[static_cast<std::size_t>(home) *
                            banks_per_ctrl_ + bank_idx];

    Tick start = now;
    if (bank.busyUntil > start) {
        ++stats_.bankBusyWaits;
        start = bank.busyUntil;
    }

    Tick service;
    if (bank.rowValid && bank.openRow == row) {
        ++stats_.rowHits;
        service = cfg_.dramRowHitLatency;
    } else if (bank.rowValid) {
        ++stats_.rowConflicts;
        service = cfg_.dramRowConflictLatency;
    } else {
        service = cfg_.memLatency;
    }
    bank.openRow = row;
    bank.rowValid = true;
    bank.busyUntil = start + service;

    const Tick total = (start - now) + service;
    stats_.serviceLatency.sample(static_cast<double>(total));
    return total;
}

} // namespace spp
