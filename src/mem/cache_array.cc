#include "mem/cache_array.hh"

namespace spp {

CacheArray::CacheArray(unsigned size_bytes, unsigned assoc,
                       unsigned line_bytes)
    : assoc_(assoc), line_bytes_(line_bytes),
      line_shift_(std::countr_zero(
          static_cast<unsigned long>(line_bytes)))
{
    SPP_ASSERT(std::has_single_bit(line_bytes),
               "line size must be a power of two, got {}", line_bytes);
    SPP_ASSERT(assoc > 0, "associativity must be non-zero");
    SPP_ASSERT(size_bytes % (line_bytes * assoc) == 0,
               "cache size {} not divisible into {}-way sets",
               size_bytes, assoc);
    n_sets_ = size_bytes / (line_bytes * assoc);
    lines_.resize(static_cast<std::size_t>(n_sets_) * assoc_);
}

std::size_t
CacheArray::setBase(Addr line_addr) const
{
    const Addr line_num = line_addr >> line_shift_;
    return static_cast<std::size_t>(line_num % n_sets_) * assoc_;
}

CacheLine *
CacheArray::lookup(Addr line_addr)
{
    ++stats_.lookups;
    const std::size_t base = setBase(line_addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        CacheLine &line = lines_[base + w];
        if (isValid(line.state) && line.tag == line_addr) {
            line.lru = next_lru_++;
            ++stats_.hits;
            return &line;
        }
    }
    ++stats_.misses;
    return nullptr;
}

const CacheLine *
CacheArray::peek(Addr line_addr) const
{
    const std::size_t base = setBase(line_addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        const CacheLine &line = lines_[base + w];
        if (isValid(line.state) && line.tag == line_addr)
            return &line;
    }
    return nullptr;
}

CacheLine *
CacheArray::allocate(Addr line_addr, CacheLine &victim)
{
    victim = CacheLine{};
    const std::size_t base = setBase(line_addr);
    CacheLine *target = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        CacheLine &line = lines_[base + w];
        SPP_ASSERT(!isValid(line.state) || line.tag != line_addr,
                   "allocate of already-present line {}",
                   line_addr);
        if (!isValid(line.state)) {
            target = &line;
            break;
        }
        if (!target || line.lru < target->lru)
            target = &line;
    }
    if (isValid(target->state)) {
        victim = *target;
        ++stats_.evictions;
        if (isDirty(target->state))
            ++stats_.dirtyEvictions;
    }
    target->tag = line_addr;
    target->state = Mesif::invalid;
    target->lru = next_lru_++;
    return target;
}

Mesif
CacheArray::invalidate(Addr line_addr)
{
    const std::size_t base = setBase(line_addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        CacheLine &line = lines_[base + w];
        if (isValid(line.state) && line.tag == line_addr) {
            const Mesif prev = line.state;
            line.state = Mesif::invalid;
            return prev;
        }
    }
    return Mesif::invalid;
}

unsigned
CacheArray::validCount() const
{
    unsigned n = 0;
    for (const auto &line : lines_)
        if (isValid(line.state))
            ++n;
    return n;
}

} // namespace spp
