/**
 * @file
 * Address decomposition helpers: cache line, macroblock and home-node
 * (directory slice) mapping.
 */

#ifndef SPP_MEM_ADDRESS_MAP_HH
#define SPP_MEM_ADDRESS_MAP_HH

#include <bit>

#include "common/config.hh"
#include "common/types.hh"

namespace spp {

/**
 * Immutable address mapping derived from a Config. The directory is
 * distributed across all tiles by line-address interleaving.
 */
class AddressMap
{
  public:
    explicit AddressMap(const Config &cfg)
        : line_shift_(std::countr_zero(
              static_cast<unsigned long>(cfg.lineBytes))),
          macro_shift_(std::countr_zero(
              static_cast<unsigned long>(cfg.macroBlockBytes))),
          n_cores_(cfg.numCores)
    {}

    /** Cache-line-aligned address. */
    Addr lineAddr(Addr a) const { return a >> line_shift_ << line_shift_; }

    /** Line number (address / lineBytes). */
    Addr lineNum(Addr a) const { return a >> line_shift_; }

    /** Macroblock number, the ADDR predictor index. */
    Addr macroBlock(Addr a) const { return a >> macro_shift_; }

    /** Home tile holding the directory slice for @p a. */
    CoreId
    homeNode(Addr a) const
    {
        return static_cast<CoreId>(lineNum(a) % n_cores_);
    }

    unsigned lineShift() const { return line_shift_; }

  private:
    unsigned line_shift_;
    unsigned macro_shift_;
    unsigned n_cores_;
};

} // namespace spp

#endif // SPP_MEM_ADDRESS_MAP_HH
