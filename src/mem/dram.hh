/**
 * @file
 * Banked open-row DRAM timing model.
 *
 * The paper models main memory as a fixed 150-cycle latency
 * (Table 4), which remains the default. This optional model refines
 * that: each home tile owns a memory controller with N banks; a
 * request to a bank with its row open pays the row-hit latency, a
 * closed bank pays the paper's nominal latency, and a conflicting
 * open row pays precharge + activate on top. Banks serve one request
 * at a time, so bursts to one controller queue.
 *
 * Only demand fetches are timed through the model; writebacks drain
 * through write buffers in real controllers and are modelled as
 * untimed deposits (they are never on the miss critical path here).
 */

#ifndef SPP_MEM_DRAM_HH
#define SPP_MEM_DRAM_HH

#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/address_map.hh"

namespace spp {

/** DRAM statistics across all controllers. */
struct DramStats
{
    Counter accesses;
    Counter rowHits;
    Counter rowConflicts;
    Counter bankBusyWaits;
    Average serviceLatency;
};

/**
 * All memory controllers of the chip (one per home tile).
 */
class DramModel
{
  public:
    DramModel(const Config &cfg, const AddressMap &map);

    /**
     * Latency of a demand fetch of @p line issued at @p now at the
     * line's home controller, including any bank queueing.
     */
    Tick accessLatency(Addr line, Tick now);

    const DramStats &stats() const { return stats_; }

  private:
    struct Bank
    {
        Tick busyUntil = 0;
        Addr openRow = 0;
        bool rowValid = false;
    };

    const Config &cfg_;
    const AddressMap &map_;
    unsigned banks_per_ctrl_;
    unsigned lines_per_row_;
    std::vector<Bank> banks_; ///< numCores * banksPerController.
    DramStats stats_;
};

} // namespace spp

#endif // SPP_MEM_DRAM_HH
