#include "mem/mesif.hh"

namespace spp {

const char *
toString(Mesif s)
{
    switch (s) {
      case Mesif::invalid:    return "I";
      case Mesif::shared:     return "S";
      case Mesif::forwarding: return "F";
      case Mesif::exclusive:  return "E";
      case Mesif::modified:   return "M";
    }
    return "?";
}

} // namespace spp
