#include "analysis/stats_report.hh"

#include <ostream>
#include <sstream>

#include "core/sp_predictor.hh" // toString(PredSource)

namespace spp {

namespace {

void
line(std::ostream &os, const std::string &prefix, const char *name,
     std::uint64_t v)
{
    os << prefix << '.' << name << ' ' << v << '\n';
}

void
avg(std::ostream &os, const std::string &prefix, const char *name,
    const Average &a)
{
    os << prefix << '.' << name << ".mean " << a.mean() << '\n';
    os << prefix << '.' << name << ".count " << a.count() << '\n';
    os << prefix << '.' << name << ".max " << a.max() << '\n';
}

} // namespace

void
dumpStats(std::ostream &os, const RunResult &r,
          const std::string &prefix)
{
    line(os, prefix, "ticks", r.ticks);
    line(os, prefix, "events", r.eventsExecuted);

    const std::string mem = prefix + ".mem";
    line(os, mem, "accesses", r.mem.accesses.value());
    line(os, mem, "l1_hits", r.mem.l1Hits.value());
    line(os, mem, "l2_hits", r.mem.l2Hits.value());
    line(os, mem, "misses", r.mem.misses.value());
    line(os, mem, "upgrade_misses", r.mem.upgradeMisses.value());
    line(os, mem, "communicating_misses",
         r.mem.communicatingMisses.value());
    line(os, mem, "offchip_misses", r.mem.offChipMisses.value());
    line(os, mem, "writebacks", r.mem.writebacks.value());
    line(os, mem, "snoop_lookups", r.mem.snoopLookups.value());
    avg(os, mem, "miss_latency", r.mem.missLatency);
    avg(os, mem, "comm_miss_latency", r.mem.commMissLatency);
    avg(os, mem, "noncomm_miss_latency", r.mem.nonCommMissLatency);
    avg(os, mem, "hit_latency", r.mem.hitLatency);

    const std::string pred = prefix + ".pred";
    line(os, pred, "attempted", r.mem.predictionsAttempted.value());
    line(os, pred, "suppressed",
         r.mem.predictionsSuppressed.value());
    line(os, pred, "on_communicating",
         r.mem.predictionsOnCommunicating.value());
    line(os, pred, "on_noncomm", r.mem.predictionsOnNonComm.value());
    line(os, pred, "sufficient", r.mem.predictionsSufficient.value());
    line(os, pred, "waste_bytes_comm",
         r.mem.predWasteBytesComm.value());
    line(os, pred, "waste_bytes_noncomm",
         r.mem.predWasteBytesNonComm.value());
    avg(os, pred, "predicted_targets", r.mem.predictedTargets);
    avg(os, pred, "actual_targets", r.mem.actualTargets);
    line(os, pred, "storage_bits", r.predictorStorageBits);
    line(os, pred, "table_accesses", r.predictorTableAccesses);
    line(os, pred, "indirections_avoided", r.indirectionsAvoided);
    for (unsigned s = 0; s < r.mem.sufficientBySource.size(); ++s) {
        os << pred << ".sufficient_by_source."
           << toString(static_cast<PredSource>(s)) << ' '
           << r.mem.sufficientBySource[s] << '\n';
    }

    const std::string sp = prefix + ".sp";
    line(os, sp, "epochs_started", r.sp.epochsStarted.value());
    line(os, sp, "noisy_epochs", r.sp.noisyEpochs.value());
    line(os, sp, "lock_epochs", r.sp.lockEpochs.value());
    line(os, sp, "recoveries", r.sp.recoveries.value());
    line(os, sp, "warmup_extractions",
         r.sp.warmupExtractions.value());
    line(os, sp, "pattern_hits", r.sp.patternHits.value());

    const std::string noc = prefix + ".noc";
    line(os, noc, "packets", r.noc.packets.value());
    line(os, noc, "bytes", r.noc.flitBytes.value());
    line(os, noc, "byte_hops", r.noc.byteHops.value());
    line(os, noc, "byte_routers", r.noc.byteRouters.value());
    avg(os, noc, "packet_latency", r.noc.packetLatency);
    static const char *cls_names[] = {"request", "pred_request",
                                      "forward", "response", "data",
                                      "dir_update"};
    for (unsigned c = 0; c < 6; ++c) {
        os << noc << ".bytes_by_class." << cls_names[c] << ' '
           << r.noc.bytesByClass[c] << '\n';
    }

    const std::string sync = prefix + ".sync";
    line(os, sync, "sync_points", r.sync.syncPoints.value());
    line(os, sync, "barriers_released",
         r.sync.barriersReleased.value());
    line(os, sync, "lock_acquisitions",
         r.sync.lockAcquisitions.value());
    line(os, sync, "lock_contended", r.sync.lockContended.value());
    line(os, sync, "wakeups", r.sync.wakeups.value());
}

std::string
statsToString(const RunResult &r, const std::string &prefix)
{
    std::ostringstream os;
    dumpStats(os, r, prefix);
    return os.str();
}

} // namespace spp
