/**
 * @file
 * AttributionProfiler: per-sync-point misprediction and traffic
 * accounting.
 *
 * The paper's thesis is that synchronization points *explain*
 * coherence communication; this profiler makes that explanation
 * observable. It listens to two streams — resolved predictor
 * decisions (AttributionSink::onMissResolved) and injected protocol
 * messages (onMessageSent) — and charges each to the attribution key
 *
 *     (sync type, sync static id, sync epoch, address region, core)
 *
 * where the sync fields name the sync-point that *began* the core's
 * current epoch (the paper's epoch naming), the epoch is the
 * per-core count of sync-points seen, and the region is the access
 * address at `regionBytes` granularity. Every decision lands in one
 * of four classes at resolution time:
 *
 *   correct      prediction attempted, sufficient, nothing wasted
 *   over         extra targets predicted: wasted request bytes
 *   under        communicating miss the prediction did not cover:
 *                the demand-miss latency is charged here
 *   unpredicted  no prediction attempted (no predictor, filtered,
 *                or a non-predicted protocol)
 *
 * Aggregation is a bounded top-K store: at 2x capacity the table is
 * compacted by fully sorting the entries (score descending, key
 * ascending — a total order independent of hash iteration, so
 * eviction is deterministic) and folding the tail into an overflow
 * cell. Totals therefore stay exact even when keys are evicted.
 *
 * Off by default; when detached every hook site in the coherence
 * layer is one untaken branch and a run is bit-identical to an
 * unobserved one. When attached the profiler is purely
 * observational: it never changes protocol behavior or timing, so
 * attribution.json from a fixed-seed run is byte-stable.
 */

#ifndef SPP_ANALYSIS_ATTRIBUTION_HH
#define SPP_ANALYSIS_ATTRIBUTION_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "coherence/mem_sys.hh"
#include "common/types.hh"
#include "sim/cmp_system.hh"
#include "sync/sync_types.hh"
#include "telemetry/json.hh"
#include "telemetry/metrics.hh"

namespace spp {

/** Attribution knobs; a leaf aggregate like TelemetryOptions. */
struct AttributionOptions
{
    /** Output directory for attribution artifacts; empty =
     * disabled and the run pays zero observation cost. */
    std::string dir;

    /** Retained-key bound of the top-K store. */
    std::size_t topK = 256;

    /** Address-region granularity (power of two, >= lineBytes). */
    unsigned regionBytes = 4096;

    bool enabled() const { return !dir.empty(); }

    /** SPP_ATTRIBUTION (dir), SPP_ATTRIBUTION_TOPK,
     * SPP_ATTRIBUTION_REGION (bytes). */
    static AttributionOptions fromEnv();
};

class AttributionProfiler : public AttributionSink, public SyncListener
{
  public:
    /** Where cost is charged: the sync-point beginning the core's
     * current epoch, plus address region and core. */
    struct Key
    {
        SyncType syncType = SyncType::threadStart;
        std::uint64_t syncStatic = 0;
        std::uint64_t syncEpoch = 0;  ///< Per-core sync-point count.
        Addr region = 0;              ///< addr / regionBytes.
        CoreId core = 0;

        bool operator==(const Key &) const = default;
        bool operator<(const Key &o) const;
    };

    /** Everything accumulated under one key (also reused for the
     * grand totals and the eviction-overflow cell). */
    struct Cell
    {
        std::uint64_t correct = 0;
        std::uint64_t over = 0;
        std::uint64_t under = 0;
        std::uint64_t unpredicted = 0;
        std::uint64_t wastedBytes = 0;       ///< Over-prediction cost.
        std::uint64_t underLatencyTicks = 0; ///< Under-prediction cost.
        std::uint64_t messages = 0;          ///< Protocol msgs injected.
        std::uint64_t nocBytes = 0;          ///< Their payload bytes.

        std::uint64_t decisions() const
        {
            return correct + over + under + unpredicted;
        }
        /** Eviction/ranking score: the total attributable cost. */
        std::uint64_t score() const
        {
            return wastedBytes + nocBytes + underLatencyTicks;
        }
        void fold(const Cell &o);
    };

    explicit AttributionProfiler(AttributionOptions opts);

    /** Hook @p sys (sink + sync listener). When telemetry is also
     * attached, attach it first: its epoch recorder must observe the
     * closing epoch's snapshot before onSyncPoint() resets it. */
    void attach(CmpSystem &sys);

    // AttributionSink
    void onMissResolved(CoreId core, Addr line,
                        const AccessOutcome &out,
                        std::uint64_t wasted_bytes) override;
    void onMessageSent(CoreId requester, Addr line,
                       unsigned bytes) override;

    // SyncListener
    void onSyncPoint(CoreId core, const SyncPointInfo &info) override;

    /** Register the aggregate attr.* counters (borrowed cells; the
     * profiler must outlive the sampler, and does — both live in one
     * experiment scope). */
    void registerMetrics(MetricRegistry &reg) const;

    /** Snapshot of the core's current epoch for the telemetry epoch
     * annotator ({"decisions","wasted_bytes","under_ticks",
     * "noc_bytes"}); read it before the closing sync-point resets
     * the epoch. */
    Json epochArgs(CoreId core) const;

    /** The full machine-readable document (spp.attribution.v1):
     * ranked entries, exact totals, overflow summary. Deterministic
     * for a fixed-seed run. */
    Json toJson() const;

    /** Ranked human-readable report of the top @p topN keys. */
    std::string textReport(std::size_t topN = 20) const;

    /** Write <dir>/<label>.attribution.{json,txt}; creates dir. */
    void writeArtifacts(const std::string &label) const;

    /** All live entries, fully sorted (score desc, key asc); the
     * deterministic ranking used by every artifact. */
    std::vector<std::pair<Key, Cell>> sortedEntries() const;

    const Cell &totals() const { return totals_; }
    const Cell &evictedCell() const { return evicted_; }
    std::uint64_t evictions() const { return evictions_; }
    std::size_t entries() const { return store_.size(); }
    const AttributionOptions &options() const { return opts_; }

  private:
    struct KeyHash
    {
        std::size_t operator()(const Key &k) const;
    };

    /** The core's current epoch context, advanced per sync-point. */
    struct EpochCtx
    {
        SyncType type = SyncType::threadStart;
        std::uint64_t staticId = 0;
        std::uint64_t epoch = 0;
        Cell epochCell;  ///< Reset at each sync-point.

        /** Single-entry memo for cellFor(): messages and miss
         * resolutions arrive in per-transaction bursts that hit the
         * same (epoch, region) key, so one cached cell pointer
         * absorbs most of the hash-map traffic. Invalidated on epoch
         * advance and whenever compact() rebuilds the store (the
         * only operation that moves cells). */
        Addr lastRegion = 0;
        Cell *lastCell = nullptr;
    };

    Cell &cellFor(CoreId core, Addr addr);
    void compact();

    AttributionOptions opts_;
    unsigned region_shift_ = 12;
    std::vector<EpochCtx> cores_;
    std::unordered_map<Key, Cell, KeyHash> store_;
    Cell totals_;
    Cell evicted_;
    std::uint64_t evictions_ = 0;
};

} // namespace spp

#endif // SPP_ANALYSIS_ATTRIBUTION_HH
