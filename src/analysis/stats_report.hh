/**
 * @file
 * Machine-readable statistics dump: flattens a RunResult into
 * gem5-style "name value" lines for scripts and regression tooling.
 */

#ifndef SPP_ANALYSIS_STATS_REPORT_HH
#define SPP_ANALYSIS_STATS_REPORT_HH

#include <iosfwd>
#include <string>

#include "sim/cmp_system.hh"

namespace spp {

/** Write every statistic of @p r as "prefix.name value" lines. */
void dumpStats(std::ostream &os, const RunResult &r,
               const std::string &prefix = "sim");

/** Convenience: render to a string. */
std::string statsToString(const RunResult &r,
                          const std::string &prefix = "sim");

} // namespace spp

#endif // SPP_ANALYSIS_STATS_REPORT_HH
