#include "analysis/patterns.hh"

#include <algorithm>

namespace spp {

const char *
toString(HotSetPattern p)
{
    switch (p) {
      case HotSetPattern::stable:      return "stable";
      case HotSetPattern::phaseChange: return "phase-change";
      case HotSetPattern::stride:      return "stride";
      case HotSetPattern::random:      return "random";
      case HotSetPattern::mixed:       return "mixed";
      case HotSetPattern::tooFew:      return "too-few";
    }
    return "?";
}

HotSetPattern
classifySequence(const std::vector<CoreSet> &sets, unsigned &stride_out)
{
    stride_out = 0;
    if (sets.size() < 3)
        return HotSetPattern::tooFew;

    // Stable: all identical.
    if (std::all_of(sets.begin(), sets.end(),
                    [&](const CoreSet &s) { return s == sets[0]; })) {
        stride_out = 1;
        return HotSetPattern::stable;
    }

    // Phase change: a prefix of one stable set followed by a suffix
    // of another.
    {
        std::size_t split = 1;
        while (split < sets.size() && sets[split] == sets[0])
            ++split;
        if (split > 1 && split < sets.size()) {
            const CoreSet &second = sets[split];
            bool ok = second != sets[0];
            for (std::size_t i = split; ok && i < sets.size(); ++i)
                ok = sets[i] == second;
            if (ok && sets.size() - split > 1)
                return HotSetPattern::phaseChange;
        }
    }

    // Stride: periodic with period 2..4.
    for (unsigned s = 2; s <= 4 && s * 2 <= sets.size(); ++s) {
        bool ok = true;
        for (std::size_t i = s; ok && i < sets.size(); ++i)
            ok = sets[i] == sets[i - s];
        // Require the period to be genuine (not all-equal, caught
        // above).
        if (ok) {
            stride_out = s;
            return HotSetPattern::stride;
        }
    }

    // Mixed: a common stable core present in (almost) every set while
    // the rest varies.
    {
        CoreSet common = sets[0];
        for (const CoreSet &s : sets)
            common &= s;
        if (!common.empty())
            return HotSetPattern::mixed;
    }

    return HotSetPattern::random;
}

std::vector<EpochPatternInfo>
classifyEpochPatterns(const CommTrace &trace, double threshold,
                      unsigned noise_misses, unsigned min_instances)
{
    std::vector<EpochPatternInfo> out;
    for (unsigned c = 0; c < trace.numCores(); ++c) {
        // Group the core's epochs by static ID, in dynamic order.
        std::map<std::uint64_t, EpochPatternInfo> groups;
        for (const EpochRecord &e : trace.epochs(c)) {
            if (e.commMisses < noise_misses)
                continue; // Noisy instance: excluded (Section 3.4).
            EpochPatternInfo &g = groups[e.staticId];
            g.core = static_cast<CoreId>(c);
            g.staticId = e.staticId;
            g.beginType = e.beginType;
            g.sets.push_back(e.hotSet(threshold));
            ++g.instances;
        }
        for (auto &[sid, info] : groups) {
            if (info.instances < min_instances)
                continue;
            info.pattern = classifySequence(info.sets, info.stride);
            out.push_back(std::move(info));
        }
    }
    return out;
}

std::map<HotSetPattern, unsigned>
patternHistogram(const std::vector<EpochPatternInfo> &infos)
{
    std::map<HotSetPattern, unsigned> h;
    for (const auto &i : infos)
        ++h[i.pattern];
    return h;
}

} // namespace spp
