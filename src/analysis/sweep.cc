#include "analysis/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace spp {

namespace {

/** Progress lines go to stderr when SPP_PROGRESS is set (any value
 * but "0"), or whenever logging is not quiet. The bench harnesses
 * run quiet, so their stdout tables stay byte-identical across
 * thread counts; export SPP_PROGRESS=1 to watch a long sweep. */
bool
progressEnabled()
{
    if (const char *env = std::getenv("SPP_PROGRESS"))
        return env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    return !isQuiet();
}

std::string
jobLabel(const SweepJob &job)
{
    if (!job.label.empty())
        return job.label;
    std::string label = job.workload;
    label += '/';
    label += toString(job.config.protocol);
    if (job.config.predictor != PredictorKind::none) {
        label += '/';
        label += toString(job.config.predictor);
    }
    return label;
}

} // namespace

SweepRunner::SweepRunner(unsigned n_threads)
    : n_threads_(n_threads != 0 ? n_threads : defaultJobs())
{}

unsigned
SweepRunner::defaultJobs()
{
    if (const char *env = std::getenv("SPP_JOBS")) {
        const long n = std::atol(env);
        if (n > 0)
            return static_cast<unsigned>(n);
        warn("ignoring invalid SPP_JOBS='{}'", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

std::vector<ExperimentResult>
SweepRunner::run(const std::vector<SweepJob> &jobs) const
{
    using Clock = std::chrono::steady_clock;

    std::vector<ExperimentResult> results(jobs.size());
    if (jobs.empty())
        return results;

    const bool progress = progressEnabled();
    const Clock::time_point sweep_start = Clock::now();
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex io_mutex;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            const Clock::time_point t0 = Clock::now();
            results[i] = runExperiment(jobs[i].workload,
                                       jobs[i].config);
            const std::size_t finished =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (progress) {
                const double secs =
                    std::chrono::duration<double>(Clock::now() - t0)
                        .count();
                std::lock_guard<std::mutex> lock(io_mutex);
                std::fprintf(stderr,
                             "sweep [%zu/%zu] %s %.2fs\n", finished,
                             jobs.size(), jobLabel(jobs[i]).c_str(),
                             secs);
            }
        }
    };

    const unsigned n_workers = static_cast<unsigned>(
        std::min<std::size_t>(n_threads_, jobs.size()));
    if (n_workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_workers);
        for (unsigned t = 0; t < n_workers; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    if (progress && jobs.size() > 1) {
        const double secs = std::chrono::duration<double>(
                                Clock::now() - sweep_start)
                                .count();
        std::fprintf(stderr, "sweep done: %zu jobs on %u thread%s "
                             "in %.2fs\n",
                     jobs.size(), n_workers,
                     n_workers == 1 ? "" : "s", secs);
    }
    return results;
}

std::vector<ExperimentResult>
runSweep(const std::vector<SweepJob> &jobs, unsigned n_threads)
{
    return SweepRunner(n_threads).run(jobs);
}

} // namespace spp
