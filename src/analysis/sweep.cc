#include "analysis/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "telemetry/json.hh"
#include "telemetry/manifest.hh"

namespace spp {

namespace {

/** Progress lines go to stderr when SPP_PROGRESS is set (any value
 * but "0"), or whenever logging is not quiet. The bench harnesses
 * run quiet, so their stdout tables stay byte-identical across
 * thread counts; export SPP_PROGRESS=1 to watch a long sweep. */
bool
progressEnabled()
{
    if (const char *env = std::getenv("SPP_PROGRESS"))
        return env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    return !isQuiet();
}

std::string
jobLabel(const SweepJob &job)
{
    if (!job.label.empty())
        return job.label;
    std::string label = job.workload;
    label += '/';
    label += toString(job.config.config.protocol);
    if (job.config.config.predictor != PredictorKind::none) {
        label += '/';
        label += toString(job.config.config.predictor);
    }
    return label;
}

/** Aggregate sidecar of one sweep: per-job wall time next to the
 * per-job run manifests. A process may run several sweeps into the
 * same directory, so each gets a distinct sequence number. */
void
writeSweepManifest(const std::string &dir,
                   const std::vector<SweepJob> &jobs,
                   const std::vector<double> &wall_ms,
                   unsigned n_workers, double total_ms)
{
    static std::atomic<unsigned> sweep_seq{0};
    const unsigned seq =
        sweep_seq.fetch_add(1, std::memory_order_relaxed) + 1;

    RunManifest manifest;
    manifest.set("kind", Json("sweep"));
    manifest.set("threads", Json(n_workers));
    manifest.set("wall_ms", Json(total_ms));
    Json job_list = Json::array();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        Json row = Json::object();
        row["label"] = Json(jobLabel(jobs[i]));
        row["workload"] = Json(jobs[i].workload);
        row["wall_ms"] = Json(wall_ms[i]);
        job_list.push(std::move(row));
    }
    manifest.set("jobs", std::move(job_list));

    std::string path = dir;
    path += "/sweep";
    if (seq > 1) {
        path += '.';
        path += std::to_string(seq);
    }
    path += ".manifest.json";
    manifest.write(path);
}

} // namespace

SweepRunner::SweepRunner(unsigned n_threads)
    : n_threads_(n_threads != 0 ? n_threads : defaultJobs())
{}

unsigned
SweepRunner::defaultJobs()
{
    if (const char *env = std::getenv("SPP_JOBS")) {
        const long n = std::atol(env);
        if (n > 0)
            return static_cast<unsigned>(n);
        warn("ignoring invalid SPP_JOBS='{}'", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

std::vector<ExperimentResult>
SweepRunner::run(const std::vector<SweepJob> &jobs) const
{
    using Clock = std::chrono::steady_clock;

    std::vector<ExperimentResult> results(jobs.size());
    if (jobs.empty())
        return results;

    const bool progress = progressEnabled();
    const Clock::time_point sweep_start = Clock::now();
    std::atomic<std::size_t> done{0};
    std::mutex io_mutex;
    std::vector<double> wall_ms(jobs.size(), 0.0);

    forIndices(jobs.size(), [&](std::size_t i) {
        const Clock::time_point t0 = Clock::now();
        if ((jobs[i].config.telemetry.enabled() ||
             jobs[i].config.attribution.enabled()) &&
            jobs[i].config.telemetryLabel.empty()) {
            // Give every job a unique file stem; two cells of a
            // matrix often share the workload name.
            ExperimentConfig cfg = jobs[i].config;
            cfg.telemetryLabel =
                sanitizeFileLabel(jobLabel(jobs[i])) + "_j" +
                std::to_string(i);
            results[i] = runExperiment(jobs[i].workload, cfg);
        } else {
            results[i] = runExperiment(jobs[i].workload,
                                       jobs[i].config);
        }
        wall_ms[i] =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count();
        const std::size_t finished =
            done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (progress) {
            const double elapsed_ms =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - sweep_start)
                    .count();
            // Simulated-event throughput of the finished job, and a
            // completion-rate ETA for the rest of the sweep.
            const double mev_s = wall_ms[i] > 0.0
                ? static_cast<double>(
                      results[i].run.eventsExecuted) /
                    (wall_ms[i] * 1e3)
                : 0.0;
            const double eta_ms = elapsed_ms /
                static_cast<double>(finished) *
                static_cast<double>(jobs.size() - finished);
            std::lock_guard<std::mutex> lock(io_mutex);
            // lint: allow(std-io) — opt-in progress meter on stderr.
            std::fprintf(stderr,
                         "sweep [%zu/%zu] %s %.0fms %.2f Mev/s "
                         "(elapsed %.0fms, eta %.0fms)\n",
                         finished, jobs.size(),
                         jobLabel(jobs[i]).c_str(), wall_ms[i],
                         mev_s, elapsed_ms, eta_ms);
        }
    });

    const unsigned n_workers = static_cast<unsigned>(
        std::min<std::size_t>(n_threads_, jobs.size()));

    const double total_ms =
        std::chrono::duration<double, std::milli>(Clock::now() -
                                                  sweep_start)
            .count();
    if (progress && jobs.size() > 1) {
        // lint: allow(std-io) — opt-in progress meter on stderr.
        std::fprintf(stderr, "sweep done: %zu jobs on %u thread%s "
                             "in %.0fms\n",
                     jobs.size(), n_workers,
                     n_workers == 1 ? "" : "s", total_ms);
    }

    // When the sweep's jobs write telemetry, leave one aggregate
    // manifest beside the per-job sidecars.
    for (const SweepJob &job : jobs) {
        if (job.config.telemetry.enabled() &&
            job.config.telemetry.emitManifest) {
            writeSweepManifest(job.config.telemetry.dir, jobs,
                               wall_ms, n_workers, total_ms);
            break;
        }
    }
    return results;
}

void
SweepRunner::forIndices(
    // lint: allow(std-function) — pool dispatch, once per sweep cell.
    std::size_t n, const std::function<void(std::size_t)> &fn) const
{
    if (n == 0)
        return;

    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            fn(i);
        }
    };

    const unsigned n_workers =
        static_cast<unsigned>(std::min<std::size_t>(n_threads_, n));
    if (n_workers <= 1) {
        worker();
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (unsigned t = 0; t < n_workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
}

std::vector<ExperimentResult>
runSweep(const std::vector<SweepJob> &jobs, unsigned n_threads)
{
    return SweepRunner(n_threads).run(jobs);
}

} // namespace spp
