/**
 * @file
 * Plain-text table formatting for the benchmark harnesses: fixed
 * width columns, headers, numeric formatting. Keeps every bench's
 * output in the same "paper row" style.
 */

#ifndef SPP_ANALYSIS_REPORT_HH
#define SPP_ANALYSIS_REPORT_HH

#include <string>
#include <vector>

namespace spp {

/** A simple left-aligned-text / right-aligned-number table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    Table &cell(const std::string &v);
    Table &cell(double v, int precision = 3);
    Table &cell(std::uint64_t v);
    Table &cell(unsigned v) { return cell(std::uint64_t{v}); }
    Table &cell(int v) { return cell(std::uint64_t(v)); }

    /** End the current row. */
    Table &endRow();

    /** Render with a header underline and aligned columns. */
    std::string str() const;

    /** Print to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> current_;
};

/** Print a section banner ("== Figure 8: ... =="). */
void banner(const std::string &title);

} // namespace spp

#endif // SPP_ANALYSIS_REPORT_HH
