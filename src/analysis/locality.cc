#include "analysis/locality.hh"

#include <algorithm>

namespace spp {

namespace {

/** Sorted-descending copy of a volume vector. */
template <typename Array>
std::vector<double>
sortedVolumes(const Array &volume, unsigned n_cores)
{
    std::vector<double> v;
    v.reserve(n_cores);
    for (unsigned c = 0; c < n_cores; ++c)
        v.push_back(static_cast<double>(volume[c]));
    std::sort(v.begin(), v.end(), std::greater<>());
    return v;
}

/** Accumulate one interval's curve, weighted by its volume. */
template <typename Array>
void
accumulate(std::vector<double> &acc, double &weight_sum,
           const Array &volume, unsigned n_cores)
{
    auto sorted = sortedVolumes(volume, n_cores);
    double total = 0;
    for (double v : sorted)
        total += v;
    if (total <= 0)
        return;
    double run = 0;
    for (unsigned k = 0; k < n_cores; ++k) {
        run += sorted[k];
        acc[k] += total * (run / total);
    }
    weight_sum += total;
}

LocalityCurve
normalize(std::vector<double> acc, double weight_sum)
{
    if (weight_sum > 0)
        for (double &v : acc)
            v /= weight_sum;
    return acc;
}

} // namespace

LocalityCurve
epochLocality(const CommTrace &trace)
{
    const unsigned n = trace.numCores();
    std::vector<double> acc(n, 0.0);
    double weight = 0;
    for (unsigned c = 0; c < n; ++c)
        for (const EpochRecord &e : trace.epochs(c))
            accumulate(acc, weight, e.volume, n);
    return normalize(std::move(acc), weight);
}

LocalityCurve
wholeRunLocality(const CommTrace &trace)
{
    const unsigned n = trace.numCores();
    std::vector<double> acc(n, 0.0);
    double weight = 0;
    for (unsigned c = 0; c < n; ++c)
        accumulate(acc, weight, trace.wholeRunVolume(c), n);
    return normalize(std::move(acc), weight);
}

LocalityCurve
instructionLocality(const CommTrace &trace)
{
    const unsigned n = trace.numCores();
    std::vector<double> acc(n, 0.0);
    double weight = 0;
    for (unsigned c = 0; c < n; ++c)
        for (const auto &[pc, volume] : trace.pcVolume(c))
            accumulate(acc, weight, volume, n);
    return normalize(std::move(acc), weight);
}

std::array<double, 5>
hotSetSizeDistribution(const CommTrace &trace, double threshold)
{
    std::array<double, 5> buckets{};
    std::uint64_t total = 0;
    for (unsigned c = 0; c < trace.numCores(); ++c) {
        for (const EpochRecord &e : trace.epochs(c)) {
            const unsigned size = e.hotSet(threshold).count();
            if (size == 0)
                continue;
            ++total;
            buckets[std::min(size, 5u) - 1] += 1.0;
        }
    }
    if (total > 0)
        for (double &b : buckets)
            b /= static_cast<double>(total);
    return buckets;
}

} // namespace spp
