#include "analysis/profile.hh"

#include <map>

namespace spp {

std::vector<ProfileEntry>
buildProfile(const CommTrace &trace, double hot_threshold,
             unsigned noise_misses)
{
    std::vector<ProfileEntry> profile;
    for (unsigned c = 0; c < trace.numCores(); ++c) {
        // Last non-noisy hot set per static epoch, in epoch order.
        std::map<std::uint64_t, CoreSet> last;
        for (const EpochRecord &e : trace.epochs(c)) {
            if (e.beginType == SyncType::lock)
                continue; // Lock entries hold holder IDs, not sets.
            if (e.commMisses < noise_misses)
                continue;
            const CoreSet hot = e.hotSet(hot_threshold);
            if (!hot.empty())
                last[e.staticId] = hot;
        }
        for (const auto &[sid, sig] : last) {
            ProfileEntry p;
            p.core = static_cast<CoreId>(c);
            p.staticId = sid;
            p.signature = sig;
            profile.push_back(p);
        }
    }
    return profile;
}

void
applyProfile(SpPredictor &predictor,
             const std::vector<ProfileEntry> &profile)
{
    for (const ProfileEntry &p : profile)
        predictor.seedSignature(p.core, p.staticId, p.signature);
}

} // namespace spp
