/**
 * @file
 * Analytical NoC + snoop-lookup energy model (Section 5.3, Fig. 11).
 *
 * Energy is proportional to data moved: each byte pays a link energy
 * per hop and a router energy per router traversed, with router
 * energy 4x link energy (the paper's assumption, after Banerjee et
 * al.). Cache snoop lookups pay a CACTI-derived tag-lookup energy.
 * Absolute units are arbitrary (figures normalize to the directory
 * baseline); the defaults below use 32nm-flavoured relative
 * magnitudes.
 */

#ifndef SPP_ANALYSIS_ENERGY_HH
#define SPP_ANALYSIS_ENERGY_HH

#include "noc/mesh.hh"

namespace spp {

/** Energy model coefficients (picojoule-flavoured relative units). */
struct EnergyModel
{
    double linkPerByteHop = 1.0;
    double routerPerByte = 4.0;     ///< 4x the link energy (paper).
    double tagLookup = 30.0;        ///< One L2 tag array probe.

    /** Total NoC + snoop energy of a run. */
    double
    total(const NocStats &noc, std::uint64_t snoop_lookups) const
    {
        return linkPerByteHop *
                   static_cast<double>(noc.byteHops.value()) +
               routerPerByte *
                   static_cast<double>(noc.byteRouters.value()) +
               tagLookup * static_cast<double>(snoop_lookups);
    }
};

} // namespace spp

#endif // SPP_ANALYSIS_ENERGY_HH
