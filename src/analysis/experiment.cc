#include "analysis/experiment.hh"

#include <cstdlib>
#include <optional>

#include "common/logging.hh"
#include "telemetry/telemetry.hh"

namespace spp {

double
ExperimentResult::commMissFraction() const
{
    const auto misses = run.mem.misses.value();
    if (misses == 0)
        return 0.0;
    return static_cast<double>(run.mem.communicatingMisses.value()) /
        static_cast<double>(misses);
}

double
ExperimentResult::avgMissLatency() const
{
    return run.mem.missLatency.mean();
}

double
ExperimentResult::bytesPerMiss() const
{
    const auto misses = run.mem.misses.value();
    if (misses == 0)
        return 0.0;
    return static_cast<double>(run.noc.flitBytes.value()) /
        static_cast<double>(misses);
}

double
ExperimentResult::predictionAccuracy() const
{
    const auto comm = run.mem.communicatingMisses.value();
    if (comm == 0)
        return 0.0;
    return static_cast<double>(run.mem.predictionsSufficient.value()) /
        static_cast<double>(comm);
}

double
ExperimentResult::indirectionFraction() const
{
    const auto misses = run.mem.misses.value();
    if (misses == 0)
        return 0.0;
    // A miss avoids indirection when its prediction was sufficient
    // (broadcast avoids it always; the pure directory never does).
    return 1.0 -
        static_cast<double>(run.mem.predictionsSufficient.value()) /
            static_cast<double>(misses);
}

ExperimentResult
runExperiment(const std::string &workload_name,
              const ExperimentConfig &xcfg)
{
    const WorkloadSpec *spec = findWorkload(workload_name);
    if (!spec)
        SPP_FATAL("unknown workload '{}'", workload_name);

    Config cfg = xcfg.config;
    if (xcfg.tweak)
        xcfg.tweak(cfg);

    // Telemetry is fully inert unless a directory was configured:
    // the optional stays empty and the run is bit-identical to an
    // unobserved one.
    std::optional<RunTelemetry> telemetry;
    if (xcfg.telemetry.enabled()) {
        telemetry.emplace(xcfg.telemetry,
                          xcfg.telemetryLabel.empty()
                              ? workload_name
                              : xcfg.telemetryLabel);
        telemetry->manifest().set("workload", Json(workload_name));
        telemetry->manifest().beginPhase("build");
    }

    CmpSystem sys(cfg);
    if (xcfg.prepare)
        xcfg.prepare(sys);

    ExperimentResult res;
    if (xcfg.collectTrace) {
        res.trace = std::make_unique<CommTrace>(
            cfg.numCores, xcfg.recordMissTargets);
        res.trace->attach(sys);
    }
    if (telemetry) {
        telemetry->attach(sys);
        telemetry->manifest().beginPhase("run");
    }

    WorkloadParams params;
    params.scale = xcfg.scale;
    res.run = sys.run([spec, params](ThreadContext &ctx) {
        return spec->run(ctx, params);
    });

    if (telemetry)
        telemetry->manifest().beginPhase("finalize");

    if (res.trace)
        res.trace->finalize();

    if (xcfg.checkCoherence) {
        sys.memSys().checkCoherence();
        if (auto *dir = sys.directory())
            dir->checkDirectory();
    }

    res.energy = EnergyModel{}.total(res.run.noc,
                                     res.run.mem.snoopLookups.value());
    if (telemetry)
        telemetry->finish(res.run);
    return res;
}

double
defaultBenchScale()
{
    if (const char *env = std::getenv("SPP_BENCH_SCALE"))
        return std::atof(env);
    return 1.0;
}

} // namespace spp
