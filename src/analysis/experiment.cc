#include "analysis/experiment.hh"

#include <cstdlib>
#include <optional>

#include "common/logging.hh"
#include "telemetry/telemetry.hh"

namespace spp {

double
ExperimentResult::commMissFraction() const
{
    const auto misses = run.mem.misses.value();
    if (misses == 0)
        return 0.0;
    return static_cast<double>(run.mem.communicatingMisses.value()) /
        static_cast<double>(misses);
}

double
ExperimentResult::avgMissLatency() const
{
    return run.mem.missLatency.mean();
}

double
ExperimentResult::bytesPerMiss() const
{
    const auto misses = run.mem.misses.value();
    if (misses == 0)
        return 0.0;
    return static_cast<double>(run.noc.flitBytes.value()) /
        static_cast<double>(misses);
}

double
ExperimentResult::predictionAccuracy() const
{
    const auto comm = run.mem.communicatingMisses.value();
    if (comm == 0)
        return 0.0;
    return static_cast<double>(run.mem.predictionsSufficient.value()) /
        static_cast<double>(comm);
}

double
ExperimentResult::indirectionFraction() const
{
    const auto misses = run.mem.misses.value();
    if (misses == 0)
        return 0.0;
    // A miss avoids indirection when its prediction was sufficient
    // (broadcast avoids it always; the pure directory never does).
    return 1.0 -
        static_cast<double>(run.mem.predictionsSufficient.value()) /
            static_cast<double>(misses);
}

ExperimentResult
runExperiment(const std::string &workload_name,
              const ExperimentConfig &xcfg)
{
    const WorkloadSpec *spec = findWorkload(workload_name);
    if (!spec)
        SPP_FATAL("unknown workload '{}'", workload_name);

    Config cfg = xcfg.config;
    if (xcfg.tweak)
        xcfg.tweak(cfg);

    const std::string label = xcfg.telemetryLabel.empty()
        ? workload_name
        : xcfg.telemetryLabel;

    // Telemetry and attribution are fully inert unless a directory
    // was configured: the optional/pointer stays empty and the run
    // is bit-identical to an unobserved one.
    std::optional<RunTelemetry> telemetry;
    if (xcfg.telemetry.enabled()) {
        telemetry.emplace(xcfg.telemetry, label);
        telemetry->manifest().set("workload", Json(workload_name));
        telemetry->manifest().beginPhase("build");
    }
    std::unique_ptr<AttributionProfiler> attrib;
    if (xcfg.attribution.enabled())
        attrib = std::make_unique<AttributionProfiler>(
            xcfg.attribution);

    CmpSystem sys(cfg);
    if (xcfg.prepare)
        xcfg.prepare(sys);

    ExperimentResult res;
    if (xcfg.collectTrace) {
        res.trace = std::make_unique<CommTrace>(
            cfg.numCores, xcfg.recordMissTargets);
        res.trace->attach(sys);
    }
    if (telemetry && attrib) {
        // Cross-wire before attaching: attr.* counters join the
        // sampled series and every closed epoch gets an attribution
        // annotation + per-sync-point counter tracks.
        AttributionProfiler *p = attrib.get();
        telemetry->setExtraMetrics(
            [p](MetricRegistry &reg) { p->registerMetrics(reg); });
        telemetry->setEpochAnnotator(
            [p](CoreId core) { return p->epochArgs(core); });
    }
    if (telemetry) {
        telemetry->attach(sys);
        telemetry->manifest().beginPhase("run");
    }
    // After telemetry: the epoch recorder must observe a closing
    // epoch's snapshot before the profiler's listener resets it
    // (sync listeners run in registration order).
    if (attrib)
        attrib->attach(sys);

    WorkloadParams params;
    params.scale = xcfg.scale;
    res.run = sys.run([spec, params](ThreadContext &ctx) {
        return spec->run(ctx, params);
    });

    if (telemetry)
        telemetry->manifest().beginPhase("finalize");

    if (res.trace)
        res.trace->finalize();

    if (xcfg.checkCoherence) {
        sys.memSys().checkCoherence();
        if (auto *dir = sys.directory())
            dir->checkDirectory();
    }

    res.energy = EnergyModel{}.total(res.run.noc,
                                     res.run.mem.snoopLookups.value());
    if (telemetry)
        telemetry->finish(res.run);
    if (attrib) {
        attrib->writeArtifacts(label);
        res.attribution = std::move(attrib);
    }
    return res;
}

double
defaultBenchScale()
{
    if (const char *env = std::getenv("SPP_BENCH_SCALE"))
        return std::atof(env);
    return 1.0;
}

} // namespace spp
