#include "analysis/experiment.hh"

#include <cstdlib>
#include <optional>

#include "common/logging.hh"
#include "service/result_store.hh"
#include "telemetry/manifest.hh"
#include "telemetry/telemetry.hh"
#include "trace/codec.hh"
#include "trace/replay.hh"
#include "trace/store.hh"

namespace spp {

double
ExperimentResult::commMissFraction() const
{
    const auto misses = run.mem.misses.value();
    if (misses == 0)
        return 0.0;
    return static_cast<double>(run.mem.communicatingMisses.value()) /
        static_cast<double>(misses);
}

double
ExperimentResult::avgMissLatency() const
{
    return run.mem.missLatency.mean();
}

double
ExperimentResult::bytesPerMiss() const
{
    const auto misses = run.mem.misses.value();
    if (misses == 0)
        return 0.0;
    return static_cast<double>(run.noc.flitBytes.value()) /
        static_cast<double>(misses);
}

double
ExperimentResult::predictionAccuracy() const
{
    const auto comm = run.mem.communicatingMisses.value();
    if (comm == 0)
        return 0.0;
    return static_cast<double>(run.mem.predictionsSufficient.value()) /
        static_cast<double>(comm);
}

double
ExperimentResult::indirectionFraction() const
{
    const auto misses = run.mem.misses.value();
    if (misses == 0)
        return 0.0;
    // A miss avoids indirection when its prediction was sufficient
    // (broadcast avoids it always; the pure directory never does).
    return 1.0 -
        static_cast<double>(run.mem.predictionsSufficient.value()) /
            static_cast<double>(misses);
}

namespace {

enum class TraceMode { off, record, replay };

} // namespace

ExperimentResult
runExperiment(const std::string &workload_name,
              const ExperimentConfig &xcfg)
{
    Config cfg = xcfg.config;
    if (xcfg.tweak)
        xcfg.tweak(cfg);

    // Consult the result store first: a warm entry short-circuits
    // the whole run. Keys hash the *tweaked* config plus everything
    // else that determines the result (workload, scale, trace flags,
    // code version); uncacheable cells (see resultCacheable()) fall
    // through to a normal live run.
    std::string result_path;
    std::string result_key;
    if (xcfg.resultStore.enabled()) {
        if (!resultCacheable(xcfg)) {
            ++resultStoreStats().bypasses;
        } else {
            cfg.validate();
            const ContentKey key = resultKey(
                workload_name, cfg, xcfg.scale, xcfg.collectTrace,
                xcfg.recordMissTargets, gitDescribe());
            result_key = key.describe();
            result_path = resultPath(xcfg.resultStore.dir,
                                     workload_name, key.hash());
            if (xcfg.resultStore.refresh) {
                ++resultStoreStats().misses;
            } else {
                ExperimentResult cached;
                if (loadCachedResult(result_path, result_key,
                                     cached))
                    return cached;
            }
        }
    }

    // Resolve the trace mode against the *tweaked* config — a sweep
    // tweak may change the seed or geometry, which are part of the
    // store key.
    TraceMode tmode = TraceMode::off;
    std::string trace_file;
    if (!xcfg.trace.replayFile.empty()) {
        tmode = TraceMode::replay;
        trace_file = xcfg.trace.replayFile;
    } else if (!xcfg.trace.dir.empty()) {
        trace_file = tracePath(
            xcfg.trace.dir, workload_name,
            traceKeyHash(workload_name, cfg, xcfg.scale));
        tmode = !xcfg.trace.record && traceFileExists(trace_file)
            ? TraceMode::replay
            : TraceMode::record;
    }

    // A replayed run never consults the generator registry: the op
    // stream on disk is the workload (imported traces have no
    // registered generator at all).
    const WorkloadSpec *spec = nullptr;
    if (tmode != TraceMode::replay) {
        spec = findWorkload(workload_name);
        if (!spec)
            SPP_FATAL("unknown workload '{}'", workload_name);
    }

    std::shared_ptr<const TraceData> replay_data;
    if (tmode == TraceMode::replay) {
        auto data = std::make_shared<TraceData>(
            loadTraceOrFatal(trace_file));
        const std::string err = traceReplayError(*data, cfg);
        if (!err.empty())
            SPP_FATAL("cannot replay {}: {}", trace_file, err);
        replay_data = std::move(data);
    }

    const std::string label = xcfg.telemetryLabel.empty()
        ? workload_name
        : xcfg.telemetryLabel;

    // Telemetry and attribution are fully inert unless a directory
    // was configured: the optional/pointer stays empty and the run
    // is bit-identical to an unobserved one.
    std::optional<RunTelemetry> telemetry;
    if (xcfg.telemetry.enabled()) {
        telemetry.emplace(xcfg.telemetry, label);
        telemetry->manifest().set("workload", Json(workload_name));
        if (tmode != TraceMode::off) {
            telemetry->manifest().set(
                "trace_mode",
                Json(tmode == TraceMode::record ? "record"
                                                : "replay"));
            telemetry->manifest().set("trace_file",
                                      Json(trace_file));
            telemetry->manifest().set(
                "trace_key",
                Json(traceKeyDescribe(workload_name, cfg,
                                      xcfg.scale)));
        }
        telemetry->manifest().beginPhase("build");
    }
    std::unique_ptr<AttributionProfiler> attrib;
    if (xcfg.attribution.enabled())
        attrib = std::make_unique<AttributionProfiler>(
            xcfg.attribution);

    CmpSystem sys(cfg);
    if (xcfg.prepare)
        xcfg.prepare(sys);

    std::unique_ptr<TraceRecorder> recorder;
    if (tmode == TraceMode::record) {
        recorder = std::make_unique<TraceRecorder>(cfg.numCores);
        sys.setTraceSink(recorder.get());
    }

    ExperimentResult res;
    if (xcfg.collectTrace) {
        res.trace = std::make_unique<CommTrace>(
            cfg.numCores, xcfg.recordMissTargets);
        res.trace->attach(sys);
    }
    if (telemetry && attrib) {
        // Cross-wire before attaching: attr.* counters join the
        // sampled series and every closed epoch gets an attribution
        // annotation + per-sync-point counter tracks.
        AttributionProfiler *p = attrib.get();
        telemetry->setExtraMetrics(
            [p](MetricRegistry &reg) { p->registerMetrics(reg); });
        telemetry->setEpochAnnotator(
            [p](CoreId core) { return p->epochArgs(core); });
    }
    if (telemetry) {
        telemetry->attach(sys);
        telemetry->manifest().beginPhase("run");
    }
    // After telemetry: the epoch recorder must observe a closing
    // epoch's snapshot before the profiler's listener resets it
    // (sync listeners run in registration order).
    if (attrib)
        attrib->attach(sys);

    if (replay_data) {
        res.run = sys.run(replayThreadFn(replay_data));
    } else {
        WorkloadParams params;
        params.scale = xcfg.scale;
        res.run = sys.run([spec, params](ThreadContext &ctx) {
            return spec->run(ctx, params);
        });
    }

    if (recorder) {
        recorder->data.meta =
            traceMetaFor(workload_name, cfg, xcfg.scale);
        std::string err;
        if (!writeFileBytesAtomic(trace_file,
                                  encodeTrace(recorder->data), err))
            SPP_FATAL("failed to write trace {}: {}", trace_file,
                      err);
    }

    if (telemetry)
        telemetry->manifest().beginPhase("finalize");

    if (res.trace)
        res.trace->finalize();

    if (xcfg.checkCoherence) {
        sys.memSys().checkCoherence();
        if (auto *dir = sys.directory())
            dir->checkDirectory();
    }

    res.energy = EnergyModel{}.total(res.run.noc,
                                     res.run.mem.snoopLookups.value());
    if (telemetry)
        telemetry->finish(res.run);
    if (attrib) {
        attrib->writeArtifacts(label);
        res.attribution = std::move(attrib);
    }
    // Cold cell of an enabled store: populate (atomically) so the
    // next identical run is warm.
    if (!result_path.empty())
        storeResult(result_path, result_key, res);
    return res;
}

double
defaultBenchScale()
{
    if (const char *env = std::getenv("SPP_BENCH_SCALE"))
        return std::atof(env);
    return 1.0;
}

} // namespace spp
