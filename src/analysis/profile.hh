/**
 * @file
 * Profile-guided prediction seeding (Section 5.2's off-line
 * profiling discussion): distill a characterization trace into
 * per-(core, sync-epoch) signatures and pre-load a fresh
 * SP-predictor with them, so the first dynamic instance of each
 * epoch already predicts instead of warming up.
 */

#ifndef SPP_ANALYSIS_PROFILE_HH
#define SPP_ANALYSIS_PROFILE_HH

#include <vector>

#include "analysis/trace.hh"
#include "core/sp_predictor.hh"

namespace spp {

/** One profiled signature. */
struct ProfileEntry
{
    CoreId core = invalidCore;
    std::uint64_t staticId = 0;
    CoreSet signature;
};

/**
 * Build a profile from a trace: for every static sync-epoch with at
 * least one non-noisy instance, the hot set of its *last* instance
 * (the state an SP-table would hold at the end of the profiled run).
 */
std::vector<ProfileEntry> buildProfile(const CommTrace &trace,
                                       double hot_threshold,
                                       unsigned noise_misses);

/** Seed @p predictor from @p profile. */
void applyProfile(SpPredictor &predictor,
                  const std::vector<ProfileEntry> &profile);

} // namespace spp

#endif // SPP_ANALYSIS_PROFILE_HH
