/**
 * @file
 * Sync-epoch statistics (Table 1) computed from a CommTrace.
 */

#ifndef SPP_ANALYSIS_EPOCH_STATS_HH
#define SPP_ANALYSIS_EPOCH_STATS_HH

#include <set>

#include "analysis/trace.hh"

namespace spp {

/** Table 1 row (per-core averages, as in the paper). */
struct EpochStats
{
    unsigned staticCriticalSections = 0; ///< Distinct lock sites.
    unsigned staticSyncEpochs = 0;       ///< Distinct non-lock sites.
    double dynEpochsPerCore = 0.0;       ///< Total dynamic epochs.
};

inline EpochStats
computeEpochStats(const CommTrace &trace)
{
    EpochStats s;
    std::set<std::uint64_t> cs_sites;
    std::set<std::uint64_t> epoch_sites;
    std::uint64_t dynamic = 0;
    for (unsigned c = 0; c < trace.numCores(); ++c) {
        for (const EpochRecord &e : trace.epochs(c)) {
            ++dynamic;
            if (e.beginType == SyncType::lock)
                cs_sites.insert(e.staticId);
            else if (e.beginType != SyncType::threadStart)
                epoch_sites.insert(e.staticId);
        }
    }
    s.staticCriticalSections = static_cast<unsigned>(cs_sites.size());
    s.staticSyncEpochs = static_cast<unsigned>(epoch_sites.size());
    s.dynEpochsPerCore =
        static_cast<double>(dynamic) / trace.numCores();
    return s;
}

} // namespace spp

#endif // SPP_ANALYSIS_EPOCH_STATS_HH
