/**
 * @file
 * Hot-communication-set pattern classification (Section 3.4,
 * Figure 6): how an epoch's hot set evolves across its dynamic
 * instances — stable, stable-with-change, stride-repetitive, random,
 * or a combination.
 */

#ifndef SPP_ANALYSIS_PATTERNS_HH
#define SPP_ANALYSIS_PATTERNS_HH

#include <map>
#include <string>
#include <vector>

#include "analysis/trace.hh"

namespace spp {

enum class HotSetPattern
{
    stable,      ///< One hot set throughout (Fig. 6a).
    phaseChange, ///< One stable set switching to another (Fig. 6b).
    stride,      ///< Periodic repetition with stride >= 2 (Fig. 6c).
    random,      ///< No detectable structure (Fig. 6d).
    mixed,       ///< Stable core plus varying extras (Fig. 6e).
    tooFew,      ///< Not enough non-noisy instances to classify.
};

const char *toString(HotSetPattern p);

/** The classified dynamic behaviour of one static sync-epoch. */
struct EpochPatternInfo
{
    CoreId core = invalidCore;
    std::uint64_t staticId = 0;
    SyncType beginType = SyncType::threadStart;
    HotSetPattern pattern = HotSetPattern::tooFew;
    unsigned instances = 0;     ///< Non-noisy instances observed.
    unsigned stride = 0;        ///< Detected period (stride class).
    std::vector<CoreSet> sets;  ///< The hot-set sequence.
};

/**
 * Classify the hot-set sequence @p sets (one per non-noisy dynamic
 * instance); @p stride_out gets the detected period for the stride
 * class.
 */
HotSetPattern classifySequence(const std::vector<CoreSet> &sets,
                               unsigned &stride_out);

/**
 * Classify every static sync-epoch in @p trace with at least
 * @p min_instances non-noisy instances. @p threshold is the hot-set
 * cut, @p noise_misses the noisy-instance filter.
 */
std::vector<EpochPatternInfo>
classifyEpochPatterns(const CommTrace &trace, double threshold,
                      unsigned noise_misses,
                      unsigned min_instances = 3);

/** Count classified epochs per pattern class. */
std::map<HotSetPattern, unsigned>
patternHistogram(const std::vector<EpochPatternInfo> &infos);

} // namespace spp

#endif // SPP_ANALYSIS_PATTERNS_HH
