/**
 * @file
 * Communication-locality analysis (Section 3.3, Figures 4 and 5).
 *
 * A locality curve gives, for k = 1..N, the average fraction of an
 * interval's communication volume covered by its k hottest targets.
 * Curves are computed at three granularities: per sync-epoch, over
 * the whole execution, and per static instruction; epochs/instruction
 * groups are weighted by their communication volume.
 */

#ifndef SPP_ANALYSIS_LOCALITY_HH
#define SPP_ANALYSIS_LOCALITY_HH

#include <vector>

#include "analysis/trace.hh"

namespace spp {

/** A cumulative coverage curve: entry k-1 = coverage by top-k cores. */
using LocalityCurve = std::vector<double>;

/** Volume-weighted average cumulative curve over sync-epochs. */
LocalityCurve epochLocality(const CommTrace &trace);

/** Cumulative curve of whole-run per-core volumes. */
LocalityCurve wholeRunLocality(const CommTrace &trace);

/** Volume-weighted average cumulative curve per static instruction. */
LocalityCurve instructionLocality(const CommTrace &trace);

/**
 * Distribution of sync-epochs by hot-set size (Figure 5): buckets
 * for sizes 1, 2, 3, 4 and >= 5, as fractions of epochs with a
 * non-empty hot set. @p threshold is the hot-set cut (paper: 10%).
 */
std::array<double, 5> hotSetSizeDistribution(const CommTrace &trace,
                                             double threshold);

} // namespace spp

#endif // SPP_ANALYSIS_LOCALITY_HH
