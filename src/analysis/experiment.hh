/**
 * @file
 * Shared experiment harness: one call to run a (workload, protocol,
 * predictor) combination and collect results; used by every bench
 * binary and the integration tests.
 */

#ifndef SPP_ANALYSIS_EXPERIMENT_HH
#define SPP_ANALYSIS_EXPERIMENT_HH

#include <memory>
#include <optional>
#include <string>

#include "analysis/attribution.hh"
#include "analysis/energy.hh"
#include "analysis/trace.hh"
#include "common/config.hh"
#include "service/options.hh"
#include "sim/cmp_system.hh"
#include "telemetry/options.hh"
#include "trace/options.hh"
#include "workload/workload.hh"

namespace spp {

/** Knobs of one experiment run. */
struct ExperimentConfig
{
    /** The full simulator configuration (protocol, predictor, seed,
     * topology, latencies, ...). Set fields directly — the harness
     * no longer mirrors any of them. */
    Config config;

    double scale = 1.0;             ///< Workload iteration scale.
    bool collectTrace = false;
    bool recordMissTargets = false; ///< Per-miss targets in the trace.
    bool checkCoherence = false;    ///< Run invariant checkers after.

    /** Telemetry sidecars (time series, Chrome trace, manifest);
     * disabled unless telemetry.dir is set. */
    TelemetryOptions telemetry;
    /** Per-sync-point attribution profiling (attribution.{json,txt}
     * artifacts); disabled unless attribution.dir is set. */
    AttributionOptions attribution;
    /** Trace capture/replay (see trace/options.hh): with a store
     * dir, runs replay a previously recorded op stream when one
     * matches the workload key and record one otherwise; with a
     * replay file, that exact trace drives the machine. Off unless
     * one of the two is set. */
    TraceOptions trace;
    /** Content-addressed result cache (service/result_store.hh):
     * with a store dir, cacheable runs are served from a warm entry
     * when one matches the cell key and simulate + populate the
     * entry otherwise. Off unless resultStore.dir is set. */
    ResultStoreOptions resultStore;
    /** File stem of this run's sidecars (telemetry and attribution);
     * defaults to the workload name (the sweep engine assigns unique
     * per-job labels). */
    std::string telemetryLabel;

    /** Per-cell Config edits applied to a copy of `config` just
     * before the run; for sweep grids that specialize a shared
     * base cell-by-cell. Prefer editing `config` directly. */
    // lint: allow(std-function) — setup-time binding, not per-event.
    std::function<void(Config &)> tweak;

    /** Touch the built system before the run (e.g. profile seeding,
     * thread-map changes). */
    // lint: allow(std-function) — setup-time binding, not per-event.
    std::function<void(CmpSystem &)> prepare;
};

/** Results of one experiment run. */
struct ExperimentResult
{
    RunResult run;
    double energy = 0.0;            ///< NoC + snoop energy (model).
    std::unique_ptr<CommTrace> trace; ///< When collectTrace was set.
    /** When attribution was enabled: the profiler with the run's
     * full attribution store (artifacts are already written). */
    std::unique_ptr<AttributionProfiler> attribution;

    // Convenience metrics used across figures.
    double commMissFraction() const;
    double avgMissLatency() const;
    double bytesPerMiss() const;
    /** Fraction of communicating misses serviced without directory
     * indirection (prediction sufficient). */
    double predictionAccuracy() const;
    /** Fraction of misses that required indirection (Fig. 12 y). */
    double indirectionFraction() const;
};

/** Run @p workload_name under @p cfg; fatal on unknown workload. */
ExperimentResult runExperiment(const std::string &workload_name,
                               const ExperimentConfig &cfg);

/** The default scale benches use (keeps full sweeps fast). */
double defaultBenchScale();

} // namespace spp

#endif // SPP_ANALYSIS_EXPERIMENT_HH
