#include "analysis/attribution.hh"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <tuple>

#include "analysis/report.hh"
#include "common/format.hh"
#include "common/logging.hh"
#include "telemetry/options.hh"

namespace spp {

namespace {

std::string
hexAddr(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

// ---------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------

AttributionOptions
AttributionOptions::fromEnv()
{
    AttributionOptions opts;
    if (const char *dir = std::getenv("SPP_ATTRIBUTION"))
        opts.dir = dir;
    if (const char *k = std::getenv("SPP_ATTRIBUTION_TOPK")) {
        const long long n = std::atoll(k);
        if (n > 0)
            opts.topK = static_cast<std::size_t>(n);
        else
            warn("ignoring invalid SPP_ATTRIBUTION_TOPK='{}'", k);
    }
    if (const char *r = std::getenv("SPP_ATTRIBUTION_REGION")) {
        const long long n = std::atoll(r);
        if (n > 0 && std::has_single_bit(
                         static_cast<unsigned long long>(n))) {
            opts.regionBytes = static_cast<unsigned>(n);
        } else {
            warn("ignoring invalid SPP_ATTRIBUTION_REGION='{}'", r);
        }
    }
    return opts;
}

// ---------------------------------------------------------------------
// Key / Cell
// ---------------------------------------------------------------------

bool
AttributionProfiler::Key::operator<(const Key &o) const
{
    return std::tie(syncType, syncStatic, syncEpoch, region, core) <
        std::tie(o.syncType, o.syncStatic, o.syncEpoch, o.region,
                 o.core);
}

std::size_t
AttributionProfiler::KeyHash::operator()(const Key &k) const
{
    // FNV-1a over the key fields; quality only affects bucket
    // spread, never results (eviction and output are sort-ordered).
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        h = (h ^ v) * 0x100000001b3ull;
    };
    mix(static_cast<std::uint64_t>(k.syncType));
    mix(k.syncStatic);
    mix(k.syncEpoch);
    mix(k.region);
    mix(k.core);
    return static_cast<std::size_t>(h);
}

void
AttributionProfiler::Cell::fold(const Cell &o)
{
    correct += o.correct;
    over += o.over;
    under += o.under;
    unpredicted += o.unpredicted;
    wastedBytes += o.wastedBytes;
    underLatencyTicks += o.underLatencyTicks;
    messages += o.messages;
    nocBytes += o.nocBytes;
}

// ---------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------

AttributionProfiler::AttributionProfiler(AttributionOptions opts)
    : opts_(std::move(opts))
{
    SPP_ASSERT(opts_.topK > 0, "attribution topK must be positive");
    SPP_ASSERT(std::has_single_bit(opts_.regionBytes),
               "attribution regionBytes must be a power of two");
    region_shift_ = static_cast<unsigned>(
        std::countr_zero(opts_.regionBytes));
    store_.reserve(9 * opts_.topK);
}

void
AttributionProfiler::attach(CmpSystem &sys)
{
    cores_.resize(sys.config().numCores);
    sys.memSys().setAttributionSink(this);
    sys.syncManager().addListener(this);
}

void
AttributionProfiler::onSyncPoint(CoreId core, const SyncPointInfo &info)
{
    EpochCtx &ctx = cores_[core];
    ctx.type = info.type;
    ctx.staticId = info.staticId;
    ++ctx.epoch;
    ctx.epochCell = Cell{};
    ctx.lastCell = nullptr;     // Memo keys on the current epoch.
}

AttributionProfiler::Cell &
AttributionProfiler::cellFor(CoreId core, Addr addr)
{
    EpochCtx &ctx = cores_[core];
    const Addr region = addr >> region_shift_;
    if (ctx.lastCell != nullptr && ctx.lastRegion == region)
        return *ctx.lastCell;
    Key k;
    k.syncType = ctx.type;
    k.syncStatic = ctx.staticId;
    k.syncEpoch = ctx.epoch;
    k.region = region;
    k.core = core;
    Cell *cell = &store_[k];
    // Compact with generous slack: each pass pays O(topK) map
    // rebuilding, so evicting 8*topK keys per pass keeps the
    // amortized per-key cost constant (the profiler overhead budget,
    // DESIGN.md §12). Memory stays bounded at 9*topK live cells.
    if (store_.size() >= 9 * opts_.topK) {
        compact();
        // The compaction may have evicted the entry we just touched;
        // re-insert so the caller's reference stays valid.
        cell = &store_[k];
    }
    // Node-based map: the pointer stays valid across inserts; only
    // compact() moves cells, and it clears every memo.
    ctx.lastRegion = region;
    ctx.lastCell = cell;
    return *cell;
}

void
AttributionProfiler::onMissResolved(CoreId core, Addr line,
                                    const AccessOutcome &out,
                                    std::uint64_t wasted_bytes)
{
    Cell d;
    if (!out.pred.valid()) {
        ++d.unpredicted;
    } else if (out.communicating && !out.predSufficient) {
        // The paper's costly case: the prediction did not cover the
        // miss and the access ate the full indirection latency.
        ++d.under;
        d.underLatencyTicks +=
            static_cast<std::uint64_t>(out.latency());
    } else if (wasted_bytes > 0) {
        ++d.over;
    } else {
        ++d.correct;
    }
    d.wastedBytes += wasted_bytes;

    cellFor(core, line).fold(d);
    totals_.fold(d);
    cores_[core].epochCell.fold(d);
}

void
AttributionProfiler::onMessageSent(CoreId requester, Addr line,
                                   unsigned bytes)
{
    // The hottest hook (one call per protocol message): increment
    // the two touched fields directly instead of folding a full
    // delta cell three times.
    Cell &cell = cellFor(requester, line);
    ++cell.messages;
    cell.nocBytes += bytes;
    ++totals_.messages;
    totals_.nocBytes += bytes;
    Cell &epoch = cores_[requester].epochCell;
    ++epoch.messages;
    epoch.nocBytes += bytes;
}

void
AttributionProfiler::compact()
{
    std::vector<std::pair<Key, Cell>> all;
    all.reserve(store_.size());
    // Partitioned below under a strict total order, so the surviving
    // set is independent of hash iteration order.
    // lint: allow(unordered-iter) — deterministically partitioned.
    for (const auto &kv : store_)
        all.push_back(kv);
    // nth_element suffices: the total order (score desc, key asc)
    // makes the top-K *partition* unique even though the order
    // within each side is unspecified — and every output path
    // re-sorts through sortedEntries() anyway.
    const auto better = [](const auto &a, const auto &b) {
        const std::uint64_t sa = a.second.score();
        const std::uint64_t sb = b.second.score();
        if (sa != sb)
            return sa > sb;
        return a.first < b.first;
    };
    std::nth_element(all.begin(), all.begin() +
                     static_cast<std::ptrdiff_t>(opts_.topK),
                     all.end(), better);
    store_.clear();
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (i < opts_.topK) {
            store_.emplace(all[i].first, all[i].second);
        } else {
            evicted_.fold(all[i].second);
            ++evictions_;
        }
    }
    // Every memoized cell pointer just moved or died.
    for (EpochCtx &ctx : cores_)
        ctx.lastCell = nullptr;
}

std::vector<std::pair<AttributionProfiler::Key,
                      AttributionProfiler::Cell>>
AttributionProfiler::sortedEntries() const
{
    std::vector<std::pair<Key, Cell>> all;
    all.reserve(store_.size());
    // The snapshot is fully sorted below, so the result is
    // independent of hash iteration order.
    // lint: allow(unordered-iter) — sorted before use.
    for (const auto &kv : store_)
        all.push_back(kv);
    std::sort(all.begin(), all.end(),
              [](const auto &a, const auto &b) {
                  const std::uint64_t sa = a.second.score();
                  const std::uint64_t sb = b.second.score();
                  if (sa != sb)
                      return sa > sb;
                  return a.first < b.first;
              });
    return all;
}

void
AttributionProfiler::registerMetrics(MetricRegistry &reg) const
{
    reg.addCell("attr.correct", totals_.correct);
    reg.addCell("attr.over", totals_.over);
    reg.addCell("attr.under", totals_.under);
    reg.addCell("attr.unpredicted", totals_.unpredicted);
    reg.addCell("attr.wasted_bytes", totals_.wastedBytes);
    reg.addCell("attr.under_ticks", totals_.underLatencyTicks);
    reg.addCell("attr.messages", totals_.messages);
    reg.addCell("attr.noc_bytes", totals_.nocBytes);
}

Json
AttributionProfiler::epochArgs(CoreId core) const
{
    const Cell &c = cores_[core].epochCell;
    Json j = Json::object();
    j["decisions"] = Json(c.decisions());
    j["wasted_bytes"] = Json(c.wastedBytes);
    j["under_ticks"] = Json(c.underLatencyTicks);
    j["noc_bytes"] = Json(c.nocBytes);
    return j;
}

namespace {

Json
cellJson(const AttributionProfiler::Cell &c)
{
    Json j = Json::object();
    j["correct"] = Json(c.correct);
    j["over"] = Json(c.over);
    j["under"] = Json(c.under);
    j["unpredicted"] = Json(c.unpredicted);
    j["wasted_bytes"] = Json(c.wastedBytes);
    j["under_ticks"] = Json(c.underLatencyTicks);
    j["messages"] = Json(c.messages);
    j["noc_bytes"] = Json(c.nocBytes);
    j["score"] = Json(c.score());
    return j;
}

} // namespace

Json
AttributionProfiler::toJson() const
{
    const auto all = sortedEntries();

    Json doc = Json::object();
    doc["schema"] = Json("spp.attribution.v1");
    Json jopts = Json::object();
    jopts["top_k"] = Json(opts_.topK);
    jopts["region_bytes"] = Json(opts_.regionBytes);
    doc["options"] = std::move(jopts);

    // The report bound is topK; the live store can briefly hold up
    // to 2*topK-1 keys between compactions, so fold the tail into
    // the overflow summary exactly as an eviction would.
    Cell overflow = evicted_;
    std::uint64_t overflow_keys = evictions_;
    Json entries = Json::array();
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (i >= opts_.topK) {
            overflow.fold(all[i].second);
            ++overflow_keys;
            continue;
        }
        const Key &k = all[i].first;
        Json e = Json::object();
        e["rank"] = Json(i + 1);
        e["sync"] = Json(strfmt("{}#{}", toString(k.syncType),
                                hexAddr(k.syncStatic)));
        e["sync_type"] = Json(toString(k.syncType));
        e["sync_static"] = Json(hexAddr(k.syncStatic));
        e["sync_epoch"] = Json(k.syncEpoch);
        e["region"] = Json(hexAddr(k.region << region_shift_));
        e["core"] = Json(k.core);
        e["stats"] = cellJson(all[i].second);
        entries.push(std::move(e));
    }
    doc["entries"] = std::move(entries);
    doc["totals"] = cellJson(totals_);
    Json ov = Json::object();
    ov["keys"] = Json(overflow_keys);
    ov["stats"] = cellJson(overflow);
    doc["overflow"] = std::move(ov);
    return doc;
}

std::string
AttributionProfiler::textReport(std::size_t topN) const
{
    const auto all = sortedEntries();

    std::string out = strfmt(
        "attribution: {} decisions ({} correct, {} over, {} under, "
        "{} unpredicted), {} wasted B, {} under ticks, {} msgs, "
        "{} NoC B, {} keys ({} evicted)\n",
        totals_.decisions(), totals_.correct, totals_.over,
        totals_.under, totals_.unpredicted, totals_.wastedBytes,
        totals_.underLatencyTicks, totals_.messages, totals_.nocBytes,
        store_.size(), evictions_);

    Table t({"rank", "sync", "epoch", "region", "core", "corr",
             "over", "under", "unpred", "wasted B", "under tk",
             "msgs", "noc B", "score"});
    const std::size_t n = std::min(topN, all.size());
    for (std::size_t i = 0; i < n; ++i) {
        const Key &k = all[i].first;
        const Cell &c = all[i].second;
        t.cell(std::uint64_t{i + 1})
            .cell(strfmt("{}#{}", toString(k.syncType),
                         hexAddr(k.syncStatic)))
            .cell(k.syncEpoch)
            .cell(hexAddr(k.region << region_shift_))
            .cell(k.core)
            .cell(c.correct)
            .cell(c.over)
            .cell(c.under)
            .cell(c.unpredicted)
            .cell(c.wastedBytes)
            .cell(c.underLatencyTicks)
            .cell(c.messages)
            .cell(c.nocBytes)
            .cell(c.score())
            .endRow();
    }
    return out + t.str();
}

void
AttributionProfiler::writeArtifacts(const std::string &label) const
{
    std::error_code ec;
    std::filesystem::create_directories(opts_.dir, ec);
    if (ec) {
        SPP_FATAL("cannot create attribution directory '{}': {}",
                  opts_.dir, ec.message());
    }
    const std::string base =
        opts_.dir + "/" + sanitizeFileLabel(label);

    {
        const std::string path = base + ".attribution.json";
        std::ofstream os(path);
        if (!os)
            SPP_FATAL("cannot write '{}'", path);
        toJson().write(os, 0);
        os << '\n';
    }
    {
        const std::string path = base + ".attribution.txt";
        std::ofstream os(path);
        if (!os)
            SPP_FATAL("cannot write '{}'", path);
        os << textReport();
    }
}

} // namespace spp
