#include "analysis/report.hh"

#include <cstdint>
#include <cstdio>
#include <sstream>

namespace spp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

Table &
Table::cell(const std::string &v)
{
    current_.push_back(v);
    return *this;
}

Table &
Table::cell(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    current_.push_back(os.str());
    return *this;
}

Table &
Table::cell(std::uint64_t v)
{
    current_.push_back(std::to_string(v));
    return *this;
}

Table &
Table::endRow()
{
    rows_.push_back(std::move(current_));
    current_.clear();
    return *this;
}

std::string
Table::str() const
{
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i)
        width[i] = headers_[i].size();
    for (const auto &row : rows_)
        for (std::size_t i = 0; i < row.size() && i < width.size();
             ++i) {
            width[i] = std::max(width[i], row[i].size());
        }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < width.size(); ++i) {
            const std::string &v = i < row.size() ? row[i] : "";
            os << (i == 0 ? "" : "  ");
            // First column left-aligned, the rest right-aligned.
            if (i == 0) {
                os << v << std::string(width[i] - v.size(), ' ');
            } else {
                os << std::string(width[i] - v.size(), ' ') << v;
            }
        }
        os << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < width.size(); ++i)
        total += width[i] + (i == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

void
banner(const std::string &title)
{
    std::printf("\n== %s ==\n", title.c_str());
}

} // namespace spp
