#include "analysis/event_trace.hh"

#include <bit>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "core/sp_predictor.hh"
#include "mem/address_map.hh"
#include "predict/group_predictor.hh"

namespace spp {

namespace {

/** Record sync-points into shared event storage. */
struct SyncRecorder : SyncListener
{
    std::shared_ptr<std::vector<TraceEvent>> out;

    void
    onSyncPoint(CoreId core, const SyncPointInfo &info) override
    {
        TraceEvent e;
        e.kind = TraceEvent::Kind::syncPoint;
        e.core = core;
        e.type = info.type;
        e.staticId = info.staticId;
        e.prevHolder = info.prevHolder;
        out->push_back(e);
    }
};

} // namespace

void
EventTrace::attach(CmpSystem &sys)
{
    auto rec = std::make_shared<SyncRecorder>();
    rec->out = events_;
    sys.syncManager().addListener(rec.get());
    recorders_.push_back(std::move(rec));
    const unsigned line_shift = std::countr_zero(
        static_cast<unsigned long>(sys.config().lineBytes));
    auto storage = events_;
    sys.setAccessObserver(
        [storage, line_shift](CoreId core, Addr addr, Pc pc,
                              const AccessOutcome &out) {
            if (!out.miss())
                return;
            TraceEvent e;
            e.kind = TraceEvent::Kind::miss;
            e.core = core;
            e.line = addr >> line_shift << line_shift;
            e.pc = pc;
            e.isWrite = out.isWrite;
            e.communicating = out.communicating;
            e.targets = out.servicedBy;
            storage->push_back(e);
        });
}

void
EventTrace::save(std::ostream &os) const
{
    // v2: the miss-targets field is a hex CoreSet (was a decimal
    // 64-bit mask), so traces scale past 64 cores.
    os << "# spp event trace v2\n";
    for (const TraceEvent &e : *events_) {
        if (e.kind == TraceEvent::Kind::miss) {
            os << "M " << e.core << ' ' << e.line << ' ' << e.pc
               << ' ' << (e.isWrite ? 1 : 0) << ' '
               << (e.communicating ? 1 : 0) << ' '
               << e.targets.toHex() << '\n';
        } else {
            os << "S " << e.core << ' '
               << static_cast<unsigned>(e.type) << ' ' << e.staticId
               << ' ' << e.prevHolder << '\n';
        }
    }
}

void
EventTrace::save(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        SPP_FATAL("cannot write trace file '{}'", path);
    save(os);
}

EventTrace
EventTrace::load(std::istream &is)
{
    EventTrace trace;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        char tag = 0;
        ls >> tag;
        TraceEvent e;
        if (tag == 'M') {
            std::string mask;
            int w = 0, c = 0;
            e.kind = TraceEvent::Kind::miss;
            ls >> e.core >> e.line >> e.pc >> w >> c >> mask;
            e.isWrite = w != 0;
            e.communicating = c != 0;
            e.targets = CoreSet::fromHex(mask);
        } else if (tag == 'S') {
            unsigned type = 0;
            e.kind = TraceEvent::Kind::syncPoint;
            ls >> e.core >> type >> e.staticId >> e.prevHolder;
            e.type = static_cast<SyncType>(type);
        } else {
            SPP_FATAL("malformed trace line: '{}'", line);
        }
        if (!ls)
            SPP_FATAL("malformed trace line: '{}'", line);
        trace.events_->push_back(e);
    }
    return trace;
}

EventTrace
EventTrace::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        SPP_FATAL("cannot read trace file '{}'", path);
    return load(is);
}

OfflineResult
evaluateOffline(const EventTrace &trace, const Config &cfg,
                PredictorKind kind)
{
    std::unique_ptr<DestinationPredictor> predictor;
    SpPredictor *sp = nullptr;
    switch (kind) {
      case PredictorKind::sp: {
        auto p = std::make_unique<SpPredictor>(cfg, cfg.numCores);
        sp = p.get();
        predictor = std::move(p);
        break;
      }
      case PredictorKind::addr:
        predictor = std::make_unique<GroupPredictor>(
            cfg, cfg.numCores, GroupIndex::macroBlock);
        break;
      case PredictorKind::inst:
        predictor = std::make_unique<GroupPredictor>(
            cfg, cfg.numCores, GroupIndex::instruction);
        break;
      case PredictorKind::uni:
        predictor = std::make_unique<GroupPredictor>(
            cfg, cfg.numCores, GroupIndex::none);
        break;
      case PredictorKind::none:
        SPP_FATAL("offline evaluation needs a predictor kind");
    }

    AddressMap map(cfg);
    OfflineResult res;
    double set_sum = 0;

    for (const TraceEvent &e : trace.events()) {
        if (e.kind == TraceEvent::Kind::syncPoint) {
            if (sp) {
                SyncPointInfo info;
                info.type = e.type;
                info.staticId = e.staticId;
                info.prevHolder = e.prevHolder;
                sp->onSyncPoint(e.core, info);
            }
            continue;
        }

        ++res.misses;
        PredictionQuery q;
        q.core = e.core;
        q.line = e.line;
        q.macroBlock = map.macroBlock(e.line);
        q.pc = e.pc;
        q.isWrite = e.isWrite;

        Prediction p = predictor->predict(q);
        p.targets.reset(e.core);
        bool sufficient = false;
        if (p.valid()) {
            ++res.attempted;
            set_sum += p.targets.count();
            sufficient = e.communicating &&
                p.targets.contains(e.targets);
        }
        if (e.communicating) {
            ++res.commMisses;
            if (sufficient)
                ++res.sufficient;
            predictor->trainResponse(q, e.targets);
            // Offline external training: every serviced target
            // observed this requester.
            for (CoreId t : e.targets) {
                predictor->trainExternal(t, e.line, q.macroBlock,
                                         e.pc, e.core, e.isWrite);
            }
        }
        predictor->feedback(e.core, p, e.communicating, sufficient);
    }

    if (res.attempted > 0)
        res.predictedTargets =
            set_sum / static_cast<double>(res.attempted);
    res.storageBits = predictor->storageBits();
    return res;
}

} // namespace spp
