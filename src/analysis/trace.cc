#include "analysis/trace.hh"

namespace spp {

CoreSet
EpochRecord::hotSet(double threshold) const
{
    CoreSet hot;
    const std::uint64_t sum = totalVolume();
    if (sum == 0)
        return hot;
    const double cut = threshold * static_cast<double>(sum);
    for (unsigned c = 0; c < volume.size(); ++c)
        if (volume[c] > 0 && volume[c] >= cut)
            hot.set(static_cast<CoreId>(c));
    return hot;
}

CommTrace::CommTrace(unsigned n_cores, bool record_targets)
    : n_cores_(n_cores), record_targets_(record_targets),
      current_(n_cores, EpochRecord(n_cores)), epochs_(n_cores),
      whole_(n_cores, std::vector<std::uint64_t>(n_cores, 0)),
      pc_volume_(n_cores)
{
    for (unsigned c = 0; c < n_cores; ++c)
        current_[c].core = static_cast<CoreId>(c);
}

void
CommTrace::onSyncPoint(CoreId core, const SyncPointInfo &info)
{
    EpochRecord &cur = current_[core];
    // The very first sync-point (threadStart) opens, rather than
    // closes, an epoch.
    if (cur.beginType != SyncType::threadStart || cur.misses > 0 ||
        !epochs_[core].empty()) {
        epochs_[core].push_back(cur);
    }
    EpochRecord next(n_cores_);
    next.core = core;
    next.beginType = info.type;
    next.staticId = info.staticId;
    next.dynamicId = info.dynamicId;
    current_[core] = next;
}

void
CommTrace::onAccess(CoreId core, Addr addr, Pc pc,
                    const AccessOutcome &out)
{
    (void)addr;
    if (!out.miss())
        return;
    EpochRecord &cur = current_[core];
    ++cur.misses;
    ++total_misses_;
    if (!out.communicating)
        return;
    ++cur.commMisses;
    ++total_comm_;
    if (record_targets_)
        cur.missTargets.push_back(out.servicedBy);
    auto &pcs = pc_volume_[core][pc];
    if (pcs.empty())
        pcs.resize(n_cores_, 0);
    for (CoreId target : out.servicedBy) {
        ++cur.volume[target];
        ++whole_[core][target];
        ++pcs[target];
    }
}

void
CommTrace::finalize()
{
    for (unsigned c = 0; c < n_cores_; ++c) {
        if (current_[c].misses > 0)
            epochs_[c].push_back(current_[c]);
    }
}

CommTrace
CommTrace::restore(unsigned n_cores, bool record_targets,
                   std::vector<std::vector<EpochRecord>> epochs,
                   std::vector<std::vector<std::uint64_t>> whole,
                   std::vector<PcVolumeMap> pc_volume,
                   std::uint64_t total_misses,
                   std::uint64_t total_comm)
{
    CommTrace t(n_cores, record_targets);
    t.epochs_ = std::move(epochs);
    t.whole_ = std::move(whole);
    t.pc_volume_ = std::move(pc_volume);
    t.total_misses_ = total_misses;
    t.total_comm_ = total_comm;
    // No open epochs: the serialized source was finalized, so a
    // second finalize() on the restored object is a no-op.
    for (unsigned c = 0; c < n_cores; ++c)
        t.current_[c].misses = 0;
    return t;
}

} // namespace spp
