/**
 * @file
 * Communication-trace collection for the characterization study
 * (Section 3): per-epoch communication-volume distributions, per-PC
 * volumes, and the epoch sequences the locality / pattern analyses
 * consume.
 */

#ifndef SPP_ANALYSIS_TRACE_HH
#define SPP_ANALYSIS_TRACE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "coherence/mem_sys.hh"
#include "common/core_set.hh"
#include "common/types.hh"
#include "sync/sync_types.hh"

namespace spp {

/** Per-interval communication record. */
struct EpochRecord
{
    /** @p n_cores sizes the per-target volume vector; records built
     * by CommTrace always use the configured core count. */
    explicit EpochRecord(unsigned n_cores = 0) : volume(n_cores, 0) {}

    CoreId core = invalidCore;
    SyncType beginType = SyncType::threadStart;
    std::uint64_t staticId = 0;
    std::uint64_t dynamicId = 0;
    Tick beginTick = 0;
    /** Communication volume towards each target core. */
    std::vector<std::uint32_t> volume;
    std::uint32_t misses = 0;
    std::uint32_t commMisses = 0;
    /** Per-communicating-miss target sets (only when the trace was
     * built with record_targets; used for ideal-accuracy analysis). */
    std::vector<CoreSet> missTargets;

    std::uint64_t
    totalVolume() const
    {
        std::uint64_t sum = 0;
        for (auto v : volume)
            sum += v;
        return sum;
    }

    /** Targets covering at least @p threshold of the volume. */
    CoreSet hotSet(double threshold) const;
};

/**
 * SyncListener + access observer that records the epoch structure of
 * a run. Attach via CommTrace::attach(CmpSystem&).
 */
class CommTrace : public SyncListener
{
  public:
    explicit CommTrace(unsigned n_cores, bool record_targets = false);

    /** Register as sync listener and access observer of @p sys. */
    template <typename System>
    void
    attach(System &sys)
    {
        sys.syncManager().addListener(this);
        sys.setAccessObserver(
            [this](CoreId c, Addr a, Pc pc, const AccessOutcome &o) {
                onAccess(c, a, pc, o);
            });
    }

    void onSyncPoint(CoreId core, const SyncPointInfo &info) override;
    void onAccess(CoreId core, Addr addr, Pc pc,
                  const AccessOutcome &out);

    /** Finish the trailing epochs (call after the run). */
    void finalize();

    /** All completed epochs of @p core, in execution order. */
    const std::vector<EpochRecord> &epochs(CoreId core) const
    {
        return epochs_[core];
    }

    /** Whole-run communication volume of @p core per target. */
    const std::vector<std::uint64_t> &
    wholeRunVolume(CoreId core) const
    {
        return whole_[core];
    }

    /** Per-static-instruction volume map of one core; ordered so
     * consumers (and serialized forms) iterate deterministically. */
    using PcVolumeMap = std::map<Pc, std::vector<std::uint32_t>>;

    /** Per-static-instruction volume at @p core. */
    const PcVolumeMap &
    pcVolume(CoreId core) const
    {
        return pc_volume_[core];
    }

    unsigned numCores() const { return n_cores_; }
    bool recordsTargets() const { return record_targets_; }

    /** Total misses / communicating misses across all cores. */
    std::uint64_t totalMisses() const { return total_misses_; }
    std::uint64_t totalCommMisses() const { return total_comm_; }

    /**
     * Rebuild an already-finalized trace from serialized parts (the
     * result store's warm path). The restored object answers every
     * accessor exactly as the live-collected one did; feeding it
     * further onAccess/onSyncPoint events is not meaningful.
     */
    static CommTrace
    restore(unsigned n_cores, bool record_targets,
            std::vector<std::vector<EpochRecord>> epochs,
            std::vector<std::vector<std::uint64_t>> whole,
            std::vector<PcVolumeMap> pc_volume,
            std::uint64_t total_misses, std::uint64_t total_comm);

  private:
    unsigned n_cores_;
    bool record_targets_;
    std::vector<EpochRecord> current_;
    std::vector<std::vector<EpochRecord>> epochs_;
    std::vector<std::vector<std::uint64_t>> whole_;
    std::vector<PcVolumeMap> pc_volume_;
    std::uint64_t total_misses_ = 0;
    std::uint64_t total_comm_ = 0;
};

} // namespace spp

#endif // SPP_ANALYSIS_TRACE_HH
