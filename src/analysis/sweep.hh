/**
 * @file
 * Parallel experiment sweep engine.
 *
 * Every figure/table harness runs a (workload, config) matrix whose
 * cells are fully independent: each runExperiment() call builds its
 * own CmpSystem, seeds its own RNGs and touches no shared mutable
 * state. SweepRunner exploits that by executing a job vector on a
 * pool of worker threads while returning results in *job order*, so
 * callers see exactly the sequence a sequential loop would produce.
 *
 * Determinism guarantee: a given (workload, config, seed) job yields
 * a bit-identical ExperimentResult whether the sweep runs on one
 * thread or many; only wall-clock time and the interleaving of
 * progress lines change. Jobs that share a Config::tweak / prepare
 * callback may invoke it concurrently, so those callbacks must be
 * re-entrant (capture by value, mutate only their arguments).
 */

#ifndef SPP_ANALYSIS_SWEEP_HH
#define SPP_ANALYSIS_SWEEP_HH

#include <cstddef>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "analysis/experiment.hh"

namespace spp {

/** One cell of a sweep matrix. */
struct SweepJob
{
    std::string workload;
    ExperimentConfig config;
    /** Optional tag shown in progress lines; defaults to
     * "workload/protocol[/predictor]". */
    std::string label;
};

/**
 * Thread-pool executor for experiment sweeps. Worker count comes
 * from the constructor argument, else the SPP_JOBS environment
 * variable, else std::thread::hardware_concurrency().
 */
class SweepRunner
{
  public:
    /** @p n_threads 0 = defaultJobs(). */
    explicit SweepRunner(unsigned n_threads = 0);

    /** Run all jobs; results land at the index of their job. */
    std::vector<ExperimentResult>
    run(const std::vector<SweepJob> &jobs) const;

    /**
     * Apply @p fn to each element of @p items on the worker pool;
     * results land at the index of their item, exactly as a
     * sequential loop would produce them. @p fn may run from several
     * threads at once, so it must be re-entrant and touch only its
     * own item (the fuzz harness: each item is one seeded case).
     */
    template <typename Item, typename Fn>
    auto
    map(const std::vector<Item> &items, Fn &&fn) const
        -> std::vector<std::invoke_result_t<Fn &, const Item &>>
    {
        std::vector<std::invoke_result_t<Fn &, const Item &>> out(
            items.size());
        forIndices(items.size(),
                   [&](std::size_t i) { out[i] = fn(items[i]); });
        return out;
    }

    unsigned threads() const { return n_threads_; }

    /** SPP_JOBS override, else hardware_concurrency(), min 1. */
    static unsigned defaultJobs();

  private:
    /** Run fn(0), ..., fn(n-1) on the pool, each index once. */
    void forIndices(std::size_t n,
                    // lint: allow(std-function) — pool dispatch.
                    const std::function<void(std::size_t)> &fn) const;

    unsigned n_threads_;
};

/** One-shot convenience wrapper around SweepRunner. */
std::vector<ExperimentResult>
runSweep(const std::vector<SweepJob> &jobs, unsigned n_threads = 0);

} // namespace spp

#endif // SPP_ANALYSIS_SWEEP_HH
