/**
 * @file
 * Parallel experiment sweep engine.
 *
 * Every figure/table harness runs a (workload, config) matrix whose
 * cells are fully independent: each runExperiment() call builds its
 * own CmpSystem, seeds its own RNGs and touches no shared mutable
 * state. SweepRunner exploits that by executing a job vector on a
 * pool of worker threads while returning results in *job order*, so
 * callers see exactly the sequence a sequential loop would produce.
 *
 * Determinism guarantee: a given (workload, config, seed) job yields
 * a bit-identical ExperimentResult whether the sweep runs on one
 * thread or many; only wall-clock time and the interleaving of
 * progress lines change. Jobs that share a Config::tweak / prepare
 * callback may invoke it concurrently, so those callbacks must be
 * re-entrant (capture by value, mutate only their arguments).
 */

#ifndef SPP_ANALYSIS_SWEEP_HH
#define SPP_ANALYSIS_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "analysis/experiment.hh"

namespace spp {

/** One cell of a sweep matrix. */
struct SweepJob
{
    std::string workload;
    ExperimentConfig config;
    /** Optional tag shown in progress lines; defaults to
     * "workload/protocol[/predictor]". */
    std::string label;
};

/**
 * Thread-pool executor for experiment sweeps. Worker count comes
 * from the constructor argument, else the SPP_JOBS environment
 * variable, else std::thread::hardware_concurrency().
 */
class SweepRunner
{
  public:
    /** @p n_threads 0 = defaultJobs(). */
    explicit SweepRunner(unsigned n_threads = 0);

    /** Run all jobs; results land at the index of their job. */
    std::vector<ExperimentResult>
    run(const std::vector<SweepJob> &jobs) const;

    /**
     * Run arbitrary independent closures on the same worker pool
     * (the fuzz harness: each task is one seeded case that writes
     * only its own result slot). Tasks must be mutually thread-safe.
     */
    void runTasks(const std::vector<std::function<void()>> &tasks)
        const;

    unsigned threads() const { return n_threads_; }

    /** SPP_JOBS override, else hardware_concurrency(), min 1. */
    static unsigned defaultJobs();

  private:
    unsigned n_threads_;
};

/** One-shot convenience wrapper around SweepRunner. */
std::vector<ExperimentResult>
runSweep(const std::vector<SweepJob> &jobs, unsigned n_threads = 0);

} // namespace spp

#endif // SPP_ANALYSIS_SWEEP_HH
