/**
 * @file
 * Miss/sync-point event traces (the paper's Section 3.2 methodology):
 * "we collected L2 miss traces that contain the miss data address,
 * type, PC, and the target set of cores ... along with all
 * sync-points and their type and static/dynamic IDs. Traces do not
 * capture the effects of timing and are used only for
 * characterization."
 *
 * An EventTrace records exactly that stream from a live run, can be
 * saved to / loaded from a plain-text file, and can be replayed
 * through any destination-set predictor *offline* — decoupling
 * predictor studies from timing simulation.
 */

#ifndef SPP_ANALYSIS_EVENT_TRACE_HH
#define SPP_ANALYSIS_EVENT_TRACE_HH

#include <array>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/core_set.hh"
#include "common/types.hh"
#include "predict/predictor.hh"
#include "sim/cmp_system.hh"
#include "sync/sync_types.hh"

namespace spp {

/** One recorded event: an L2 miss or a sync-point. */
struct TraceEvent
{
    enum class Kind : std::uint8_t { miss, syncPoint };

    Kind kind = Kind::miss;
    CoreId core = invalidCore;

    // kind == miss:
    Addr line = 0;
    Pc pc = 0;
    bool isWrite = false;
    bool communicating = false;
    CoreSet targets;            ///< Remote caches that serviced it.

    // kind == syncPoint:
    SyncType type = SyncType::threadStart;
    std::uint64_t staticId = 0;
    CoreId prevHolder = invalidCore;
};

/**
 * An ordered stream of trace events with record / save / load /
 * replay support.
 */
class EventTrace
{
  public:
    EventTrace()
        : events_(std::make_shared<std::vector<TraceEvent>>())
    {}

    /** Record misses and sync-points from a live system. The trace
     * must outlive the run: it owns the sync listener it registers
     * with @p sys (events land in shared storage, so the trace
     * object itself may be moved). */
    void attach(CmpSystem &sys);

    const std::vector<TraceEvent> &events() const { return *events_; }
    std::size_t size() const { return events_->size(); }

    /** Append events directly (synthetic traces in tests). */
    void append(const TraceEvent &e) { events_->push_back(e); }

    /** Plain-text serialization (one event per line). */
    void save(std::ostream &os) const;
    void save(const std::string &path) const;

    /** Parse a stream saved by save(); fatal on malformed input. */
    static EventTrace load(std::istream &is);
    static EventTrace load(const std::string &path);

  private:
    std::shared_ptr<std::vector<TraceEvent>> events_;
    /** Listeners registered by attach(); owned per trace instead of
     * in a process-global pool so concurrent sweep jobs never share
     * mutable state. */
    std::vector<std::shared_ptr<SyncListener>> recorders_;
};

/** Results of an offline predictor replay. */
struct OfflineResult
{
    std::uint64_t misses = 0;
    std::uint64_t commMisses = 0;
    std::uint64_t attempted = 0;
    std::uint64_t sufficient = 0;   ///< Of communicating misses.
    double predictedTargets = 0.0;  ///< Avg set size per attempt.
    std::size_t storageBits = 0;

    double
    accuracy() const
    {
        return commMisses
            ? static_cast<double>(sufficient) /
                  static_cast<double>(commMisses)
            : 0.0;
    }
};

/**
 * Replay @p trace through a freshly-built predictor of @p kind
 * configured by @p cfg (no timing; the paper's trace-driven
 * characterization pipeline).
 */
OfflineResult evaluateOffline(const EventTrace &trace,
                              const Config &cfg, PredictorKind kind);

} // namespace spp

#endif // SPP_ANALYSIS_EVENT_TRACE_HH
