/**
 * @file
 * SPLASH-2 workload generators (see workload.hh for the modeling
 * philosophy). Each function is the per-thread program; sharing
 * structure follows the well-documented communication behaviour of
 * the original benchmarks (Woo et al., ISCA'95; Barrow-Williams et
 * al., IISWC'09).
 */

#include "workload/splash.hh"

#include "workload/patterns.hh"

namespace spp {
namespace wl {

namespace {

/** Per-thread parallel initialization: first-touch the partition. */
Task
initPartition(ThreadContext &ctx, Pc pc, unsigned lines = 256)
{
    for (unsigned i = 0; i < lines; ++i) {
        co_await ctx.write(partAddr(ctx, ctx.self(), i), pc);
        co_await ctx.compute(2);
    }
}

} // namespace

// ---------------------------------------------------------------------
// fmm: adaptive N-body. Tree-structured exchange: leaf intervals read
// from the parent's level, inner intervals read from the children
// (the paper's Section 2 example). Alternating stable hot sets.
// ---------------------------------------------------------------------
Task
fmm(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0x10000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    const CoreId parent = t / 2;
    const CoreId parent_sib = parent ^ 1u;
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0);
    co_await ctx.barrier(0, pc + 1);

    const unsigned iters = p.iters(8);
    for (unsigned it = 0; it < iters; ++it) {
        const std::uint64_t off = (it % 4) * 96;

        // Build local expansions (produce own data).
        co_await writeOwn(ctx, off, 40, pc + 2);
        co_await streamPrivate(ctx, priv_cursor, 32, 0.3, pc + 3);
        co_await ctx.barrier(1, pc + 4);

        // Interval A: act as a leaf, pull from the parent level.
        co_await readFrom(ctx, parent, off, 20, pc + 5);
        co_await readFrom(ctx, parent_sib, off, 14, pc + 6);
        co_await streamPrivate(ctx, priv_cursor, 20, 0.2, pc + 7);
        co_await ctx.barrier(2, pc + 8);

        // Interval B: act as an inner node, pull from the children.
        const CoreId c0 = 2 * t;
        const CoreId c1 = 2 * t + 1;
        if (c1 < n) {
            co_await readFrom(ctx, c0, off, 14, pc + 9);
            co_await readFrom(ctx, c1, off, 14, pc + 10);
        } else {
            co_await streamPrivate(ctx, priv_cursor, 20, 0.2, pc + 11);
        }
        co_await writeOwn(ctx, off + 40, 16, pc + 12);
        co_await ctx.barrier(3, pc + 13);

        // Occasional cost-zone rebalancing under one of eight
        // partition locks, plus a periodic tree-rebuild phase.
        if (it % 3 == 0) {
            const unsigned l = (t + it) % 8;
            co_await ctx.lock(l);
            co_await touchLockRegion(ctx, l, 3, 0.5, pc + 14);
            co_await ctx.unlock(l);
        }
        if (it % 4 == 3) {
            co_await writeOwn(ctx, 600, 12, pc + 16);
            co_await ctx.barrier(4, pc + 17);
            co_await readFrom(ctx, parent, 600, 8, pc + 18);
        }
    }
    if (t == 0)
        co_await ctx.join(pc + 15);
}

// ---------------------------------------------------------------------
// lu: blocked dense LU. One diagonal-block owner per step produces;
// everyone consumes that block: a single hot target rotating with k.
// Few static epochs, modest communicating fraction.
// ---------------------------------------------------------------------
Task
lu(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0x20000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0);
    co_await ctx.barrier(0, pc + 1);

    const unsigned steps = p.iters(24);
    for (unsigned k = 0; k < steps; ++k) {
        const CoreId owner = static_cast<CoreId>(k % n);
        const std::uint64_t blk = (k * 48) % kPartLines;

        // The owner factorizes the diagonal block.
        if (t == owner) {
            co_await writeOwn(ctx, blk, 56, pc + 2);
        } else {
            co_await streamPrivate(ctx, priv_cursor, 30, 0.4, pc + 3);
        }
        co_await ctx.barrier(1, pc + 4);

        // Everyone consumes the diagonal block, then updates its own
        // trailing blocks (private-heavy).
        if (t != owner)
            co_await readFrom(ctx, owner, blk, 40, pc + 5);
        co_await writeOwn(ctx, (blk + 512) % kPartLines, 20, pc + 6);
        co_await streamPrivate(ctx, priv_cursor, 45, 0.5, pc + 7);
        co_await ctx.barrier(2, pc + 8);
    }
    if (t == 0)
        co_await ctx.join(pc + 9);
}

// ---------------------------------------------------------------------
// ocean: red-black Gauss-Seidel on a strip-partitioned grid. Stable
// nearest-neighbour hot sets {t-1, t+1}; many dynamic epochs.
// ---------------------------------------------------------------------
Task
ocean(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0x30000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    const CoreId up = (t + n - 1) % n;
    const CoreId down = (t + 1) % n;
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0);
    co_await ctx.barrier(0, pc + 1);

    const unsigned iters = p.iters(24);
    for (unsigned it = 0; it < iters; ++it) {
        // Multigrid: coarse and fine sweeps alternate between two
        // sets of static phases (distinct call sites, as in the
        // original's many static epochs).
        const unsigned level = it % 2;
        for (unsigned phase = 0; phase < 4; ++phase) {
            const std::uint64_t off = (level * 4 + phase) * 32;
            const unsigned site = level * 4 + phase;
            // Update own strip (boundary rows included).
            co_await writeOwn(ctx, off, 20, pc + 2 + site);
            co_await streamPrivate(ctx, priv_cursor, 20, 0.4,
                                   pc + 10 + site);
            co_await ctx.barrier(1 + site, pc + 20 + site);
            // Read the neighbours' boundary rows.
            co_await readFrom(ctx, up, off, 10, pc + 30 + site);
            co_await readFrom(ctx, down, off, 10, pc + 40 + site);
        }
        // Global error-norm reduction under per-level locks.
        const unsigned l = level * 2 + (t % 2);
        co_await ctx.lock(l);
        co_await touchLockRegion(ctx, l, 2, 0.7, pc + 50);
        co_await ctx.unlock(l);
    }
    co_await ctx.barrier(9, pc + 51);
    if (t == 0)
        co_await ctx.join(pc + 52);
}

// ---------------------------------------------------------------------
// radiosity: task-stealing over an irregular scene. Lock-protected
// task queues; migratory, effectively random communication.
// ---------------------------------------------------------------------
Task
radiosity(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0x40000;
    const CoreId t = ctx.self();
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0);
    co_await ctx.barrier(0, pc + 1);

    const unsigned tasks = p.iters(220);
    for (unsigned i = 0; i < tasks; ++i) {
        // Grab work from one of the distributed task queues.
        const unsigned q = (t + i) % 8;
        co_await ctx.lock(q);
        co_await touchLockRegion(ctx, q, 4, 0.6, pc + 2);
        co_await ctx.unlock(q);

        // Visibility-cache probe under one of four extra locks.
        if (i % 3 == 0) {
            const unsigned v = 8 + (t + i) % 4;
            co_await ctx.lock(v);
            co_await touchLockRegion(ctx, v, 2, 0.4, pc + 8);
            co_await ctx.unlock(v);
        }

        // Process the interaction: patch visibility has transient
        // owner affinity (the enqueuing thread produced the patch).
        const CoreId hot = static_cast<CoreId>((t + i / 24) %
                                               ctx.numThreads());
        co_await touchSkewedShared(ctx, hot, 0.7, 12, 0.25, pc + 3);
        co_await streamPrivate(ctx, priv_cursor, 2, 0.3, pc + 4);

        if (i % 16 == 15)
            co_await ctx.barrier(1, pc + 5);
    }
    co_await ctx.barrier(2, pc + 6);
    if (t == 0)
        co_await ctx.join(pc + 7);
}

// ---------------------------------------------------------------------
// water-ns: O(n^2) molecular dynamics. Barrier phases with
// neighbour-window force reads plus fine-grain per-pair locks.
// ---------------------------------------------------------------------
Task
waterNs(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0x50000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0);
    co_await ctx.barrier(0, pc + 1);

    const unsigned steps = p.iters(10);
    for (unsigned it = 0; it < steps; ++it) {
        const std::uint64_t off = (it % 4) * 64;

        // Inter-molecular forces: read a window of neighbours.
        for (unsigned d = 1; d <= 2; ++d) {
            co_await readFrom(ctx, (t + d) % n, off, 10, pc + 2 + d);
            co_await readFrom(ctx, (t + n - d) % n, off, 10,
                              pc + 4 + d);
        }

        // Accumulate forces into shared molecules under pair locks.
        for (unsigned m = 0; m < 6; ++m) {
            const unsigned l = (t + m) % 8;
            co_await ctx.lock(l);
            const CoreId other = static_cast<CoreId>((t + m + 1) % n);
            co_await ctx.write(partAddr(ctx, other, off + m), pc + 7);
            co_await ctx.write(partAddr(ctx, t, off + m), pc + 8);
            co_await ctx.unlock(l);
        }
        co_await ctx.barrier(1, pc + 9);

        // Intra-molecular update: own data and private scratch.
        co_await writeOwn(ctx, off, 24, pc + 10);
        co_await streamPrivate(ctx, priv_cursor, 10, 0.4, pc + 11);
        co_await ctx.barrier(2, pc + 12);
    }
    if (t == 0)
        co_await ctx.join(pc + 13);
}

// ---------------------------------------------------------------------
// cholesky: sparse supernodal factorization via a task queue.
// Lock-grabbed tasks whose data lives at a task-dependent owner.
// ---------------------------------------------------------------------
Task
cholesky(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0x60000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0);
    co_await ctx.barrier(0, pc + 1);

    const unsigned tasks = p.iters(140);
    for (unsigned i = 0; i < tasks; ++i) {
        // Task queue plus per-supernode column locks.
        const unsigned q = i % 2;
        co_await ctx.lock(q);
        co_await touchLockRegion(ctx, q, 3, 0.5, pc + 2);
        co_await ctx.unlock(q);
        if (i % 4 == 1) {
            const unsigned col = 2 + (t + i) % 6;
            co_await ctx.lock(col);
            co_await touchLockRegion(ctx, col, 2, 0.6, pc + 8);
            co_await ctx.unlock(col);
        }

        // The supernode the task updates lives at a pseudo-random
        // owner; reads are concentrated there.
        const CoreId owner =
            static_cast<CoreId>((i * 7 + t * 3) % n);
        co_await readRandomFrom(ctx, owner, 10, pc + 3);
        co_await writeOwn(ctx, (i * 16) % kPartLines, 8, pc + 4);
        co_await streamPrivate(ctx, priv_cursor, 5, 0.4, pc + 5);
    }
    co_await ctx.barrier(1, pc + 6);
    if (t == 0)
        co_await ctx.join(pc + 7);
}

// ---------------------------------------------------------------------
// fft: radix-sqrt(n) six-step FFT. Butterfly stages exchange with
// partner t ^ 2^s; a transpose phase is all-to-all. Few epochs.
// ---------------------------------------------------------------------
Task
fft(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0x70000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0, 384);
    co_await ctx.barrier(0, pc + 1);

    const unsigned rounds = p.iters(2);
    for (unsigned r = 0; r < rounds; ++r) {
        // Butterfly stages.
        for (unsigned s = 0; (1u << s) < n; ++s) {
            const CoreId partner = t ^ (1u << s);
            co_await readFrom(ctx, partner, r * 128, 48, pc + 2 + s);
            co_await writeOwn(ctx, r * 128, 48, pc + 10 + s);
            co_await ctx.barrier(1 + s, pc + 20 + s);
        }
        // Transpose: strided all-to-all.
        for (unsigned d = 1; d < n; ++d) {
            const CoreId from = (t + d) % n;
            co_await readFrom(ctx, from, 256 + t * 8, 6, pc + 30);
        }
        co_await writeOwn(ctx, 256, 64, pc + 31);
        co_await streamPrivate(ctx, priv_cursor, 120, 0.5, pc + 32);
        co_await ctx.barrier(8, pc + 33);
    }
    if (t == 0)
        co_await ctx.join(pc + 34);
}

// ---------------------------------------------------------------------
// radix: parallel radix sort. Private-key streaming dominates; the
// permutation phase scatters writes across random partitions. Low
// communicating fraction.
// ---------------------------------------------------------------------
Task
radix(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0x80000;
    const CoreId t = ctx.self();
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0);
    co_await ctx.barrier(0, pc + 1);

    const unsigned passes = p.iters(3);
    for (unsigned pass = 0; pass < passes; ++pass) {
        // Histogram own keys (private streaming, mostly off-chip).
        co_await streamPrivate(ctx, priv_cursor, 280, 0.35, pc + 2);
        co_await ctx.barrier(1, pc + 3);

        // Prefix-sum of the global histogram (read all partitions a
        // little).
        for (unsigned d = 1; d < ctx.numThreads(); ++d)
            co_await readFrom(ctx, (t + d) % ctx.numThreads(),
                              pass * 4, 2, pc + 4);
        co_await ctx.barrier(2, pc + 5);

        // Permute: scatter writes whose destinations carry the
        // key-digit skew of partially sorted data.
        const CoreId dense = static_cast<CoreId>((t + 5) %
                                                 ctx.numThreads());
        co_await touchSkewedShared(ctx, dense, 0.6, 40, 1.0, pc + 6);
        co_await ctx.barrier(3, pc + 7);
    }
    if (t == 0)
        co_await ctx.join(pc + 8);
}

// ---------------------------------------------------------------------
// water-sp: spatial-decomposition molecular dynamics. Essentially a
// single long sync-epoch (one static epoch) with steady neighbour
// communication and a couple of rare reduction locks.
// ---------------------------------------------------------------------
Task
waterSp(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0x90000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0);
    co_await ctx.barrier(0, pc + 1);

    const unsigned steps = p.iters(12);
    for (unsigned it = 0; it < steps; ++it) {
        const std::uint64_t off = (it % 6) * 48;
        // Spatial cells: only adjacent boxes interact.
        co_await readFrom(ctx, (t + 1) % n, off, 18, pc + 2);
        co_await readFrom(ctx, (t + n - 1) % n, off, 18, pc + 3);
        co_await writeOwn(ctx, off, 22, pc + 4);
        co_await streamPrivate(ctx, priv_cursor, 6, 0.4, pc + 5);

        // Rare global-energy reduction.
        if (it % 6 == 5) {
            co_await ctx.lock(0);
            co_await touchRandomShared(ctx, 3, 0.7, pc + 6);
            co_await ctx.unlock(0);
        }
    }
    co_await ctx.barrier(1, pc + 7);
    if (t == 0)
        co_await ctx.join(pc + 8);
}

} // namespace wl
} // namespace spp
