/**
 * @file
 * SPLASH-2 workload generator declarations.
 */

#ifndef SPP_WORKLOAD_SPLASH_HH
#define SPP_WORKLOAD_SPLASH_HH

#include "workload/workload.hh"

namespace spp {
namespace wl {

Task fmm(ThreadContext &ctx, const WorkloadParams &p);
Task lu(ThreadContext &ctx, const WorkloadParams &p);
Task ocean(ThreadContext &ctx, const WorkloadParams &p);
Task radiosity(ThreadContext &ctx, const WorkloadParams &p);
Task waterNs(ThreadContext &ctx, const WorkloadParams &p);
Task cholesky(ThreadContext &ctx, const WorkloadParams &p);
Task fft(ThreadContext &ctx, const WorkloadParams &p);
Task radix(ThreadContext &ctx, const WorkloadParams &p);
Task waterSp(ThreadContext &ctx, const WorkloadParams &p);

} // namespace wl
} // namespace spp

#endif // SPP_WORKLOAD_SPLASH_HH
