#include "workload/workload.hh"

#include "workload/parsec.hh"
#include "workload/splash.hh"

namespace spp {

const std::vector<WorkloadSpec> &
workloadRegistry()
{
    // Paper reference columns are from Table 1 (per-core averages).
    static const std::vector<WorkloadSpec> registry = {
        {"fmm", "splash2", "16K (particles)", 30, 20, 2789, wl::fmm},
        {"lu", "splash2", "521 (matrix)", 7, 5, 185, wl::lu},
        {"ocean", "splash2", "258 (grid)", 28, 20, 2685, wl::ocean},
        {"radiosity", "splash2", "room", 34, 12, 17637,
         wl::radiosity},
        {"water-ns", "splash2", "512 (mol.)", 20, 8, 1224,
         wl::waterNs},
        {"cholesky", "splash2", "tk15.O", 28, 27, 1998, wl::cholesky},
        {"fft", "splash2", "256K (points)", 8, 8, 22, wl::fft},
        {"radix", "splash2", "4M (keys)", 8, 4, 35, wl::radix},
        {"water-sp", "splash2", "512 (mol.)", 17, 1, 83, wl::waterSp},
        {"bodytrack", "parsec", "simsmall", 16, 20, 456,
         wl::bodytrack},
        {"fluidanimate", "parsec", "simsmall", 11, 20, 8991,
         wl::fluidanimate},
        {"streamcluster", "parsec", "simsmall", 1, 24, 11454,
         wl::streamcluster},
        {"vips", "parsec", "simsmall", 14, 8, 419, wl::vips},
        {"facesim", "parsec", "simsmall", 2, 3, 3826, wl::facesim},
        {"ferret", "parsec", "simsmall", 4, 6, 25, wl::ferret},
        {"dedup", "parsec", "simsmall", 3, 4, 508, wl::dedup},
        {"x264", "parsec", "simsmall", 2, 3, 56, wl::x264},
    };
    return registry;
}

const WorkloadSpec *
findWorkload(const std::string &name)
{
    for (const auto &spec : workloadRegistry())
        if (spec.name == name)
            return &spec;
    return nullptr;
}

} // namespace spp
