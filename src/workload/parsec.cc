/**
 * @file
 * PARSEC workload generators (see workload.hh for the modeling
 * philosophy). Communication structure follows Bienia et al.
 * (PACT'08) and Barrow-Williams et al. (IISWC'09).
 */

#include "workload/parsec.hh"

#include "workload/patterns.hh"

namespace spp {
namespace wl {

namespace {

Task
initPartition(ThreadContext &ctx, Pc pc, unsigned lines = 256)
{
    for (unsigned i = 0; i < lines; ++i) {
        co_await ctx.write(partAddr(ctx, ctx.self(), i), pc);
        co_await ctx.compute(2);
    }
}

} // namespace

// ---------------------------------------------------------------------
// bodytrack: per-frame particle-filter phases. Each phase has its own
// stable producer mapping, so hot sets are stable across dynamic
// instances of a static epoch but differ between epochs (Figure 2).
// ---------------------------------------------------------------------
Task
bodytrack(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0xa0000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0);
    co_await ctx.barrier(0, pc + 1);

    const unsigned frames = p.iters(12);
    for (unsigned f = 0; f < frames; ++f) {
        const std::uint64_t off = (f % 4) * 72;

        // Phase 1: edge maps from a fixed camera owner (core 0 reads
        // core 5, etc., as in the paper's Figure 2 example).
        const CoreId cam = static_cast<CoreId>((t * 5 + 5) % n);
        co_await writeOwn(ctx, off, 24, pc + 2);
        co_await ctx.barrier(1, pc + 3);
        co_await readFrom(ctx, cam, off, 26, pc + 4);
        co_await streamPrivate(ctx, priv_cursor, 16, 0.3, pc + 5);

        // Phase 2: particle weights from a different stable mapping.
        const CoreId peer = static_cast<CoreId>((t + 8) % n);
        co_await ctx.barrier(2, pc + 6);
        co_await readFrom(ctx, peer, off, 20, pc + 7);
        co_await writeOwn(ctx, off + 24, 14, pc + 8);

        // Phase 3: resampling with a touch of randomness and one
        // of four per-layer work-queue locks.
        co_await ctx.barrier(3, pc + 9);
        const unsigned l = f % 4;
        co_await ctx.lock(l);
        co_await touchLockRegion(ctx, l, 3, 0.5, pc + 10);
        co_await ctx.unlock(l);
        co_await touchRandomShared(ctx, 6, 0.2, pc + 11);
        co_await streamPrivate(ctx, priv_cursor, 12, 0.4, pc + 12);

        // Annealing layers alternate two extra phase sites.
        if (f % 2 == 1) {
            co_await ctx.barrier(5 + (f / 2) % 2, pc + 15 + (f / 2) % 2);
            co_await readFrom(ctx, cam, off + 40, 8, pc + 17);
        }
    }
    co_await ctx.barrier(4, pc + 13);
    if (t == 0)
        co_await ctx.join(pc + 14);
}

// ---------------------------------------------------------------------
// fluidanimate: grid of fluid cells on the 4x4 tile layout;
// boundary exchanges with 2D neighbours under fine-grain locks.
// ---------------------------------------------------------------------
Task
fluidanimate(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0xb0000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0);
    co_await ctx.barrier(0, pc + 1);

    const unsigned frames = p.iters(10);
    for (unsigned f = 0; f < frames; ++f) {
        const std::uint64_t off = (f % 4) * 64;
        const CoreId right = (t + 1) % n;
        const CoreId below = (t + 4) % n;

        // Density pass: read 2D-neighbour boundary cells.
        co_await readFrom(ctx, right, off, 9, pc + 2);
        co_await readFrom(ctx, below, off, 9, pc + 3);
        co_await writeOwn(ctx, off, 12, pc + 4);
        co_await ctx.barrier(1, pc + 5);

        // Force pass: update boundary cells under per-border locks.
        for (unsigned b = 0; b < 2; ++b) {
            const unsigned l = (t + b * 4) % 8;
            const CoreId nb = b == 0 ? right : below;
            co_await ctx.lock(l);
            co_await ctx.write(partAddr(ctx, nb, off + b), pc + 6);
            co_await ctx.write(partAddr(ctx, t, off + b), pc + 7);
            co_await ctx.unlock(l);
        }
        co_await streamPrivate(ctx, priv_cursor, 8, 0.4, pc + 8);
        co_await ctx.barrier(2, pc + 9);

        // Position integration: own cells only.
        co_await writeOwn(ctx, off + 16, 16, pc + 10);
        co_await ctx.barrier(3, pc + 11);
    }
    if (t == 0)
        co_await ctx.join(pc + 12);
}

// ---------------------------------------------------------------------
// streamcluster: repeated clustering passes whose gather target
// alternates between two mappings -> stride-2 repetitive hot sets,
// the pattern-based prediction showcase.
// ---------------------------------------------------------------------
Task
streamcluster(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0xc0000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0);
    co_await ctx.barrier(0, pc + 1);

    const unsigned iters = p.iters(80);
    for (unsigned it = 0; it < iters; ++it) {
        // The candidate-centre owner alternates between two mappings
        // on successive iterations (stride-2 dynamic pattern).
        const CoreId center = it % 2 == 0
            ? static_cast<CoreId>((t + 1) % n)
            : static_cast<CoreId>((t + 8) % n);
        const std::uint64_t off = (it % 4) * 48;

        co_await writeOwn(ctx, off, 14, pc + 2);
        co_await ctx.barrier(1, pc + 3);
        co_await readFrom(ctx, center, off, 24, pc + 4);
        co_await streamPrivate(ctx, priv_cursor, 2, 0.3, pc + 5);
        co_await ctx.barrier(2, pc + 6);
    }
    if (t == 0)
        co_await ctx.join(pc + 7);
}

// ---------------------------------------------------------------------
// vips: image pipeline over strips; each worker consumes the strip
// its predecessor produced. Stable chain-neighbour communication.
// ---------------------------------------------------------------------
Task
vips(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0xd0000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    const CoreId prev = (t + n - 1) % n;
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0);
    co_await ctx.barrier(0, pc + 1);

    const unsigned strips = p.iters(22);
    for (unsigned s = 0; s < strips; ++s) {
        const std::uint64_t off = (s % 8) * 40;
        // Produce this stage's output strip.
        co_await writeOwn(ctx, off, 20, pc + 2);
        co_await streamPrivate(ctx, priv_cursor, 18, 0.35, pc + 3);
        co_await ctx.barrier(1, pc + 4);
        // Consume the predecessor stage's strip.
        co_await readFrom(ctx, prev, off, 20, pc + 5);
        // Region-buffer bookkeeping under one of six stripe locks.
        if (s % 2 == 0) {
            const unsigned l = (t + s) % 6;
            co_await ctx.lock(l);
            co_await touchLockRegion(ctx, l, 2, 0.5, pc + 9);
            co_await ctx.unlock(l);
        }
        if (s % 8 == 7)
            co_await ctx.barrier(2, pc + 6);
    }
    co_await ctx.barrier(3, pc + 7);
    if (t == 0)
        co_await ctx.join(pc + 8);
}

// ---------------------------------------------------------------------
// facesim: iterative FEM solver; 2D-neighbour stencil with one
// barrier per sweep; few static but many dynamic epochs.
// ---------------------------------------------------------------------
Task
facesim(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0xe0000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0);
    co_await ctx.barrier(0, pc + 1);

    const unsigned sweeps = p.iters(32);
    for (unsigned s = 0; s < sweeps; ++s) {
        const std::uint64_t off = (s % 6) * 40;
        co_await writeOwn(ctx, off, 16, pc + 2);
        co_await ctx.barrier(1, pc + 3);
        co_await readFrom(ctx, (t + 1) % n, off, 9, pc + 4);
        co_await readFrom(ctx, (t + 4) % n, off, 9, pc + 5);
        co_await streamPrivate(ctx, priv_cursor, 10, 0.4, pc + 6);
    }
    co_await ctx.barrier(2, pc + 7);
    if (t == 0)
        co_await ctx.join(pc + 8);
}

// ---------------------------------------------------------------------
// ferret: similarity-search pipeline arranged as a worker chain with
// coarse, batch-granularity hand-offs (few, long epochs).
// ---------------------------------------------------------------------
Task
ferret(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0xf0000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0);
    co_await ctx.barrier(0, pc + 1);

    const unsigned batches = p.iters(10);
    for (unsigned b = 0; b < batches; ++b) {
        const std::uint64_t off = (b % 4) * 96;
        if (t != 0) {
            // Wait for the upstream stage's batch.
            co_await ctx.semWait(t, pc + 2);
            co_await readFrom(ctx, t - 1, off, 28, pc + 3);
        } else {
            // Input stage: load a segment of images (off-chip).
            co_await streamPrivate(ctx, priv_cursor, 18, 0.2, pc + 4);
        }

        // Rank candidates against the database under a table lock.
        co_await ctx.lock(t % 4);
        co_await touchLockRegion(ctx, t % 4, 5, 0.35, pc + 5);
        co_await ctx.unlock(t % 4);

        co_await writeOwn(ctx, off, 28, pc + 6);
        co_await streamPrivate(ctx, priv_cursor, 8, 0.3, pc + 7);
        if (t + 1 < n)
            co_await ctx.semPost(t + 1, pc + 8);
    }
    co_await ctx.barrier(1, pc + 9);
    if (t == 0)
        co_await ctx.join(pc + 10);
}

// ---------------------------------------------------------------------
// dedup: deduplication pipeline with a lock-protected global hash
// table (migratory random sharing) on top of the worker chain.
// ---------------------------------------------------------------------
Task
dedup(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0x100000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0);
    co_await ctx.barrier(0, pc + 1);

    const unsigned chunks = p.iters(24);
    for (unsigned c = 0; c < chunks; ++c) {
        const std::uint64_t off = (c % 6) * 56;
        if (t != 0) {
            co_await ctx.semWait(t, pc + 2);
            co_await readFrom(ctx, t - 1, off, 12, pc + 3);
        } else {
            co_await streamPrivate(ctx, priv_cursor, 10, 0.3, pc + 4);
        }

        // Hash-table probe/insert under one of three bucket locks.
        const unsigned l = (t + c) % 3;
        co_await ctx.lock(l);
        co_await touchLockRegion(ctx, l, 5, 0.55, pc + 5);
        co_await ctx.unlock(l);

        co_await writeOwn(ctx, off, 12, pc + 6);
        co_await streamPrivate(ctx, priv_cursor, 4, 0.3, pc + 7);
        if (t + 1 < n)
            co_await ctx.semPost(t + 1, pc + 8);
    }
    co_await ctx.barrier(1, pc + 9);
    if (t == 0)
        co_await ctx.join(pc + 10);
}

// ---------------------------------------------------------------------
// x264: wavefront-parallel encoder. Thread t consumes the row its
// predecessor finished (semaphore hand-off), giving an almost pure,
// highly-communicating neighbour chain with very few static
// sync-points.
// ---------------------------------------------------------------------
Task
x264(ThreadContext &ctx, const WorkloadParams &p)
{
    constexpr Pc pc = 0x110000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    std::uint64_t priv_cursor = 0;

    co_await initPartition(ctx, pc + 0, 128);
    co_await ctx.barrier(0, pc + 1);

    const unsigned frames = p.iters(16);
    for (unsigned f = 0; f < frames; ++f) {
        const std::uint64_t off = (f % 4) * 64;
        if (t != 0) {
            // Wait until the row above has advanced far enough.
            co_await ctx.semWait(t, pc + 2);
            co_await readFrom(ctx, t - 1, off, 26, pc + 3);
        }
        // Encode own macroblock row.
        co_await writeOwn(ctx, off, 26, pc + 4);
        co_await streamPrivate(ctx, priv_cursor, 2, 0.3, pc + 5);
        if (t + 1 < n)
            co_await ctx.semPost(t + 1, pc + 6);
    }
    co_await ctx.barrier(1, pc + 7);
    if (t == 0)
        co_await ctx.join(pc + 8);
}

} // namespace wl
} // namespace spp
