/**
 * @file
 * PARSEC workload generator declarations.
 */

#ifndef SPP_WORKLOAD_PARSEC_HH
#define SPP_WORKLOAD_PARSEC_HH

#include "workload/workload.hh"

namespace spp {
namespace wl {

Task bodytrack(ThreadContext &ctx, const WorkloadParams &p);
Task fluidanimate(ThreadContext &ctx, const WorkloadParams &p);
Task streamcluster(ThreadContext &ctx, const WorkloadParams &p);
Task vips(ThreadContext &ctx, const WorkloadParams &p);
Task facesim(ThreadContext &ctx, const WorkloadParams &p);
Task ferret(ThreadContext &ctx, const WorkloadParams &p);
Task dedup(ThreadContext &ctx, const WorkloadParams &p);
Task x264(ThreadContext &ctx, const WorkloadParams &p);

} // namespace wl
} // namespace spp

#endif // SPP_WORKLOAD_PARSEC_HH
