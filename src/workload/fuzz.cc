#include "workload/fuzz.hh"

#include "common/rng.hh"

namespace spp {
namespace wl {

namespace {

/** Kinds of program segments; drawn from the skeleton RNG. */
enum Kind : unsigned
{
    kScattered,     ///< Random reads/writes over the hot set.
    kCritical,      ///< Contended lock + migratory region under it.
    kFalseShare,    ///< All threads hammer one line.
    kRingHandoff,   ///< Semaphore ring: produce own, consume pred's.
    kProduceConsume,///< One writer, barrier, everyone reads.
    kPrivate,       ///< Thread-local streaming (non-communicating).
    kReadMostly,    ///< One occasional writer among readers.
    kNumKinds,
};

} // namespace

Task
fuzzProgram(ThreadContext &ctx, FuzzWorkloadParams p)
{
    const unsigned n = ctx.numThreads();
    const CoreId self = ctx.self();
    // Skeleton draws are identical on every thread (same seed, same
    // order); collective decisions (segment kind, barrier placement)
    // may only come from here. Per-access choices come from tl.
    Rng skel(p.seed ^ 0x5eed'f02d'0bad'cafeULL);
    Rng tl(p.seed * 0x0100'0193ULL + 0x9e37'79b9ULL * (self + 1));
    std::uint64_t priv_cursor = 0;
    constexpr Pc pc0 = 0x00fa'0000;

    for (unsigned seg = 0; seg < p.segments; ++seg) {
        const unsigned kind =
            static_cast<unsigned>(skel.below(kNumKinds));
        const unsigned hot_count =
            1 + static_cast<unsigned>(skel.below(6));
        std::uint64_t hot[6];
        for (unsigned i = 0; i < hot_count; ++i)
            hot[i] = skel.below(p.lines);
        const CoreId owner = static_cast<CoreId>(skel.below(n));
        const unsigned lock_id =
            static_cast<unsigned>(skel.below(p.locks));
        const unsigned barrier_id =
            static_cast<unsigned>(skel.below(p.barriers));
        const bool seg_barrier = skel.chance(0.35);
        const Pc pc = pc0 + seg * 0x40;
        const unsigned ops = p.opsPerSegment;

        switch (kind) {
          case kScattered:
            for (unsigned i = 0; i < ops; ++i) {
                const Addr a = ctx.shared(hot[tl.below(hot_count)]);
                if (tl.chance(p.writeFrac))
                    co_await ctx.write(a, pc + 1);
                else
                    co_await ctx.read(a, pc + 2);
                if (tl.chance(0.2))
                    co_await ctx.compute(tl.below(40));
            }
            break;

          case kCritical:
            for (unsigned i = 0; i < 1 + ops / 8; ++i) {
                co_await ctx.lock(lock_id);
                // Migratory region: consecutive holders touch the
                // same lines, communicating with the previous holder.
                for (unsigned j = 0; j < 4; ++j) {
                    const Addr a =
                        ctx.shared((lock_id * 8 + j) % p.lines);
                    if (tl.chance(0.6))
                        co_await ctx.write(a, pc + 3);
                    else
                        co_await ctx.read(a, pc + 4);
                }
                co_await ctx.unlock(lock_id);
                co_await ctx.compute(tl.below(200));
            }
            break;

          case kFalseShare:
            for (unsigned i = 0; i < ops; ++i) {
                const Addr a = ctx.shared(hot[0]);
                if (tl.chance(0.5))
                    co_await ctx.write(a, pc + 5);
                else
                    co_await ctx.read(a, pc + 6);
            }
            break;

          case kRingHandoff: {
            // Every thread posts its own semaphore before waiting on
            // its predecessor's, so the ring cannot deadlock.
            constexpr unsigned blk = 4;
            for (unsigned j = 0; j < blk; ++j)
                co_await ctx.write(
                    ctx.shared(p.lines + self * blk + j), pc + 7);
            co_await ctx.semPost(self, pc + 8);
            const CoreId pred = (self + n - 1) % n;
            co_await ctx.semWait(pred, pc + 9);
            for (unsigned j = 0; j < blk; ++j)
                co_await ctx.read(
                    ctx.shared(p.lines + pred * blk + j), pc + 10);
            break;
          }

          case kProduceConsume:
            if (self == owner) {
                for (unsigned j = 0; j < 8; ++j)
                    co_await ctx.write(
                        ctx.shared(hot[j % hot_count]), pc + 11);
            }
            co_await ctx.barrier(barrier_id, pc + 12);
            if (self != owner) {
                for (unsigned j = 0; j < 8; ++j)
                    co_await ctx.read(
                        ctx.shared(hot[tl.below(hot_count)]),
                        pc + 13);
            }
            break;

          case kPrivate:
            for (unsigned i = 0; i < ops; ++i) {
                const Addr a = ctx.priv(priv_cursor++ % 128);
                if (tl.chance(p.writeFrac))
                    co_await ctx.write(a, pc + 14);
                else
                    co_await ctx.read(a, pc + 15);
            }
            break;

          case kReadMostly:
            for (unsigned i = 0; i < ops; ++i) {
                const Addr a = ctx.shared(hot[tl.below(hot_count)]);
                if (self == owner && tl.chance(0.3))
                    co_await ctx.write(a, pc + 16);
                else
                    co_await ctx.read(a, pc + 17);
            }
            break;
        }

        if (seg_barrier)
            co_await ctx.barrier(barrier_id, pc + 18);
    }

    co_await ctx.barrier(0, pc0 + 0x3fff);
}

} // namespace wl
} // namespace spp
