#include "workload/patterns.hh"

namespace spp {
namespace wl {

Task
readFrom(ThreadContext &ctx, CoreId owner, std::uint64_t start,
         unsigned n, Pc pc)
{
    for (unsigned i = 0; i < n; ++i) {
        co_await ctx.read(partAddr(ctx, owner, start + i), pc);
        co_await ctx.compute(6);
    }
}

Task
writeOwn(ThreadContext &ctx, std::uint64_t start, unsigned n, Pc pc)
{
    for (unsigned i = 0; i < n; ++i) {
        co_await ctx.write(partAddr(ctx, ctx.self(), start + i), pc);
        co_await ctx.compute(6);
    }
}

Task
streamPrivate(ThreadContext &ctx, std::uint64_t &cursor, unsigned n,
              double write_frac, Pc pc)
{
    for (unsigned i = 0; i < n; ++i) {
        const Addr a = ctx.priv(cursor++);
        if (ctx.rng().chance(write_frac))
            co_await ctx.write(a, pc);
        else
            co_await ctx.read(a, pc);
        co_await ctx.compute(4);
    }
}

Task
touchRandomShared(ThreadContext &ctx, unsigned n, double write_frac,
                  Pc pc)
{
    const std::uint64_t total =
        static_cast<std::uint64_t>(ctx.numThreads()) * kPartLines;
    for (unsigned i = 0; i < n; ++i) {
        const Addr a = ctx.shared(ctx.rng().below(total));
        if (ctx.rng().chance(write_frac))
            co_await ctx.write(a, pc);
        else
            co_await ctx.read(a, pc);
        co_await ctx.compute(8);
    }
}

Task
touchLockRegion(ThreadContext &ctx, unsigned lock_id, unsigned n,
                double write_frac, Pc pc)
{
    // Lock-protected regions live past the per-thread partitions.
    const std::uint64_t base =
        static_cast<std::uint64_t>(ctx.numThreads()) * kPartLines +
        static_cast<std::uint64_t>(lock_id) * 64;
    for (unsigned i = 0; i < n; ++i) {
        const Addr a = ctx.shared(base + i % 64);
        if (ctx.rng().chance(write_frac))
            co_await ctx.write(a, pc);
        else
            co_await ctx.read(a, pc);
        co_await ctx.compute(6);
    }
}

Task
touchSkewedShared(ThreadContext &ctx, CoreId hot_owner, double focus,
                  unsigned n, double write_frac, Pc pc)
{
    const std::uint64_t total =
        static_cast<std::uint64_t>(ctx.numThreads()) * kPartLines;
    for (unsigned i = 0; i < n; ++i) {
        Addr a;
        if (ctx.rng().chance(focus)) {
            a = partAddr(ctx, hot_owner, ctx.rng().below(256));
        } else {
            a = ctx.shared(ctx.rng().below(total));
        }
        if (ctx.rng().chance(write_frac))
            co_await ctx.write(a, pc);
        else
            co_await ctx.read(a, pc);
        co_await ctx.compute(8);
    }
}

Task
readRandomFrom(ThreadContext &ctx, CoreId owner, unsigned n, Pc pc)
{
    for (unsigned i = 0; i < n; ++i) {
        const std::uint64_t line = ctx.rng().below(kPartLines);
        co_await ctx.read(partAddr(ctx, owner, line), pc);
        co_await ctx.compute(6);
    }
}

} // namespace wl
} // namespace spp
