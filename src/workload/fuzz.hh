/**
 * @file
 * Seeded random workload generator for the protocol fuzz harness.
 *
 * One seed fully determines the program every thread runs: a shared
 * "skeleton" RNG (seeded identically on all threads) draws the global
 * structure — segment kinds, hot-line sets, lock/barrier choices — so
 * collective operations line up across threads, while a per-thread
 * RNG varies the individual accesses. The segment kinds deliberately
 * cover the protocol's hard cases: contended critical sections,
 * false sharing, migratory data, producer-consumer handoffs, pure
 * private streaming and read-mostly sharing, all against deliberately
 * tiny caches so evictions and writebacks race with misses.
 */

#ifndef SPP_WORKLOAD_FUZZ_HH
#define SPP_WORKLOAD_FUZZ_HH

#include <cstdint>

#include "sim/task.hh"
#include "sim/thread_context.hh"

namespace spp {
namespace wl {

/** Shape of one fuzzed program; every field is shrinkable. */
struct FuzzWorkloadParams
{
    std::uint64_t seed = 1;
    unsigned segments = 12;      ///< Program phases per thread.
    unsigned opsPerSegment = 24; ///< Memory ops per thread per phase.
    unsigned lines = 36;         ///< Hot shared lines in play.
    unsigned locks = 4;          ///< Distinct lock ids used.
    unsigned barriers = 3;       ///< Distinct barrier ids used.
    double writeFrac = 0.4;      ///< Store fraction of random traffic.
};

/**
 * The per-thread fuzz program. @p p is taken by value: the coroutine
 * frame must not reference caller storage that may die first.
 */
Task fuzzProgram(ThreadContext &ctx, FuzzWorkloadParams p);

} // namespace wl
} // namespace spp

#endif // SPP_WORKLOAD_FUZZ_HH
