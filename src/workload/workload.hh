/**
 * @file
 * Workload registry: 17 synthetic multithreaded programs reproducing
 * the sharing structure of the paper's SPLASH-2 and PARSEC
 * benchmarks (Table 1).
 *
 * Each workload is a coroutine program written against ThreadContext;
 * all 16 threads run the same function and differentiate by
 * ctx.self(). The generators are *behavioural* models: they reproduce
 * the benchmark's communication pattern classes (stable / stride /
 * random hot sets, lock-based migratory sharing, pipelines,
 * wavefronts), epoch-count regimes and communicating-miss ratios, not
 * its arithmetic (see DESIGN.md, substitutions).
 */

#ifndef SPP_WORKLOAD_WORKLOAD_HH
#define SPP_WORKLOAD_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/task.hh"
#include "sim/thread_context.hh"

namespace spp {

/** Run-time knobs of a workload run. */
struct WorkloadParams
{
    /** Scales iteration counts; 1.0 is the benchmark-default size. */
    double scale = 1.0;

    /** Scaled iteration count helper (at least 1). */
    unsigned
    iters(unsigned base) const
    {
        const auto n = static_cast<unsigned>(base * scale);
        return n > 0 ? n : 1;
    }
};

/** A registered workload with its Table 1 reference metadata. */
struct WorkloadSpec
{
    std::string name;
    std::string suite;          ///< "splash2" or "parsec".
    std::string input;          ///< Paper's program input (Table 1).
    unsigned paperStaticCS;     ///< Paper: # static critical sections.
    unsigned paperStaticEpochs; ///< Paper: # static sync-epochs.
    unsigned paperDynEpochs;    ///< Paper: total dyn. epochs per core.
    // lint: allow(std-function) — setup-time binding, not per-event.
    std::function<Task(ThreadContext &, const WorkloadParams &)> run;
};

/** All 17 workloads in the paper's order. */
const std::vector<WorkloadSpec> &workloadRegistry();

/** Find by name; nullptr if unknown. */
const WorkloadSpec *findWorkload(const std::string &name);

} // namespace spp

#endif // SPP_WORKLOAD_WORKLOAD_HH
