/**
 * @file
 * Reusable access-pattern subroutines for workload generators.
 *
 * The shared region is partitioned by thread: partition t holds
 * kPartLines cache lines that thread t owns (first-touches and
 * rewrites); other threads reading partition t communicate with t.
 * Private regions model thread-local data whose misses go to memory
 * (non-communicating).
 */

#ifndef SPP_WORKLOAD_PATTERNS_HH
#define SPP_WORKLOAD_PATTERNS_HH

#include "sim/task.hh"
#include "sim/thread_context.hh"

namespace spp {
namespace wl {

/** Lines per thread partition of the shared region. */
inline constexpr std::uint64_t kPartLines = 2048;

/** Shared-region line index of partition @p t, line @p i. */
inline std::uint64_t
partLine(CoreId t, std::uint64_t i)
{
    return static_cast<std::uint64_t>(t) * kPartLines +
        (i % kPartLines);
}

/** Address of line @p i of thread @p t's shared partition. */
inline Addr
partAddr(ThreadContext &ctx, CoreId t, std::uint64_t i)
{
    return ctx.shared(partLine(t, i));
}

/**
 * Read @p n consecutive lines of @p owner's partition starting at
 * @p start; models consuming data @p owner produced.
 */
Task readFrom(ThreadContext &ctx, CoreId owner, std::uint64_t start,
              unsigned n, Pc pc);

/**
 * Write @p n consecutive lines of the caller's own partition starting
 * at @p start; models producing data (invalidates remote readers).
 */
Task writeOwn(ThreadContext &ctx, std::uint64_t start, unsigned n,
              Pc pc);

/**
 * Stream @p n lines of private data (cursor advances; cold misses go
 * to memory). @p write_frac of the accesses are stores.
 */
Task streamPrivate(ThreadContext &ctx, std::uint64_t &cursor,
                   unsigned n, double write_frac, Pc pc);

/**
 * Touch @p n random lines across all partitions; @p write_frac
 * stores. Models migratory / widely shared data with random targets.
 */
Task touchRandomShared(ThreadContext &ctx, unsigned n,
                       double write_frac, Pc pc);

/**
 * Read @p n random lines from one specific @p owner partition.
 */
Task readRandomFrom(ThreadContext &ctx, CoreId owner, unsigned n,
                    Pc pc);

/**
 * Touch @p n lines of the data region protected by lock @p lock_id
 * (call while holding that lock). Migratory sharing: consecutive
 * holders touch the same lines, so misses communicate with the
 * previous holder — exactly the pattern lock-signature prediction
 * captures.
 */
Task touchLockRegion(ThreadContext &ctx, unsigned lock_id, unsigned n,
                     double write_frac, Pc pc);

/**
 * Touch @p n lines drawn from a skewed distribution: with probability
 * @p focus from the partition of @p hot_owner, else uniformly from
 * the whole shared region. Models irregular applications whose
 * "random" accesses still exhibit transient owner affinity.
 */
Task touchSkewedShared(ThreadContext &ctx, CoreId hot_owner,
                       double focus, unsigned n, double write_frac,
                       Pc pc);

} // namespace wl
} // namespace spp

#endif // SPP_WORKLOAD_PATTERNS_HH
