/**
 * @file
 * Synchronization point taxonomy (Section 3.1).
 *
 * A sync-point is the execution point at which a synchronization
 * routine is invoked. It has a type, a static ID (call site PC, or
 * the lock address for lock/unlock) and a dynamic ID (how many times
 * this static sync-point has executed on this core). A sync-epoch is
 * the interval between two consecutive sync-points and is named by
 * its *beginning* sync-point.
 */

#ifndef SPP_SYNC_SYNC_TYPES_HH
#define SPP_SYNC_SYNC_TYPES_HH

#include <cstdint>

#include "common/types.hh"

namespace spp {

enum class SyncType : std::uint8_t
{
    threadStart,    ///< Implicit first sync-point of each thread.
    barrier,
    lock,           ///< Lock acquired: a critical section begins.
    unlock,         ///< Lock released: the critical section ends.
    join,
    wakeup,         ///< Condition signal (one waiter).
    broadcastWake,  ///< Condition broadcast (all waiters).
};

const char *toString(SyncType t);

/** Everything a listener learns when a sync-point fires. */
struct SyncPointInfo
{
    SyncType type = SyncType::threadStart;
    /** Call-site PC, or lock address for lock/unlock types. */
    std::uint64_t staticId = 0;
    /** Occurrence count of this static sync-point on this core. */
    std::uint64_t dynamicId = 0;
    /** lock type: the core that released the lock last (or invalid). */
    CoreId prevHolder = invalidCore;
};

/** True if an epoch beginning at this sync-point is a critical
 * section. */
constexpr bool
beginsCriticalSection(SyncType t)
{
    return t == SyncType::lock;
}

/** Observer of sync-points (SP-predictor, trace collectors, ...). */
class SyncListener
{
  public:
    virtual ~SyncListener() = default;
    virtual void onSyncPoint(CoreId core, const SyncPointInfo &info) = 0;
};

} // namespace spp

#endif // SPP_SYNC_SYNC_TYPES_HH
