/**
 * @file
 * Simulator-level synchronization runtime.
 *
 * Implements barriers, locks, condition variables and join over the
 * event queue, fires sync-point notifications to registered
 * listeners (the paper's "expose synchronization primitives to the
 * hardware"), and assigns each synchronization object a shared-memory
 * address so callers can model the coherence traffic the primitive
 * itself generates.
 */

#ifndef SPP_SYNC_SYNC_MANAGER_HH
#define SPP_SYNC_SYNC_MANAGER_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "event/event_queue.hh"
#include "sync/sync_types.hh"

namespace spp {

/** Sync statistics of one run. */
struct SyncStats
{
    Counter syncPoints;
    Counter barriersReleased;
    Counter lockAcquisitions;
    Counter lockContended;      ///< Acquisitions that had to wait.
    Counter wakeups;
};

/**
 * Barrier / lock / condvar runtime with sync-point notification.
 */
class SyncManager
{
  public:
    // lint: allow(std-function) — blocked-thread wakeup capsule, not per-event.
    using Action = std::function<void()>;

    SyncManager(const Config &cfg, EventQueue &eq, Addr sync_base);

    /** Register a sync-point observer. */
    void addListener(SyncListener *l) { listeners_.push_back(l); }

    // --- Addresses of synchronization variables ---
    Addr barrierAddr(unsigned id) const;
    Addr barrierGenAddr(unsigned id) const;
    Addr lockAddr(unsigned id) const;
    Addr condAddr(unsigned id) const;

    /**
     * Arrive at barrier @p id with @p participants total threads.
     * The last arriver releases everyone; each released thread gets a
     * sync-point notification (type barrier, staticId @p static_id)
     * before @p on_release runs.
     */
    void barrierArrive(CoreId core, unsigned id, unsigned participants,
                       std::uint64_t static_id, Action on_release);

    /**
     * Acquire lock @p id. When granted, a sync-point (type lock,
     * staticId = lockAddr(id), prevHolder = last releaser) fires and
     * @p on_granted runs.
     */
    void lockAcquire(CoreId core, unsigned id, Action on_granted);

    /**
     * Release lock @p id; fires the unlock sync-point and hands the
     * lock to the next waiter (if any).
     */
    void lockRelease(CoreId core, unsigned id);

    /** Block until condition @p id is signalled. */
    void condWait(CoreId core, unsigned id, std::uint64_t static_id,
                  Action on_wake);

    /** Wake one waiter of condition @p id (no-op if none). */
    void condSignal(CoreId core, unsigned id, std::uint64_t static_id);

    /** Wake all waiters of condition @p id. */
    void condBroadcast(CoreId core, unsigned id,
                       std::uint64_t static_id);

    /**
     * Counting semaphore post (condvar + predicate idiom): wakes one
     * waiter or banks a token, so wakeups are never lost.
     */
    void semPost(CoreId core, unsigned id, std::uint64_t static_id);

    /** Semaphore wait: immediate if a token is banked. */
    void semWait(CoreId core, unsigned id, std::uint64_t static_id,
                 Action on_wake);

    /** Mark @p core's thread as finished. */
    void threadDone(CoreId core);

    /** Wait until all threads except @p core are done (join). */
    void joinAll(CoreId core, std::uint64_t static_id,
                 Action on_all_done);

    /** Core that released lock @p id last (invalidCore if never). */
    CoreId lastReleaser(unsigned id) const;

    /** Fire a sync-point notification to all listeners. */
    void notify(CoreId core, SyncType type, std::uint64_t static_id,
                CoreId prev_holder = invalidCore);

    const SyncStats &stats() const { return stats_; }

    /** Threads that called threadDone so far. */
    unsigned doneCount() const { return done_count_; }

  private:
    struct Barrier
    {
        unsigned arrived = 0;
        std::vector<std::pair<CoreId, Action>> waiters;
        std::uint64_t staticId = 0;
    };

    struct Lock
    {
        bool held = false;
        CoreId holder = invalidCore;
        CoreId lastReleaser = invalidCore;
        std::deque<std::pair<CoreId, Action>> waiters;
    };

    struct Cond
    {
        std::deque<std::pair<CoreId, std::pair<std::uint64_t, Action>>>
            waiters;
    };

    struct Sem
    {
        unsigned tokens = 0;
        std::deque<std::pair<CoreId, std::pair<std::uint64_t, Action>>>
            waiters;
    };

    void grantLock(CoreId core, unsigned id, Action on_granted);

    const Config &cfg_;
    EventQueue &eq_;
    Addr sync_base_;
    std::vector<SyncListener *> listeners_;
    std::unordered_map<unsigned, Barrier> barriers_;
    std::unordered_map<unsigned, Lock> locks_;
    std::unordered_map<unsigned, Cond> conds_;
    std::unordered_map<unsigned, Sem> sems_;
    /** Per-core occurrence counters of static sync-point IDs. */
    std::vector<std::unordered_map<std::uint64_t, std::uint64_t>>
        dyn_counts_;
    unsigned done_count_ = 0;
    std::vector<std::pair<CoreId, std::pair<std::uint64_t, Action>>>
        joiners_;
    SyncStats stats_;
};

} // namespace spp

#endif // SPP_SYNC_SYNC_MANAGER_HH
