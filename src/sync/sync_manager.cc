#include "sync/sync_manager.hh"

#include "common/logging.hh"

namespace spp {

const char *
toString(SyncType t)
{
    switch (t) {
      case SyncType::threadStart:   return "start";
      case SyncType::barrier:       return "barrier";
      case SyncType::lock:          return "lock";
      case SyncType::unlock:        return "unlock";
      case SyncType::join:          return "join";
      case SyncType::wakeup:        return "wakeup";
      case SyncType::broadcastWake: return "broadcast";
    }
    return "?";
}

SyncManager::SyncManager(const Config &cfg, EventQueue &eq,
                         Addr sync_base)
    : cfg_(cfg), eq_(eq), sync_base_(sync_base)
{
    dyn_counts_.resize(cfg.numCores);
}

// Synchronization variables live in distinct cache lines within a
// dedicated region: [barriers | barrier generations | locks | conds].
// The region is sized generously; ids are small integers.
static constexpr unsigned regionSlots = 4096;

Addr
SyncManager::barrierAddr(unsigned id) const
{
    return sync_base_ + static_cast<Addr>(id) * cfg_.lineBytes;
}

Addr
SyncManager::barrierGenAddr(unsigned id) const
{
    return sync_base_ +
        (regionSlots + static_cast<Addr>(id)) * cfg_.lineBytes;
}

Addr
SyncManager::lockAddr(unsigned id) const
{
    return sync_base_ +
        (2ul * regionSlots + static_cast<Addr>(id)) * cfg_.lineBytes;
}

Addr
SyncManager::condAddr(unsigned id) const
{
    return sync_base_ +
        (3ul * regionSlots + static_cast<Addr>(id)) * cfg_.lineBytes;
}

void
SyncManager::notify(CoreId core, SyncType type, std::uint64_t static_id,
                    CoreId prev_holder)
{
    ++stats_.syncPoints;
    SyncPointInfo info;
    info.type = type;
    info.staticId = static_id;
    info.dynamicId = dyn_counts_[core][static_id]++;
    info.prevHolder = prev_holder;
    for (SyncListener *l : listeners_)
        l->onSyncPoint(core, info);
}

void
SyncManager::barrierArrive(CoreId core, unsigned id,
                           unsigned participants,
                           std::uint64_t static_id, Action on_release)
{
    SPP_ASSERT(participants > 0, "barrier with no participants");
    Barrier &b = barriers_[id];
    b.staticId = static_id;
    ++b.arrived;
    b.waiters.emplace_back(core, std::move(on_release));
    if (b.arrived < participants)
        return;

    // Last arriver: release everyone.
    ++stats_.barriersReleased;
    std::vector<std::pair<CoreId, Action>> waiters =
        std::move(b.waiters);
    const std::uint64_t sid = b.staticId;
    barriers_.erase(id);
    for (auto &[c, action] : waiters) {
        notify(c, SyncType::barrier, sid);
        eq_.scheduleAfter(0, std::move(action));
    }
}

void
SyncManager::grantLock(CoreId core, unsigned id, Action on_granted)
{
    Lock &l = locks_[id];
    l.held = true;
    l.holder = core;
    ++stats_.lockAcquisitions;
    notify(core, SyncType::lock, lockAddr(id), l.lastReleaser);
    eq_.scheduleAfter(0, std::move(on_granted));
}

void
SyncManager::lockAcquire(CoreId core, unsigned id, Action on_granted)
{
    Lock &l = locks_[id];
    if (!l.held) {
        grantLock(core, id, std::move(on_granted));
        return;
    }
    ++stats_.lockContended;
    l.waiters.emplace_back(core, std::move(on_granted));
}

void
SyncManager::lockRelease(CoreId core, unsigned id)
{
    Lock &l = locks_[id];
    SPP_ASSERT(l.held && l.holder == core,
               "core {} released lock {} it does not hold", core, id);
    l.held = false;
    l.holder = invalidCore;
    l.lastReleaser = core;
    notify(core, SyncType::unlock, lockAddr(id));
    if (!l.waiters.empty()) {
        auto [next, action] = std::move(l.waiters.front());
        l.waiters.pop_front();
        grantLock(next, id, std::move(action));
    }
}

void
SyncManager::condWait(CoreId core, unsigned id, std::uint64_t static_id,
                      Action on_wake)
{
    conds_[id].waiters.emplace_back(
        core, std::make_pair(static_id, std::move(on_wake)));
}

void
SyncManager::condSignal(CoreId core, unsigned id,
                        std::uint64_t static_id)
{
    notify(core, SyncType::wakeup, static_id);
    Cond &cv = conds_[id];
    if (cv.waiters.empty())
        return;
    ++stats_.wakeups;
    auto [waiter, sid_action] = std::move(cv.waiters.front());
    cv.waiters.pop_front();
    notify(waiter, SyncType::wakeup, sid_action.first);
    eq_.scheduleAfter(0, std::move(sid_action.second));
}

void
SyncManager::condBroadcast(CoreId core, unsigned id,
                           std::uint64_t static_id)
{
    notify(core, SyncType::broadcastWake, static_id);
    Cond &cv = conds_[id];
    auto waiters = std::move(cv.waiters);
    cv.waiters.clear();
    for (auto &[waiter, sid_action] : waiters) {
        ++stats_.wakeups;
        notify(waiter, SyncType::broadcastWake, sid_action.first);
        eq_.scheduleAfter(0, std::move(sid_action.second));
    }
}

void
SyncManager::semPost(CoreId core, unsigned id, std::uint64_t static_id)
{
    notify(core, SyncType::wakeup, static_id);
    Sem &s = sems_[id];
    if (s.waiters.empty()) {
        ++s.tokens;
        return;
    }
    ++stats_.wakeups;
    auto [waiter, sid_action] = std::move(s.waiters.front());
    s.waiters.pop_front();
    notify(waiter, SyncType::wakeup, sid_action.first);
    eq_.scheduleAfter(0, std::move(sid_action.second));
}

void
SyncManager::semWait(CoreId core, unsigned id, std::uint64_t static_id,
                     Action on_wake)
{
    Sem &s = sems_[id];
    if (s.tokens > 0) {
        --s.tokens;
        notify(core, SyncType::wakeup, static_id);
        eq_.scheduleAfter(0, std::move(on_wake));
        return;
    }
    s.waiters.emplace_back(
        core, std::make_pair(static_id, std::move(on_wake)));
}

void
SyncManager::threadDone(CoreId core)
{
    (void)core;
    ++done_count_;
    // Joiners proceed once every *other* thread has finished.
    if (done_count_ + 1 < cfg_.numCores)
        return;
    auto joiners = std::move(joiners_);
    joiners_.clear();
    for (auto &[c, sid_action] : joiners) {
        notify(c, SyncType::join, sid_action.first);
        eq_.scheduleAfter(0, std::move(sid_action.second));
    }
}

void
SyncManager::joinAll(CoreId core, std::uint64_t static_id,
                     Action on_all_done)
{
    // "All threads" means all *other* threads; the caller still runs.
    if (done_count_ >= cfg_.numCores - 1) {
        notify(core, SyncType::join, static_id);
        eq_.scheduleAfter(0, std::move(on_all_done));
        return;
    }
    joiners_.emplace_back(
        core, std::make_pair(static_id, std::move(on_all_done)));
}

CoreId
SyncManager::lastReleaser(unsigned id) const
{
    auto it = locks_.find(id);
    return it == locks_.end() ? invalidCore : it->second.lastReleaser;
}

} // namespace spp
