/**
 * @file
 * Telemetry subsystem tests: JSON model round-trips, sampler cadence
 * on exact tick boundaries, disabled-mode inertness, Chrome-trace
 * well-formedness, manifest round-trips, and reconciliation of the
 * sampled series against end-of-run aggregates.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/experiment.hh"
#include "analysis/sweep.hh"
#include "common/logging.hh"
#include "event/event_queue.hh"
#include "telemetry/chrome_trace.hh"
#include "telemetry/json.hh"
#include "telemetry/manifest.hh"
#include "telemetry/metrics.hh"
#include "telemetry/options.hh"
#include "telemetry/sampler.hh"
#include "telemetry/telemetry.hh"

using namespace spp;

namespace fs = std::filesystem;

namespace {

struct QuietScope
{
    QuietScope() { setQuiet(true); }
    ~QuietScope() { setQuiet(false); }
};

/** Fresh, empty scratch directory under the system temp dir. */
std::string
scratchDir(const std::string &name)
{
    const fs::path dir = fs::temp_directory_path() /
        ("spp_test_telemetry_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/** Parse the sampler CSV into (header, rows of doubles). */
struct Csv
{
    std::vector<std::string> header;
    std::vector<std::vector<double>> rows;
};

Csv
parseCsv(const std::string &text)
{
    Csv csv;
    std::istringstream is(text);
    std::string line;
    bool first = true;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string cell;
        if (first) {
            while (std::getline(ls, cell, ','))
                csv.header.push_back(cell);
            first = false;
        } else {
            std::vector<double> row;
            while (std::getline(ls, cell, ','))
                row.push_back(std::atof(cell.c_str()));
            csv.rows.push_back(std::move(row));
        }
    }
    return csv;
}

std::size_t
column(const Csv &csv, const std::string &name)
{
    for (std::size_t i = 0; i < csv.header.size(); ++i)
        if (csv.header[i] == name)
            return i;
    ADD_FAILURE() << "no CSV column '" << name << "'";
    return 0;
}

ExperimentConfig
telemetryConfig(const std::string &dir, Tick period = 200)
{
    ExperimentConfig cfg;
    cfg.config.protocol = Protocol::predicted;
    cfg.config.predictor = PredictorKind::sp;
    cfg.scale = 0.3;
    cfg.telemetry.dir = dir;
    cfg.telemetry.samplePeriod = period;
    cfg.telemetry.emitSeriesJson = true;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------

TEST(Json, WritesIntegralNumbersWithoutFraction)
{
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(0).dump(), "0");
    EXPECT_EQ(Json(-7).dump(), "-7");
    EXPECT_EQ(Json(1.5).dump(), "1.5");
    EXPECT_EQ(Json(std::uint64_t{1} << 40).dump(), "1099511627776");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json j = Json::object();
    j["zebra"] = Json(1);
    j["alpha"] = Json(2);
    j["mid"] = Json("x");
    EXPECT_EQ(j.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":\"x\"}");
}

TEST(Json, EscapesStrings)
{
    Json j = Json("tab\there \"quoted\"\nnewline \x01");
    const std::string text = j.dump();
    EXPECT_EQ(text,
              "\"tab\\there \\\"quoted\\\"\\nnewline \\u0001\"");
    const auto back = Json::parse(text);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->asString(), j.asString());
}

TEST(Json, RoundTripsNestedDocument)
{
    Json doc = Json::object();
    doc["list"] = Json::array();
    doc["list"].push(Json(1));
    doc["list"].push(Json("two"));
    doc["list"].push(Json(true));
    doc["list"].push(Json(nullptr));
    doc["nested"] = Json::object();
    doc["nested"]["pi"] = Json(3.25);

    for (int indent : {-1, 0}) {
        const auto back = Json::parse(doc.dump(indent));
        ASSERT_TRUE(back.has_value()) << "indent " << indent;
        EXPECT_EQ(back->dump(), doc.dump());
    }
}

TEST(Json, ParserRejectsMalformedInput)
{
    EXPECT_FALSE(Json::parse("").has_value());
    EXPECT_FALSE(Json::parse("{").has_value());
    EXPECT_FALSE(Json::parse("[1,]").has_value());
    EXPECT_FALSE(Json::parse("{\"a\": 1} trailing").has_value());
    EXPECT_FALSE(Json::parse("\"unterminated").has_value());
    EXPECT_FALSE(Json::parse("nul").has_value());
    EXPECT_TRUE(Json::parse("  {\"a\": [1, 2]}  ").has_value());
}

// ---------------------------------------------------------------------
// Sampler cadence
// ---------------------------------------------------------------------

TEST(Sampler, SamplesOnExactBoundaries)
{
    Counter count;
    MetricRegistry reg;
    reg.addCounter("count", count);

    EventQueue eq;
    Sampler s(std::move(reg), 10);
    s.attach(eq);
    ASSERT_TRUE(eq.hasTickObserver());

    eq.schedule(5, [&] { count += 1; });
    // An event exactly on a boundary: the sample fires first, so the
    // row at tick 10 must not include this increment.
    eq.schedule(10, [&] { count += 1; });
    eq.schedule(15, [] {}); // End the run off-boundary.
    eq.run();
    s.finalize();

    const auto &rows = s.rows();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].tick, 0u);
    EXPECT_EQ(rows[0].values[0], 0.0);
    EXPECT_EQ(rows[1].tick, 10u);
    EXPECT_EQ(rows[1].values[0], 1.0);
    EXPECT_EQ(rows[2].tick, 15u);
    EXPECT_EQ(rows[2].values[0], 2.0);
    EXPECT_FALSE(eq.hasTickObserver());
}

TEST(Sampler, CatchesUpAcrossSkippedBoundaries)
{
    Counter count;
    MetricRegistry reg;
    reg.addCounter("count", count);

    EventQueue eq;
    Sampler s(std::move(reg), 10);
    s.attach(eq);

    eq.schedule(5, [&] { count += 1; });
    // One event jumps over the 10, 20 and 30 boundaries: one row per
    // boundary, all showing the same quiescent state.
    eq.schedule(35, [&] { count += 1; });
    eq.run();
    s.finalize();

    const auto &rows = s.rows();
    ASSERT_EQ(rows.size(), 5u);
    const Tick ticks[] = {0, 10, 20, 30, 35};
    const double vals[] = {0, 1, 1, 1, 2};
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(rows[i].tick, ticks[i]) << "row " << i;
        EXPECT_EQ(rows[i].values[0], vals[i]) << "row " << i;
    }
}

TEST(Sampler, FinalPartialIntervalIsRecordedOnce)
{
    Counter count;
    MetricRegistry reg;
    reg.addCounter("count", count);

    EventQueue eq;
    Sampler s(std::move(reg), 10);
    s.attach(eq);
    eq.schedule(20, [&] { count += 1; });
    eq.run();

    // The run ended exactly on a boundary: finalize() must not leave
    // a duplicate row, and the final row must include the effect of
    // the boundary-tick event (the in-run sample at tick 20 preceded
    // it). finalize() is idempotent.
    s.finalize();
    s.finalize();
    const auto &rows = s.rows();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[1].tick, 10u);
    EXPECT_EQ(rows[1].values[0], 0.0);
    EXPECT_EQ(rows[2].tick, 20u);
    EXPECT_EQ(rows[2].values[0], 1.0);
}

TEST(Sampler, DeltaAndGauges)
{
    Counter count;
    double level = 3.0;
    MetricRegistry reg;
    reg.addCounter("count", count);
    reg.addGauge("level", [&level] { return level; });
    ASSERT_TRUE(reg.cumulative(0));
    ASSERT_FALSE(reg.cumulative(1));

    EventQueue eq;
    Sampler s(std::move(reg), 10);
    s.attach(eq);
    eq.schedule(9, [&] { count += 4; level = 7.0; });
    eq.schedule(19, [&] { count += 2; });
    eq.schedule(21, [&] {});
    eq.run();
    s.finalize();

    // Rows: 0, 10, 20, 21 (final partial).
    ASSERT_EQ(s.rows().size(), 4u);
    EXPECT_EQ(s.delta(1, 0), 4.0);
    EXPECT_EQ(s.delta(2, 0), 2.0);
    EXPECT_EQ(s.delta(3, 0), 0.0);
    EXPECT_EQ(s.rows()[1].values[1], 7.0);

    std::ostringstream os;
    s.writeCsv(os);
    const Csv csv = parseCsv(os.str());
    ASSERT_EQ(csv.header.size(), 3u);
    EXPECT_EQ(csv.header[0], "tick");
    EXPECT_EQ(csv.header[1], "count");
    EXPECT_EQ(csv.header[2], "level");
    ASSERT_EQ(csv.rows.size(), 4u);
    EXPECT_EQ(csv.rows[2][0], 20.0);
    EXPECT_EQ(csv.rows[2][1], 6.0);

    const Json j = s.toJson();
    ASSERT_TRUE(j.find("rows") != nullptr);
    EXPECT_EQ(j.find("rows")->size(), 4u);
    EXPECT_EQ(j.find("period")->asNumber(), 10.0);
}

// ---------------------------------------------------------------------
// Chrome trace writer
// ---------------------------------------------------------------------

TEST(ChromeTrace, EmitsWellFormedDocument)
{
    ChromeTraceWriter w;
    w.setProcessName("test");
    w.setThreadName(0, "core 0");
    Json args = Json::object();
    args["staticId"] = Json(7);
    w.duration("barrier#7", "epoch", 0, 100, 250, std::move(args));
    w.instant("miss", "mem", 0, 120);
    w.counter("mem.misses", 200, 3.0);

    std::ostringstream os;
    w.write(os);
    const auto doc = Json::parse(os.str());
    ASSERT_TRUE(doc.has_value());
    const Json *events = doc->find("traceEvents");
    ASSERT_TRUE(events != nullptr);
    ASSERT_TRUE(events->isArray());
    // 2 metadata records + 3 events.
    EXPECT_EQ(events->size(), 5u);

    bool saw_duration = false;
    for (const Json &e : events->items()) {
        const Json *ph = e.find("ph");
        ASSERT_TRUE(ph != nullptr);
        if (ph->asString() == "X") {
            saw_duration = true;
            EXPECT_EQ(e.find("name")->asString(), "barrier#7");
            EXPECT_EQ(e.find("dur")->asNumber(), 150.0);
            EXPECT_EQ(e.find("ts")->asNumber(), 100.0);
        }
    }
    EXPECT_TRUE(saw_duration);
}

TEST(ChromeTrace, CountsDropsPastTheCap)
{
    ChromeTraceWriter w(2);
    w.setProcessName("test"); // Metadata never drops.
    w.instant("a", "c", 0, 1);
    w.instant("b", "c", 0, 2);
    w.instant("c", "c", 0, 3);
    w.instant("d", "c", 0, 4);
    EXPECT_EQ(w.events(), 2u);
    EXPECT_EQ(w.dropped(), 2u);

    const Json doc = w.toJson();
    const Json *other = doc.find("otherData");
    ASSERT_TRUE(other != nullptr);
    EXPECT_EQ(other->find("droppedEvents")->asNumber(), 2.0);
}

TEST(ChromeTrace, ZeroEventRunIsStillWellFormed)
{
    // A run that terminates before anything is recorded must still
    // produce a document every viewer opens.
    ChromeTraceWriter w;
    std::ostringstream os;
    w.write(os);
    const auto doc = Json::parse(os.str());
    ASSERT_TRUE(doc.has_value());
    const Json *events = doc->find("traceEvents");
    ASSERT_TRUE(events != nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_EQ(events->size(), 0u);
    EXPECT_EQ(w.events(), 0u);
    EXPECT_EQ(w.dropped(), 0u);
}

TEST(ChromeTrace, CounterOnlyRunRoundTrips)
{
    // Counter tracks alone (no duration/instant events) — the shape
    // the attribution epoch-annotator produces on runs whose event
    // tracks are disabled.
    ChromeTraceWriter w;
    w.counter("attr.barrier#0x40.wasted_bytes", 100, 128.0);
    w.counter("attr.barrier#0x40.wasted_bytes", 200, 0.0);
    w.counter("attr.barrier#0x40.noc_bytes", 200, 4096.0);

    std::ostringstream os;
    w.write(os);
    const auto doc = Json::parse(os.str());
    ASSERT_TRUE(doc.has_value());
    const Json *events = doc->find("traceEvents");
    ASSERT_TRUE(events != nullptr);
    ASSERT_EQ(events->size(), 3u);
    for (const Json &e : events->items()) {
        EXPECT_EQ(e.find("ph")->asString(), "C");
        const Json *args = e.find("args");
        ASSERT_TRUE(args != nullptr);
        ASSERT_TRUE(args->find("value") != nullptr);
    }
    // Zero-valued samples survive the round-trip (they terminate a
    // spike in the viewer; dropping them would hold the last value).
    bool saw_zero = false;
    for (const Json &e : events->items())
        saw_zero |= e.find("args")->find("value")->asNumber() == 0.0;
    EXPECT_TRUE(saw_zero);
}

TEST(ChromeTrace, ZeroWidthDurationRoundTrips)
{
    // An epoch opened and closed on the same tick (back-to-back sync
    // points) must emit dur = 0, not vanish and not go negative.
    ChromeTraceWriter w;
    w.duration("lock#0x9", "epoch", 3, 500, 500);
    w.duration("lock#0x9", "epoch", 3, 500, 501);

    std::ostringstream os;
    w.write(os);
    const auto doc = Json::parse(os.str());
    ASSERT_TRUE(doc.has_value());
    const Json *events = doc->find("traceEvents");
    ASSERT_TRUE(events != nullptr);
    ASSERT_EQ(events->size(), 2u);
    const Json &zero = events->items()[0];
    EXPECT_EQ(zero.find("ph")->asString(), "X");
    EXPECT_EQ(zero.find("ts")->asNumber(), 500.0);
    EXPECT_EQ(zero.find("dur")->asNumber(), 0.0);
    EXPECT_EQ(events->items()[1].find("dur")->asNumber(), 1.0);
}

// ---------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------

TEST(Manifest, RoundTripsThroughDisk)
{
    const std::string dir = scratchDir("manifest");
    RunManifest m;
    m.set("label", Json("unit"));
    m.beginPhase("alpha");
    m.beginPhase("beta");
    m.endPhase();

    const std::string path = dir + "/m.json";
    m.write(path);
    const auto back = RunManifest::read(path);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->find("schema")->asString(),
              "spp-run-manifest-v1");
    EXPECT_EQ(back->find("label")->asString(), "unit");
    EXPECT_EQ(back->find("git_describe")->asString(), gitDescribe());
    const Json *phases = back->find("phases");
    ASSERT_TRUE(phases != nullptr);
    ASSERT_EQ(phases->size(), 2u);
    EXPECT_EQ(phases->members()[0].first, "alpha");
    EXPECT_EQ(phases->members()[1].first, "beta");
    EXPECT_GE(phases->members()[0].second.asNumber(), 0.0);

    EXPECT_FALSE(RunManifest::read(dir + "/absent.json").has_value());
}

// ---------------------------------------------------------------------
// Options / labels
// ---------------------------------------------------------------------

TEST(TelemetryOptions, SanitizeFileLabel)
{
    EXPECT_EQ(sanitizeFileLabel("fft/directory"), "fft_directory");
    EXPECT_EQ(sanitizeFileLabel("ok-1.2_x"), "ok-1.2_x");
    EXPECT_EQ(sanitizeFileLabel(""), "run");
    EXPECT_EQ(sanitizeFileLabel("a b:c"), "a_b_c");
}

// ---------------------------------------------------------------------
// Disabled mode
// ---------------------------------------------------------------------

TEST(Telemetry, DisabledModeIsInert)
{
    QuietScope quiet;
    RunTelemetry rt(TelemetryOptions{}, "off");
    EXPECT_FALSE(rt.enabled());

    Config cfg;
    cfg.protocol = Protocol::directory;
    CmpSystem sys(cfg);
    rt.attach(sys);
    EXPECT_FALSE(rt.attached());
    EXPECT_FALSE(sys.eventQueue().hasTickObserver());
    EXPECT_EQ(rt.sampler(), nullptr);
    EXPECT_EQ(rt.trace(), nullptr);
    rt.finish(RunResult{}); // Must be a no-op, not a crash.
}

TEST(Telemetry, DisabledRunMatchesObservedRun)
{
    QuietScope quiet;
    const std::string dir = scratchDir("equiv");

    ExperimentConfig plain;
    plain.config.protocol = Protocol::predicted;
    plain.config.predictor = PredictorKind::sp;
    plain.scale = 0.3;
    ExperimentConfig observed = plain;
    observed.telemetry.dir = dir;
    observed.telemetry.samplePeriod = 100;

    const ExperimentResult a = runExperiment("fft", plain);
    const ExperimentResult b = runExperiment("fft", observed);
    EXPECT_EQ(a.run.ticks, b.run.ticks);
    EXPECT_EQ(a.run.mem.misses.value(), b.run.mem.misses.value());
    EXPECT_EQ(a.run.mem.communicatingMisses.value(),
              b.run.mem.communicatingMisses.value());
    EXPECT_EQ(a.run.noc.flitBytes.value(),
              b.run.noc.flitBytes.value());
    EXPECT_EQ(a.run.eventsExecuted, b.run.eventsExecuted);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// End-to-end sidecars
// ---------------------------------------------------------------------

TEST(Telemetry, SeriesReconcilesWithAggregates)
{
    QuietScope quiet;
    const std::string dir = scratchDir("series");
    const ExperimentResult res =
        runExperiment("fft", telemetryConfig(dir));

    const Csv csv = parseCsv(slurp(dir + "/fft.series.csv"));
    ASSERT_GE(csv.rows.size(), 2u);
    ASSERT_EQ(csv.header[0], "tick");
    const auto &last = csv.rows.back();
    EXPECT_EQ(last[column(csv, "mem.accesses")],
              static_cast<double>(res.run.mem.accesses.value()));
    EXPECT_EQ(last[column(csv, "mem.misses")],
              static_cast<double>(res.run.mem.misses.value()));
    EXPECT_EQ(last[column(csv, "mem.comm_misses")],
              static_cast<double>(
                  res.run.mem.communicatingMisses.value()));
    EXPECT_EQ(last[column(csv, "noc.flit_bytes")],
              static_cast<double>(res.run.noc.flitBytes.value()));
    EXPECT_EQ(last[column(csv, "sync.sync_points")],
              static_cast<double>(res.run.sync.syncPoints.value()));
    EXPECT_EQ(last[column(csv, "sp.epochs")],
              static_cast<double>(res.run.sp.epochsStarted.value()));
    // The final row is stamped with the end-of-run tick.
    EXPECT_EQ(last[0], static_cast<double>(res.run.ticks));

    // Per-core columns sum to the aggregate.
    double core_misses = 0.0;
    for (std::size_t i = 0; i < csv.header.size(); ++i) {
        if (csv.header[i].find("mem.core") == 0 &&
            csv.header[i].find(".misses") != std::string::npos) {
            core_misses += last[i];
        }
    }
    EXPECT_EQ(core_misses,
              static_cast<double>(res.run.mem.misses.value()));

    // Monotonic cumulative columns.
    const std::size_t misses_col = column(csv, "mem.misses");
    for (std::size_t r = 1; r < csv.rows.size(); ++r)
        EXPECT_GE(csv.rows[r][misses_col],
                  csv.rows[r - 1][misses_col]);

    // The JSON form mirrors the CSV.
    const auto sj = Json::parse(slurp(dir + "/fft.series.json"));
    ASSERT_TRUE(sj.has_value());
    EXPECT_EQ(sj->find("rows")->size(), csv.rows.size());
    fs::remove_all(dir);
}

TEST(Telemetry, TraceParsesBackAndHasEpochTracks)
{
    QuietScope quiet;
    const std::string dir = scratchDir("trace");
    const ExperimentResult res =
        runExperiment("fft", telemetryConfig(dir));
    (void)res;

    const auto doc = Json::parse(slurp(dir + "/fft.trace.json"));
    ASSERT_TRUE(doc.has_value());
    const Json *events = doc->find("traceEvents");
    ASSERT_TRUE(events != nullptr && events->isArray());
    ASSERT_GT(events->size(), 0u);

    std::size_t epochs = 0, instants = 0, counters = 0, meta = 0;
    for (const Json &e : events->items()) {
        const std::string &ph = e.find("ph")->asString();
        if (ph == "X" && e.find("cat") != nullptr &&
            e.find("cat")->asString() == "epoch") {
            ++epochs;
            EXPECT_GE(e.find("dur")->asNumber(), 0.0);
        } else if (ph == "i") {
            ++instants;
        } else if (ph == "C") {
            ++counters;
        } else if (ph == "M") {
            ++meta;
        }
    }
    EXPECT_GT(epochs, 0u);
    EXPECT_GT(instants, 0u);
    EXPECT_GT(counters, 0u);
    EXPECT_GT(meta, 0u); // process_name + per-core thread_name.
    fs::remove_all(dir);
}

TEST(Telemetry, ManifestRecordsConfigHashAndPhases)
{
    QuietScope quiet;
    const std::string dir = scratchDir("run_manifest");
    const ExperimentResult res =
        runExperiment("fft", telemetryConfig(dir));

    const auto m = RunManifest::read(dir + "/fft.manifest.json");
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->find("workload")->asString(), "fft");
    const Json *cfg = m->find("config");
    ASSERT_TRUE(cfg != nullptr);
    EXPECT_EQ(cfg->find("hash")->asString().size(), 16u);
    EXPECT_EQ(cfg->find("protocol")->asString(), "predicted");
    const Json *phases = m->find("phases");
    ASSERT_TRUE(phases != nullptr);
    ASSERT_EQ(phases->size(), 3u);
    EXPECT_EQ(phases->members()[0].first, "build");
    EXPECT_EQ(phases->members()[1].first, "run");
    EXPECT_EQ(phases->members()[2].first, "finalize");
    const Json *summary = m->find("result");
    ASSERT_TRUE(summary != nullptr);
    EXPECT_EQ(summary->find("misses")->asNumber(),
              static_cast<double>(res.run.mem.misses.value()));
    fs::remove_all(dir);
}

TEST(Telemetry, SweepWritesPerJobSidecarsAndAggregateManifest)
{
    QuietScope quiet;
    const std::string dir = scratchDir("sweep");
    ExperimentConfig cfg = telemetryConfig(dir);
    cfg.telemetry.emitSeriesJson = false;
    // Two jobs with the same workload: labels must not collide.
    const std::vector<SweepJob> jobs = {
        {"fft", cfg, ""},
        {"fft", cfg, ""},
    };
    runSweep(jobs, 2);

    std::size_t manifests = 0, series = 0;
    bool sweep_manifest = false;
    for (const auto &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.find("sweep") == 0 &&
            name.find(".manifest.json") != std::string::npos) {
            sweep_manifest = true;
        } else if (name.find(".manifest.json") != std::string::npos) {
            ++manifests;
        } else if (name.find(".series.csv") != std::string::npos) {
            ++series;
        }
    }
    EXPECT_EQ(manifests, 2u);
    EXPECT_EQ(series, 2u);
    EXPECT_TRUE(sweep_manifest);

    const auto m = RunManifest::read(dir + "/sweep.manifest.json");
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->find("kind")->asString(), "sweep");
    const Json *job_list = m->find("jobs");
    ASSERT_TRUE(job_list != nullptr);
    ASSERT_EQ(job_list->size(), 2u);
    for (const Json &row : job_list->items()) {
        EXPECT_EQ(row.find("workload")->asString(), "fft");
        EXPECT_GT(row.find("wall_ms")->asNumber(), 0.0);
    }
    fs::remove_all(dir);
}
