/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include "event/event_queue.hh"

using namespace spp;

TEST(EventQueue, StartsAtZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] {
        ++fired;
        eq.scheduleAfter(5, [&] {
            ++fired;
            eq.scheduleAfter(5, [&] { ++fired; });
        });
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.curTick(), 15u);
}

TEST(EventQueue, RunLimitStopsEarly)
{
    EventQueue eq;
    bool late_fired = false;
    eq.schedule(10, [] {});
    eq.schedule(100, [&] { late_fired = true; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_FALSE(late_fired);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.run());
    EXPECT_TRUE(late_fired);
}

TEST(EventQueue, CountsExecuted)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_DEATH({ eq.schedule(5, [] {}); }, "past");
    });
    eq.run();
}
