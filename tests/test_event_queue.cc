/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "event/event_queue.hh"

using namespace spp;

TEST(EventQueue, StartsAtZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] {
        ++fired;
        eq.scheduleAfter(5, [&] {
            ++fired;
            eq.scheduleAfter(5, [&] { ++fired; });
        });
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.curTick(), 15u);
}

// Regression: extracting the top entry used to move out of
// priority_queue::top() before pop(), so a pop triggered by the
// running action (or pop's own sift-down) compared gutted entries.
// Scheduling same-tick events from inside step() exercises exactly
// that path: the heap is re-shaped while the extracted entry's
// action is still live.
TEST(EventQueue, ActionSchedulesSameTickEvents)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(0);
        // Same-tick events scheduled mid-step must run after the
        // already-queued same-tick event (FIFO by sequence).
        eq.schedule(10, [&] { order.push_back(2); });
        eq.schedule(10, [&] {
            order.push_back(3);
            eq.schedule(10, [&] { order.push_back(4); });
        });
    });
    eq.schedule(10, [&] { order.push_back(1); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(eq.curTick(), 10u);
}

// Heavier mid-step scheduling: a chain where every event inserts
// several future and same-tick events keeps the heap honest under
// repeated extraction + insertion.
TEST(EventQueue, StressMidStepScheduling)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    std::function<void(int)> fanout = [&](int depth) {
        ++fired;
        if (depth >= 6)
            return;
        for (int i = 0; i < 3; ++i) {
            eq.scheduleAfter(static_cast<Tick>(i),
                             [&, depth] { fanout(depth + 1); });
        }
    };
    eq.schedule(1, [&] { fanout(0); });
    EXPECT_TRUE(eq.run());
    // Full ternary tree of depth 6: (3^7 - 1) / 2 events.
    EXPECT_EQ(fired, 1093u);
    EXPECT_EQ(eq.executed(), 1093u);
}

TEST(EventQueue, RunLimitStopsEarly)
{
    EventQueue eq;
    bool late_fired = false;
    eq.schedule(10, [] {});
    eq.schedule(100, [&] { late_fired = true; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_FALSE(late_fired);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.run());
    EXPECT_TRUE(late_fired);
}

TEST(EventQueue, CountsExecuted)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_DEATH({ eq.schedule(5, [] {}); }, "past");
    });
    eq.run();
}

// --- TickObserver ---

namespace {

struct RecordingObserver : EventQueue::TickObserver
{
    std::vector<Tick> boundaries;
    void onBoundary(Tick b) override { boundaries.push_back(b); }
};

} // namespace

TEST(EventQueue, TickObserverFiresOnEachBoundary)
{
    EventQueue eq;
    EXPECT_FALSE(eq.hasTickObserver());
    RecordingObserver obs;
    eq.setTickObserver(&obs, 10);
    EXPECT_TRUE(eq.hasTickObserver());

    eq.schedule(3, [] {});
    eq.schedule(10, [] {});
    eq.schedule(25, [] {});
    eq.run();
    EXPECT_EQ(obs.boundaries, (std::vector<Tick>{10, 20}));
}

TEST(EventQueue, TickObserverSeesStateBeforeBoundaryEvent)
{
    EventQueue eq;
    int value = 0;
    struct Probe : EventQueue::TickObserver
    {
        int *value;
        int seen = -1;
        void onBoundary(Tick) override { seen = *value; }
    } obs;
    obs.value = &value;
    eq.setTickObserver(&obs, 10);

    eq.schedule(4, [&] { value = 1; });
    // The event *at* the boundary tick must not be visible yet.
    eq.schedule(10, [&] { value = 2; });
    eq.run();
    EXPECT_EQ(obs.seen, 1);
    EXPECT_EQ(value, 2);
}

TEST(EventQueue, TickObserverCatchesUpAcrossGaps)
{
    EventQueue eq;
    RecordingObserver obs;
    eq.setTickObserver(&obs, 10);
    // A single event far in the future: one callback per crossed
    // boundary, in order.
    eq.schedule(42, [] {});
    eq.run();
    EXPECT_EQ(obs.boundaries, (std::vector<Tick>{10, 20, 30, 40}));
}

TEST(EventQueue, TickObserverInstallsMidRun)
{
    EventQueue eq;
    RecordingObserver obs;
    eq.schedule(15, [&] { eq.setTickObserver(&obs, 10); });
    eq.schedule(30, [] {});
    eq.run();
    // Installed at tick 15: the first boundary is the next multiple
    // of the period, not a stale one behind curTick().
    EXPECT_EQ(obs.boundaries, (std::vector<Tick>{20, 30}));
}

TEST(EventQueue, TickObserverRemoval)
{
    EventQueue eq;
    RecordingObserver obs;
    eq.setTickObserver(&obs, 10);
    eq.schedule(10, [] {});
    eq.schedule(15, [&] { eq.setTickObserver(nullptr); });
    eq.schedule(30, [] {});
    eq.run();
    EXPECT_FALSE(eq.hasTickObserver());
    EXPECT_EQ(obs.boundaries, (std::vector<Tick>{10}));
}

// --- Calendar queue vs. reference heap (property test) ---
//
// The slotted near-window/far-heap queue must reproduce the exact
// global (when, FIFO-seq) execution order of a plain binary heap on
// arbitrary schedules, including events scheduled from inside
// running events at the current tick (the PR-1 regression class) and
// offsets straddling the near-window edge.

namespace {

constexpr spp::Tick kOffsets[] = {0,    1,    3,    17,   255,
                                  1023, 1024, 1025, 4096, 50000};
constexpr std::size_t kNumOffsets =
    sizeof(kOffsets) / sizeof(kOffsets[0]);
constexpr std::uint64_t kRootBase = 1'000'000;

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Depth of @p id in the ternary id tree rooted at kRootBase. */
int
idDepth(std::uint64_t id)
{
    int d = 0;
    while (id >= 3 * kRootBase) {
        id /= 3;
        ++d;
    }
    return d;
}

/** Children of @p id and their offsets are a pure function of the
 * id, so the real queue and the reference replay the identical
 * logical schedule without sharing any state. */
template <typename SpawnFn>
void
spawnChildren(std::uint64_t id, std::uint64_t seed, spp::Tick now,
              SpawnFn &&spawn)
{
    const std::uint64_t h = mix64(id ^ seed);
    const unsigned n_children = static_cast<unsigned>(h % 3);
    if (idDepth(id) >= 6)
        return;
    for (unsigned k = 1; k <= n_children; ++k) {
        const spp::Tick off = kOffsets[(h >> (8 * k)) % kNumOffsets];
        spawn(now + off, 3 * id + k);
    }
}

spp::Tick
rootTick(std::uint64_t seed, unsigned i)
{
    return mix64(seed ^ (i + 77)) % 3000;
}

struct RealRun
{
    spp::EventQueue eq;
    std::vector<std::uint64_t> order;
    std::uint64_t seed = 0;

    void
    spawn(spp::Tick when, std::uint64_t id)
    {
        eq.schedule(when, [this, id] { exec(id); });
    }

    void
    exec(std::uint64_t id)
    {
        order.push_back(id);
        spawnChildren(id, seed, eq.curTick(),
                      [this](spp::Tick when, std::uint64_t child) {
                          spawn(when, child);
                      });
    }
};

/** Reference semantics: strict (when, schedule-seq) order. */
std::vector<std::uint64_t>
referenceOrder(std::uint64_t seed, unsigned n_roots)
{
    std::map<std::pair<spp::Tick, std::uint64_t>, std::uint64_t> q;
    std::uint64_t seq = 0;
    std::vector<std::uint64_t> order;
    for (unsigned i = 0; i < n_roots; ++i)
        q.emplace(std::pair{rootTick(seed, i), seq++},
                  kRootBase + i);
    while (!q.empty()) {
        const auto it = q.begin();
        const spp::Tick now = it->first.first;
        const std::uint64_t id = it->second;
        q.erase(it);
        order.push_back(id);
        spawnChildren(id, seed, now,
                      [&](spp::Tick when, std::uint64_t child) {
                          q.emplace(std::pair{when, seq++}, child);
                      });
    }
    return order;
}

} // namespace

TEST(EventQueue, MatchesReferenceHeapOnRandomSchedules)
{
    constexpr unsigned n_roots = 32;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        RealRun real;
        real.seed = seed;
        for (unsigned i = 0; i < n_roots; ++i)
            real.spawn(rootTick(seed, i), kRootBase + i);
        real.eq.run();

        const std::vector<std::uint64_t> ref =
            referenceOrder(seed, n_roots);
        ASSERT_FALSE(ref.empty());
        EXPECT_EQ(real.order, ref) << "seed " << seed;
        EXPECT_EQ(real.eq.nearPending(), 0u);
        EXPECT_EQ(real.eq.farPending(), 0u);
    }
}
