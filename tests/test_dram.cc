/**
 * @file
 * Tests for the banked open-row DRAM model and its integration with
 * the memory system's demand-fetch path.
 */

#include <gtest/gtest.h>

#include "analysis/experiment.hh"
#include "harness.hh"
#include "mem/dram.hh"

using namespace spp;
using namespace spp::test;

namespace {

struct DramFixture : ::testing::Test
{
    Config cfg;
    AddressMap map{cfg};
    DramFixture() { cfg.enableDram = true; }
};

/** A line mapping to home 0, bank 0, row r. */
Addr
lineAt(const Config &cfg, Addr row, Addr offset_in_row = 0)
{
    // local_line = row * rowLines * banks + offset (bank 0 needs
    // offset < rowLines); global line = local_line * numCores.
    const Addr local = (row * cfg.dramBanks * cfg.dramRowLines) +
        offset_in_row;
    return local * cfg.numCores * cfg.lineBytes;
}

} // namespace

TEST_F(DramFixture, ClosedBankPaysNominalLatency)
{
    DramModel d(cfg, map);
    EXPECT_EQ(d.accessLatency(lineAt(cfg, 0), 0), cfg.memLatency);
}

TEST_F(DramFixture, RowHitIsFaster)
{
    DramModel d(cfg, map);
    d.accessLatency(lineAt(cfg, 0), 0);
    const Tick hit = d.accessLatency(lineAt(cfg, 0, 1), 1000);
    EXPECT_EQ(hit, cfg.dramRowHitLatency);
    EXPECT_EQ(d.stats().rowHits.value(), 1u);
}

TEST_F(DramFixture, RowConflictIsSlower)
{
    DramModel d(cfg, map);
    d.accessLatency(lineAt(cfg, 0), 0);
    const Tick conflict = d.accessLatency(lineAt(cfg, 7), 1000);
    EXPECT_EQ(conflict, cfg.dramRowConflictLatency);
    EXPECT_EQ(d.stats().rowConflicts.value(), 1u);
}

TEST_F(DramFixture, BusyBankQueues)
{
    DramModel d(cfg, map);
    d.accessLatency(lineAt(cfg, 0), 0); // Busy until 150.
    const Tick t = d.accessLatency(lineAt(cfg, 0, 1), 10);
    // Waits 140 cycles, then a row hit.
    EXPECT_EQ(t, (150 - 10) + cfg.dramRowHitLatency);
    EXPECT_EQ(d.stats().bankBusyWaits.value(), 1u);
}

TEST_F(DramFixture, DifferentBanksDontQueue)
{
    DramModel d(cfg, map);
    d.accessLatency(lineAt(cfg, 0), 0);
    // Offset by one row's worth of lines -> next bank.
    const Addr other_bank =
        (Addr{cfg.dramRowLines}) * cfg.numCores * cfg.lineBytes;
    const Tick t = d.accessLatency(other_bank, 10);
    EXPECT_EQ(t, cfg.memLatency);
    EXPECT_EQ(d.stats().bankBusyWaits.value(), 0u);
}

TEST(DramSystem, StreamingGetsRowHits)
{
    Config cfg = ProtoHarness::smallConfig();
    cfg.enableDram = true;
    ProtoHarness h(cfg);
    // Stream sequential lines: after the cold accesses warm the rows,
    // most fetches should row-hit.
    for (Addr i = 0; i < 64; ++i)
        h.access(0, 0x900000 + i * 64, false);
    ASSERT_NE(h.sys->dram(), nullptr);
    EXPECT_GT(h.sys->dram()->stats().rowHits.value(), 32u);
}

TEST(DramSystem, WorkloadSeesRowBehaviour)
{
    // Sixteen concurrent private streams interleave at every
    // controller: the model must expose both row hits (sequential
    // locality) and bank pressure (contention) instead of the flat
    // 150-cycle fiction.
    auto run = [](bool dram) {
        ExperimentConfig cfg;
        cfg.scale = 0.5;
        cfg.tweak = [dram](Config &c) { c.enableDram = dram; };
        return runExperiment("radix", cfg); // Streaming-heavy.
    };
    ExperimentResult fixed = run(false);
    ExperimentResult dram = run(true);
    EXPECT_GT(dram.run.ticks, 0u);
    EXPECT_NE(dram.run.mem.nonCommMissLatency.mean(),
              fixed.run.mem.nonCommMissLatency.mean());
    // The non-DRAM run is bit-identical in miss counts (timing-only
    // model change).
    EXPECT_EQ(dram.run.mem.misses.value(),
              fixed.run.mem.misses.value());
}

TEST(DramSystem, AllProtocolsRunWithDram)
{
    for (auto [proto, kind] :
         {std::pair{Protocol::directory, PredictorKind::none},
          std::pair{Protocol::broadcast, PredictorKind::none},
          std::pair{Protocol::predicted, PredictorKind::sp},
          std::pair{Protocol::multicast, PredictorKind::sp}}) {
        ExperimentConfig cfg;
        cfg.scale = 0.2;
        cfg.config.protocol = proto;
        cfg.config.predictor = kind;
        cfg.tweak = [](Config &c) { c.enableDram = true; };
        ExperimentResult r = runExperiment("ocean", cfg);
        EXPECT_GT(r.run.ticks, 0u) << toString(proto);
    }
}
