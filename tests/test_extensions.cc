/**
 * @file
 * Tests for the extension features beyond the paper's core design:
 * the region sharing filter (Section 5.3's bandwidth fix), the
 * bounded hot-set size (Section 5.2's power-envelope policy) and
 * profile-guided seeding (Section 5.2's ideal-gap discussion).
 */

#include <gtest/gtest.h>

#include "analysis/experiment.hh"
#include "analysis/profile.hh"
#include "core/comm_counters.hh"
#include "harness.hh"
#include "predict/sharing_filter.hh"

using namespace spp;
using namespace spp::test;

// --- SharingFilter unit behaviour ---

TEST(SharingFilter, BlocksUntilMarked)
{
    SharingFilter f(16, 4096);
    EXPECT_FALSE(f.allowPrediction(0, 0x12345));
    f.markShared(0, 0x12345);
    EXPECT_TRUE(f.allowPrediction(0, 0x12345));
    // Same 4 KB region, different line.
    EXPECT_TRUE(f.allowPrediction(0, 0x12000));
    // Different region / different core remain blocked.
    EXPECT_FALSE(f.allowPrediction(0, 0x22345));
    EXPECT_FALSE(f.allowPrediction(1, 0x12345));
    EXPECT_EQ(f.sharedRegions(0), 1u);
    EXPECT_GT(f.storageBits(), 0u);
}

// --- Filter wired into the memory system ---

TEST(SharingFilterSystem, SuppressesPrivatePredictions)
{
    Config cfg = ProtoHarness::smallConfig();
    cfg.protocol = Protocol::predicted;
    cfg.predictor = PredictorKind::uni;
    cfg.enableSharingFilter = true;
    ProtoHarness h(cfg);

    // Train UNI so it would predict on everything. The first miss
    // in the region is itself suppressed (region unknown), then the
    // filter learns and the 2-bit counters reach threshold.
    h.access(9, 0x50000, true);
    h.access(9, 0x50040, true);
    h.access(9, 0x50080, true);
    h.access(0, 0x50000, false);
    h.access(0, 0x50040, false);
    h.access(0, 0x50080, false);
    ASSERT_GT(h.sys->stats().predictionsAttempted.value(), 0u);
    const auto attempted_before =
        h.sys->stats().predictionsAttempted.value();

    // Cold private misses in an unshared region: suppressed.
    for (int i = 0; i < 8; ++i)
        h.access(0, 0x900000 + i * 64, false);
    EXPECT_EQ(h.sys->stats().predictionsAttempted.value(),
              attempted_before);
    EXPECT_GE(h.sys->stats().predictionsSuppressed.value(), 8u);
}

TEST(SharingFilterSystem, LearnsFromExternalRequests)
{
    Config cfg = ProtoHarness::smallConfig();
    cfg.protocol = Protocol::predicted;
    cfg.predictor = PredictorKind::uni;
    cfg.enableSharingFilter = true;
    ProtoHarness h(cfg);

    h.access(3, 0x70000, false); // Core 3 caches the line.
    h.access(9, 0x70000, true);  // Core 9's write invalidates core 3.
    // Core 3 observed an external request: its filter marks the
    // region shared.
    ASSERT_NE(h.sys->sharingFilter(), nullptr);
    EXPECT_TRUE(h.sys->sharingFilter()->allowPrediction(3, 0x70000));
}

TEST(SharingFilterSystem, CutsWastedBandwidthOnWorkload)
{
    auto run = [](bool filter) {
        ExperimentConfig cfg;
        cfg.config.protocol = Protocol::predicted;
        cfg.config.predictor = PredictorKind::sp;
        cfg.scale = 0.5;
        cfg.tweak = [filter](Config &c) {
            c.enableSharingFilter = filter;
        };
        return runExperiment("radix", cfg);
    };
    ExperimentResult off = run(false);
    ExperimentResult on = run(true);
    EXPECT_LT(on.run.mem.predWasteBytesNonComm.value(),
              off.run.mem.predWasteBytesNonComm.value());
    EXPECT_GT(on.run.mem.predictionsSuppressed.value(), 0u);
    // Accuracy is not destroyed by the filter.
    EXPECT_GT(on.predictionAccuracy(),
              0.5 * off.predictionAccuracy());
}

// --- Bounded hot sets ---

TEST(HotSetCap, KeepsHottestMembers)
{
    CommCounters c;
    for (int i = 0; i < 30; ++i)
        c.record(CoreSet{1});
    for (int i = 0; i < 20; ++i)
        c.record(CoreSet{2});
    for (int i = 0; i < 10; ++i)
        c.record(CoreSet{3});
    EXPECT_EQ(c.hotSet(0.05), (CoreSet{1, 2, 3}));
    EXPECT_EQ(c.hotSet(0.05, 2), (CoreSet{1, 2}));
    EXPECT_EQ(c.hotSet(0.05, 1), CoreSet{1});
}

TEST(HotSetCap, BoundsPredictedSetSize)
{
    auto run = [](unsigned cap) {
        ExperimentConfig cfg;
        cfg.config.protocol = Protocol::predicted;
        cfg.config.predictor = PredictorKind::sp;
        cfg.scale = 0.5;
        cfg.tweak = [cap](Config &c) { c.maxHotSetSize = cap; };
        // facesim: no locks, so every predicted set comes from a
        // (capped) hot-set extraction (lock-holder unions are
        // intentionally exempt from the cap).
        return runExperiment("facesim", cfg);
    };
    ExperimentResult unbounded = run(0);
    ExperimentResult capped = run(1);
    EXPECT_LE(capped.run.mem.predictedTargets.mean(), 1.0 + 1e-9);
    EXPECT_LT(capped.run.mem.predictedTargets.mean(),
              unbounded.run.mem.predictedTargets.mean());
}

// --- Profile seeding ---

TEST(Profile, BuildFromTrace)
{
    ExperimentConfig cfg;
    cfg.scale = 0.5;
    cfg.collectTrace = true;
    ExperimentResult r = runExperiment("ocean", cfg);
    auto profile = buildProfile(*r.trace, 0.10, 8);
    EXPECT_GT(profile.size(), 0u);
    for (const auto &p : profile) {
        EXPECT_LT(p.core, 16u);
        EXPECT_FALSE(p.signature.empty());
    }
}

TEST(Profile, SeedingPredictsFirstInstances)
{
    // Profile a directory run, then seed a fresh SP run: the seeded
    // run predicts at least as many misses correctly as the unseeded
    // one (first dynamic instances are no longer blind).
    ExperimentConfig trace_cfg;
    trace_cfg.scale = 0.5;
    trace_cfg.collectTrace = true;
    ExperimentResult traced = runExperiment("fft", trace_cfg);
    auto profile = buildProfile(*traced.trace, 0.10, 8);
    ASSERT_GT(profile.size(), 0u);

    auto run = [&](bool seed) {
        ExperimentConfig cfg;
        cfg.config.protocol = Protocol::predicted;
        cfg.config.predictor = PredictorKind::sp;
        cfg.scale = 0.5;
        if (seed) {
            cfg.prepare = [&profile](CmpSystem &sys) {
                ASSERT_NE(sys.spPredictor(), nullptr);
                applyProfile(*sys.spPredictor(), profile);
            };
        }
        return runExperiment("fft", cfg);
    };
    ExperimentResult cold = run(false);
    ExperimentResult seeded = run(true);
    EXPECT_GT(seeded.run.mem.predictionsSufficient.value(),
              cold.run.mem.predictionsSufficient.value());
}

TEST(Profile, SeedApiStoresSignatures)
{
    Config cfg;
    SpPredictor pred(cfg, 16);
    pred.seedSignature(0, 0x42, CoreSet{3, 7});
    const SpEntry *e = pred.table().entry(0, 0x42);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->sigs[0], (CoreSet{3, 7}));
    pred.seedLockHolder(0xbeef, 5);
    EXPECT_EQ(pred.table().lockHolders(0xbeef), CoreSet{5});
}

// --- MESI (no F-state) ablation ---

TEST(MesiMode, CleanSharingGoesToMemory)
{
    Config cfg = ProtoHarness::smallConfig();
    cfg.enableFState = false;
    ProtoHarness h(cfg);
    h.access(0, 0x10000, false); // E at 0.
    // First reader still gets a cache-to-cache transfer (E owner).
    AccessOutcome first = h.access(1, 0x10000, false);
    EXPECT_TRUE(first.communicating);
    EXPECT_EQ(h.l2State(1, 0x10000), Mesif::shared);
    EXPECT_EQ(h.l2State(0, 0x10000), Mesif::shared);
    // Second reader: only S copies exist -> memory must service.
    AccessOutcome second = h.access(2, 0x10000, false);
    EXPECT_TRUE(second.offChip);
    EXPECT_FALSE(second.communicating);
    EXPECT_EQ(h.l2State(2, 0x10000), Mesif::shared);
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(MesiMode, MesifKeepsForwarding)
{
    ProtoHarness h; // Default MESIF.
    h.access(0, 0x10000, false);
    h.access(1, 0x10000, false);
    AccessOutcome second = h.access(2, 0x10000, false);
    EXPECT_TRUE(second.communicating); // F holder forwards.
    EXPECT_FALSE(second.offChip);
}

TEST(MesiMode, DirtyForwardingUnaffected)
{
    Config cfg = ProtoHarness::smallConfig();
    cfg.enableFState = false;
    ProtoHarness h(cfg);
    h.access(0, 0x10000, true); // M at 0.
    AccessOutcome out = h.access(1, 0x10000, false);
    EXPECT_TRUE(out.communicating); // M always forwards.
    h.sys->checkCoherence();
}

TEST(MesiMode, WorkloadsStayCoherent)
{
    ExperimentConfig cfg;
    cfg.scale = 0.25;
    cfg.config.protocol = Protocol::predicted;
    cfg.config.predictor = PredictorKind::sp;
    cfg.tweak = [](Config &c) { c.enableFState = false; };
    ExperimentResult r = runExperiment("ocean", cfg);
    EXPECT_GT(r.run.ticks, 0u);
    EXPECT_GT(r.run.mem.communicatingMisses.value(), 0u);
}

TEST(MesiMode, FStateLowersMissLatencyOnSharedReads)
{
    auto run = [](bool f_state) {
        ExperimentConfig cfg;
        cfg.scale = 0.5;
        cfg.tweak = [f_state](Config &c) {
            c.enableFState = f_state;
        };
        // lu: one produced block read by all fifteen consumers --
        // only the first read can come from the (E/M) producer; the
        // rest need the F chain.
        return runExperiment("lu", cfg);
    };
    ExperimentResult mesif = run(true);
    ExperimentResult mesi = run(false);
    EXPECT_LT(mesif.avgMissLatency(), mesi.avgMissLatency());
    EXPECT_GT(mesif.commMissFraction(), mesi.commMissFraction());
}
