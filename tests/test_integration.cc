/**
 * @file
 * End-to-end integration tests reproducing the paper's headline
 * claims in miniature: SP-prediction achieves high accuracy on
 * predictable workloads, reduces miss latency and execution time
 * relative to the directory baseline, costs far less bandwidth than
 * broadcast, and needs far less storage than ADDR/INST.
 */

#include <gtest/gtest.h>

#include "analysis/experiment.hh"

using namespace spp;

namespace {

ExperimentResult
run(const char *wl, Protocol proto,
    PredictorKind kind = PredictorKind::none, double scale = 0.5)
{
    ExperimentConfig cfg;
    cfg.config.protocol = proto;
    cfg.config.predictor = kind;
    cfg.scale = scale;
    return runExperiment(wl, cfg);
}

} // namespace

TEST(Integration, SpAccuracyHighOnStableWorkload)
{
    ExperimentResult r =
        run("ocean", Protocol::predicted, PredictorKind::sp);
    EXPECT_GT(r.predictionAccuracy(), 0.75);
}

TEST(Integration, SpAccuracyHighOnStridePattern)
{
    ExperimentResult r =
        run("streamcluster", Protocol::predicted, PredictorKind::sp);
    EXPECT_GT(r.predictionAccuracy(), 0.6);
}

TEST(Integration, SpReducesMissLatency)
{
    ExperimentResult dir = run("x264", Protocol::directory);
    ExperimentResult sp =
        run("x264", Protocol::predicted, PredictorKind::sp);
    EXPECT_LT(sp.avgMissLatency(), dir.avgMissLatency());
}

TEST(Integration, SpReducesExecutionTime)
{
    ExperimentResult dir = run("facesim", Protocol::directory);
    ExperimentResult sp =
        run("facesim", Protocol::predicted, PredictorKind::sp);
    EXPECT_LT(sp.run.ticks, dir.run.ticks);
}

TEST(Integration, BroadcastIsLatencyBestButBandwidthWorst)
{
    ExperimentResult dir = run("ocean", Protocol::directory);
    ExperimentResult bc = run("ocean", Protocol::broadcast);
    ExperimentResult sp =
        run("ocean", Protocol::predicted, PredictorKind::sp);
    EXPECT_LT(bc.avgMissLatency(), dir.avgMissLatency());
    // SP's bandwidth overhead is a small fraction of broadcast's.
    const double sp_extra = sp.bytesPerMiss() - dir.bytesPerMiss();
    const double bc_extra = bc.bytesPerMiss() - dir.bytesPerMiss();
    EXPECT_LT(sp_extra, 0.35 * bc_extra);
    // Energy ordering: dir < sp << broadcast (Fig. 11).
    EXPECT_LT(sp.energy, 1.6 * dir.energy);
    EXPECT_GT(bc.energy, 2.0 * dir.energy);
}

TEST(Integration, SpStorageFarBelowAddr)
{
    // (The paper also beats INST by ~4x; our synthetic programs have
    // unrealistically few static instructions, so only the ADDR
    // comparison is meaningful on this substrate -- see DESIGN.md.)
    ExperimentResult sp =
        run("bodytrack", Protocol::predicted, PredictorKind::sp);
    ExperimentResult addr =
        run("bodytrack", Protocol::predicted, PredictorKind::addr);
    EXPECT_LT(sp.run.predictorStorageBits,
              addr.run.predictorStorageBits / 4);
}

TEST(Integration, SpTableAccessedFarLessOften)
{
    // Section 5.5: SP accesses its table only on sync-points; the
    // table-indexed predictors probe on every miss.
    ExperimentResult sp =
        run("ocean", Protocol::predicted, PredictorKind::sp);
    ExperimentResult addr =
        run("ocean", Protocol::predicted, PredictorKind::addr);
    EXPECT_LT(sp.run.predictorTableAccesses * 10,
              addr.run.predictorTableAccesses);
}

TEST(Integration, CapacityLimitHurtsAddrNotSp)
{
    auto accuracy = [](PredictorKind kind, unsigned entries) {
        ExperimentConfig cfg;
        cfg.config.protocol = Protocol::predicted;
        cfg.config.predictor = kind;
        cfg.scale = 0.5;
        cfg.config.predictorEntries = entries;
        return runExperiment("ocean", cfg).predictionAccuracy();
    };
    const double addr_full = accuracy(PredictorKind::addr, 0);
    const double addr_small = accuracy(PredictorKind::addr, 16);
    EXPECT_LT(addr_small, addr_full);
    const double sp_full = accuracy(PredictorKind::sp, 0);
    const double sp_small = accuracy(PredictorKind::sp, 16);
    EXPECT_NEAR(sp_small, sp_full, 1e-9); // SP ignores the limit.
}

TEST(Integration, UniCostsMoreBandwidthPerPrediction)
{
    // UNI reaches decent coverage only by predicting larger sets of
    // recent destinations; SP's sets are tighter (Fig. 12's
    // bandwidth dimension).
    ExperimentResult uni =
        run("bodytrack", Protocol::predicted, PredictorKind::uni);
    ExperimentResult sp =
        run("bodytrack", Protocol::predicted, PredictorKind::sp);
    EXPECT_GT(uni.run.mem.predictionsAttempted.value(), 0u);
    EXPECT_GT(uni.run.mem.predictedTargets.mean(),
              sp.run.mem.predictedTargets.mean());
}

TEST(Integration, LockPredictionHelpsLockHeavyWorkloads)
{
    ExperimentResult r =
        run("radiosity", Protocol::predicted, PredictorKind::sp);
    const auto lock_hits = r.run.mem.sufficientBySource[
        static_cast<std::size_t>(PredSource::lock)];
    EXPECT_GT(lock_hits, 0u);
    // Lock-sourced predictions carry a large share of radiosity's
    // accuracy (Section 5.5's commercial-workload projection).
    EXPECT_GT(static_cast<double>(lock_hits),
              0.2 * static_cast<double>(
                        r.run.mem.predictionsSufficient.value()));
}

TEST(Integration, RecoveryContributes)
{
    ExperimentResult r =
        run("water-sp", Protocol::predicted, PredictorKind::sp);
    EXPECT_GT(r.run.sp.recoveries.value(), 0u);
    EXPECT_GT(r.run.mem.sufficientBySource[
                  static_cast<std::size_t>(PredSource::recovery)],
              0u);
}
