/**
 * @file
 * Unit tests for the communication counters, hot-set extraction and
 * the SP-table.
 */

#include <gtest/gtest.h>

#include "core/comm_counters.hh"
#include "core/sp_table.hh"
#include "core/thread_map.hh"

using namespace spp;

// --- CommCounters ---

TEST(CommCounters, EmptyHotSet)
{
    CommCounters c;
    EXPECT_TRUE(c.hotSet(0.10).empty());
    EXPECT_EQ(c.total(), 0u);
}

TEST(CommCounters, SingleHotTarget)
{
    CommCounters c;
    for (int i = 0; i < 20; ++i)
        c.record(CoreSet{5});
    c.record(CoreSet{3});
    // Core 5 has 20/21 of the volume, core 3 under 10%.
    const CoreSet hot = c.hotSet(0.10);
    EXPECT_EQ(hot, CoreSet{5});
}

TEST(CommCounters, ThresholdBoundary)
{
    CommCounters c;
    // 9 to core 1, 1 to core 2: core 2 sits exactly at 10%.
    for (int i = 0; i < 9; ++i)
        c.record(CoreSet{1});
    c.record(CoreSet{2});
    const CoreSet hot = c.hotSet(0.10);
    EXPECT_TRUE(hot.test(1));
    EXPECT_TRUE(hot.test(2)); // >= threshold is hot.
    EXPECT_FALSE(c.hotSet(0.20).test(2));
}

TEST(CommCounters, MultiTargetRecord)
{
    CommCounters c;
    c.record(CoreSet{1, 2, 3});
    EXPECT_EQ(c.total(), 3u);
    EXPECT_EQ(c.count(1), 1u);
    EXPECT_EQ(c.count(2), 1u);
}

TEST(CommCounters, Saturates)
{
    CommCounters c;
    for (int i = 0; i < 300; ++i)
        c.record(CoreSet{0});
    EXPECT_EQ(c.count(0), CommCounters::saturation);
}

TEST(CommCounters, Reset)
{
    CommCounters c;
    c.record(CoreSet{1});
    c.reset();
    EXPECT_EQ(c.total(), 0u);
}

TEST(CommCounters, LifetimeTotalSurvivesReset)
{
    CommCounters c;
    c.record(CoreSet{1, 2});
    c.record(CoreSet{3});
    EXPECT_EQ(c.lifetimeTotal(), 3u);
    c.reset(); // Epoch boundary: per-epoch counts clear...
    EXPECT_EQ(c.total(), 0u);
    EXPECT_EQ(c.lifetimeTotal(), 3u); // ...the running total doesn't.
    c.record(CoreSet{4});
    EXPECT_EQ(c.lifetimeTotal(), 4u);
    c.reset();
    c.reset(); // A quiet epoch adds nothing.
    EXPECT_EQ(c.lifetimeTotal(), 4u);
}

// --- SpTable ---

TEST(SpTable, MissingEntry)
{
    SpTable t(16, 2);
    EXPECT_EQ(t.entry(0, 42), nullptr);
}

TEST(SpTable, StoreAndRetrieve)
{
    SpTable t(16, 2);
    t.storeSignature(0, 42, CoreSet{1, 2});
    const SpEntry *e = t.entry(0, 42);
    ASSERT_NE(e, nullptr);
    ASSERT_EQ(e->sigs.size(), 1u);
    EXPECT_EQ(e->sigs[0], (CoreSet{1, 2}));
}

TEST(SpTable, DepthBound)
{
    SpTable t(16, 2);
    t.storeSignature(0, 42, CoreSet{1});
    t.storeSignature(0, 42, CoreSet{2});
    t.storeSignature(0, 42, CoreSet{3});
    const SpEntry *e = t.entry(0, 42);
    ASSERT_EQ(e->sigs.size(), 2u);
    EXPECT_EQ(e->sigs[0], CoreSet{3}); // Newest first.
    EXPECT_EQ(e->sigs[1], CoreSet{2});
}

TEST(SpTable, StrideDetectionStable)
{
    SpTable t(16, 2);
    t.storeSignature(0, 1, CoreSet{4});
    t.storeSignature(0, 1, CoreSet{4});
    EXPECT_EQ(t.entry(0, 1)->stride, 1u);
}

TEST(SpTable, StrideDetectionAlternating)
{
    SpTable t(16, 2);
    t.storeSignature(0, 1, CoreSet{4});
    t.storeSignature(0, 1, CoreSet{8});
    t.storeSignature(0, 1, CoreSet{4}); // Matches depth 2.
    EXPECT_EQ(t.entry(0, 1)->stride, 2u);
}

TEST(SpTable, StrideResetOnChange)
{
    SpTable t(16, 2);
    t.storeSignature(0, 1, CoreSet{4});
    t.storeSignature(0, 1, CoreSet{4});
    t.storeSignature(0, 1, CoreSet{9});
    EXPECT_EQ(t.entry(0, 1)->stride, 0u);
}

TEST(SpTable, PerCoreSlices)
{
    SpTable t(16, 2);
    t.storeSignature(0, 42, CoreSet{1});
    EXPECT_EQ(t.entry(1, 42), nullptr); // Other core's slice empty.
}

TEST(SpTable, LockHolders)
{
    SpTable t(16, 2);
    EXPECT_TRUE(t.lockHolders(0xbeef).empty());
    t.storeLockHolder(0xbeef, 3);
    t.storeLockHolder(0xbeef, 7);
    EXPECT_EQ(t.lockHolders(0xbeef), (CoreSet{3, 7}));
    t.storeLockHolder(0xbeef, 9); // Depth 2: 3 falls out.
    EXPECT_EQ(t.lockHolders(0xbeef), (CoreSet{7, 9}));
}

TEST(SpTable, StorageBitsGrow)
{
    SpTable t(16, 2);
    const std::size_t empty = t.storageBits(16);
    t.storeSignature(0, 1, CoreSet{1});
    t.storeLockHolder(0x10, 2);
    EXPECT_GT(t.storageBits(16), empty);
    EXPECT_EQ(t.entryCount(), 2u);
}

TEST(SpTable, AccessCounting)
{
    SpTable t(16, 2);
    const auto before = t.accesses();
    t.storeSignature(0, 1, CoreSet{1});
    t.entry(0, 1);
    EXPECT_EQ(t.accesses(), before + 2);
}

// --- ThreadMap ---

TEST(ThreadMap, IdentityByDefault)
{
    ThreadMap m(16);
    for (unsigned i = 0; i < 16; ++i) {
        EXPECT_EQ(m.core(i), i);
        EXPECT_EQ(m.thread(i), i);
    }
    EXPECT_EQ(m.toPhysical(CoreSet{3, 5}), (CoreSet{3, 5}));
}

TEST(ThreadMap, MigrationSwaps)
{
    ThreadMap m(16);
    m.migrate(2, 9); // Thread 2 moves to core 9; thread 9 to core 2.
    EXPECT_EQ(m.core(2), 9u);
    EXPECT_EQ(m.core(9), 2u);
    EXPECT_EQ(m.thread(9), 2u);
    EXPECT_EQ(m.thread(2), 9u);
    EXPECT_EQ(m.toPhysical(CoreSet{2}), CoreSet{9});
    EXPECT_EQ(m.toLogical(CoreSet{9}), CoreSet{2});
}

TEST(ThreadMap, RoundTrip)
{
    ThreadMap m(16);
    m.migrate(1, 5);
    m.migrate(5, 12);
    const CoreSet logical{1, 5, 7};
    EXPECT_EQ(m.toLogical(m.toPhysical(logical)), logical);
}
